// Table 2: queueing / execution decomposition under limited sprinting.
//
// Same scenario as Figure 11(a): graph jobs, 3:7 high:low, equal sizes,
// limited sprinting (22 kJ, 65 s timeout). Rows: sprinted non-preemptive
// NPS, DiAS(0,10), DiAS(0,20); columns: mean queueing and execution time
// per class. Paper values for reference:
//          NPS            DiAS(0,10)      DiAS(0,20)
//   high   70.6 /  99.8   70.0 / 100.2    55.1 /  99.4
//   low   378.9 / 148.5  286.4 / 139.0   238.0 / 131.1
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"

int main() {
  using namespace dias;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  bench::print_header("Table 2: queue/exec decomposition (limited sprinting)");

  std::vector<workload::GraphClassParams> classes{
      bench::graph_class(0.007, "low"),
      bench::graph_class(0.003, "high"),
  };
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_graph_trace);
  workload::TraceGenerator gen(111);
  const auto trace = gen.graph_trace(classes, 16000);

  const auto run = [&](core::Policy policy, std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.sprint.enabled = true;
    config.sprint.speedup = 2.5;
    config.sprint.base_power_w = 180.0;
    config.sprint.sprint_power_w = 270.0;
    config.sprint.budget_joules = 22000.0;
    config.sprint.replenish_watts = 24.0;
    config.sprint.budget_cap_joules = 22000.0;
    config.sprint.timeout_s = {kInf, 65.0};
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 1600;
    config.seed = 112;
    return core::run_experiment(config, trace);
  };

  struct Variant {
    const char* name;
    core::Policy policy;
    std::vector<double> theta;
  };
  std::printf("  %-12s  %18s  %18s\n", "", "high queue/exec [s]", "low queue/exec [s]");
  for (const auto& v :
       {Variant{"NPS", core::Policy::kNonPreemptiveSprint, {}},
        Variant{"DiAS(0,10)", core::Policy::kDias, {0.1, 0.0}},
        Variant{"DiAS(0,20)", core::Policy::kDias, {0.2, 0.0}}}) {
    const auto result = run(v.policy, v.theta);
    std::printf("  %-12s  %8.1f / %7.1f  %8.1f / %7.1f\n", v.name,
                result.per_class[1].queueing.mean(), result.per_class[1].execution.mean(),
                result.per_class[0].queueing.mean(), result.per_class[0].execution.mean());
  }
  std::printf("\n  paper shape: high-priority execution ~constant across variants\n"
              "  (sprinting already applied); dropping shrinks low-priority execution\n"
              "  and, through shorter busy periods, *both* classes' queueing times.\n");
  return 0;
}
