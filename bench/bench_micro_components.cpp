// Microbenchmarks (google-benchmark) for the DiAS building blocks: PH
// algebra, the task-level CTMC construction, the priority-queue MVA, the
// QBD solver, the discrete-event core, task dropping, and the real engine.
// These guard the cost of the deflator's model evaluations (the paper
// argues the models make exhaustive configuration search cheap).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "model/mg1_priority.hpp"
#include "model/qbd.hpp"
#include "model/response_time_model.hpp"
#include "model/task_level_model.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace dias;

std::vector<double> point_pmf(int tasks) {
  std::vector<double> pmf(static_cast<std::size_t>(tasks), 0.0);
  pmf.back() = 1.0;
  return pmf;
}

void BM_PhaseTypeConvolve(benchmark::State& state) {
  const auto a = model::PhaseType::erlang(static_cast<int>(state.range(0)), 2.0);
  const auto b = model::PhaseType::erlang(static_cast<int>(state.range(0)), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::PhaseType::convolve(a, b).mean());
  }
}
BENCHMARK(BM_PhaseTypeConvolve)->Arg(4)->Arg(16)->Arg(64);

void BM_TaskLevelModelBuild(benchmark::State& state) {
  model::TaskLevelParams p;
  p.slots = 20;
  p.map_task_pmf = point_pmf(static_cast<int>(state.range(0)));
  p.reduce_task_pmf = point_pmf(20);
  p.theta_map = 0.2;
  for (auto _ : state) {
    model::TaskLevelModel model(p);
    benchmark::DoNotOptimize(model.mean_processing_time());
  }
}
BENCHMARK(BM_TaskLevelModelBuild)->Arg(50)->Arg(150)->Arg(300);

void BM_DeflatorModelEvaluation(benchmark::State& state) {
  // One full deflator probe: two classes, task-level PH + priority MVA.
  model::JobClassProfile low;
  low.arrival_rate = 0.005;
  low.slots = 20;
  low.map_task_pmf = point_pmf(50);
  low.reduce_task_pmf = point_pmf(20);
  low.map_rate = 1.0 / 20.0;
  low.reduce_rate = 1.0 / 10.0;
  low.shuffle_rate = 1.0 / 3.0;
  low.mean_overhead_theta0 = 8.0;
  low.mean_overhead_theta90 = 4.0;
  auto high = low;
  high.arrival_rate = 0.001;
  const std::vector<model::JobClassProfile> classes{low, high};
  const std::vector<double> theta{0.2, 0.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::ResponseTimeModel::predict(
        classes, theta, model::Discipline::kNonPreemptive));
  }
}
BENCHMARK(BM_DeflatorModelEvaluation);

void BM_QbdSolve(benchmark::State& state) {
  const auto service = model::PhaseType::erlang(static_cast<int>(state.range(0)), 2.0);
  for (auto _ : state) {
    model::MPh1Queue q(0.8 * 2.0 / static_cast<double>(state.range(0)), service);
    benchmark::DoNotOptimize(q.mean_response_time());
  }
}
BENCHMARK(BM_QbdSolve)->Arg(2)->Arg(8)->Arg(32);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 100000;
    std::function<void()> chain = [&] {
      if (--remaining > 0) sim.schedule_after(1.0, chain);
    };
    sim.schedule_at(0.0, chain);
    sim.run();
    benchmark::DoNotOptimize(sim.now());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_FindMissingPartitions(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine::find_missing_partitions(static_cast<std::size_t>(state.range(0)), 0.2, rng));
  }
}
BENCHMARK(BM_FindMissingPartitions)->Arg(50)->Arg(1000);

void BM_EngineMapStage(benchmark::State& state) {
  engine::Engine::Options opts;
  opts.workers = 4;
  engine::Engine eng(opts);
  std::vector<int> data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int>(i);
  const auto ds = eng.parallelize(std::move(data), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.map(ds, [](const int& x) { return x * 2 + 1; }));
    eng.clear_stage_log();
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EngineMapStage);

}  // namespace

BENCHMARK_MAIN();
