// Extension: soft priority (weighted fair sharing) vs DiAS.
//
// The paper's related work notes Hadoop's fair scheduler implements "soft
// priority" by weighting classes instead of strict precedence (Section 6).
// This experiment quantifies the comparison on the reference workload:
//   P            - strict preemptive priority (the production baseline)
//   NP           - strict non-preemptive priority
//   FAIR(w_l:w_h) - weighted fair sharing with the given class weights
//                  (at this 9:1 arrival mix, high-favouring weights >= the
//                  arrival ratio converge to strict priority)
//   DA(0,20)     - differential approximation (strict NP + deflation)
// Soft priority trades high-priority latency for low-priority fairness;
// DA gets both without the trade.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"

int main() {
  using namespace dias;
  bench::print_header("Extension: weighted fair sharing vs DiAS (9:1 mix, 80% load)");

  auto classes = bench::reference_two_priority();
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_text_trace);
  workload::TraceGenerator gen(161);
  const auto trace = gen.text_trace(classes, 20000);

  struct Variant {
    const char* name;
    bool preemptive;
    cluster::QueuePolicy queue_policy;
    std::vector<double> weights;
    std::vector<double> theta;
  };
  const std::vector<Variant> variants{
      {"P", true, cluster::QueuePolicy::kStrictPriority, {}, {}},
      {"NP", false, cluster::QueuePolicy::kStrictPriority, {}, {}},
      {"FAIR(1:1)", false, cluster::QueuePolicy::kWeightedFair, {1.0, 1.0}, {}},
      {"FAIR(1:4)", false, cluster::QueuePolicy::kWeightedFair, {1.0, 4.0}, {}},
      {"FAIR(4:1)", false, cluster::QueuePolicy::kWeightedFair, {4.0, 1.0}, {}},
      {"DA(0,20)", false, cluster::QueuePolicy::kStrictPriority, {}, {0.2, 0.0}},
  };

  std::printf("  %-12s %22s %22s %8s\n", "policy", "high mean/p95 [s]", "low mean/p95 [s]",
              "waste");
  for (const auto& v : variants) {
    cluster::ClusterSimulator::Config config;
    config.slots = bench::kSlots;
    config.scheduler.preemptive = v.preemptive;
    config.scheduler.queue_policy = v.queue_policy;
    config.scheduler.fair_weights = v.weights;
    config.scheduler.theta = v.theta;
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 2000;
    config.seed = 162;
    const auto result = cluster::simulate(config, trace);
    std::printf("  %-12s %9.1f / %-10.1f %9.1f / %-10.1f %6.1f%%\n", v.name,
                result.per_class[1].response.mean(), result.per_class[1].tail_response(),
                result.per_class[0].response.mean(), result.per_class[0].tail_response(),
                100.0 * result.resource_waste());
  }
  std::printf("\n  finding: softening priority costs the high class (up to 2x mean at\n"
              "  4:1) while buying the dominant low class almost nothing -- it already\n"
              "  receives ~90%% of the service. DA(0,20) instead shrinks the low jobs\n"
              "  themselves and beats every soft-priority point on both classes.\n");
  return 0;
}
