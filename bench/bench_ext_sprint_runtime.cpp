// Extension: differential sprinting on the real engine (paper Fig 11, but
// executed instead of simulated).
//
// The simulator's Fig 11 models sprinting as a DVFS boost inside the DES;
// here the same policy runs against the real stack: bursty two-class
// traffic through DiasDispatcher, jobs executing parallelizable stages on
// the elastic engine pool, and a SprintGovernor that leases the pool's
// reserve slots when the high class's Tk timer fires — paying for the
// boost from the shared EnergyBudget. Sprinting is differential: only the
// high class has a finite Tk; the low class never draws from the budget.
//
// Emits one BENCH line per mode:
//   BENCH {"bench":"ext_sprint_runtime","mode":"sprint_on",...}
// Expectation: high-priority mean and p95 response drop with sprinting on
// while consumed energy stays within budget + replenishment.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <numeric>
#include <thread>
#include <vector>

#include "bench/scenarios.hpp"
#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "obs/json.hpp"
#include "runtime/sprint_governor.hpp"

namespace {

constexpr std::size_t kBaseWorkers = 2;
constexpr std::size_t kReserveWorkers = 6;
constexpr int kBursts = 12;
constexpr int kTaskMs = 20;
constexpr double kBurstGapS = 0.35;
constexpr double kBudgetJoules = 25.0;
constexpr double kReplenishWatts = 10.0;

// `partitions` map tasks of kTaskMs each: ~ceil(partitions / active) rounds.
void run_stage_job(dias::engine::Engine& eng, std::size_t partitions) {
  std::vector<int> values(partitions);
  std::iota(values.begin(), values.end(), 0);
  auto ds = eng.parallelize(std::move(values), partitions);
  dias::engine::StageOptions opts;
  opts.name = "burst";
  opts.droppable = false;
  eng.map_partitions(
      ds,
      [](const std::vector<int>& part) {
        std::this_thread::sleep_for(std::chrono::milliseconds(kTaskMs));
        return part;
      },
      opts);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

struct ModeResult {
  double mean_s[2] = {0.0, 0.0};
  double p95_s[2] = {0.0, 0.0};
  double elapsed_s = 0.0;
  std::size_t granted = 0;
  std::size_t denied = 0;
  double consumed_j = 0.0;
  double ceiling_j = std::numeric_limits<double>::infinity();
};

ModeResult run_mode(bool sprint) {
  dias::engine::Engine::Options eopts;
  eopts.workers = kBaseWorkers;
  eopts.reserve_workers = kReserveWorkers;
  dias::engine::Engine eng(eopts);

  dias::core::DiasDispatcher dispatcher({0.0, 0.0});
  dias::runtime::SprintGovernorConfig config;
  config.enabled = sprint;
  config.budget.base_power_w = 180.0;
  config.budget.sprint_power_w = 270.0;
  config.budget.budget_joules = kBudgetJoules;
  config.budget.budget_cap_joules = kBudgetJoules;
  config.budget.replenish_watts = kReplenishWatts;
  // Differential: class 1 sprints after 10 ms; class 0 never does.
  config.timeout_s = {std::numeric_limits<double>::infinity(), 0.01};
  dias::runtime::SprintGovernor governor(config, eng.pool());
  dispatcher.attach_sprint_governor(&governor);

  const auto begin = std::chrono::steady_clock::now();
  for (int burst = 0; burst < kBursts; ++burst) {
    // One burst: a wide high-priority job plus three low-priority jobs
    // arriving together, then an idle gap that replenishes the budget.
    dispatcher.submit(1, [&](double) { run_stage_job(eng, 16); });
    for (int j = 0; j < 3; ++j) {
      dispatcher.submit(0, [&](double) { run_stage_job(eng, 4); });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(kBurstGapS));
  }
  const auto records = dispatcher.drain();

  ModeResult r;
  r.elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
                    .count();
  std::vector<double> responses[2];
  for (const auto& rec : records) responses[rec.priority].push_back(rec.response_s());
  for (int k = 0; k < 2; ++k) {
    const double sum =
        std::accumulate(responses[k].begin(), responses[k].end(), 0.0);
    r.mean_s[k] = sum / static_cast<double>(responses[k].size());
    r.p95_s[k] = percentile(responses[k], 0.95);
  }
  r.granted = governor.sprints_granted();
  r.denied = governor.sprints_denied();
  r.consumed_j = governor.budget_consumed();
  r.ceiling_j = kBudgetJoules + kReplenishWatts * r.elapsed_s;
  return r;
}

void emit(const char* mode, const ModeResult& r) {
  std::printf("  %-10s %8.3f / %-8.3f %8.3f / %-8.3f %4zu %4zu %8.1f %8.1f\n",
              mode, r.mean_s[1], r.p95_s[1], r.mean_s[0], r.p95_s[0], r.granted,
              r.denied, r.consumed_j, r.ceiling_j);
  dias::obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "ext_sprint_runtime");
  w.field("mode", mode);
  w.field("workers", std::uint64_t{kBaseWorkers});
  w.field("reserve_workers", std::uint64_t{kReserveWorkers});
  w.field("bursts", std::uint64_t{kBursts});
  w.field("high_mean_s", r.mean_s[1]);
  w.field("high_p95_s", r.p95_s[1]);
  w.field("low_mean_s", r.mean_s[0]);
  w.field("low_p95_s", r.p95_s[0]);
  w.field("sprints_granted", std::uint64_t{r.granted});
  w.field("sprints_denied", std::uint64_t{r.denied});
  w.field("energy_consumed_j", r.consumed_j);
  w.field("energy_ceiling_j", r.ceiling_j);
  w.field("within_budget", r.consumed_j <= r.ceiling_j + 1e-6);
  w.end_object();
  std::printf("BENCH %s\n", std::move(w).str().c_str());
}

}  // namespace

int main() {
  dias::bench::print_header("Extension: runtime differential sprinting (Fig 11 on the real engine)");
  std::printf("  %-10s %19s %19s %9s %17s\n", "mode", "high mean/p95 [s]",
              "low mean/p95 [s]", "grant/deny", "consumed/ceiling [J]");
  const auto off = run_mode(false);
  emit("sprint_off", off);
  const auto on = run_mode(true);
  emit("sprint_on", on);
  std::printf("\n  expectation: with sprinting on, the high class's Tk timer leases\n"
              "  the %zu reserve slots ~10 ms into each wide job, so high-priority\n"
              "  mean and p95 response drop well below the fixed-pool run while the\n"
              "  low class (infinite Tk) is untouched and consumed energy stays\n"
              "  within budget + replenishment.\n",
              kReserveWorkers);
  return 0;
}
