// Extension: overload protection (ISSUE 5) — bounded admission + deadlines
// + closed-loop adaptive deflation vs the seed dispatcher, under a
// sustained 2x overload burst.
//
// Three modes process the same two-class arrival stream on the real engine
// (droppable stages, so theta directly shortens jobs):
//   * seed      - unbounded queues, no deadlines, fixed offline theta: the
//                 backlog grows without bound and even the high class's
//                 response diverges with it;
//   * bounded   - per-class queue caps with shed-oldest-lowest admission
//                 and a low-class deadline: queues stay short, overload is
//                 paid in shed/cancelled low-priority jobs;
//   * adaptive  - bounded + OverloadController: measured arrival rates
//                 re-run the deflator grid search and escalate theta up to
//                 the per-class ceilings, so the work itself shrinks and
//                 the high class stays near its uncongested response.
//
// A preliminary uncongested run (same job mix at ~0.4x capacity) provides
// the reference high-class mean; every BENCH line reports the ratio
// against it.
//   BENCH {"bench":"ext_overload","mode":"adaptive",...}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "bench/scenarios.hpp"
#include "core/accuracy_profile.hpp"
#include "core/deflator.hpp"
#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "obs/json.hpp"
#include "runtime/overload_controller.hpp"

namespace {

constexpr std::size_t kWorkers = 4;
constexpr std::size_t kPartitions = 16;
constexpr int kTaskMs = 4;
constexpr double kLowDeadlineS = 0.5;
// theta ceilings: the low class tolerates deep degradation, the high class
// a shallow one — never exceeded by the controller.
constexpr double kCeilingLow = 0.6;
constexpr double kCeilingHigh = 0.3;

// One job: a droppable stage of kPartitions sleep-tasks. theta drops
// ceil(theta * kPartitions) of them, so the job genuinely shrinks.
void run_job(dias::engine::Engine& eng, const dias::CancellationToken& token,
             double theta) {
  eng.set_cancellation(token);
  eng.set_drop_ratio(theta);
  std::vector<int> values(kPartitions);
  std::iota(values.begin(), values.end(), 0);
  auto ds = eng.parallelize(std::move(values), kPartitions);
  dias::engine::StageOptions opts;
  opts.name = "overload_job";
  opts.droppable = true;
  eng.map_partitions(ds, [](const std::vector<int>& part) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kTaskMs));
    return part;
  }, opts);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(xs.size() - 1));
  return xs[idx];
}

dias::model::JobClassProfile profile(double lambda) {
  dias::model::JobClassProfile p;
  p.arrival_rate = lambda;
  p.slots = 4;
  p.map_task_pmf.assign(kPartitions, 0.0);
  p.map_task_pmf.back() = 1.0;
  p.reduce_task_pmf.assign(1, 1.0);
  p.map_rate = 1.0 / (static_cast<double>(kTaskMs) * 1e-3);
  p.reduce_rate = 1e3;
  p.shuffle_rate = 1e3;
  p.mean_overhead_theta0 = 5e-3;
  p.mean_overhead_theta90 = 2e-3;
  return p;
}

struct ModeResult {
  std::size_t completed[2] = {0, 0};
  std::size_t shed = 0;
  std::size_t cancelled = 0;
  std::size_t failed = 0;
  double high_mean_s = 0.0;
  double high_p95_s = 0.0;
  double low_mean_s = 0.0;
  double elapsed_s = 0.0;
  double final_theta[2] = {0.0, 0.0};
  std::uint64_t replans = 0;
  std::uint64_t escalations = 0;
};

// Alternating H,L stream with `period_s` between submissions: at the
// overload period each class alone arrives near the theta=0 service rate,
// so the combined stream is a sustained ~2x burst.
ModeResult run_mode(bool bounded, bool adaptive, double period_s, int jobs) {
  dias::engine::Engine::Options eopts;
  eopts.workers = kWorkers;
  eopts.seed = 7;
  dias::engine::Engine eng(eopts);

  dias::core::DispatcherOptions dopts;
  if (bounded) {
    dopts.admission = dias::core::AdmissionPolicy::kShedOldestLowest;
    dopts.classes = {
        dias::core::ClassPolicy{8, kLowDeadlineS},
        dias::core::ClassPolicy{8, std::numeric_limits<double>::infinity()}};
  }
  dias::core::DiasDispatcher dispatcher({0.0, 0.0}, dopts);

  std::optional<dias::runtime::OverloadController> controller;
  if (adaptive) {
    dias::core::Deflator deflator({profile(2.0), profile(2.0)},
                                  dias::core::AccuracyProfile::paper_word_count());
    dias::runtime::OverloadControllerConfig ccfg;
    ccfg.sample_period_s = 0.05;
    ccfg.ewma_alpha = 0.5;
    ccfg.queue_depth_high = 6;
    ccfg.queue_depth_low = 2;
    ccfg.min_hold_s = 0.2;
    ccfg.theta_ceiling = {kCeilingLow, kCeilingHigh};
    ccfg.start_thread = true;
    controller.emplace(dispatcher, std::move(deflator),
                       std::vector<dias::core::ClassConstraint>{
                           {40.0, 1e18, 1.0}, {20.0, 1e18, 1.0}},
                       ccfg);
  }

  const auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < jobs; ++i) {
    const auto priority = static_cast<std::size_t>(i % 2);
    dispatcher.submit(priority,
                      dias::core::DiasDispatcher::ContextJobFn(
                          [&](const dias::core::DiasDispatcher::JobContext& ctx) {
                            run_job(eng, ctx.token, ctx.theta);
                          }));
    std::this_thread::sleep_for(std::chrono::duration<double>(period_s));
  }
  const auto records = dispatcher.drain();

  ModeResult r;
  r.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  std::vector<double> responses[2];
  for (const auto& rec : records) {
    switch (rec.outcome) {
      case dias::core::JobOutcome::kCompleted:
        ++r.completed[rec.priority];
        responses[rec.priority].push_back(rec.response_s());
        break;
      case dias::core::JobOutcome::kShed: ++r.shed; break;
      case dias::core::JobOutcome::kCancelled: ++r.cancelled; break;
      case dias::core::JobOutcome::kFailed: ++r.failed; break;
    }
  }
  for (int k = 0; k < 2; ++k) {
    if (responses[k].empty()) continue;
    const double sum =
        std::accumulate(responses[k].begin(), responses[k].end(), 0.0);
    const double mean = sum / static_cast<double>(responses[k].size());
    if (k == 1) {
      r.high_mean_s = mean;
      r.high_p95_s = percentile(responses[k], 0.95);
    } else {
      r.low_mean_s = mean;
    }
  }
  r.final_theta[0] = dispatcher.theta(0);
  r.final_theta[1] = dispatcher.theta(1);
  if (controller) {
    controller->stop();
    const auto status = controller->status();
    r.replans = status.replans;
    r.escalations = status.escalations;
  }
  return r;
}

void emit(const char* mode, const ModeResult& r, double uncongested_high_mean_s) {
  const double ratio =
      uncongested_high_mean_s > 0.0 ? r.high_mean_s / uncongested_high_mean_s : 0.0;
  std::printf("  %-12s %8.3f %8.3f %8.3f %6.2fx  %3zu/%-3zu %4zu %4zu %4zu  %.2f/%.2f\n",
              mode, r.high_mean_s, r.high_p95_s, r.low_mean_s, ratio,
              r.completed[1], r.completed[0], r.shed, r.cancelled, r.failed,
              r.final_theta[0], r.final_theta[1]);
  dias::obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "ext_overload");
  w.field("mode", mode);
  w.field("high_mean_s", r.high_mean_s);
  w.field("high_p95_s", r.high_p95_s);
  w.field("low_mean_s", r.low_mean_s);
  w.field("high_mean_vs_uncongested", ratio);
  w.field("completed_high", std::uint64_t{r.completed[1]});
  w.field("completed_low", std::uint64_t{r.completed[0]});
  w.field("shed", std::uint64_t{r.shed});
  w.field("cancelled", std::uint64_t{r.cancelled});
  w.field("failed", std::uint64_t{r.failed});
  w.field("final_theta_low", r.final_theta[0]);
  w.field("final_theta_high", r.final_theta[1]);
  w.field("replans", r.replans);
  w.field("escalations", r.escalations);
  w.field("elapsed_s", r.elapsed_s);
  w.end_object();
  std::printf("BENCH %s\n", std::move(w).str().c_str());
}

}  // namespace

int main() {
  dias::bench::print_header(
      "Extension: overload protection (admission + deadlines + adaptive deflation)");
  // Uncongested reference: same mix at ~0.4x capacity.
  const auto calm = run_mode(false, false, 0.050, 60);
  std::printf("  %-12s %8s %8s %8s %7s %8s %14s %9s\n", "mode", "hi mean", "hi p95",
              "lo mean", "ratio", "hi/lo ok", "shed/canc/fail", "theta l/h");
  emit("uncongested", calm, calm.high_mean_s);
  // Sustained 2x burst: each class alone arrives near service rate.
  const auto seed = run_mode(false, false, 0.010, 150);
  emit("seed", seed, calm.high_mean_s);
  const auto bounded = run_mode(true, false, 0.010, 150);
  emit("bounded", bounded, calm.high_mean_s);
  const auto adaptive = run_mode(true, true, 0.010, 150);
  emit("adaptive", adaptive, calm.high_mean_s);
  std::printf(
      "\n  expectation: the seed dispatcher's backlog grows for the whole burst,\n"
      "  dragging even high-priority responses far above the uncongested mean;\n"
      "  bounded admission caps the queues (overload paid in shed/cancelled\n"
      "  low jobs); adaptive additionally escalates theta toward the ceilings\n"
      "  (%.2f low / %.2f high), shrinking the jobs themselves and holding the\n"
      "  high-priority mean near the uncongested reference.\n",
      kCeilingLow, kCeilingHigh);
  return 0;
}
