// Extension: memory-elastic shuffle (spill to BlockStore) + memory-aware
// admission.
//
// Three phases:
//   1. Word count on a corpus whose shuffle working set is >= 4x the spill
//      budget: the run must produce byte-identical counts to the unbounded
//      reference at every budget and worker count, while the budget caps
//      resident shuffle memory by streaming segments through a BlockStore.
//   2. PageRank (iterative: adjacency build + per-iteration sums all run
//      under the same budget) with the same identity requirement on the
//      final rank vector.
//   3. A memory-pressure burst against the dispatcher: jobs declare their
//      footprints, aggregate accounting sheds the overflow, and the
//      OverloadController treats memory pressure as a deflation trigger.
//
// Each configuration emits one machine-readable line:
//   BENCH {"bench":"ext_spill","workload":"word_count",...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analytics/page_rank.hpp"
#include "analytics/word_count.hpp"
#include "bench/scenarios.hpp"
#include "core/accuracy_profile.hpp"
#include "core/deflator.hpp"
#include "core/dispatcher.hpp"
#include "engine/engine.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/overload_controller.hpp"
#include "storage/block_store.hpp"
#include "storage/spill_store.hpp"
#include "workload/graph_gen.hpp"
#include "workload/text_corpus.hpp"

namespace {

using namespace dias;

std::filesystem::path make_spill_root() {
  const auto tick = std::chrono::steady_clock::now().time_since_epoch().count();
  auto root = std::filesystem::temp_directory_path() /
              ("dias_bench_spill_" + std::to_string(tick));
  std::filesystem::create_directories(root);
  return root;
}

engine::Engine::Options engine_opts(std::size_t workers) {
  engine::Engine::Options o;
  o.workers = workers;
  o.seed = 99;
  return o;
}

engine::ShuffleOptions budgeted(std::size_t budget_bytes) {
  engine::ShuffleOptions shuffle;
  shuffle.target_buffer_bytes = 16 * 1024;
  shuffle.memory_budget_bytes = budget_bytes;
  return shuffle;
}

struct SpillTally {
  std::size_t working_set_bytes = 0;
  std::size_t spill_segments = 0;
  std::size_t spill_bytes = 0;
  std::size_t restored_segments = 0;
};

SpillTally tally(const engine::Engine& eng) {
  SpillTally t;
  for (const auto& stage : eng.stage_log()) {
    t.working_set_bytes = std::max(t.working_set_bytes, stage.shuffle_bytes);
    t.spill_segments += stage.shuffle_spill_segments;
    t.spill_bytes += stage.shuffle_spill_bytes;
    t.restored_segments += stage.shuffle_restored_segments;
  }
  return t;
}

void emit(const char* workload, const char* mode, std::size_t workers,
          std::size_t budget_bytes, bool identical, const SpillTally& t, double secs) {
  std::printf("  %-10s %-14s %7zu %12zu %9s %8zu %12zu %10.3f\n", workload, mode,
              workers, budget_bytes, identical ? "yes" : "NO", t.spill_segments,
              t.spill_bytes, secs);
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "ext_spill");
  w.field("workload", workload);
  w.field("mode", mode);
  w.field("workers", std::uint64_t{workers});
  w.field("budget_bytes", std::uint64_t{budget_bytes});
  w.field("working_set_bytes", std::uint64_t{t.working_set_bytes});
  w.field("identical_to_reference", identical);
  w.field("spill_segments", std::uint64_t{t.spill_segments});
  w.field("spill_bytes", std::uint64_t{t.spill_bytes});
  w.field("restored_segments", std::uint64_t{t.restored_segments});
  w.field("duration_s", secs);
  w.end_object();
  std::printf("BENCH %s\n", std::move(w).str().c_str());
}

void print_table_header() {
  std::printf("  %-10s %-14s %7s %12s %9s %8s %12s %10s\n", "workload", "mode",
              "workers", "budget [B]", "identical", "spills", "spill [B]", "time [s]");
}

// --- phase 1: word count ----------------------------------------------------

int run_word_count(storage::BlockStore& store) {
  workload::TextCorpusParams params;
  params.posts = 8000;
  params.vocabulary = 20000;
  params.seed = 31;
  const auto corpus = workload::generate_text_corpus("bench", params);

  int failures = 0;
  // Unbounded reference on 8 workers (budget forced to 0 so the run is
  // immune to a DIAS_SHUFFLE_BUDGET_BYTES override in the environment).
  engine::Engine ref_eng(engine_opts(8));
  const auto ref_rows = ref_eng.parallelize(corpus.rows, 64);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reference = analytics::word_count(ref_eng, ref_rows, 20, -1.0, budgeted(0));
  const double ref_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto ref_tally = tally(ref_eng);
  emit("word_count", "unbounded", 8, 0, true, ref_tally, ref_s);

  // Budgets at 1/4 and 1/8 of the measured shuffle working set: the input
  // is then 4x and 8x the budget, so the run cannot hold the shuffle
  // resident and must round-trip most of it through the BlockStore.
  for (const std::size_t divisor : {4, 8}) {
    const std::size_t budget = std::max<std::size_t>(
        ref_tally.working_set_bytes / divisor, 32 * 1024);
    for (const std::size_t workers : {2, 8}) {
      storage::BlockStoreSpill spill(store, "wc_d" + std::to_string(divisor) + "_w" +
                                                std::to_string(workers));
      engine::Engine eng(engine_opts(workers));
      eng.set_spill_backend(&spill);
      const auto rows = eng.parallelize(corpus.rows, 64);
      const auto t1 = std::chrono::steady_clock::now();
      const auto result = analytics::word_count(eng, rows, 20, -1.0, budgeted(budget));
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
      const bool identical = result.counts == reference.counts;
      if (!identical) ++failures;
      const char* mode = divisor == 4 ? "budget_ws/4" : "budget_ws/8";
      emit("word_count", mode, workers, budget, identical, tally(eng), secs);
    }
  }
  return failures;
}

// --- phase 2: PageRank ------------------------------------------------------

int run_page_rank(storage::BlockStore& store) {
  workload::GraphParams gparams;
  gparams.scale = 12;
  gparams.edges = 8 * (1u << 12);
  gparams.seed = 17;
  const auto edges = workload::generate_rmat_graph(gparams);

  analytics::PageRankOptions options;
  options.iterations = 5;
  options.partitions = 32;

  int failures = 0;
  engine::Engine ref_eng(engine_opts(8));
  const auto ref_edges = ref_eng.parallelize(edges, 32);
  options.shuffle = budgeted(0);
  const auto t0 = std::chrono::steady_clock::now();
  const auto reference = analytics::page_rank(ref_eng, ref_edges, options);
  const double ref_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const auto ref_tally = tally(ref_eng);
  emit("page_rank", "unbounded", 8, 0, true, ref_tally, ref_s);

  for (const std::size_t divisor : {4, 8}) {
    const std::size_t budget = std::max<std::size_t>(
        ref_tally.working_set_bytes / divisor, 32 * 1024);
    for (const std::size_t workers : {2, 8}) {
      storage::BlockStoreSpill spill(store, "pr_d" + std::to_string(divisor) + "_w" +
                                                std::to_string(workers));
      engine::Engine eng(engine_opts(workers));
      eng.set_spill_backend(&spill);
      const auto ds = eng.parallelize(edges, 32);
      options.shuffle = budgeted(budget);
      const auto t1 = std::chrono::steady_clock::now();
      const auto result = analytics::page_rank(eng, ds, options);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
      // Bitwise identity: deterministic merge order means the floating-point
      // sums accumulate in the same order, so ranks compare exactly equal.
      bool identical = result.ranks.size() == reference.ranks.size();
      if (identical) {
        for (const auto& [v, r] : reference.ranks) {
          const auto it = result.ranks.find(v);
          if (it == result.ranks.end() || it->second != r) {
            identical = false;
            break;
          }
        }
      }
      if (!identical) ++failures;
      const char* mode = divisor == 4 ? "budget_ws/4" : "budget_ws/8";
      emit("page_rank", mode, workers, budget, identical, tally(eng), secs);
    }
  }
  return failures;
}

// --- phase 3: memory-pressure burst ----------------------------------------

model::JobClassProfile burst_profile(double lambda) {
  model::JobClassProfile p;
  p.arrival_rate = lambda;
  p.slots = 4;
  p.map_task_pmf.assign(16, 0.0);
  p.map_task_pmf.back() = 1.0;
  p.reduce_task_pmf.assign(1, 1.0);
  p.map_rate = 250.0;
  p.reduce_rate = 1e3;
  p.shuffle_rate = 1e3;
  p.mean_overhead_theta0 = 5e-3;
  p.mean_overhead_theta90 = 2e-3;
  return p;
}

void run_memory_burst(storage::BlockStore& store) {
  constexpr std::size_t kCapacity = 64u << 20;   // 64 MB dispatcher budget
  constexpr std::size_t kLowFootprint = 24u << 20;
  constexpr std::size_t kHighFootprint = 8u << 20;

  obs::Registry registry;
  storage::BlockStoreSpill spill(store, "burst");
  engine::Engine eng(engine_opts(4));
  eng.attach_observability(&registry, nullptr);
  eng.set_spill_backend(&spill);

  core::DispatcherOptions dopts;
  dopts.admission = core::AdmissionPolicy::kShedOldestLowest;
  dopts.classes = {core::ClassPolicy{12, std::numeric_limits<double>::infinity()},
                   core::ClassPolicy{12, std::numeric_limits<double>::infinity()}};
  dopts.memory_capacity_bytes = kCapacity;
  core::DiasDispatcher dispatcher({0.0, 0.0}, dopts);
  dispatcher.attach_observability(&registry, nullptr);

  core::Deflator deflator({burst_profile(2.0), burst_profile(2.0)},
                          core::AccuracyProfile::paper_word_count());
  runtime::OverloadControllerConfig ccfg;
  ccfg.sample_period_s = 0.01;
  ccfg.ewma_alpha = 0.5;
  ccfg.queue_depth_high = 1000;  // keep the depth trigger quiet: memory drives this
  ccfg.queue_depth_low = 0;
  ccfg.memory_high_bytes = kCapacity / 2;
  ccfg.memory_low_bytes = kCapacity / 8;
  ccfg.min_hold_s = 0.05;
  ccfg.theta_ceiling = {0.6, 0.3};
  ccfg.start_thread = true;
  runtime::OverloadController controller(
      dispatcher, std::move(deflator),
      std::vector<core::ClassConstraint>{{40.0, 1e18, 1.0}, {20.0, 1e18, 1.0}}, ccfg,
      &registry, nullptr);

  // Each job runs a small budgeted shuffle (so the spill counters tick under
  // pressure) and sleeps briefly so arrivals outpace service and footprints
  // pile up in the queue.
  const auto job = [&eng](const core::DiasDispatcher::JobContext& ctx) {
    eng.set_cancellation(ctx.token);
    std::vector<std::pair<std::uint64_t, std::int64_t>> records;
    records.reserve(20000);
    for (std::size_t i = 0; i < 20000; ++i) {
      records.emplace_back(i % 797, static_cast<std::int64_t>(i));
    }
    auto ds = eng.parallelize(std::move(records), 8);
    engine::ShuffleOptions shuffle;
    shuffle.target_buffer_bytes = 2048;
    shuffle.memory_budget_bytes = 16 * 1024;
    eng.reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 4, {}, shuffle);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };

  bool saw_pressure = false;
  for (int i = 0; i < 40; ++i) {
    const auto priority = static_cast<std::size_t>(i % 2);
    dispatcher.submit(priority, core::DiasDispatcher::ContextJobFn(job),
                      priority == 0 ? kLowFootprint : kHighFootprint);
    saw_pressure = saw_pressure || controller.status().memory_pressure;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto records = dispatcher.drain();
  controller.stop();
  const auto status = controller.status();
  saw_pressure = saw_pressure || status.memory_pressure;

  std::size_t completed = 0, shed = 0, cancelled = 0, failed = 0;
  for (const auto& rec : records) {
    switch (rec.outcome) {
      case core::JobOutcome::kCompleted: ++completed; break;
      case core::JobOutcome::kShed: ++shed; break;
      case core::JobOutcome::kCancelled: ++cancelled; break;
      case core::JobOutcome::kFailed: ++failed; break;
    }
  }

  std::uint64_t spill_segments = 0, spill_bytes = 0;
  const auto snap = registry.snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == "engine.shuffle.spill_segments") spill_segments = c.value;
    if (c.name == "engine.shuffle.spill_bytes") spill_bytes = c.value;
  }

  std::printf(
      "\n  memory burst: %zu completed, %zu shed, %zu cancelled, %zu failed;\n"
      "  pressure observed: %s; replans %llu, escalations %llu;\n"
      "  spill counters in snapshot: %llu segments / %llu bytes\n",
      completed, shed, cancelled, failed, saw_pressure ? "yes" : "NO",
      static_cast<unsigned long long>(status.replans),
      static_cast<unsigned long long>(status.escalations),
      static_cast<unsigned long long>(spill_segments),
      static_cast<unsigned long long>(spill_bytes));
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "ext_spill");
  w.field("workload", "memory_burst");
  w.field("memory_capacity_bytes", std::uint64_t{kCapacity});
  w.field("completed", std::uint64_t{completed});
  w.field("shed", std::uint64_t{shed});
  w.field("cancelled", std::uint64_t{cancelled});
  w.field("failed", std::uint64_t{failed});
  w.field("memory_pressure_observed", saw_pressure);
  w.field("replans", status.replans);
  w.field("escalations", status.escalations);
  w.field("snapshot_spill_segments", spill_segments);
  w.field("snapshot_spill_bytes", spill_bytes);
  w.end_object();
  std::printf("BENCH %s\n", std::move(w).str().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: memory-elastic shuffle (BlockStore spill) + memory-aware admission");

  const auto root = make_spill_root();
  storage::BlockStoreOptions sopts;
  sopts.root = root;
  storage::BlockStore store(sopts);
  std::printf("  spill store: %s\n\n", root.string().c_str());

  print_table_header();
  int failures = 0;
  failures += run_word_count(store);
  failures += run_page_rank(store);
  run_memory_burst(store);

  std::filesystem::remove_all(root);
  if (failures != 0) {
    std::printf("\n  FAILED: %d budgeted configuration(s) diverged from the reference\n",
                failures);
    return 1;
  }
  std::printf(
      "\n  expectation: every budgeted run matches its unbounded reference\n"
      "  byte for byte -- the budget only moves shuffle segments between\n"
      "  memory and the BlockStore, never changes what they contain -- and\n"
      "  the burst drives the dispatcher into memory pressure, which sheds\n"
      "  overflow and triggers deflation.\n");
  return 0;
}
