// Figure 10: differential approximation on triangle count.
//
// Graph-analytics jobs with 6 droppable ShuffleMap stages + 1 Result stage
// (graphx triangle count). The per-stage drop ratio is applied to *every*
// ShuffleMap stage, so the total effective drop compounds. Latency side
// runs in the cluster simulator (two priorities); the accuracy side runs
// the *real* triangle-count job on an R-MAT stand-in for the Google web
// graph and reports the count error per stage drop ratio.
#include <cstdio>
#include <vector>

#include "analytics/triangle_count.hpp"
#include "bench/scenarios.hpp"
#include "common/stats.hpp"
#include "workload/graph_gen.hpp"

namespace {

using namespace dias;

void latency_side() {
  std::printf("\n  -- latency (cluster simulation, 2 priorities, ~80%% load) --\n");
  std::vector<workload::GraphClassParams> classes{
      bench::graph_class(0.009, "low"),
      bench::graph_class(0.001, "high"),
  };
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_graph_trace);
  workload::TraceGenerator gen(91);
  const auto trace = gen.graph_trace(classes, 16000);

  const auto run = [&](core::Policy policy, std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 1600;
    config.seed = 92;
    return core::run_experiment(config, trace);
  };

  const auto p = run(core::Policy::kPreemptive, {});
  std::printf("  P absolute: high mean %.1f s (p95 %.1f), low mean %.1f s (p95 %.1f)\n",
              p.per_class[1].response.mean(), p.per_class[1].tail_response(),
              p.per_class[0].response.mean(), p.per_class[0].tail_response());

  const auto np = run(core::Policy::kNonPreemptive, {});
  for (std::size_t k : {1u, 0u}) {
    bench::print_relative_row("NP", k == 1 ? "high" : "low",
                              core::relative_difference(p.per_class[k], np.per_class[k]));
  }
  for (double stage_theta : {0.01, 0.02, 0.05, 0.10, 0.20}) {
    const auto da = run(core::Policy::kDifferentialApprox, {stage_theta, 0.0});
    char name[32];
    std::snprintf(name, sizeof(name), "DA(0,%g)", 100.0 * stage_theta);
    for (std::size_t k : {1u, 0u}) {
      bench::print_relative_row(name, k == 1 ? "high" : "low",
                                core::relative_difference(p.per_class[k], da.per_class[k]));
    }
  }
}

void accuracy_side() {
  std::printf("\n  -- accuracy (real triangle count on an R-MAT web-graph stand-in) --\n");
  workload::GraphParams params;
  params.scale = 14;                 // 16384 vertices
  params.edges = 6 * (1u << 14) * 5; // heavy tail, ~300k edge samples
  params.seed = 93;
  const auto edges = workload::generate_rmat_graph(params);
  const auto exact = workload::exact_triangle_count(edges);
  std::printf("  graph: %zu edges, %llu triangles (Google web graph: 875k nodes/5.1M edges)\n",
              edges.size(), static_cast<unsigned long long>(exact));

  engine::Engine::Options opts;
  opts.workers = 4;
  opts.seed = 94;
  engine::Engine eng(opts);
  const auto ds = eng.parallelize(edges, 50);
  std::printf("  %-12s  %14s  %12s\n", "stage theta", "count", "error [%]");
  for (double stage_theta : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    SampleSet errs;
    unsigned long long last_count = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto result = analytics::triangle_count(eng, ds, stage_theta);
      last_count = result.triangles;
      errs.add(relative_error_percent(static_cast<double>(exact),
                                      static_cast<double>(result.triangles)));
    }
    std::printf("  %-12g  %14llu  %12.1f\n", stage_theta, last_count, errs.mean());
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 10: triangle count under per-stage dropping");
  latency_side();
  accuracy_side();
  std::printf("\n  paper shape: 5-10%% per-stage dropping cuts low-priority mean\n"
              "  latency by >50%% and both classes' tails by a similar factor.\n");
  return 0;
}
