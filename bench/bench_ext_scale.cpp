// Extension: hot-path scaling to high core counts (ISSUE 9).
//
// Two phases over one fixed shuffle workload (uint64 sum reduce_by_key):
//   1. Scale sweep: shuffle throughput at 1 / 2 / 4 / 8 workers with every
//      hot-path optimization on (batched wave submission + segment arenas
//      + radix split). EVERY cell's result is digest-compared against the
//      1-worker all-off reference — byte identity is the hard gate on
//      every host, because the optimizations are only admissible as pure
//      relocations under the (src, seq) merge-fold contract.
//   2. Ablation at 8 workers: arena on/off x batched waves on/off, so a
//      regression in either optimization shows up as a throughput delta
//      while the digests prove all four configurations compute the same
//      bytes.
//
// Exit status (the CI quick-mode gate):
//   * non-zero if ANY cell's digest deviates from the reference — always.
//   * non-zero if the 8-worker throughput is < 2.5x the 1-worker run —
//     only when std::thread::hardware_concurrency() >= 8; on smaller
//     hosts (the CI containers are often 1-2 cores) the wall-clock ratio
//     is time-slice bound and only the identity gate applies.
//
// Each configuration emits one machine-readable line:
//   BENCH {"bench":"ext_scale","phase":"scale_sweep",...}
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/scenarios.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "obs/json.hpp"

namespace {

using namespace dias;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kInputPartitions = 16;
constexpr std::size_t kOutPartitions = 16;

std::vector<std::pair<std::uint64_t, std::uint64_t>> make_records(std::size_t n) {
  Rng rng(777);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    // Mild skew: buckets get uneven load so index stealing does real work.
    const auto key = static_cast<std::uint64_t>(50000.0 * std::pow(u, 2.0));
    out.emplace_back(key, rng.uniform_int(1000) + 1);
  }
  return out;
}

// FNV-1a over the sorted (key, sum) pairs: one canonical digest per run,
// cheap to compare across dozens of sweep cells.
std::uint64_t digest(const engine::Dataset<std::pair<std::uint64_t, std::uint64_t>>& ds) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (std::size_t p = 0; p < ds.partitions(); ++p) {
    const auto& part = ds.partition(p);
    entries.insert(entries.end(), part.begin(), part.end());
  }
  std::sort(entries.begin(), entries.end());
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(entries.size());
  for (const auto& [k, v] : entries) {
    mix(k);
    mix(v);
  }
  return h;
}

struct RunResult {
  double best_s = 0.0;
  std::uint64_t digest = 0;
};

RunResult run_config(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& records,
                     std::size_t workers, bool arena, bool batched, int reps) {
  engine::Engine::Options o;
  o.workers = workers;
  o.seed = 1;
  o.shuffle_arena = arena;
  o.batched_waves = batched;
  engine::Engine eng(o);
  const auto ds = eng.parallelize(records, kInputPartitions);
  const auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };

  RunResult r;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = Clock::now();
    const auto out = eng.reduce_by_key(ds, sum, kOutPartitions, {}, {});
    const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
    if (r.best_s == 0.0 || elapsed < r.best_s) r.best_s = elapsed;
    const std::uint64_t d = digest(out);
    if (rep == 0) {
      r.digest = d;
    } else if (d != r.digest) {
      // Non-determinism within one configuration is the worst failure
      // mode this bench can detect; poison the digest so the gate trips.
      r.digest = 0;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::print_header("Extension: hot-path scaling sweep (waves + arenas + radix)");

  const std::size_t n = quick ? 400000 : 2000000;
  const int reps = quick ? 2 : 3;
  const auto records = make_records(n);
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("  %zu records, %u hardware threads, best of %d reps\n\n", n, hardware,
              reps);

  // Reference: 1 worker, every optimization OFF (the seed configuration).
  const RunResult reference = run_config(records, 1, false, false, reps);
  bool identical = true;
  double base_s = 0.0;
  double eight_s = 0.0;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const RunResult r = run_config(records, workers, true, true, reps);
    const bool match = r.digest == reference.digest && r.digest != 0;
    identical = identical && match;
    if (workers == 1) base_s = r.best_s;
    if (workers == 8) eight_s = r.best_s;
    const double throughput = static_cast<double>(n) / r.best_s;
    const double speedup = base_s > 0.0 ? base_s / r.best_s : 1.0;
    std::printf("  sweep %2zu workers: %7.1f ms, %10.0f records/s, %.2fx vs 1w%s\n",
                workers, r.best_s * 1e3, throughput, speedup,
                match ? "" : "  [BYTES DIVERGED]");
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "ext_scale");
    w.field("phase", "scale_sweep");
    w.field("workers", std::uint64_t{workers});
    w.field("records", std::uint64_t{n});
    w.field("hardware_concurrency", std::uint64_t{hardware});
    w.field("best_s", r.best_s);
    w.field("records_per_s", throughput);
    w.field("speedup_vs_1w", speedup);
    w.field("bytes_identical", match ? std::uint64_t{1} : std::uint64_t{0});
    w.end_object();
    std::printf("BENCH %s\n", std::move(w).str().c_str());
  }

  std::printf("\n");
  for (const bool arena : {false, true}) {
    for (const bool batched : {false, true}) {
      const RunResult r = run_config(records, 8, arena, batched, reps);
      const bool match = r.digest == reference.digest && r.digest != 0;
      identical = identical && match;
      std::printf("  ablation 8w %s %s: %7.1f ms, %10.0f records/s%s\n",
                  arena ? "arena " : "heap  ", batched ? "waves " : "legacy",
                  r.best_s * 1e3, static_cast<double>(n) / r.best_s,
                  match ? "" : "  [BYTES DIVERGED]");
      obs::JsonWriter w;
      w.begin_object();
      w.field("bench", "ext_scale");
      w.field("phase", "ablation");
      w.field("workers", std::uint64_t{8});
      w.field("arena", arena ? std::uint64_t{1} : std::uint64_t{0});
      w.field("batched_waves", batched ? std::uint64_t{1} : std::uint64_t{0});
      w.field("hardware_concurrency", std::uint64_t{hardware});
      w.field("best_s", r.best_s);
      w.field("records_per_s", static_cast<double>(n) / r.best_s);
      w.field("bytes_identical", match ? std::uint64_t{1} : std::uint64_t{0});
      w.end_object();
      std::printf("BENCH %s\n", std::move(w).str().c_str());
    }
  }

  const double scale8 = eight_s > 0.0 ? base_s / eight_s : 0.0;
  if (!identical) {
    std::printf("\n  FAILED: a sweep cell deviated bytewise from the 1-worker "
                "reference\n");
    return 1;
  }
  if (hardware >= 8 && scale8 < 2.5) {
    std::printf("\n  FAILED: 8-worker speedup %.2fx < 2.5x on a %u-thread host\n",
                scale8, hardware);
    return 1;
  }
  std::printf("\n  expectation: every cell byte-identical to the single-worker\n"
              "  reference (hard gate); on hosts with >= 8 hardware threads the\n"
              "  8-worker shuffle must clear 2.5x the single-worker throughput\n"
              "  (wall-clock gate, skipped on smaller hosts: %s).\n",
              hardware >= 8 ? "enforced here" : "skipped here");
  return 0;
}
