// Ablation: sprinting policy design space (extends paper Section 2.3).
//
// The paper uses a time-based policy (sprint class-k jobs Tk seconds after
// dispatch). This ablation compares, at the same 22 kJ budget:
//   timeout-65   - the paper's limited policy (high class after 65 s)
//   timeout-0    - sprint high-priority jobs from dispatch
//   drain        - sprint the *running* job when a higher-priority job is
//                  waiting behind it (our extension: spend the budget on
//                  the blocker, which is what non-preemption needs most)
//   drain+t0     - drain pressure plus sprint-high-from-dispatch
// Reported: per-class latency vs the non-sprinted NP baseline, energy, and
// sprint-time spent.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"

int main() {
  using namespace dias;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  bench::print_header("Ablation: sprint policies at equal budget (graph jobs, 3:7)");

  std::vector<workload::GraphClassParams> classes{
      bench::graph_class(0.007, "low"),
      bench::graph_class(0.003, "high"),
  };
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_graph_trace);
  workload::TraceGenerator gen(121);
  const auto trace = gen.graph_trace(classes, 16000);

  const auto run = [&](bool sprint, cluster::SprintPolicy policy,
                       std::vector<double> timeout) {
    core::ExperimentConfig config;
    config.policy = sprint ? core::Policy::kNonPreemptiveSprint : core::Policy::kNonPreemptive;
    config.slots = bench::kSlots;
    config.sprint.policy = policy;
    config.sprint.speedup = 2.5;
    config.sprint.base_power_w = 180.0;
    config.sprint.sprint_power_w = 270.0;
    config.sprint.budget_joules = 22000.0;
    config.sprint.replenish_watts = 24.0;
    config.sprint.budget_cap_joules = 22000.0;
    config.sprint.timeout_s = std::move(timeout);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 1600;
    config.seed = 122;
    return core::run_experiment(config, trace);
  };

  const auto np = run(false, cluster::SprintPolicy::kTimeout, {});
  std::printf("  NP baseline: high mean %.1f s, low mean %.1f s, energy %.1f MJ\n\n",
              np.per_class[1].response.mean(), np.per_class[0].response.mean(),
              np.energy_joules / 1e6);

  struct Variant {
    const char* name;
    cluster::SprintPolicy policy;
    std::vector<double> timeout;
  };
  const std::vector<Variant> variants{
      {"timeout-65", cluster::SprintPolicy::kTimeout, {kInf, 65.0}},
      {"timeout-0", cluster::SprintPolicy::kTimeout, {kInf, 0.0}},
      {"drain", cluster::SprintPolicy::kDrainPressure, {}},
      {"drain+t0", cluster::SprintPolicy::kDrainPressure, {kInf, 0.0}},
  };
  for (const auto& v : variants) {
    const auto result = run(true, v.policy, v.timeout);
    for (std::size_t k : {1u, 0u}) {
      bench::print_relative_row(v.name, k == 1 ? "high" : "low",
                                core::relative_difference(np.per_class[k],
                                                          result.per_class[k]));
    }
    std::printf("  %-12s energy %+6.1f%%, sprint time %.0f s\n", v.name,
                100.0 * (result.energy_joules - np.energy_joules) / np.energy_joules,
                result.sprint_time);
  }
  std::printf("\n  expectation: drain-pressure targets exactly the executions that\n"
              "  block high-priority jobs, buying more high-class latency per Joule\n"
              "  than sprinting high jobs after they reach the engine.\n");
  return 0;
}
