// Figure 11: the complete DiAS (approximation + sprinting) on graph jobs.
//
// Setup (Section 5.3): high and low priorities with the *same* job size,
// 3:7 high:low mix. Sprinting accelerates high-priority jobs via DVFS
// (800 MHz -> 2.4 GHz; up to 60% execution reduction, power 180 -> 270 W):
//   (a) limited sprinting: 22 kJ budget, sprint after a 65 s timeout
//       (~35% of the execution sprinted);
//   (b) unlimited sprinting: sprint from dispatch, unbounded budget;
//   (c) energy vs the non-sprinted preemptive baseline.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"

namespace {

using namespace dias;

constexpr double kInf = std::numeric_limits<double>::infinity();

cluster::SprintConfig sprint_config(bool limited) {
  cluster::SprintConfig sprint;
  sprint.enabled = true;
  sprint.speedup = 2.5;  // 60% execution-time reduction
  sprint.base_power_w = 180.0;
  sprint.sprint_power_w = 270.0;
  if (limited) {
    sprint.budget_joules = 22000.0;  // 22 kJ
    sprint.replenish_watts = 24.0;   // recovers ~35% sprint duty
    sprint.budget_cap_joules = 22000.0;
    sprint.timeout_s = {kInf, 65.0};  // only the high class, after 65 s
  } else {
    sprint.timeout_s = {kInf, 0.0};  // sprint high jobs from dispatch
  }
  return sprint;
}

}  // namespace

int main() {
  bench::print_header("Figure 11: complete DiAS on graph jobs (3:7 high:low, same size)");

  std::vector<workload::GraphClassParams> classes{
      bench::graph_class(0.007, "low"),
      bench::graph_class(0.003, "high"),
  };
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_graph_trace);
  workload::TraceGenerator gen(101);
  const auto trace = gen.graph_trace(classes, 16000);

  const auto run = [&](core::Policy policy, std::vector<double> theta, bool limited) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.sprint = sprint_config(limited);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 1600;
    config.seed = 102;
    return core::run_experiment(config, trace);
  };

  // Baseline: non-sprinted preemptive P.
  const auto p = run(core::Policy::kPreemptive, {}, /*limited=*/true);
  std::printf("  P absolute: high mean %.1f s (p95 %.1f), low mean %.1f s (p95 %.1f)\n",
              p.per_class[1].response.mean(), p.per_class[1].tail_response(),
              p.per_class[0].response.mean(), p.per_class[0].tail_response());
  std::printf("  P energy: %.1f kJ (waste %.1f%%)\n\n", p.energy_joules / 1000.0,
              100.0 * p.resource_waste());

  struct Variant {
    const char* name;
    std::vector<double> theta;
    bool limited;
  };
  const std::vector<Variant> variants{
      {"DiAS(0,10) ltd", {0.1, 0.0}, true},   {"DiAS(0,20) ltd", {0.2, 0.0}, true},
      {"DiAS(0,10) unl", {0.1, 0.0}, false},  {"DiAS(0,20) unl", {0.2, 0.0}, false},
      {"NPS ltd", {}, true},                  {"NPS unl", {}, false},
  };
  std::printf("  latency and energy vs P (negative = better):\n");
  for (const auto& v : variants) {
    const auto policy = v.theta.empty() ? core::Policy::kNonPreemptiveSprint
                                        : core::Policy::kDias;
    const auto result = run(policy, v.theta, v.limited);
    for (std::size_t k : {1u, 0u}) {
      bench::print_relative_row(v.name, k == 1 ? "high" : "low",
                                core::relative_difference(p.per_class[k], result.per_class[k]));
    }
    std::printf("  %-15s energy %+6.1f%%  (%.1f kJ, sprint time %.0f s)\n", v.name,
                100.0 * (result.energy_joules - p.energy_joules) / p.energy_joules,
                result.energy_joules / 1000.0, result.sprint_time);
  }
  std::printf("\n  paper shape: all classes improve 35-90%% (low ~-90%%, high -40..-60%%\n"
              "  depending on budget); energy drops 15-26%% from sprinting alone and\n"
              "  18-31%% with dropping, more under unlimited sprinting and DiAS(0,20).\n");
  return 0;
}
