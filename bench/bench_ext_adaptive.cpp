// Extension: self-tuning execution (ISSUE 8).
//
// Sweeps four reduce-by-key workloads (uniform, Zipf, tiny, huge) over a
// grid of hand-tuned static configurations — combiner on/off crossed with
// a partition-width ladder — then runs the same workload with a live
// AdaptivePlanner reading the engine's own metrics registry and zero
// static config changes. The acceptance bar is that the adaptive run
// lands within a few percent of the best hand-tuned cell per workload.
//
// The bench doubles as CI's byte-deviation gate: every swept cell and the
// adaptive run are canonicalized (sorted key/value pairs) and compared
// against the static-path reference. Any deviation makes the process exit
// non-zero — run with --quick in CI for a fast, smaller-input pass.
//
// Each configuration emits one machine-readable line:
//   BENCH {"bench":"ext_adaptive","workload":"zipf","mode":"static",...}
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/scenarios.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runtime/adaptive_planner.hpp"

namespace {

using namespace dias;

using Record = std::pair<std::uint32_t, std::uint64_t>;

constexpr std::size_t kWorkers = 8;
constexpr std::size_t kInPartitions = 32;
constexpr std::size_t kDefaultOut = 16;

struct Workload {
  const char* name;
  std::size_t records;
  std::size_t key_space;
  double zipf_exponent;  // 0 = uniform keys
  std::uint64_t seed;
};

// --quick shrinks the two big workloads and the rep counts so the CI
// Release leg can afford the full byte-deviation sweep.
struct BenchMode {
  bool quick = false;
  int reps() const { return quick ? 2 : 5; }
  int adaptive_warmup() const { return quick ? 2 : 3; }
  std::size_t scale(std::size_t records) const { return quick ? records / 8 : records; }
};

std::vector<Workload> workloads(const BenchMode& mode) {
  return {
      {"uniform", mode.scale(std::size_t{1} << 20), std::size_t{1} << 14, 0.0, 7},
      {"zipf", mode.scale(std::size_t{1} << 20), std::size_t{1} << 14, 1.3, 11},
      // Tiny stays tiny in quick mode: its whole point is the
      // single-thread route under the small-shuffle threshold.
      {"tiny", 4096, 64, 0.0, 13},
      // High-cardinality: most keys occur once, so the combiner is pure
      // overhead and the width has to come from shipped volume.
      {"huge", mode.scale(std::size_t{1} << 22), std::size_t{1} << 20, 0.0, 17},
  };
}

std::vector<Record> make_records(const Workload& w) {
  Rng rng(w.seed);
  std::vector<Record> records;
  records.reserve(w.records);
  if (w.zipf_exponent > 0.0) {
    const ZipfDistribution dist(w.key_space, w.zipf_exponent);
    for (std::size_t i = 0; i < w.records; ++i) {
      records.emplace_back(static_cast<std::uint32_t>(dist(rng) - 1), i);
    }
  } else {
    for (std::size_t i = 0; i < w.records; ++i) {
      records.emplace_back(static_cast<std::uint32_t>(rng.uniform_int(w.key_space)), i);
    }
  }
  return records;
}

// Partition-layout-independent canonical form: the determinism oracle is
// the sorted (key, value) multiset, so legitimate relocations (partition
// width, single-thread route) compare equal while any dropped, duplicated
// or misfolded record shows up as a mismatch.
std::vector<Record> canonical(const engine::Dataset<Record>& ds) {
  std::vector<Record> flat;
  for (std::size_t p = 0; p < ds.partitions(); ++p) {
    const auto& part = ds.partition(p);
    flat.insert(flat.end(), part.begin(), part.end());
  }
  std::sort(flat.begin(), flat.end());
  return flat;
}

struct RunOutput {
  std::vector<Record> bytes;
  double best_s = 1e30;
  double collapse = 1.0;  // shuffle records_out / records_in over the run
};

std::uint64_t counter_value(const obs::Registry& reg, const char* name) {
  const obs::Counter* c = reg.find_counter(name);
  return c ? c->value() : 0;
}

// Collapse ratio the planner would see for the work between `in0`/`out0`
// and the registry's current counters.
double collapse_since(const obs::Registry& reg, std::uint64_t in0, std::uint64_t out0) {
  const std::uint64_t din = counter_value(reg, "engine.shuffle.records_in") - in0;
  const std::uint64_t dout = counter_value(reg, "engine.shuffle.records_out") - out0;
  return din == 0 ? 1.0 : static_cast<double>(dout) / static_cast<double>(din);
}

// One static cell of the hand-tuned grid: fixed combiner setting and
// output width, no plan attached — exactly the path a user tuning by hand
// would configure.
RunOutput run_static(engine::Engine& eng, const obs::Registry& reg,
                     const engine::Dataset<Record>& ds, bool combine,
                     std::size_t out_partitions, int reps) {
  RunOutput out;
  const std::uint64_t in0 = counter_value(reg, "engine.shuffle.records_in");
  const std::uint64_t out0 = counter_value(reg, "engine.shuffle.records_out");
  for (int r = 0; r < reps; ++r) {
    engine::StageOptions opts;
    opts.name = "adaptive_bench/static";
    opts.droppable = false;
    engine::ShuffleOptions shuffle;
    shuffle.combine = combine;
    const auto t0 = std::chrono::steady_clock::now();
    const auto reduced = eng.reduce_by_key(
        ds, [](std::uint64_t a, std::uint64_t b) { return a + b; }, out_partitions, opts,
        shuffle);
    const auto t1 = std::chrono::steady_clock::now();
    out.best_s = std::min(out.best_s, std::chrono::duration<double>(t1 - t0).count());
    out.bytes = canonical(reduced);
  }
  out.collapse = collapse_since(reg, in0, out0);
  return out;
}

// The adaptive run: default output width, default shuffle options, and a
// live planner fed by the engine's own registry. Warmup rounds let the
// EWMA signals converge before timing starts; the timed rounds keep
// consulting the planner so flapping would show up as noise here.
RunOutput run_adaptive(engine::Engine& eng, const obs::Registry& reg,
                       const engine::Dataset<Record>& ds, runtime::AdaptivePlanner& planner,
                       const engine::StageTraits& traits, int warmup, int reps) {
  RunOutput out;
  const std::uint64_t in0 = counter_value(reg, "engine.shuffle.records_in");
  const std::uint64_t out0 = counter_value(reg, "engine.shuffle.records_out");
  for (int r = 0; r < warmup + reps; ++r) {
    engine::StageOptions opts;
    opts.name = "adaptive_bench/adaptive";
    opts.droppable = false;
    opts.plan = planner.plan_for(traits);
    const auto t0 = std::chrono::steady_clock::now();
    const auto reduced = eng.reduce_by_key(
        ds, [](std::uint64_t a, std::uint64_t b) { return a + b; }, kDefaultOut, opts);
    const auto t1 = std::chrono::steady_clock::now();
    if (r >= warmup) {
      out.best_s = std::min(out.best_s, std::chrono::duration<double>(t1 - t0).count());
    }
    out.bytes = canonical(reduced);
  }
  out.collapse = collapse_since(reg, in0, out0);
  return out;
}

void emit_static_json(const Workload& w, bool combine, std::size_t parts, const RunOutput& r,
                      bool bytes_ok) {
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", "ext_adaptive");
  json.field("workload", w.name);
  json.field("mode", "static");
  json.field("combine", combine);
  json.field("partitions", std::uint64_t{parts});
  json.field("records", std::uint64_t{w.records});
  json.field("best_s", r.best_s);
  json.field("collapse", r.collapse);
  json.field("bytes_ok", bytes_ok);
  json.end_object();
  std::printf("BENCH %s\n", std::move(json).str().c_str());
}

void emit_adaptive_json(const Workload& w, const RunOutput& r, const std::string& plan,
                        double best_static_s, bool bytes_ok) {
  obs::JsonWriter json;
  json.begin_object();
  json.field("bench", "ext_adaptive");
  json.field("workload", w.name);
  json.field("mode", "adaptive");
  json.field("records", std::uint64_t{w.records});
  json.field("best_s", r.best_s);
  json.field("collapse", r.collapse);
  json.field("best_static_s", best_static_s);
  json.field("ratio_vs_best_static", r.best_s / best_static_s);
  json.field("plan", plan);
  json.field("bytes_ok", bytes_ok);
  json.end_object();
  std::printf("BENCH %s\n", std::move(json).str().c_str());
}

engine::Engine::Options engine_opts() {
  engine::Engine::Options o;
  o.workers = kWorkers;
  o.seed = 4242;
  return o;
}

runtime::AdaptivePlannerConfig planner_config() {
  runtime::AdaptivePlannerConfig cfg;
  cfg.workers = kWorkers;
  // Faster convergence than the library defaults: the bench only grants a
  // few warmup rounds, and the workloads are stationary.
  cfg.ewma_alpha = 0.6;
  cfg.min_hold_decisions = 2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchMode mode;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) mode.quick = true;
  }

  bench::print_header("Extension: adaptive planner vs. hand-tuned static configs");
  std::printf("  %zu workers, %zu input partitions, default %zu output partitions, "
              "best of %d%s\n",
              kWorkers, kInPartitions, kDefaultOut, mode.reps(),
              mode.quick ? " (quick)" : "");

  const std::vector<std::size_t> width_ladder = {1, kWorkers, 2 * kWorkers, 4 * kWorkers};
  int byte_failures = 0;

  for (const Workload& w : workloads(mode)) {
    const auto records = make_records(w);

    // Hand-tuned grid and the static reference share one engine; metrics
    // are attached so the static path pays the same bookkeeping cost the
    // adaptive engine does.
    obs::Registry static_reg;
    engine::Engine eng(engine_opts());
    eng.attach_observability(&static_reg, nullptr);
    const auto ds = eng.parallelize(records, kInPartitions);

    // Reference = the default static path (combiner on, default width).
    const auto reference = run_static(eng, static_reg, ds, /*combine=*/true, kDefaultOut, 1);

    std::printf("\n  -- %s (%zu records, %zu-key space, zipf %.2f) --\n", w.name, w.records,
                w.key_space, w.zipf_exponent);
    std::printf("  %-26s  %12s  %10s  %8s\n", "config", "best [ms]", "collapse", "bytes");

    double best_static_s = 1e30;
    std::string best_static_name;
    for (const bool combine : {true, false}) {
      for (const std::size_t parts : width_ladder) {
        const auto r = run_static(eng, static_reg, ds, combine, parts, mode.reps());
        const bool ok = r.bytes == reference.bytes;
        if (!ok) ++byte_failures;
        char label[64];
        std::snprintf(label, sizeof(label), "combine=%s parts=%zu", combine ? "on" : "off",
                      parts);
        std::printf("  %-26s  %12.2f  %10.3f  %8s\n", label, 1000.0 * r.best_s, r.collapse,
                    ok ? "ok" : "FAIL");
        emit_static_json(w, combine, parts, r, ok);
        if (r.best_s < best_static_s) {
          best_static_s = r.best_s;
          best_static_name = label;
        }
      }
    }

    // Adaptive engine: fresh registry, planner sourced from and exporting
    // to it, no static tuning at all.
    obs::Registry adaptive_reg;
    engine::Engine adaptive_eng(engine_opts());
    adaptive_eng.attach_observability(&adaptive_reg, nullptr);
    runtime::AdaptivePlanner planner(&adaptive_reg, planner_config(), &adaptive_reg, nullptr);
    const auto adaptive_ds = adaptive_eng.parallelize(records, kInPartitions);

    engine::StageTraits traits;
    traits.name = std::string("adaptive_bench/") + w.name;
    traits.default_partitions = kDefaultOut;
    traits.input_partitions = kInPartitions;
    traits.order_insensitive = true;  // u64 sum: combiner toggles are safe
    traits.allow_spill_hint = false;
    const auto adaptive = run_adaptive(adaptive_eng, adaptive_reg, adaptive_ds, planner,
                                       traits, mode.adaptive_warmup(), mode.reps());
    const bool adaptive_ok = adaptive.bytes == reference.bytes;
    if (!adaptive_ok) ++byte_failures;
    const std::string plan = planner.plan_for(traits).summary();

    const double ratio = adaptive.best_s / best_static_s;
    std::printf("  %-26s  %12.2f  %10.3f  %8s   (%.2fx of best static: %s)\n", "adaptive",
                1000.0 * adaptive.best_s, adaptive.collapse, adaptive_ok ? "ok" : "FAIL",
                ratio, best_static_name.c_str());
    std::printf("  converged plan: %s\n", plan.c_str());
    emit_adaptive_json(w, adaptive, plan, best_static_s, adaptive_ok);
  }

  if (byte_failures > 0) {
    std::printf("\n  %d configuration(s) deviated from the static-path reference bytes\n",
                byte_failures);
    return 1;
  }
  return 0;
}
