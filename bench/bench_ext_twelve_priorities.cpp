// Extension: DiAS on a Google-trace-style 12-priority mix.
//
// The paper evaluates 2 and 3 priorities but notes the Google trace has 12
// levels dominated by 2-3 classes (89% of tasks) and that the methodology
// "can easily be extended to larger number of priorities". This experiment
// does exactly that: 12 classes, dominant trio at priorities {0, 4, 9},
// differential drop ratios growing toward priority 0, 80% load.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "workload/google_trace.hpp"

int main() {
  using namespace dias;
  bench::print_header("Extension: 12-priority Google-trace-style mix (80% load)");

  workload::GoogleTraceParams params;
  params.seed = 131;
  auto classes = workload::google_trace_classes(params);
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_text_trace);
  workload::TraceGenerator gen(131);
  const auto trace = gen.text_trace(classes, 30000);

  const auto run = [&](core::Policy policy, std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 3000;
    config.seed = 132;
    return core::run_experiment(config, trace);
  };

  const auto p = run(core::Policy::kPreemptive, {});
  const auto np = run(core::Policy::kNonPreemptive, {});
  // Exact top three classes; theta rises to 0.4 at priority 0.
  const auto theta = workload::differential_theta(12, 3, 0.4);
  const auto da = run(core::Policy::kDifferentialApprox, theta);

  std::printf("  resource waste: P %.1f%%, NP %.1f%%, DA %.1f%%\n\n",
              100.0 * p.resource_waste(), 100.0 * np.resource_waste(),
              100.0 * da.resource_waste());
  std::printf("  %-6s %-7s %12s %14s %14s %14s\n", "prio", "share", "theta",
              "P mean [s]", "NP vs P", "DA vs P");
  double total_rate = 0.0;
  for (const auto& c : classes) total_rate += c.arrival_rate;
  for (std::size_t k = 12; k-- > 0;) {
    if (p.per_class[k].completed < 50) continue;  // skip empty niche classes
    const auto d_np = core::relative_difference(p.per_class[k], np.per_class[k]);
    const auto d_da = core::relative_difference(p.per_class[k], da.per_class[k]);
    std::printf("  %-6zu %5.1f%% %12.2f %14.1f %+13.1f%% %+13.1f%%\n", k,
                100.0 * classes[k].arrival_rate / total_rate, theta[k],
                p.per_class[k].response.mean(), d_np.mean_percent, d_da.mean_percent);
  }
  std::printf("\n  expectation: the dominant low classes gain massively, the top\n"
              "  classes pay a bounded non-preemption cost, and waste goes to zero --\n"
              "  DiAS's two/three-priority behaviour generalizes to the full ladder.\n");
  return 0;
}
