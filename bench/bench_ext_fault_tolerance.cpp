// Extension: cost and behaviour of fault-tolerant task execution.
//
// The engine's retry/speculation/degradation machinery must be ~free when
// no faults are configured, because every transformation of every
// benchmark goes through run_stage. This bench measures:
//   1. Overhead of the fault-tolerant execution loop at zero fault rate
//      (retry budget armed but never used) vs the legacy fast path.
//   2. Throughput and degradation under injected failure rates on a
//      droppable stage: failures fold into the effective drop ratio
//      instead of failing the job (GRASS-style "failure becomes
//      approximation").
//   3. Tail-latency rescue: straggler injection with and without
//      speculative re-execution.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "engine/engine.hpp"

namespace {

using namespace dias;

// CPU-bound body: enough work per partition that scheduling overhead is
// visible only if it is egregious.
std::uint64_t churn(const std::vector<std::uint64_t>& part) {
  std::uint64_t acc = 1469598103934665603ULL;
  for (const auto x : part) {
    acc ^= x;
    acc *= 1099511628211ULL;
    acc ^= acc >> 33;
  }
  return acc;
}

struct RunStats {
  double mean_ms = 0.0;
  double min_ms = 0.0;
  engine::StageInfo last_stage;
};

RunStats run_workload(engine::Engine& eng, std::size_t partitions, std::size_t rows,
                      int reps) {
  std::vector<std::uint64_t> data(rows);
  for (std::size_t i = 0; i < rows; ++i) data[i] = i * 2654435761ULL;
  const auto ds = eng.parallelize(std::move(data), partitions);

  RunStats stats;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    eng.clear_stage_log();
    engine::StageOptions so;
    so.name = "bench-map";
    so.droppable = true;
    eng.map_partitions(
        ds,
        [](const std::vector<std::uint64_t>& part) {
          // Re-hash the partition a few times to give each task ~100 us.
          std::vector<std::uint64_t> out{0};
          for (int k = 0; k < 40; ++k) out[0] ^= churn(part);
          return out;
        },
        so);
    times.push_back(1000.0 * eng.stage_log().front().duration_s);
    stats.last_stage = eng.stage_log().front();
  }
  for (const double t : times) stats.mean_ms += t;
  stats.mean_ms /= static_cast<double>(times.size());
  stats.min_ms = *std::min_element(times.begin(), times.end());
  return stats;
}

engine::Engine::Options base_opts() {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = 171;
  return o;
}

}  // namespace

int main() {
  bench::print_header("Extension: fault-tolerant execution overhead and degradation");

  constexpr std::size_t kPartitions = 64;
  constexpr std::size_t kRows = 1u << 18;
  constexpr int kReps = 30;

  // --- 1. zero-fault overhead ----------------------------------------------
  std::printf("  -- retry path at zero fault rate (%d reps, %zu tasks/stage) --\n", kReps,
              kPartitions);
  std::printf("  %-34s  %10s  %10s\n", "configuration", "mean [ms]", "min [ms]");

  engine::Engine legacy(base_opts());
  const auto base = run_workload(legacy, kPartitions, kRows, kReps);
  std::printf("  %-34s  %10.2f  %10.2f\n", "legacy fast path", base.mean_ms, base.min_ms);

  engine::Engine::Options armed = base_opts();
  armed.fault.max_attempts = 3;  // retry budget armed, nothing to retry
  armed.fault.retry_backoff_ms = 5.0;
  engine::Engine retry_engine(armed);
  const auto retry = run_workload(retry_engine, kPartitions, kRows, kReps);
  const double overhead = 100.0 * (retry.mean_ms - base.mean_ms) / base.mean_ms;
  std::printf("  %-34s  %10.2f  %10.2f   (overhead %+.1f%%)\n",
              "fault-tolerant path, 0 faults", retry.mean_ms, retry.min_ms, overhead);

  armed.fault.speculation = true;
  engine::Engine spec_engine(armed);
  const auto spec = run_workload(spec_engine, kPartitions, kRows, kReps);
  std::printf("  %-34s  %10.2f  %10.2f   (overhead %+.1f%%)\n",
              "+ speculation armed, 0 stragglers", spec.mean_ms, spec.min_ms,
              100.0 * (spec.mean_ms - base.mean_ms) / base.mean_ms);

  // --- 2. failures degrade into approximation ------------------------------
  std::printf("\n  -- injected failures on a droppable stage (max 2 attempts) --\n");
  std::printf("  %-12s  %10s  %10s  %10s  %12s\n", "fail prob", "executed", "degraded",
              "retries", "eff. theta");
  for (const double p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    engine::Engine::Options o = base_opts();
    o.fault.injection.fail_prob = p;
    o.fault.injection.seed = 7;
    o.fault.max_attempts = 2;
    engine::Engine eng(o);
    const auto r = run_workload(eng, kPartitions, kRows, 3);
    std::printf("  %-12g  %7zu/%-2zu  %10zu  %10zu  %12.3f\n", p,
                r.last_stage.executed_partitions, kPartitions,
                r.last_stage.failed_partition_ids.size(), r.last_stage.retries,
                r.last_stage.effective_drop_ratio);
  }

  // --- 3. speculation rescues stragglers ------------------------------------
  std::printf("\n  -- stragglers (20%% of tasks +80 ms) with and without speculation --\n");
  std::printf("  %-24s  %10s  %10s  %10s\n", "configuration", "mean [ms]", "spec runs",
              "spec wins");
  for (const bool speculate : {false, true}) {
    engine::Engine::Options o = base_opts();
    o.fault.injection.straggler_prob = 0.2;
    o.fault.injection.straggler_delay_ms = 80.0;
    o.fault.injection.seed = 13;
    o.fault.speculation = speculate;
    o.fault.speculation_quantile = 0.75;
    engine::Engine eng(o);
    const auto r = run_workload(eng, kPartitions, kRows, 5);
    std::printf("  %-24s  %10.2f  %10zu  %10zu\n",
                speculate ? "with speculation" : "no speculation", r.mean_ms,
                r.last_stage.speculative_launched, r.last_stage.speculative_wins);
  }
  return 0;
}
