// Extension: cost of the observability layer (dias::obs).
//
// Every transformation of every workload goes through run_stage, so the
// metrics/tracing hooks must be ~free when nothing is attached and cheap
// when they are. This bench measures the engine wordcount-style churn
// workload three ways:
//   1. no observability attached (the default; the hooks are null checks),
//   2. metrics registry only (cached counters/histograms, no tracing),
//   3. metrics + tracer (per-stage spans buffered in memory).
// The acceptance budget is <5% overhead for the fully-enabled path and
// noise-level overhead for the disabled path.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "engine/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dias;

std::uint64_t churn(const std::vector<std::uint64_t>& part) {
  std::uint64_t acc = 1469598103934665603ULL;
  for (const auto x : part) {
    acc ^= x;
    acc *= 1099511628211ULL;
    acc ^= acc >> 33;
  }
  return acc;
}

struct RunStats {
  double mean_ms = 0.0;
  double min_ms = 0.0;
};

// Repeated droppable map stage over `partitions` tasks; per-rep stage wall
// time comes from the engine's own stage log so all variants measure the
// identical code path.
RunStats run_workload(engine::Engine& eng, std::size_t partitions, std::size_t rows,
                      int reps) {
  std::vector<std::uint64_t> data(rows);
  for (std::size_t i = 0; i < rows; ++i) data[i] = i * 2654435761ULL;
  const auto ds = eng.parallelize(std::move(data), partitions);

  RunStats stats;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    eng.clear_stage_log();
    engine::StageOptions so;
    so.name = "bench-map";
    so.droppable = true;
    eng.map_partitions(
        ds,
        [](const std::vector<std::uint64_t>& part) {
          std::vector<std::uint64_t> out{0};
          for (int k = 0; k < 40; ++k) out[0] ^= churn(part);
          return out;
        },
        so);
    times.push_back(1000.0 * eng.stage_log().front().duration_s);
  }
  for (const double t : times) stats.mean_ms += t;
  stats.mean_ms /= static_cast<double>(times.size());
  stats.min_ms = *std::min_element(times.begin(), times.end());
  return stats;
}

engine::Engine::Options base_opts() {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = 333;
  o.drop_ratio = 0.1;
  return o;
}

}  // namespace

int main() {
  bench::print_header("Extension: observability layer overhead");

  constexpr std::size_t kPartitions = 64;
  constexpr std::size_t kRows = 1u << 18;
  constexpr int kReps = 40;

  std::printf("  churn workload: %zu tasks/stage, %d reps per configuration\n\n",
              kPartitions, kReps);
  std::printf("  %-34s  %10s  %10s  %10s\n", "configuration", "mean [ms]", "min [ms]",
              "overhead");

  // 1. Nothing attached: the hot path sees null hook pointers only.
  engine::Engine off(base_opts());
  const auto base = run_workload(off, kPartitions, kRows, kReps);
  std::printf("  %-34s  %10.2f  %10.2f  %10s\n", "observability off", base.mean_ms,
              base.min_ms, "--");

  // 2. Metrics only: cached counter/histogram handles, batched observes.
  obs::Registry metrics_only;
  engine::Engine with_metrics(base_opts());
  with_metrics.attach_observability(&metrics_only, nullptr);
  const auto m = run_workload(with_metrics, kPartitions, kRows, kReps);
  const double m_over = 100.0 * (m.mean_ms - base.mean_ms) / base.mean_ms;
  std::printf("  %-34s  %10.2f  %10.2f  %+9.1f%%\n", "metrics registry", m.mean_ms,
              m.min_ms, m_over);

  // 3. Metrics + tracer: adds one begin/end span pair per stage.
  obs::Registry metrics_full;
  obs::Tracer tracer;
  engine::Engine with_trace(base_opts());
  with_trace.attach_observability(&metrics_full, &tracer);
  const auto t = run_workload(with_trace, kPartitions, kRows, kReps);
  const double t_over = 100.0 * (t.mean_ms - base.mean_ms) / base.mean_ms;
  std::printf("  %-34s  %10.2f  %10.2f  %+9.1f%%\n", "metrics + tracer", t.mean_ms,
              t.min_ms, t_over);

  const auto snapshot = metrics_full.snapshot();
  std::printf("\n  collected: %zu counters, %zu gauges, %zu histograms, %zu trace events\n",
              snapshot.counters.size(), snapshot.gauges.size(), snapshot.histograms.size(),
              tracer.event_count());
  std::printf("  budget: enabled path must stay under +5%%; measured %+.1f%%  [%s]\n",
              t_over, t_over < 5.0 ? "OK" : "OVER BUDGET");
  return t_over < 5.0 ? 0 : 1;
}
