// Extension: DiAS under bursty (MMPP) arrivals.
//
// The paper's model citation (Horvath's MMAP[K]/PH[K]/1) exists precisely
// because production arrival streams are correlated, not Poisson. This
// experiment (a) validates our analytic MAP/PH/1 solver against the cluster
// DES on a single-class bursty stream, and (b) shows how burstiness
// inflates the priority dynamics and how much of it DA claws back.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "model/qbd.hpp"
#include "model/response_time_model.hpp"

int main() {
  using namespace dias;
  bench::print_header("Extension: bursty (MMPP) arrivals");

  // --- (a) analytic MAP/PH/1 vs cluster DES, single class ------------------
  std::printf("  -- MAP/PH/1 validation (single class, mean response [s]) --\n");
  std::printf("  %-14s %12s %12s\n", "peak/mean", "analytic", "cluster-DES");
  auto solo = bench::text_class(0.001, 473.0, "solo");
  solo.size_scv = 0.0;
  std::vector<workload::ClassWorkloadParams> solo_classes{solo};
  workload::scale_rates_to_load(solo_classes, bench::kSlots, 0.7);
  const auto profile = workload::to_model_profile(solo_classes[0], bench::kSlots);
  const auto service = model::ResponseTimeModel::processing_time(profile, 0.0);
  for (double peak : {1.0, 1.5, 1.9}) {
    const double switch_rate = 0.002;  // bursts of ~500 s
    const auto mmap =
        workload::TraceGenerator::bursty_mmap(solo_classes, peak, switch_rate);
    const model::MapPh1Queue analytic(mmap, service);

    workload::TraceGenerator gen(171);
    auto trace = gen.text_trace_bursty(solo_classes, 20000, peak, switch_rate);
    cluster::ClusterSimulator::Config config;
    config.slots = bench::kSlots;
    config.task_time_family = cluster::TaskTimeFamily::kExponential;
    config.warmup_jobs = 2000;
    config.seed = 172;
    const auto sim = cluster::simulate(config, std::move(trace));
    std::printf("  %-14.1f %12.1f %12.1f\n", peak, analytic.mean_response_time(),
                sim.per_class[0].response.mean());
  }

  // --- (b) two-priority dynamics under burstiness ---------------------------
  std::printf("\n  -- two-priority latency vs burstiness (mean / p95 [s]) --\n");
  auto classes = bench::reference_two_priority();
  bench::calibrate_rates(classes, 0.7, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_text_trace);
  std::printf("  %-10s %-10s %18s %18s\n", "peak/mean", "policy", "high", "low");
  for (double peak : {1.0, 1.8}) {
    workload::TraceGenerator gen(173);
    const auto trace = gen.text_trace_bursty(classes, 20000, peak, 0.001);
    for (const auto& [name, policy, theta] :
         {std::tuple<const char*, core::Policy, std::vector<double>>{
              "P", core::Policy::kPreemptive, {}},
          {"DA(0,20)", core::Policy::kDifferentialApprox, {0.2, 0.0}}}) {
      core::ExperimentConfig config;
      config.policy = policy;
      config.slots = bench::kSlots;
      config.theta = theta;
      config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
      config.warmup_jobs = 2000;
      config.seed = 174;
      const auto result = core::run_experiment(config, trace);
      std::printf("  %-10.1f %-10s %8.1f / %-8.1f %8.1f / %-8.1f\n", peak, name,
                  result.per_class[1].response.mean(),
                  result.per_class[1].tail_response(),
                  result.per_class[0].response.mean(),
                  result.per_class[0].tail_response());
    }
  }
  std::printf("\n  expectation: the analytic MAP/PH/1 tracks the DES across\n"
              "  burstiness; bursts inflate every latency (especially tails), and\n"
              "  deflating low-priority jobs remains effective because shorter\n"
              "  executions drain the burst backlog faster.\n");
  return 0;
}
