// Ablation: task-level vs wave-level job model (paper Sections 4.1 / 4.2).
//
// The task-level CTMC assumes exponential task times; the wave-level model
// fits per-wave PH distributions from the measured task moments. We
// validate both against the simulator under two task-time families:
//   - exponential tasks (the task-level model's home turf),
//   - near-deterministic lognormal tasks (scv 0.08, what Spark actually
//     shows) where waves finish almost in lockstep.
// The wave-level model should win decisively on the lognormal side.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "common/stats.hpp"
#include "model/response_time_model.hpp"

namespace {

using namespace dias;

double observed_processing(const workload::ClassWorkloadParams& params, double theta,
                           cluster::TaskTimeFamily family, std::size_t samples) {
  std::vector<workload::ClassWorkloadParams> classes{params};
  workload::TraceGenerator gen(7);
  auto trace = gen.text_trace(classes, samples);
  double t = 0.0;
  for (auto& e : trace) {
    e.arrival_time = t;
    t += 1e7;
  }
  cluster::ClusterSimulator::Config config;
  config.slots = bench::kSlots;
  config.scheduler.theta = {theta};
  config.task_time_family = family;
  config.warmup_jobs = 0;
  config.seed = 23;
  return cluster::simulate(config, std::move(trace)).per_class[0].execution.mean();
}

}  // namespace

int main() {
  bench::print_header("Ablation: task-level vs wave-level model accuracy");

  auto params = bench::text_class(0.001, 1117.0, "147");
  params.size_scv = 0.0;

  struct FamilyCase {
    const char* name;
    cluster::TaskTimeFamily family;
    double model_scv;  // task scv fed to the wave model
  };
  const FamilyCase cases[] = {
      {"exponential tasks", cluster::TaskTimeFamily::kExponential, 1.0},
      {"lognormal tasks (scv 0.08)", cluster::TaskTimeFamily::kLogNormal, 0.08},
  };

  for (const auto& c : cases) {
    std::printf("\n  -- %s --\n", c.name);
    std::printf("  %-6s  %10s  %10s  %10s  %8s  %8s\n", "theta", "observed", "task-mdl",
                "wave-mdl", "task-err", "wave-err");
    auto profile_params = params;
    profile_params.task_scv = c.model_scv;
    const auto profile = workload::to_model_profile(profile_params, bench::kSlots);
    SampleSet task_errs, wave_errs;
    for (double theta : {0.0, 0.2, 0.4, 0.6, 0.8}) {
      const double observed = observed_processing(params, theta, c.family, 300);
      const double task_pred = model::ResponseTimeModel::processing_time(
                                   profile, theta, model::ModelGranularity::kTaskLevel)
                                   .mean();
      const double wave_pred = model::ResponseTimeModel::processing_time(
                                   profile, theta, model::ModelGranularity::kWaveLevel)
                                   .mean();
      const double te = relative_error_percent(observed, task_pred);
      const double we = relative_error_percent(observed, wave_pred);
      task_errs.add(te);
      wave_errs.add(we);
      std::printf("  %-6.1f  %10.1f  %10.1f  %10.1f  %7.1f%%  %7.1f%%\n", theta, observed,
                  task_pred, wave_pred, te, we);
    }
    std::printf("  mean error: task-level %.1f%%, wave-level %.1f%%\n", task_errs.mean(),
                wave_errs.mean());
  }
  std::printf("\n  the task-level CTMC is exact for exponential tasks but overestimates\n"
              "  makespans of near-deterministic waves (straggler inflation); the\n"
              "  wave-level PH model tracks both regimes (paper Section 4.2).\n");
  return 0;
}
