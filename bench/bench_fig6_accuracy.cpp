// Figure 6: impact of task dropping on accuracy loss.
//
// Runs the *real* word-count job on a synthetic StackExchange-like corpus
// at increasing map drop ratios and reports the mean absolute percent
// error of the approximate counts vs an exact run. The paper observes a
// sub-linear trend: ~8.5% at theta = 0.1, ~15% at 0.2, ~32% at 0.4.
#include <cstdio>
#include <vector>

#include "analytics/approx_aggregate.hpp"
#include "analytics/word_count.hpp"
#include "bench/scenarios.hpp"
#include "common/stats.hpp"
#include "workload/text_corpus.hpp"

int main() {
  using namespace dias;
  bench::print_header("Figure 6: accuracy loss vs map drop ratio (real word count)");

  // Several "sites" (topics), averaged, as the paper profiles across
  // datasets.
  std::vector<workload::TextCorpus> corpora;
  for (int site = 0; site < 4; ++site) {
    workload::TextCorpusParams params;
    params.posts = 4000;
    params.vocabulary = 3000;
    params.zipf_exponent = 1.05;
    params.drift_segments = 12;  // chronological topic drift within a dump
    params.seed = 100 + static_cast<std::uint64_t>(site);
    corpora.push_back(
        workload::generate_text_corpus("site" + std::to_string(site), params));
  }

  engine::Engine::Options opts;
  opts.workers = 4;
  opts.seed = 9;
  engine::Engine eng(opts);

  std::printf("  %-6s  %14s  %18s\n", "theta", "raw error [%]", "rescaled error [%]");
  for (double theta : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    SampleSet raw_errs, scaled_errs;
    for (const auto& corpus : corpora) {
      const auto exact = analytics::exact_word_count(corpus.rows);
      const auto ds = eng.parallelize(corpus.rows, 50);
      // Average over several random drop selections.
      for (int rep = 0; rep < 3; ++rep) {
        const auto approx = analytics::word_count(eng, ds, 20, theta);
        raw_errs.add(analytics::word_count_error(exact, approx.counts, 200));
        scaled_errs.add(analytics::word_count_error(exact, approx.rescaled_counts(), 200));
      }
    }
    std::printf("  %-6.1f  %14.1f  %18.1f\n", theta, raw_errs.mean(), scaled_errs.mean());
  }
  std::printf("  (paper anchors: 8.5%% @ 0.1, 15%% @ 0.2, 32%% @ 0.4; sub-linear)\n");
  std::printf("  raw counts lose ~theta of every word; the rescaled estimator is\n");
  std::printf("  sub-linear, limited by topic drift across the dropped partitions.\n");

  // Error *bounds* (ApproxHadoop/BlinkDB): total-word-count estimate with a
  // 95%% confidence interval from cluster-sampling theory.
  std::printf("\n  -- bounded-error total word count (site0, 95%% CI) --\n");
  std::printf("  %-6s  %14s  %16s  %10s\n", "theta", "estimate", "ci half-width",
              "truth in?");
  {
    const auto& corpus = corpora[0];
    std::size_t truth = 0;
    for (const auto& row : corpus.rows) {
      truth += workload::tokenize(workload::extract_post_body(row)).size();
    }
    const auto ds = eng.parallelize(corpus.rows, 50);
    for (double theta : {0.0, 0.2, 0.5, 0.8}) {
      const auto est = analytics::approx_sum(
          eng, ds,
          [](const std::string& row) {
            return static_cast<double>(
                workload::tokenize(workload::extract_post_body(row)).size());
          },
          theta);
      std::printf("  %-6.1f  %14.0f  %16.0f  %10s\n", theta, est.estimate,
                  est.ci_half_width(),
                  est.contains(static_cast<double>(truth)) ? "yes" : "NO");
    }
    std::printf("  (exact total: %zu words)\n", truth);
  }
  return 0;
}
