// Figure 7: differential approximation on the reference two-priority setup.
//
// Reference parameters (Section 5.2.1): 9:1 low:high arrival mix, average
// sizes 1117 MB (low) / 473 MB (high), ~80% system load. Reports the
// preemptive baseline (P) in absolute terms and NP / DA(0,10) / DA(0,20)
// as relative mean and p95 differences vs P, plus the resource waste of P
// (paper: ~4%).
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"

int main() {
  using namespace dias;
  bench::print_header("Figure 7: two-priority reference setup (9:1, 80% load)");

  auto classes = bench::reference_two_priority();
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_text_trace);
  workload::TraceGenerator gen(51);
  const auto trace = gen.text_trace(classes, 20000);

  const auto run = [&](core::Policy policy, std::vector<double> theta,
                       cluster::EvictionMode eviction = cluster::EvictionMode::kRestart) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.eviction = eviction;
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 2000;
    config.seed = 61;
    return core::run_experiment(config, trace);
  };

  const auto p = run(core::Policy::kPreemptive, {});
  const auto np = run(core::Policy::kNonPreemptive, {});
  const auto da10 = run(core::Policy::kDifferentialApprox, {0.1, 0.0});
  const auto da20 = run(core::Policy::kDifferentialApprox, {0.2, 0.0});

  std::printf("  baseline P (absolute):\n");
  bench::print_absolute_row("P", "high", p.per_class[1].response.mean(),
                            p.per_class[1].tail_response());
  bench::print_absolute_row("P", "low", p.per_class[0].response.mean(),
                            p.per_class[0].tail_response());
  std::printf("  P queueing: high %.2f s, low %.1f s; resource waste %.1f%% "
              "(paper: ~4%%), evictions %zu\n",
              p.per_class[1].queueing.mean(), p.per_class[0].queueing.mean(),
              100.0 * p.resource_waste(), p.total_evictions);

  std::printf("\n  relative difference vs P (negative = better):\n");
  struct Row {
    const char* name;
    const cluster::SimResult* result;
  };
  for (const auto& [name, result] :
       {Row{"NP", &np}, Row{"DA(0,10)", &da10}, Row{"DA(0,20)", &da20}}) {
    for (std::size_t k : {1u, 0u}) {
      const auto delta = core::relative_difference(p.per_class[k], result->per_class[k]);
      bench::print_relative_row(name, k == 1 ? "high" : "low", delta);
    }
    std::printf("  %-12s waste %.1f%%, evictions %zu\n", name,
                100.0 * result->resource_waste(), result->total_evictions);
  }
  // Extra ablation: how much of P's damage is the *restart* (vs preemption
  // itself)? P-resume models Natjam-style task-level checkpointing.
  const auto p_resume =
      run(core::Policy::kPreemptive, {}, cluster::EvictionMode::kResumeTasks);
  std::printf("\n  ablation P-resume (task-checkpointed eviction) vs P-restart:\n");
  for (std::size_t k : {1u, 0u}) {
    const auto delta = core::relative_difference(p.per_class[k], p_resume.per_class[k]);
    bench::print_relative_row("P-resume", k == 1 ? "high" : "low", delta);
  }
  std::printf("  P-resume waste %.1f%% (P-restart: %.1f%%)\n",
              100.0 * p_resume.resource_waste(), 100.0 * p.resource_waste());

  std::printf("\n  paper shape: NP: low ~-20%%, high ~+80%%; DA(0,20): low ~-65%%\n"
              "  (mean+tail) at ~+10%% high mean; DA eliminates all waste.\n");
  return 0;
}
