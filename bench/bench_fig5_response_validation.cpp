// Figure 5: validation of the response-time model under load.
//
// Setup mirrors the paper: two priority classes on different datasets
// (low-priority jobs 2.36x larger: 1117 MB vs 473 MB), 9:1 low:high mix,
// arrival rate tuned for ~80% utilization, non-preemptive discipline,
// sweeping the low-class drop ratio. The paper reports an average model
// error of 18.7%.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "common/stats.hpp"
#include "model/priority_queue_sim.hpp"
#include "model/response_time_model.hpp"

int main() {
  using namespace dias;
  bench::print_header("Figure 5: model vs observed mean response time (80% load)");

  auto classes = bench::reference_two_priority();
  for (auto& c : classes) c.size_scv = 0.0;  // the model assumes mean sizes
  workload::scale_rates_to_load(classes, bench::kSlots, 0.8);

  std::vector<model::JobClassProfile> profiles;
  for (const auto& c : classes) {
    profiles.push_back(workload::to_model_profile(c, bench::kSlots));
  }

  std::printf("  %-6s  %11s  %11s  %11s  %11s\n", "theta", "model-high", "obs-high",
              "model-low", "obs-low");
  SampleSet errors;
  for (double theta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    const std::vector<double> thetas{theta, 0.0};
    const auto pred = model::ResponseTimeModel::predict(
        profiles, thetas, model::Discipline::kNonPreemptive);

    workload::TraceGenerator gen(31);
    auto trace = gen.text_trace(classes, 20000);
    core::ExperimentConfig config;
    config.policy = core::Policy::kDifferentialApprox;
    config.slots = bench::kSlots;
    config.theta = thetas;
    config.task_time_family = cluster::TaskTimeFamily::kExponential;
    config.warmup_jobs = 2000;
    config.seed = 41;
    const auto sim = core::run_experiment(config, std::move(trace));

    const double model_high = pred.per_class[1].mean_response;
    const double model_low = pred.per_class[0].mean_response;
    const double obs_high = sim.per_class[1].response.mean();
    const double obs_low = sim.per_class[0].response.mean();
    errors.add(relative_error_percent(obs_high, model_high));
    errors.add(relative_error_percent(obs_low, model_low));
    std::printf("  %-6.1f  %11.1f  %11.1f  %11.1f  %11.1f\n", theta, model_high, obs_high,
                model_low, obs_low);
  }
  std::printf("  average model error: %.1f%% (paper: 18.7%%)\n", errors.mean());

  // Cross-validation of the tails: the model-plane MMAP/PH/1 queue
  // simulator (Horvath-style distribution estimation) vs the full cluster
  // DES, both fed the same task-level PH services.
  std::printf("\n  p95 cross-validation (queue-level vs cluster-level simulation):\n");
  std::printf("  %-6s  %12s  %12s  %12s  %12s\n", "theta", "qsim-high", "cluster-high",
              "qsim-low", "cluster-low");
  for (double theta : {0.0, 0.2, 0.4}) {
    const std::vector<double> thetas{theta, 0.0};
    const std::vector<model::PhaseType> services{
        model::ResponseTimeModel::processing_time(profiles[0], thetas[0]),
        model::ResponseTimeModel::processing_time(profiles[1], thetas[1]),
    };
    const auto arrivals = model::Mmap::marked_poisson(
        {profiles[0].arrival_rate, profiles[1].arrival_rate});
    model::PriorityQueueSimOptions options;
    options.jobs = 60000;
    options.warmup = 6000;
    options.seed = 43;
    const auto qsim = model::simulate_priority_queue(
        arrivals, services, model::SimDiscipline::kNonPreemptive, options);

    workload::TraceGenerator gen(31);
    auto trace = gen.text_trace(classes, 20000);
    core::ExperimentConfig config;
    config.policy = core::Policy::kDifferentialApprox;
    config.slots = bench::kSlots;
    config.theta = thetas;
    config.task_time_family = cluster::TaskTimeFamily::kExponential;
    config.warmup_jobs = 2000;
    config.seed = 41;
    const auto sim = core::run_experiment(config, std::move(trace));
    std::printf("  %-6.1f  %12.1f  %12.1f  %12.1f  %12.1f\n", theta,
                qsim.response[1].p95(), sim.per_class[1].response.p95(),
                qsim.response[0].p95(), sim.per_class[0].response.p95());
  }
  return 0;
}
