// Figure 4: validation of the job processing-time model against the
// (simulated) engine for two datasets across drop ratios.
//
// The paper profiles two StackExchange datasets ("126" and "147"), feeds
// task execution times and interpolated overheads into the PH model, and
// compares predicted vs observed mean processing times for theta in
// [0, 0.8], reporting mean errors of 11.1% and 7.8%. We reproduce the
// series with our simulated engine as the observation source.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "common/stats.hpp"
#include "model/response_time_model.hpp"

namespace {

using namespace dias;

// One isolated job per sample: measures mean processing time at theta.
double observed_processing(const workload::ClassWorkloadParams& params, double theta,
                           std::size_t samples) {
  std::vector<workload::ClassWorkloadParams> classes{params};
  workload::TraceGenerator gen(7);
  auto trace = gen.text_trace(classes, samples);
  double t = 0.0;
  for (auto& e : trace) {
    e.arrival_time = t;
    t += 1e7;  // isolated: no queueing
  }
  cluster::ClusterSimulator::Config config;
  config.slots = bench::kSlots;
  config.scheduler.theta = {theta};
  config.task_time_family = cluster::TaskTimeFamily::kExponential;
  config.warmup_jobs = 0;
  config.seed = 23;
  const auto result = cluster::simulate(config, std::move(trace));
  return result.per_class[0].execution.mean();
}

}  // namespace

int main() {
  bench::print_header("Figure 4: model vs observed mean processing time");

  // Two "datasets": 473 MB (dataset 126 analogue) and 1117 MB (dataset 147).
  struct DatasetCase {
    const char* name;
    workload::ClassWorkloadParams params;
  };
  std::vector<DatasetCase> cases{
      {"126", bench::text_class(0.001, 473.0, "126")},
      {"147", bench::text_class(0.001, 1117.0, "147")},
  };
  // The model assumes mean-size jobs.
  for (auto& c : cases) c.params.size_scv = 0.0;

  std::printf("  %-6s", "theta");
  for (const auto& c : cases) std::printf("  %8s-model  %8s-obs  err%%", c.name, c.name);
  std::printf("\n");

  std::vector<SampleSet> errors(cases.size());
  for (double theta : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    std::printf("  %-6.1f", theta);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const auto profile = workload::to_model_profile(cases[i].params, bench::kSlots);
      const double predicted =
          model::ResponseTimeModel::processing_time(profile, theta).mean();
      const double observed = observed_processing(cases[i].params, theta, 400);
      const double err = relative_error_percent(observed, predicted);
      errors[i].add(err);
      std::printf("  %14.1f  %12.1f  %4.1f", predicted, observed, err);
    }
    std::printf("\n");
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    std::printf("  dataset %s: mean model error %.1f%% (paper: 11.1%% / 7.8%%)\n",
                cases[i].name, errors[i].mean());
  }
  return 0;
}
