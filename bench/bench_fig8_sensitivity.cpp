// Figure 8: sensitivity analysis of differential approximation.
//
// Varies one reference parameter at a time (Section 5.2.2):
//   (a) equal job sizes for both priorities,
//   (b) inverted mix: 1:9 low:high (high-priority dominant),
//   (c) 50% system load.
// Each scenario reports NP / DA(0,10) / DA(0,20) relative to P.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/scenarios.hpp"

namespace {

using namespace dias;

void run_scenario(const std::string& title,
                  std::vector<workload::ClassWorkloadParams> classes, double load,
                  std::uint64_t seed) {
  bench::print_header(title);
  bench::calibrate_rates(classes, load, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_text_trace);
  workload::TraceGenerator gen(seed);
  const auto trace = gen.text_trace(classes, 20000);

  const auto run = [&](core::Policy policy, std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 2000;
    config.seed = seed + 1;
    return core::run_experiment(config, trace);
  };

  const auto p = run(core::Policy::kPreemptive, {});
  std::printf("  P absolute: high mean %.1f s (p95 %.1f), low mean %.1f s (p95 %.1f), "
              "waste %.1f%%\n",
              p.per_class[1].response.mean(), p.per_class[1].tail_response(),
              p.per_class[0].response.mean(), p.per_class[0].tail_response(),
              100.0 * p.resource_waste());

  struct Variant {
    const char* name;
    core::Policy policy;
    std::vector<double> theta;
  };
  for (const auto& v :
       {Variant{"NP", core::Policy::kNonPreemptive, {}},
        Variant{"DA(0,10)", core::Policy::kDifferentialApprox, {0.1, 0.0}},
        Variant{"DA(0,20)", core::Policy::kDifferentialApprox, {0.2, 0.0}}}) {
    const auto result = run(v.policy, v.theta);
    for (std::size_t k : {1u, 0u}) {
      bench::print_relative_row(
          v.name, k == 1 ? "high" : "low",
          core::relative_difference(p.per_class[k], result.per_class[k]));
    }
  }
}

}  // namespace

int main() {
  // (a) Equal job sizes: both classes at 473 MB.
  run_scenario("Figure 8(a): equal job sizes (both 473 MB, 9:1 mix, 80% load)",
               {bench::text_class(0.009, 473.0, "low"),
                bench::text_class(0.001, 473.0, "high")},
               0.8, 71);

  // (b) Inverted mix: 1:9 low:high.
  run_scenario("Figure 8(b): high-priority dominant (1:9 low:high, 80% load)",
               {bench::text_class(0.001, 1117.0, "low"),
                bench::text_class(0.009, 473.0, "high")},
               0.8, 72);

  // (c) 50% system load.
  run_scenario("Figure 8(c): 50% system load (reference mix/sizes)",
               {bench::text_class(0.009, 1117.0, "low"),
                bench::text_class(0.001, 473.0, "high")},
               0.5, 73);

  std::printf("\n  paper shape: (a) gains improve for every class (smaller low jobs\n"
              "  block less); (b) DA's leverage shrinks (only 10%% of jobs are\n"
              "  deflatable): high-priority latencies rise, low tail gain drops;\n"
              "  (c) P ~ NP at low load; DA(0,20) keeps most of its gain via the\n"
              "  dropped third wave of processing.\n");
  return 0;
}
