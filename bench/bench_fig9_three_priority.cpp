// Figure 9: differential approximation on a three-priority system.
//
// Mix high-medium-low = 1-4-5 at ~80% load (the paper uses 2.3 jobs/min on
// its testbed). Policies: P, NP, DA(0,10,20), DA(0,20,40); subscripts are
// (high, medium, low) drop ratios. The paper reports ~16% resource waste
// under P and up to 60% tail-latency reductions for all classes.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"

int main() {
  using namespace dias;
  bench::print_header("Figure 9: three-priority system (1-4-5 mix, 80% load)");

  // Class order low -> medium -> high (larger index = higher priority).
  std::vector<workload::ClassWorkloadParams> classes{
      bench::text_class(0.005, 1117.0, "low"),
      bench::text_class(0.004, 800.0, "medium"),
      bench::text_class(0.001, 473.0, "high"),
  };
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_text_trace);
  workload::TraceGenerator gen(81);
  const auto trace = gen.text_trace(classes, 24000);

  const auto run = [&](core::Policy policy, std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 2000;
    config.seed = 82;
    return core::run_experiment(config, trace);
  };

  const auto p = run(core::Policy::kPreemptive, {});
  const char* class_names[] = {"low", "middle", "high"};
  std::printf("  P absolute (waste %.1f%%, paper ~16%%):\n", 100.0 * p.resource_waste());
  for (std::size_t k = 3; k-- > 0;) {
    bench::print_absolute_row("P", class_names[k], p.per_class[k].response.mean(),
                              p.per_class[k].tail_response());
  }

  struct Variant {
    const char* name;
    core::Policy policy;
    std::vector<double> theta;  // (low, medium, high) order
  };
  std::printf("\n  relative difference vs P (negative = better):\n");
  for (const auto& v :
       {Variant{"NP", core::Policy::kNonPreemptive, {}},
        Variant{"DA(0,10,20)", core::Policy::kDifferentialApprox, {0.2, 0.1, 0.0}},
        Variant{"DA(0,20,40)", core::Policy::kDifferentialApprox, {0.4, 0.2, 0.0}}}) {
    const auto result = run(v.policy, v.theta);
    for (std::size_t k = 3; k-- > 0;) {
      bench::print_relative_row(
          v.name, class_names[k],
          core::relative_difference(p.per_class[k], result.per_class[k]));
    }
    std::printf("  %-12s waste %.1f%%\n", v.name, 100.0 * result.resource_waste());
  }
  std::printf("\n  paper shape: non-preemptive variants eliminate the ~16%% waste;\n"
              "  DA cuts tail latency for all three classes (up to ~60%%) and mean\n"
              "  latency more for low than middle, at a small high-priority cost.\n");
  return 0;
}
