// Shared experiment scenarios and reporting helpers for the per-figure
// benchmark binaries. Every bench reproduces one table or figure of the
// paper; the workload constants below are the calibrated stand-ins for the
// paper's testbed (Section 5.1): 20 computing slots, 50-partition jobs,
// 9:1 low:high mix, low jobs 2.36x larger (1117 MB vs 473 MB), 80% load.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "workload/trace_gen.hpp"

namespace dias::bench {

inline constexpr int kSlots = 20;

// --- reference text-analytics classes (Figures 5, 7, 8, 9) ----------------

inline workload::ClassWorkloadParams text_class(double arrival_rate, double size_mb,
                                                const std::string& label) {
  workload::ClassWorkloadParams p;
  p.arrival_rate = arrival_rate;
  p.mean_size_mb = size_mb;
  p.size_scv = 0.15;
  p.map_tasks = 50;
  p.reduce_tasks = 20;
  // Calibrated so a 1117 MB job processes in ~100 s on 20 slots, matching
  // the magnitudes of Figures 4-5.
  p.map_seconds_per_mb = 0.9;
  p.reduce_seconds_per_mb = 0.18;
  p.setup_time_s = 8.0;
  p.setup_time_theta90_s = 4.0;
  p.shuffle_time_s = 3.0;
  p.task_scv = 0.08;
  p.label = label;
  return p;
}

// Reference two-priority setup: 9:1 low:high arrivals, sizes 1117/473 MB.
inline std::vector<workload::ClassWorkloadParams> reference_two_priority() {
  return {text_class(0.009, 1117.0, "low"), text_class(0.001, 473.0, "high")};
}

// --- reference graph-analytics classes (Figures 10, 11, Table 2) ----------

inline workload::GraphClassParams graph_class(double arrival_rate, const std::string& label) {
  workload::GraphClassParams p;
  p.arrival_rate = arrival_rate;
  p.mean_size_mb = 800.0;
  p.size_scv = 0.10;
  p.stage_tasks = 50;
  p.shuffle_map_stages = 6;  // graphx triangle count: 6 ShuffleMap stages
  // Calibrated for ~150 s non-sprinted execution (Table 2's low class).
  p.stage_seconds_per_mb = 0.55;
  p.setup_time_s = 10.0;
  p.result_time_s = 5.0;
  p.task_scv = 0.08;
  p.label = label;
  return p;
}

// --- pilot calibration ------------------------------------------------------

// Pilot-simulation calibration (see workload::calibrate_rates_by_pilot):
// scales arrival rates so the measured offered load hits the target. The
// TraceFn tag parameters keep old call sites readable.
struct TextTraceTag {};
struct GraphTraceTag {};

inline void calibrate_rates(std::vector<workload::ClassWorkloadParams>& classes,
                            double target_utilization, cluster::TaskTimeFamily family,
                            TextTraceTag) {
  workload::calibrate_rates_by_pilot(classes, kSlots, target_utilization, family);
}

inline void calibrate_rates(std::vector<workload::GraphClassParams>& classes,
                            double target_utilization, cluster::TaskTimeFamily family,
                            GraphTraceTag) {
  workload::calibrate_rates_by_pilot(classes, kSlots, target_utilization, family);
}

inline constexpr TextTraceTag make_text_trace{};
inline constexpr GraphTraceTag make_graph_trace{};

// --- reporting ---------------------------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Prints one figure bar: relative mean/tail difference vs the baseline.
inline void print_relative_row(const char* policy, const char* cls,
                               const core::LatencyDelta& delta) {
  std::printf("  %-12s %-7s mean %+7.1f%%   p95 %+7.1f%%\n", policy, cls,
              delta.mean_percent, delta.tail_percent);
}

inline void print_absolute_row(const char* policy, const char* cls, double mean_s,
                               double p95_s) {
  std::printf("  %-12s %-7s mean %8.1f s   p95 %8.1f s\n", policy, cls, mean_s, p95_s);
}

}  // namespace dias::bench
