// Extension: two-phase shuffle vs. the old locked shuffle path.
//
// The seed engine funnelled every shuffled record through a per-bucket
// std::mutex, so skewed key distributions serialized the whole write
// phase on the hot bucket's lock. The two-phase shuffle (engine/shuffle.hpp)
// writes into per-worker-slot buffers instead and optionally collapses
// duplicate keys in a map-side combiner before anything crosses the
// shuffle boundary.
//
// This bench reconstructs the old locked write path out of public engine
// primitives (shared buckets + per-element mutex acquisition, exactly the
// seed's engine.hpp code shape) and races it against reduce_by_key with
// combining off and on, over uniform and Zipf-distributed keys.
//
// Each configuration emits one machine-readable line:
//   BENCH {"bench":"ext_shuffle","keys":"zipf","mode":"two_phase_combine",...}
// so CI or a notebook can scrape results without parsing the tables.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/scenarios.hpp"
#include "common/rng.hpp"
#include "engine/engine.hpp"
#include "obs/json.hpp"

namespace {

using namespace dias;

using Record = std::pair<std::uint32_t, std::uint64_t>;

constexpr std::size_t kWorkers = 8;
constexpr std::size_t kInPartitions = 64;
constexpr std::size_t kOutPartitions = 16;
constexpr std::size_t kRecords = std::size_t{1} << 22;  // ~4M records
constexpr std::size_t kKeySpace = std::size_t{1} << 16;
constexpr int kReps = 5;

std::vector<Record> make_records(bool zipf, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(kRecords);
  if (zipf) {
    // Exponent 1.5: the head rank draws a large share of all records, so
    // the locked baseline contends hard on the hot bucket.
    const ZipfDistribution dist(kKeySpace, 1.5);
    for (std::size_t i = 0; i < kRecords; ++i) {
      records.emplace_back(static_cast<std::uint32_t>(dist(rng) - 1), i);
    }
  } else {
    for (std::size_t i = 0; i < kRecords; ++i) {
      records.emplace_back(static_cast<std::uint32_t>(rng.uniform_int(kKeySpace)), i);
    }
  }
  return records;
}

// The seed's shuffle write path: one shared bucket vector per output
// partition, one mutex per bucket, one lock acquisition per record.
std::size_t run_locked(engine::Engine& eng, const engine::Dataset<Record>& ds) {
  std::vector<std::vector<Record>> buckets(kOutPartitions);
  std::vector<std::mutex> locks(kOutPartitions);
  engine::StageOptions write_opts;
  write_opts.name = "locked/shuffle";
  write_opts.droppable = false;
  eng.map_partitions(
      ds,
      [&](const std::vector<Record>& part) {
        for (const auto& kv : part) {
          const std::size_t b = std::hash<std::uint32_t>{}(kv.first) % kOutPartitions;
          std::lock_guard<std::mutex> guard(locks[b]);
          buckets[b].push_back(kv);
        }
        return std::vector<char>{};
      },
      write_opts);

  std::vector<std::size_t> bucket_ids(kOutPartitions);
  for (std::size_t b = 0; b < kOutPartitions; ++b) bucket_ids[b] = b;
  engine::StageOptions reduce_opts;
  reduce_opts.name = "locked/reduce";
  reduce_opts.droppable = false;
  const auto reduced = eng.map_partitions(
      eng.parallelize(std::move(bucket_ids), kOutPartitions),
      [&](const std::vector<std::size_t>& ids) {
        std::vector<Record> out;
        for (const std::size_t b : ids) {
          std::unordered_map<std::uint32_t, std::uint64_t> acc;
          for (const auto& [k, v] : buckets[b]) acc[k] += v;
          out.insert(out.end(), acc.begin(), acc.end());
        }
        return out;
      },
      reduce_opts);

  std::size_t distinct = 0;
  for (std::size_t p = 0; p < reduced.partitions(); ++p) distinct += reduced.partition(p).size();
  return distinct;
}

std::size_t run_two_phase(engine::Engine& eng, const engine::Dataset<Record>& ds,
                          bool combine) {
  engine::StageOptions opts;
  opts.name = combine ? "two_phase_combine" : "two_phase";
  opts.droppable = false;
  engine::ShuffleOptions shuffle;
  shuffle.combine = combine;
  const auto reduced = eng.reduce_by_key(
      ds, [](std::uint64_t a, std::uint64_t b) { return a + b; }, kOutPartitions, opts,
      shuffle);
  std::size_t distinct = 0;
  for (std::size_t p = 0; p < reduced.partitions(); ++p) distinct += reduced.partition(p).size();
  return distinct;
}

struct BenchResult {
  double best_s = 0.0;
  double records_per_s = 0.0;
  std::size_t distinct = 0;
};

template <typename RunFn>
BenchResult measure(RunFn run) {
  BenchResult result;
  result.best_s = 1e30;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    result.distinct = run();
    const auto t1 = std::chrono::steady_clock::now();
    result.best_s = std::min(result.best_s, std::chrono::duration<double>(t1 - t0).count());
  }
  result.records_per_s = static_cast<double>(kRecords) / result.best_s;
  return result;
}

void emit_json(const char* keys, const char* mode, const BenchResult& r, double speedup) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "ext_shuffle");
  w.field("keys", keys);
  w.field("mode", mode);
  w.field("workers", std::uint64_t{kWorkers});
  w.field("records", std::uint64_t{kRecords});
  w.field("distinct_keys", std::uint64_t{r.distinct});
  w.field("best_s", r.best_s);
  w.field("records_per_s", r.records_per_s);
  w.field("speedup_vs_locked", speedup);
  w.end_object();
  std::printf("BENCH %s\n", std::move(w).str().c_str());
}

engine::Engine::Options engine_opts() {
  engine::Engine::Options o;
  o.workers = kWorkers;
  o.seed = 4242;
  return o;
}

}  // namespace

int main() {
  bench::print_header("Extension: two-phase shuffle vs. per-bucket-locked shuffle");
  std::printf("  %zu records, %zu-key space, %zu workers, %zu -> %zu partitions, best of %d\n",
              kRecords, kKeySpace, kWorkers, kInPartitions, kOutPartitions, kReps);

  for (const bool zipf : {false, true}) {
    const char* keys = zipf ? "zipf" : "uniform";
    const auto records = make_records(zipf, zipf ? 11 : 7);
    engine::Engine eng(engine_opts());
    const auto ds = eng.parallelize(records, kInPartitions);

    const auto locked = measure([&] { return run_locked(eng, ds); });
    const auto plain = measure([&] { return run_two_phase(eng, ds, false); });
    const auto combined = measure([&] { return run_two_phase(eng, ds, true); });

    std::printf("\n  -- %s keys (%zu distinct) --\n", keys, locked.distinct);
    std::printf("  %-24s  %12s  %14s  %8s\n", "mode", "best [ms]", "records/s", "speedup");
    const auto row = [&](const char* mode, const BenchResult& r) {
      const double speedup = r.records_per_s / locked.records_per_s;
      std::printf("  %-24s  %12.2f  %14.3e  %7.2fx\n", mode, 1000.0 * r.best_s,
                  r.records_per_s, speedup);
      emit_json(keys, mode, r, speedup);
    };
    row("locked (seed engine)", locked);
    row("two-phase, no combine", plain);
    row("two-phase + combiner", combined);
  }
  return 0;
}
