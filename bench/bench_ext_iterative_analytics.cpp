// Extension: differential approximation on iterative analytics (PageRank).
//
// The paper evaluates single-pass text jobs and the 7-stage triangle count;
// Spark's flagship workloads are *iterative*. PageRank contributes one
// droppable contribution stage per iteration, so a per-stage drop ratio
// compounds over the iteration count -- a stronger version of the paper's
// Figure 10 compounding argument. We measure the real accuracy/time
// frontier and the simulated two-priority latency with iteration-shaped
// jobs.
#include <cstdio>
#include <vector>

#include "analytics/page_rank.hpp"
#include "bench/scenarios.hpp"
#include "workload/graph_gen.hpp"

int main() {
  using namespace dias;
  bench::print_header("Extension: PageRank under per-stage dropping");

  // --- real accuracy/time frontier -----------------------------------------
  workload::GraphParams gparams;
  gparams.scale = 12;
  gparams.edges = 1u << 16;
  gparams.seed = 141;
  const auto edges = workload::generate_rmat_graph(gparams);
  engine::Engine::Options eopts;
  eopts.workers = 4;
  eopts.seed = 142;
  engine::Engine eng(eopts);
  const auto ds = eng.parallelize(edges, 40);

  analytics::PageRankOptions exact_opts;
  exact_opts.iterations = 10;
  const auto exact = analytics::page_rank(eng, ds, exact_opts);

  std::printf("  graph: %zu edges, %d iterations, 40 partitions\n", edges.size(),
              exact_opts.iterations);
  std::printf("  %-12s  %12s  %12s  %12s\n", "stage theta", "rank err [%]", "tasks run",
              "time [ms]");
  for (double theta : {0.0, 0.05, 0.10, 0.20}) {
    analytics::PageRankOptions opts = exact_opts;
    opts.stage_drop_ratio = theta;
    const auto result = analytics::page_rank(eng, ds, opts);
    std::printf("  %-12g  %12.1f  %6zu/%-5zu  %12.1f\n", theta,
                analytics::rank_error_percent(exact.ranks, result.ranks),
                result.tasks_run, result.tasks_total, 1000.0 * result.duration_s);
  }

  // --- simulated latency with iteration-shaped jobs -------------------------
  std::printf("\n  -- latency (cluster sim, 10-stage iterative jobs, 2 priorities) --\n");
  std::vector<workload::GraphClassParams> classes{
      bench::graph_class(0.009, "low"),
      bench::graph_class(0.001, "high"),
  };
  for (auto& c : classes) c.shuffle_map_stages = 10;  // one per iteration
  bench::calibrate_rates(classes, 0.8, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_graph_trace);
  workload::TraceGenerator gen(143);
  const auto trace = gen.graph_trace(classes, 12000);

  const auto run = [&](core::Policy policy, std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = policy;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 1200;
    config.seed = 144;
    return core::run_experiment(config, trace);
  };
  const auto p = run(core::Policy::kPreemptive, {});
  std::printf("  P absolute: high mean %.1f s, low mean %.1f s (waste %.1f%%)\n",
              p.per_class[1].response.mean(), p.per_class[0].response.mean(),
              100.0 * p.resource_waste());
  for (double theta : {0.05, 0.1, 0.2}) {
    const auto da = run(core::Policy::kDifferentialApprox, {theta, 0.0});
    char name[32];
    std::snprintf(name, sizeof(name), "DA(0,%g)", 100.0 * theta);
    for (std::size_t k : {1u, 0u}) {
      bench::print_relative_row(name, k == 1 ? "high" : "low",
                                core::relative_difference(p.per_class[k], da.per_class[k]));
    }
  }
  std::printf("\n  longer stage chains amplify both the per-stage accuracy compounding\n"
              "  and the latency leverage of small drop ratios.\n");
  return 0;
}
