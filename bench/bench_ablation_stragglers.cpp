// Ablation: stragglers and their mitigations (GRASS, the paper's ref [11]).
//
// Inject stragglers (5% of tasks run 4x longer) into the two-priority
// reference workload and compare, under non-preemptive scheduling:
//   none        - stragglers stall every stage barrier
//   speculate   - Spark-style backup copies at stage tails
//   drop-tail   - GRASS-style: abandon the last in-flight tasks of
//                 droppable stages (extra approximation instead of waiting)
//   DA(0,20)    - plain differential approximation, for scale
// Drop-tail is "approximation applied exactly where stragglers hurt",
// which is why GRASS frames straggler trimming as an approximation knob.
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"

int main() {
  using namespace dias;
  bench::print_header("Ablation: straggler mitigation (5% tasks 4x slower, 50% nominal load)");

  auto classes = bench::reference_two_priority();
  bench::calibrate_rates(classes, 0.5, cluster::TaskTimeFamily::kLogNormal,
                         bench::make_text_trace);
  workload::TraceGenerator gen(151);
  const auto trace = gen.text_trace(classes, 16000);

  const auto run = [&](cluster::StragglerConfig::Mitigation mitigation,
                       std::vector<double> theta) {
    core::ExperimentConfig config;
    config.policy = theta.empty() ? core::Policy::kNonPreemptive
                                  : core::Policy::kDifferentialApprox;
    config.slots = bench::kSlots;
    config.theta = std::move(theta);
    config.task_time_family = cluster::TaskTimeFamily::kLogNormal;
    config.warmup_jobs = 1600;
    config.seed = 152;
    cluster::ClusterSimulator::Config sim_config;
    // run_experiment has no straggler knob; drive the simulator directly.
    sim_config.slots = config.slots;
    sim_config.scheduler.theta = config.theta;
    sim_config.task_time_family = config.task_time_family;
    sim_config.warmup_jobs = config.warmup_jobs;
    sim_config.seed = config.seed;
    sim_config.stragglers.probability = 0.05;
    sim_config.stragglers.slowdown = 4.0;
    sim_config.stragglers.mitigation = mitigation;
    sim_config.stragglers.tail_drop_ratio = 0.1;
    return cluster::simulate(sim_config, trace);
  };

  using M = cluster::StragglerConfig::Mitigation;
  const auto none = run(M::kNone, {});
  std::printf("  no mitigation: high mean %.1f s (p95 %.1f), low mean %.1f s (p95 %.1f)\n",
              none.per_class[1].response.mean(), none.per_class[1].tail_response(),
              none.per_class[0].response.mean(), none.per_class[0].tail_response());
  std::printf("  straggler tasks: %zu\n\n", none.straggler_tasks);

  struct Variant {
    const char* name;
    M mitigation;
    std::vector<double> theta;
  };
  for (const auto& v : {Variant{"speculate", M::kSpeculate, {}},
                        Variant{"drop-tail", M::kDropTail, {}},
                        Variant{"DA(0,20)", M::kNone, {0.2, 0.0}},
                        Variant{"DA+droptail", M::kDropTail, {0.2, 0.0}}}) {
    const auto result = run(v.mitigation, v.theta);
    for (std::size_t k : {1u, 0u}) {
      bench::print_relative_row(v.name, k == 1 ? "high" : "low",
                                core::relative_difference(none.per_class[k],
                                                          result.per_class[k]));
    }
    std::printf("  %-12s copies %zu, tail-dropped %zu\n", v.name,
                result.speculative_copies, result.tail_dropped_tasks);
  }
  std::printf("\n  expectation: speculation recovers most of the straggler tail for\n"
              "  free accuracy; drop-tail buys similar latency at a small bounded\n"
              "  accuracy cost and composes with differential approximation.\n");
  return 0;
}
