// Ablation: eviction-and-restart instability (paper Sections 2.1 and 6,
// citing Jelenkovic's "Is Sharing with Retransmissions Causing
// Instabilities?").
//
// Preemptive-repeat re-executes evicted low-priority jobs from scratch.
// When the high-priority interrupt rate approaches the low job's service
// decay rate, the restart transform E[e^{aS}] diverges: the low class
// becomes unstable even though the *nominal* utilization stays below 1.
// We sweep the high-priority load and compare
//   - the analytic restart model (repeat_completion_mean),
//   - the preemptive-repeat queue simulator,
//   - the preemptive-resume ideal (always stable here).
#include <cstdio>
#include <vector>

#include "bench/scenarios.hpp"
#include "model/mg1_priority.hpp"
#include "model/priority_queue_sim.hpp"

int main() {
  using namespace dias;
  bench::print_header("Ablation: preempt-repeat instability vs high-priority load");

  // Low-priority jobs: Erlang-4 with mean 8 s (decay rate 0.5/phase).
  const auto low_service = model::PhaseType::erlang(4, 0.5);
  const auto high_service = model::PhaseType::exponential(2.0);  // mean 0.5 s
  const double lambda_low = 0.02;

  std::printf("  %-10s %-10s %13s %22s %14s\n", "lambda_hi", "nominal", "repeat-model",
              "repeat-sim", "resume-sim");
  for (double lambda_high : {0.1, 0.2, 0.4, 0.8, 1.2, 1.6, 1.9}) {
    const double nominal =
        lambda_low * low_service.mean() + lambda_high * high_service.mean();

    // Analytic completion mean of a low job (busy period from high class).
    const double rho_high = lambda_high * high_service.mean();
    const double busy = high_service.mean() / (1.0 - rho_high);
    const auto completion =
        model::Mg1PriorityQueue::repeat_completion_mean(low_service, lambda_high, busy);

    const auto arrivals = model::Mmap::marked_poisson({lambda_low, lambda_high});
    const std::vector<model::PhaseType> services{low_service, high_service};
    model::PriorityQueueSimOptions options;
    options.jobs = 120000;
    options.warmup = 12000;
    options.seed = 7;
    options.max_backlog = 20000;
    options.drain_after_arrivals = false;  // queued low jobs are censored
    const auto repeat = model::simulate_priority_queue(
        arrivals, services, model::SimDiscipline::kPreemptiveRepeatIdentical, options);
    const auto resume = model::simulate_priority_queue(
        arrivals, services, model::SimDiscipline::kPreemptiveResume, options);

    const double done_ratio =
        repeat.generated[0] == 0
            ? 1.0
            : static_cast<double>(repeat.completed[0]) /
                  static_cast<double>(repeat.generated[0]);
    char model_col[32], repeat_col[40];
    if (completion.has_value()) {
      std::snprintf(model_col, sizeof(model_col), "%11.1f s", *completion);
    } else {
      std::snprintf(model_col, sizeof(model_col), "%13s", "DIVERGED");
    }
    if (repeat.truncated || done_ratio < 0.5 || repeat.response[0].count() == 0) {
      std::snprintf(repeat_col, sizeof(repeat_col), "UNSTABLE (%2.0f%% done)",
                    100.0 * done_ratio);
    } else {
      std::snprintf(repeat_col, sizeof(repeat_col), "%9.1f s (%3.0f%% done)",
                    repeat.response[0].mean(), 100.0 * done_ratio);
    }
    std::printf("  %-10.2f %-10.2f %13s %22s %12.1f s\n", lambda_high, nominal, model_col,
                repeat_col, resume.response[0].mean());
  }
  std::printf("\n  the repeat column blows up long before nominal utilization reaches 1,\n"
              "  and the analytic transform diverges at the same knee -- the resource\n"
              "  waste DiAS eliminates is not just overhead but a stability hazard.\n");
  return 0;
}
