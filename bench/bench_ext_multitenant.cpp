// Extension: sharded multi-tenant dispatcher with burst-credit fairness.
//
// Three phases:
//   1. Submission-plane throughput: 32 threads hammer submit() against the
//      single-lane dispatcher and against 8 striped lanes (runner plugged,
//      so the measurement isolates the submission plane). The striped
//      plane's win scales with physical parallelism: on a single-core host
//      the ratio is muted because every submitter is time-sliced onto the
//      same CPU either way.
//   2. Fairness sweep: 10k tenants (9000 steady + 1000 aggressive + a few
//      outright hogs) through the fair-share ledger. The ladder deflates,
//      deprioritizes, and sheds the over-quota cohorts; Jain's index over
//      each equal-demand cohort's achieved service must stay >= 0.9, and
//      per-class p99 response is reported for 1 vs 8 lanes.
//   3. Burst credits: a tenant whose burst stays within its credit balance
//      rides the normal queues (p99 close to the steady tenants); the same
//      burst with zero credits walks the deprioritize ladder instead.
//
// Each configuration emits one machine-readable line:
//   BENCH {"bench":"ext_multitenant","phase":"submit_throughput",...}
// Exit status: non-zero when the phase-2 fairness index drops below 0.9
// (the CI quick-mode gate).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/scenarios.hpp"
#include "core/dispatcher.hpp"
#include "core/tenant.hpp"
#include "obs/json.hpp"

namespace {

using namespace dias;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Busy-spin for `s` seconds: sleep granularity on the test hosts is far
// coarser than the sub-millisecond services these phases need.
void spin_for(double s) {
  const auto until = Clock::now() + std::chrono::duration<double>(s);
  while (Clock::now() < until) {
  }
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// --- phase 1: submission-plane throughput -----------------------------------

double measure_submit_throughput(std::size_t lanes, std::size_t threads,
                                 std::size_t jobs_per_thread) {
  core::DispatcherOptions opts;
  opts.lanes = lanes;
  core::DiasDispatcher dispatcher({0.0, 0.0}, opts);

  // Plug the runner: the measurement covers enqueue only, not service.
  std::atomic<bool> release{false};
  std::atomic<bool> plugged{false};
  dispatcher.submit(1, [&](double) {
    plugged = true;
    while (!release.load()) std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  while (!plugged.load()) std::this_thread::sleep_for(std::chrono::microseconds(100));

  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const core::TenantId tenant{t + 1};  // tenant-affine lane spread
      for (std::size_t i = 0; i < jobs_per_thread; ++i) {
        dispatcher.submit(i % 2, tenant, [](double) {});
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  const auto t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double elapsed = seconds_since(t0);
  release = true;
  dispatcher.drain();
  return static_cast<double>(threads * jobs_per_thread) / elapsed;
}

double run_submit_throughput(bool quick) {
  const std::size_t threads = quick ? 16 : 32;
  const std::size_t per_thread = quick ? 1000 : 3000;
  const double single = measure_submit_throughput(1, threads, per_thread);
  const double striped = measure_submit_throughput(8, threads, per_thread);
  const double ratio = striped / single;
  std::printf("  submit throughput (%zu threads x %zu jobs): 1 lane %.0f/s, "
              "8 lanes %.0f/s, ratio %.2fx\n",
              threads, per_thread, single, striped, ratio);
  std::printf("    (on single-core hosts the ratio is time-slice bound; the\n"
              "     >=3x acceptance target applies to multi-core runs)\n");
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "ext_multitenant");
  w.field("phase", "submit_throughput");
  w.field("threads", std::uint64_t{threads});
  w.field("jobs_per_thread", std::uint64_t{per_thread});
  w.field("hardware_concurrency",
          std::uint64_t{std::thread::hardware_concurrency()});
  w.field("single_lane_jobs_per_s", single);
  w.field("striped8_jobs_per_s", striped);
  w.field("speedup", ratio);
  w.end_object();
  std::printf("BENCH %s\n", std::move(w).str().c_str());
  return ratio;
}

// --- phase 2: 10k-tenant fairness sweep -------------------------------------

struct FairnessResult {
  double jain_steady = 0.0;
  double jain_aggressive = 0.0;
  double ledger_fairness = 1.0;
  double p99_low_s = 0.0;   // class 0: aggressive + hogs
  double p99_high_s = 0.0;  // class 1: steady
  std::uint64_t deflated = 0, deprioritized = 0, shed = 0, bursts = 0;
  double duration_s = 0.0;
};

FairnessResult run_fairness_config(std::size_t lanes, std::size_t steady_n,
                                   std::size_t aggressive_n, std::size_t hog_n,
                                   double window_s, double aggressive_service) {
  // Cohort tenant ids: hogs, then aggressive, then steady.
  const std::size_t first_aggressive = hog_n + 1;
  const std::size_t first_steady = hog_n + aggressive_n + 1;
  constexpr double kSteadyService = 100e-6;
  constexpr std::size_t kAggressiveJobs = 8;
  constexpr double kHogService = 2e-3;
  constexpr std::size_t kHogJobs = 40;
  constexpr std::size_t kHogChunks = 4;

  core::DispatcherOptions opts;
  opts.lanes = lanes;
  opts.tenant.enabled = true;
  // A 1 s usage halflife matches the few-second window; near-zero credits
  // so the ladder reacts inside it. The ledger budget is a quarter of the
  // plant (operators keep fair shares below raw capacity for headroom),
  // which puts each aggressive tenant ~2.5-3x over its 1/N share — the
  // deflate/deprioritize rungs — while the hogs (>10x) reach shedding.
  // The activity floor is raised so the steady cohort (far below share)
  // does not dilute the fair-share denominator.
  opts.tenant.ledger.capacity_slots = 0.25;
  opts.tenant.ledger.usage_halflife_s = 1.0;
  opts.tenant.ledger.burst_credit_s = 2e-4;
  opts.tenant.ledger.credit_refill_per_s = 1e-3;
  opts.tenant.ledger.activity_floor = 5e-4;
  opts.tenant.ledger.deprioritize_ratio = 1.5;
  opts.tenant.ledger.shed_ratio = 4.0;
  core::DiasDispatcher dispatcher({0.0, 0.0}, opts);

  const auto t0 = Clock::now();
  const auto job = [](double service) {
    return [service](double theta) { spin_for(service * (1.0 - theta)); };
  };

  // Submissions are paced across `window_s` in passes: later passes see the
  // usage that earlier completions fed into the ledger, which is what lets
  // admission-time ladder decisions engage at all. Hogs front-load their
  // demand in a few chunks instead (that is what makes them hogs).
  const std::size_t threads = 4;
  const auto pass_gap =
      std::chrono::duration<double>(window_s / (kAggressiveJobs + 1));
  std::vector<std::thread> submitters;
  submitters.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t pass = 0; pass < kAggressiveJobs; ++pass) {
        if (pass < kHogChunks) {
          for (std::size_t id = 1 + t; id <= hog_n; id += threads) {
            for (std::size_t j = 0; j < kHogJobs / kHogChunks; ++j) {
              dispatcher.submit(0, core::TenantId{id}, job(kHogService));
            }
          }
        }
        for (std::size_t id = first_aggressive + t; id < first_steady; id += threads) {
          dispatcher.submit(0, core::TenantId{id}, job(aggressive_service));
        }
        for (std::size_t i = pass; i < steady_n; i += kAggressiveJobs) {
          const std::size_t id = first_steady + i;
          if (id % threads == t % threads) {
            dispatcher.submit(1, core::TenantId{id}, job(kSteadyService));
          }
        }
        std::this_thread::sleep_for(pass_gap);
      }
    });
  }
  for (auto& th : submitters) th.join();
  const auto records = dispatcher.drain();

  FairnessResult r;
  r.duration_s = seconds_since(t0);
  const auto snap = dispatcher.load_snapshot();
  r.ledger_fairness = snap.tenant_fairness_index;
  r.deflated = snap.tenant_deflated;
  r.deprioritized = snap.tenant_deprioritized;
  r.shed = snap.tenant_shed;
  r.bursts = snap.tenant_bursts;

  // Achieved service per tenant is the *nominal* work each completed job
  // represents, service * (1 - theta): deterministic under scheduler noise,
  // and it is exactly what deflation and shedding take away.
  std::map<std::uint64_t, double> service;
  std::vector<double> low_resp, high_resp;
  for (const auto& rec : records) {
    if (rec.outcome != core::JobOutcome::kCompleted) continue;
    const double nominal = rec.tenant.value < first_aggressive ? kHogService
                           : rec.tenant.value < first_steady   ? aggressive_service
                                                               : kSteadyService;
    service[rec.tenant.value] += nominal * (1.0 - rec.theta);
    (rec.priority == 0 ? low_resp : high_resp).push_back(rec.response_s());
  }
  r.p99_low_s = percentile(low_resp, 0.99);
  r.p99_high_s = percentile(high_resp, 0.99);

  // Jain over each *equal-demand* cohort's achieved service: steady tenants
  // must be untouched, aggressive tenants must be degraded evenly.
  std::vector<double> steady_service, aggressive_service_totals;
  for (std::size_t i = 0; i < steady_n; ++i) {
    steady_service.push_back(service[first_steady + i]);
  }
  for (std::size_t i = 0; i < aggressive_n; ++i) {
    aggressive_service_totals.push_back(service[first_aggressive + i]);
  }
  r.jain_steady = core::FairShareLedger::jain_index(steady_service);
  r.jain_aggressive = core::FairShareLedger::jain_index(aggressive_service_totals);
  return r;
}

double run_fairness(bool quick) {
  const std::size_t steady_n = quick ? 900 : 9000;
  const std::size_t aggressive_n = quick ? 100 : 1000;
  const std::size_t hog_n = quick ? 5 : 20;
  // Sized so the aggressive cohort's combined demand oversubscribes the
  // single-slot plant ~1.6x inside the window — each tenant individually
  // over its 1/N fair share.
  const double window_s = quick ? 1.0 : 3.0;
  const double aggressive_service = quick ? 2e-3 : 6e-4;
  double gate = 1.0;
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{8}}) {
    const auto r = run_fairness_config(lanes, steady_n, aggressive_n, hog_n,
                                       window_s, aggressive_service);
    const double fairness = std::min(r.jain_steady, r.jain_aggressive);
    if (lanes == 8) gate = fairness;
    std::printf("  fairness %zu lanes, %zu tenants (%zu aggressive, %zu hogs): "
                "Jain steady %.4f, aggressive %.4f, ledger %.4f\n"
                "    ladder: %llu deflated, %llu deprioritized, %llu shed, "
                "%llu credit bursts; p99 low %.1f ms, high %.1f ms (%.2f s)\n",
                lanes, steady_n + aggressive_n + hog_n, aggressive_n, hog_n,
                r.jain_steady, r.jain_aggressive, r.ledger_fairness,
                static_cast<unsigned long long>(r.deflated),
                static_cast<unsigned long long>(r.deprioritized),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.bursts), r.p99_low_s * 1e3,
                r.p99_high_s * 1e3, r.duration_s);
    obs::JsonWriter w;
    w.begin_object();
    w.field("bench", "ext_multitenant");
    w.field("phase", "fairness");
    w.field("lanes", std::uint64_t{lanes});
    w.field("tenants", std::uint64_t{steady_n + aggressive_n + hog_n});
    w.field("aggressive", std::uint64_t{aggressive_n});
    w.field("hogs", std::uint64_t{hog_n});
    w.field("jain_steady", r.jain_steady);
    w.field("jain_aggressive", r.jain_aggressive);
    w.field("fairness_index", fairness);
    w.field("ledger_fairness_index", r.ledger_fairness);
    w.field("deflated", r.deflated);
    w.field("deprioritized", r.deprioritized);
    w.field("shed", r.shed);
    w.field("credit_bursts", r.bursts);
    w.field("p99_low_s", r.p99_low_s);
    w.field("p99_high_s", r.p99_high_s);
    w.field("duration_s", r.duration_s);
    w.end_object();
    std::printf("BENCH %s\n", std::move(w).str().c_str());
  }
  return gate;
}

// --- phase 3: burst credits -------------------------------------------------

struct BurstResult {
  double p99_steady_s = 0.0;
  double p99_bursty_s = 0.0;
  std::uint64_t bursts = 0, deflated = 0, deprioritized = 0;
};

BurstResult run_burst_config(double burst_credit_s) {
  constexpr std::size_t kSteadyTenants = 4;
  constexpr double kService = 0.7e-3;
  constexpr double kSteadyGap = 1.5e-3;  // rotating: each tenant every 6 ms
  constexpr std::size_t kSteadyJobs = 600;
  constexpr std::size_t kBurstJobs = 60;
  constexpr double kBurstGap = 1.0e-3;
  const core::TenantId bursty{99};

  core::DispatcherOptions opts;
  opts.lanes = 4;
  opts.tenant.enabled = true;
  // A 50 ms usage halflife makes the ladder see a ~60 ms burst at all;
  // with credits covering the over-share charge the burst is tolerated,
  // with zero credits it is deprioritized mid-flight.
  opts.tenant.ledger.usage_halflife_s = 0.05;
  opts.tenant.ledger.burst_credit_s = burst_credit_s;
  opts.tenant.ledger.credit_refill_per_s = burst_credit_s;
  opts.tenant.ledger.deprioritize_ratio = 1.5;
  opts.tenant.ledger.shed_ratio = 100.0;  // sheds would hide the latency story
  core::DiasDispatcher dispatcher({0.0}, opts);

  std::thread burster([&] {
    // Fire the burst a third of the way into the steady stream.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    for (std::size_t i = 0; i < kBurstJobs; ++i) {
      dispatcher.submit(0, bursty, [](double theta) {
        spin_for(kService * (1.0 - theta));
      });
      spin_for(kBurstGap);
    }
  });
  for (std::size_t i = 0; i < kSteadyJobs; ++i) {
    dispatcher.submit(0, core::TenantId{1 + i % kSteadyTenants},
                      [](double theta) { spin_for(kService * (1.0 - theta)); });
    spin_for(kSteadyGap);
  }
  burster.join();
  const auto records = dispatcher.drain();

  BurstResult r;
  const auto snap = dispatcher.load_snapshot();
  r.bursts = snap.tenant_bursts;
  r.deflated = snap.tenant_deflated;
  r.deprioritized = snap.tenant_deprioritized;
  std::vector<double> steady_resp, bursty_resp;
  for (const auto& rec : records) {
    if (rec.outcome != core::JobOutcome::kCompleted) continue;
    (rec.tenant == bursty ? bursty_resp : steady_resp).push_back(rec.response_s());
  }
  r.p99_steady_s = percentile(steady_resp, 0.99);
  r.p99_bursty_s = percentile(bursty_resp, 0.99);
  return r;
}

void run_burst_credits() {
  const auto with_credits = run_burst_config(0.05);
  const auto no_credits = run_burst_config(0.0);
  const double covered_ratio = with_credits.p99_bursty_s /
                               std::max(with_credits.p99_steady_s, 1e-9);
  const double uncovered_ratio =
      no_credits.p99_bursty_s / std::max(no_credits.p99_steady_s, 1e-9);
  std::printf("  burst within credits: bursty p99 %.2f ms vs steady %.2f ms "
              "(%.2fx); %llu credit-covered admissions\n",
              with_credits.p99_bursty_s * 1e3, with_credits.p99_steady_s * 1e3,
              covered_ratio, static_cast<unsigned long long>(with_credits.bursts));
  std::printf("  same burst, zero credits: bursty p99 %.2f ms vs steady %.2f ms "
              "(%.2fx); %llu deflated, %llu deprioritized\n",
              no_credits.p99_bursty_s * 1e3, no_credits.p99_steady_s * 1e3,
              uncovered_ratio, static_cast<unsigned long long>(no_credits.deflated),
              static_cast<unsigned long long>(no_credits.deprioritized));
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", "ext_multitenant");
  w.field("phase", "burst_credits");
  w.field("covered_p99_bursty_s", with_credits.p99_bursty_s);
  w.field("covered_p99_steady_s", with_credits.p99_steady_s);
  w.field("covered_p99_ratio", covered_ratio);
  w.field("covered_credit_bursts", with_credits.bursts);
  w.field("uncovered_p99_bursty_s", no_credits.p99_bursty_s);
  w.field("uncovered_p99_steady_s", no_credits.p99_steady_s);
  w.field("uncovered_p99_ratio", uncovered_ratio);
  w.field("uncovered_deflated", no_credits.deflated);
  w.field("uncovered_deprioritized", no_credits.deprioritized);
  w.end_object();
  std::printf("BENCH %s\n", std::move(w).str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::print_header(
      "Extension: sharded multi-tenant dispatcher + burst-credit fairness");
  run_submit_throughput(quick);
  std::printf("\n");
  const double fairness = run_fairness(quick);
  std::printf("\n");
  if (!quick) run_burst_credits();

  if (fairness < 0.9) {
    std::printf("\n  FAILED: fairness index %.4f < 0.9\n", fairness);
    return 1;
  }
  std::printf("\n  expectation: the striped submission plane scales submit()\n"
              "  with physical cores; the ladder keeps equal-demand cohorts\n"
              "  even (Jain >= 0.9) while degrading over-quota tenants in\n"
              "  deflate -> deprioritize -> shed order; a burst inside the\n"
              "  credit balance rides the normal queues.\n");
  return 0;
}
