// Extension: disabled-chaos overhead gate (ISSUE 10 satellite e).
//
// The chaos plane adds a hook to every hot subsystem (task bodies, wave
// lanes, spill/storage I/O, admission, arena allocation). Its contract is
// that a *disarmed* hook costs one relaxed atomic load and a predictable
// branch — cheap enough that shipping the hooks always-on is free. This
// bench verifies that on the spill-shuffle hot path, the densest hook
// consumer, and fails when the bound is violated.
//
// Wall-clock A/B on a noisy one-core CI box cannot resolve a <1% delta,
// so the gate is measured structurally instead:
//
//   E = hook crossings on the workload, counted by arming every point at
//       rate 0 (decisions run, nothing ever fires) and reading the
//       plane's evaluation census;
//   c = per-call cost of a disarmed hook, microbenched over 10M calls;
//   W = disarmed workload wall time (min over reps).
//
// Gate: E * c <= 1% of W. The A/B wall times are printed for reference.
//
// Run with --quick in CI for a smaller input and fewer reps.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench/scenarios.hpp"
#include "chaos/chaos.hpp"
#include "engine/engine.hpp"
#include "storage/block_store.hpp"
#include "storage/spill_store.hpp"

namespace {

using namespace dias;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Config {
  bool quick = false;
  std::size_t records() const { return quick ? (1u << 18) : (1u << 20); }
  int reps() const { return quick ? 3 : 5; }
};

// Spilled reduce_by_key: every rep crosses the engine-task, spill-write,
// storage-write, spill-open/read and storage-read hooks.
double run_shuffle(const Config& cfg, const std::filesystem::path& root) {
  storage::BlockStoreOptions store_opts;
  store_opts.root = root;
  store_opts.block_bytes = 1 << 16;
  storage::BlockStore store(store_opts);
  storage::BlockStoreSpill spill(store, "bench");

  engine::Engine::Options opts;
  opts.workers = 4;
  engine::Engine eng(opts);
  eng.set_spill_backend(&spill);

  std::vector<std::pair<std::uint32_t, std::uint64_t>> records;
  records.reserve(cfg.records());
  for (std::size_t i = 0; i < cfg.records(); ++i) {
    records.emplace_back(static_cast<std::uint32_t>(i % 4096), 1);
  }
  const auto ds = eng.parallelize(std::move(records), 32);
  engine::ShuffleOptions shuffle;
  shuffle.target_buffer_bytes = 1 << 15;
  shuffle.memory_budget_bytes = 1 << 18;  // forces spilling
  const double t0 = now_s();
  const auto reduced = eng.reduce_by_key(
      ds, [](std::uint64_t a, std::uint64_t b) { return a + b; }, 8, {}, shuffle);
  const double wall = now_s() - t0;
  if (reduced.total_size() != 4096) std::abort();  // wrong answer: no gate at all
  return wall;
}

double min_wall(const Config& cfg, const std::filesystem::path& root, const char* tag) {
  double best = 1e300;
  for (int r = 0; r < cfg.reps(); ++r) {
    const auto dir = root / (std::string(tag) + "-" + std::to_string(r));
    best = std::min(best, run_shuffle(cfg, dir));
    std::filesystem::remove_all(dir);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) cfg.quick = true;
  }
  bench::print_header("Extension: chaos plane disabled-overhead gate");
  const auto root = std::filesystem::temp_directory_path() /
                    ("dias_bench_chaos_" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);

  auto& plane = chaos::ChaosPlane::instance();
  plane.clear();

  // 1. Disarmed wall time (the shipping configuration).
  const double disarmed_s = min_wall(cfg, root, "off");

  // 2. Hook census: arm everything at rate 0 so each crossing runs a full
  //    decision but nothing ever fires, then count the evaluations.
  chaos::PointSpec zero;
  zero.rate = 0.0;
  const std::uint64_t evals_before = plane.evaluations();
  plane.install(chaos::ChaosSchedule::uniform(1, zero));
  const double armed_s = min_wall(cfg, root, "armed");
  plane.clear();
  const std::uint64_t crossings =
      (plane.evaluations() - evals_before) / static_cast<std::uint64_t>(cfg.reps());

  // 3. Disarmed per-hook cost: the relaxed load + branch every call site
  //    pays when chaos is off.
  chaos::InjectionPoint& probe = plane.point("bench.disarmed-probe");
  constexpr std::uint64_t kProbeCalls = 10'000'000;
  std::uint64_t sink = 0;
  const double p0 = now_s();
  for (std::uint64_t i = 0; i < kProbeCalls; ++i) {
    sink += probe.armed() ? 1 : 0;
  }
  const double per_hook_s = (now_s() - p0) / static_cast<double>(kProbeCalls);
  if (sink != 0) std::abort();  // probe must stay disarmed

  const double overhead_s = static_cast<double>(crossings) * per_hook_s;
  const double overhead_pct = 100.0 * overhead_s / disarmed_s;
  const double ab_pct = 100.0 * (armed_s - disarmed_s) / disarmed_s;

  std::printf("  %zu records, %d reps, min-of-reps walls\n\n",
              cfg.records(), cfg.reps());
  std::printf("  disarmed shuffle wall           %10.2f ms\n", 1000.0 * disarmed_s);
  std::printf("  armed rate-0 shuffle wall       %10.2f ms  (%+.1f%% vs disarmed; "
              "reference only, full decisions run)\n",
              1000.0 * armed_s, ab_pct);
  std::printf("  hook crossings per run          %10llu\n",
              static_cast<unsigned long long>(crossings));
  std::printf("  disarmed cost per hook          %10.2f ns\n", 1e9 * per_hook_s);
  std::printf("  disabled-chaos overhead         %10.4f%% of the hot path\n",
              overhead_pct);
  std::printf("\n  BENCH {\"bench\":\"ext_chaos\",\"crossings\":%llu,"
              "\"hook_ns\":%.3f,\"wall_ms\":%.2f,\"overhead_pct\":%.4f}\n",
              static_cast<unsigned long long>(crossings), 1e9 * per_hook_s,
              1000.0 * disarmed_s, overhead_pct);
  std::printf("  budget: disabled overhead must stay under 1%%  [%s]\n",
              overhead_pct < 1.0 ? "OK" : "OVER BUDGET");
  std::filesystem::remove_all(root);
  return overhead_pct < 1.0 ? 0 : 1;
}
