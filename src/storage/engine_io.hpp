// Bridges the block store into the mini MapReduce engine.
//
// Mirrors how Spark reads HDFS: one partition per storage block, the read
// happening inside the (droppable) map task -- so a dropped task never
// fetches its block, and the store's I/O counters expose the savings the
// paper attributes to early task dropping.
#pragma once

#include <cstddef>
#include <numeric>
#include <string>

#include "engine/engine.hpp"
#include "storage/block_store.hpp"

namespace dias::storage {

// Loads `name` as a line dataset with one partition per block. The read
// stage is droppable: at drop ratio theta only ceil(blocks (1 - theta))
// blocks are fetched, the rest stay untouched on disk.
inline engine::Dataset<std::string> read_lines_dataset(engine::Engine& eng,
                                                       const BlockStore& store,
                                                       const std::string& name,
                                                       double drop_override = -1.0) {
  const FileMetadata meta = store.stat(name);
  DIAS_EXPECTS(meta.blocks >= 1, "file has no blocks");
  std::vector<std::size_t> block_ids(meta.blocks);
  std::iota(block_ids.begin(), block_ids.end(), std::size_t{0});
  const auto ids = eng.parallelize(std::move(block_ids), meta.blocks);

  engine::StageOptions opts;
  opts.name = "storage/" + name;
  opts.droppable = true;
  opts.drop_ratio_override = drop_override;
  return eng.map_partitions(
      ids,
      [&store, &name](const std::vector<std::size_t>& part) {
        std::vector<std::string> lines;
        for (std::size_t block : part) {
          auto block_lines = store.read_block_lines(name, block);
          lines.insert(lines.end(), std::make_move_iterator(block_lines.begin()),
                       std::make_move_iterator(block_lines.end()));
        }
        return lines;
      },
      opts);
}

}  // namespace dias::storage
