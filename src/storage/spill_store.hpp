// BlockStore-backed spill destination for the memory-elastic shuffle.
//
// Each spilled shuffle segment becomes one block-store file named
// "<prefix>-<id>" (binary blocks via BlockStore::write_bytes, so spilled
// bytes get the store's checksums and replication for free). Reading back
// streams the file block by block through BlockStore::Reader — the merge
// phase never holds more than one block of a spilled segment in memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "engine/spill.hpp"
#include "storage/block_store.hpp"

namespace dias::storage {

class BlockStoreSpill final : public engine::SpillBackend {
 public:
  // The store must outlive this backend. `prefix` namespaces the segment
  // files so several backends (or spill generations) can share one store.
  explicit BlockStoreSpill(BlockStore& store, std::string prefix = "spill");

  std::uint64_t write(const std::string& bytes) override;
  std::unique_ptr<engine::SpillReader> open(std::uint64_t handle) override;
  void release(std::uint64_t handle) override;
  engine::SpillStats stats() const override;

  // The block-store file name backing `handle`; exposed for tests that
  // inject corruption underneath the engine.
  std::string segment_name(std::uint64_t handle) const;

 private:
  BlockStore& store_;
  const std::string prefix_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> segments_written_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> segments_read_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
};

}  // namespace dias::storage
