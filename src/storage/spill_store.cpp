#include "storage/spill_store.hpp"

#include <utility>

#include "chaos/chaos.hpp"

namespace dias::storage {
namespace {

// Adapts BlockStore::Reader to the engine's chunk-stream interface,
// counting streamed bytes into the owning backend's stats. Every chunk
// passes the spill.read chaos point (throw/stall); a raised ChaosError
// reaches the shuffle merge's read guard exactly like a real I/O error.
class BlockSpillReader final : public engine::SpillReader {
 public:
  BlockSpillReader(BlockStore::Reader reader, std::uint64_t handle,
                   std::atomic<std::uint64_t>& bytes_read)
      : reader_(std::move(reader)), handle_(handle), bytes_read_(bytes_read) {}

  bool next(std::string& chunk) override {
    static chaos::InjectionPoint& chaos_read =
        chaos::ChaosPlane::instance().point(chaos::points::kSpillRead);
    if (chaos_read.armed()) chaos_read.inject(handle_, chunk_index_);
    ++chunk_index_;
    if (!reader_.next(chunk)) return false;
    bytes_read_.fetch_add(chunk.size(), std::memory_order_relaxed);
    return true;
  }

 private:
  BlockStore::Reader reader_;
  const std::uint64_t handle_;
  std::uint64_t chunk_index_ = 0;
  std::atomic<std::uint64_t>& bytes_read_;
};

}  // namespace

BlockStoreSpill::BlockStoreSpill(BlockStore& store, std::string prefix)
    : store_(store), prefix_(std::move(prefix)) {}

std::string BlockStoreSpill::segment_name(std::uint64_t handle) const {
  return prefix_ + "-" + std::to_string(handle);
}

std::uint64_t BlockStoreSpill::write(const std::string& bytes) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // spill.write chaos point, keyed by a content hash so the decision is
  // independent of which worker spills which segment when. kThrow feeds
  // the spill circuit breaker; kCorrupt mangles a payload byte past the
  // header so the decode path (not this write) detects it on read-back.
  static chaos::InjectionPoint& chaos_write =
      chaos::ChaosPlane::instance().point(chaos::points::kSpillWrite);
  if (chaos_write.armed() && !bytes.empty() &&
      chaos_write.inject(chaos::detail::fnv1a(bytes), bytes.size())) {
    std::string mangled = bytes;
    mangled[mangled.size() / 2] ^= std::string::value_type{0x5A};
    store_.write_bytes(segment_name(id), mangled);
    segments_written_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(mangled.size(), std::memory_order_relaxed);
    return id;
  }
  store_.write_bytes(segment_name(id), bytes);
  segments_written_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return id;
}

std::unique_ptr<engine::SpillReader> BlockStoreSpill::open(std::uint64_t handle) {
  static chaos::InjectionPoint& chaos_open =
      chaos::ChaosPlane::instance().point(chaos::points::kSpillOpen);
  if (chaos_open.armed()) chaos_open.inject(handle);
  auto reader = store_.open_reader(segment_name(handle));
  segments_read_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<BlockSpillReader>(std::move(reader), handle, bytes_read_);
}

void BlockStoreSpill::release(std::uint64_t handle) {
  store_.remove(segment_name(handle));
}

engine::SpillStats BlockStoreSpill::stats() const {
  engine::SpillStats s;
  s.segments_written = segments_written_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.segments_read = segments_read_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dias::storage
