#include "storage/spill_store.hpp"

#include <utility>

namespace dias::storage {
namespace {

// Adapts BlockStore::Reader to the engine's chunk-stream interface,
// counting streamed bytes into the owning backend's stats.
class BlockSpillReader final : public engine::SpillReader {
 public:
  BlockSpillReader(BlockStore::Reader reader, std::atomic<std::uint64_t>& bytes_read)
      : reader_(std::move(reader)), bytes_read_(bytes_read) {}

  bool next(std::string& chunk) override {
    if (!reader_.next(chunk)) return false;
    bytes_read_.fetch_add(chunk.size(), std::memory_order_relaxed);
    return true;
  }

 private:
  BlockStore::Reader reader_;
  std::atomic<std::uint64_t>& bytes_read_;
};

}  // namespace

BlockStoreSpill::BlockStoreSpill(BlockStore& store, std::string prefix)
    : store_(store), prefix_(std::move(prefix)) {}

std::string BlockStoreSpill::segment_name(std::uint64_t handle) const {
  return prefix_ + "-" + std::to_string(handle);
}

std::uint64_t BlockStoreSpill::write(const std::string& bytes) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  store_.write_bytes(segment_name(id), bytes);
  segments_written_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(bytes.size(), std::memory_order_relaxed);
  return id;
}

std::unique_ptr<engine::SpillReader> BlockStoreSpill::open(std::uint64_t handle) {
  auto reader = store_.open_reader(segment_name(handle));
  segments_read_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<BlockSpillReader>(std::move(reader), bytes_read_);
}

void BlockStoreSpill::release(std::uint64_t handle) {
  store_.remove(segment_name(handle));
}

engine::SpillStats BlockStoreSpill::stats() const {
  engine::SpillStats s;
  s.segments_written = segments_written_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.segments_read = segments_read_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dias::storage
