#include "storage/block_store.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "chaos/chaos.hpp"
#include "common/error.hpp"

namespace dias::storage {
namespace {

constexpr const char* kMetaFile = ".meta";

void check_name(const std::string& name) {
  DIAS_EXPECTS(!name.empty(), "file name must be non-empty");
  DIAS_EXPECTS(name.find('/') == std::string::npos && name.find("..") == std::string::npos,
               "file name must be a plain identifier");
}

}  // namespace

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

BlockStore::BlockStore(BlockStoreOptions options) : options_(std::move(options)) {
  DIAS_EXPECTS(!options_.root.empty(), "block store needs a root directory");
  DIAS_EXPECTS(options_.block_bytes >= 64, "block size too small");
  DIAS_EXPECTS(options_.replication >= 1, "replication must be >= 1");
  std::filesystem::create_directories(options_.root);
}

std::filesystem::path BlockStore::file_dir(const std::string& name) const {
  return options_.root / name;
}

std::filesystem::path BlockStore::block_path(const std::string& name, std::size_t block,
                                             int replica) const {
  std::ostringstream os;
  os << "block-" << block << ".r" << replica;
  return file_dir(name) / os.str();
}

namespace {

// storage.write / storage.read chaos points, shared by every BlockStore
// method of that class. Coordinates: the file-name hash plus a block (or
// op) index, so a given (seed, file, block) decision is stable however
// the work is scheduled. kCorrupt is a spill-writer concern; here it is
// ignored (the checksum/replica machinery is exercised by the dedicated
// corruption tests).
chaos::InjectionPoint& storage_write_point() {
  static chaos::InjectionPoint& p =
      chaos::ChaosPlane::instance().point(chaos::points::kStorageWrite);
  return p;
}

chaos::InjectionPoint& storage_read_point() {
  static chaos::InjectionPoint& p =
      chaos::ChaosPlane::instance().point(chaos::points::kStorageRead);
  return p;
}

}  // namespace

FileMetadata BlockStore::write_lines(const std::string& name,
                                     const std::vector<std::string>& lines) {
  check_name(name);
  if (storage_write_point().armed()) {
    storage_write_point().inject(chaos::detail::fnv1a(name), lines.size());
  }
  const auto dir = file_dir(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FileMetadata meta;
  meta.name = name;
  meta.lines = lines.size();

  std::vector<std::uint64_t> checksums;
  std::string block_data;
  const auto flush_block = [&] {
    if (block_data.empty()) return;
    for (int r = 0; r < options_.replication; ++r) {
      std::ofstream out(block_path(name, meta.blocks, r), std::ios::binary);
      DIAS_EXPECTS(out.good(), "cannot open block file for writing");
      out << block_data;
    }
    checksums.push_back(fnv1a(block_data));
    blocks_written_ += static_cast<std::uint64_t>(options_.replication);
    bytes_written_ +=
        static_cast<std::uint64_t>(block_data.size()) * options_.replication;
    meta.bytes += block_data.size();
    ++meta.blocks;
    block_data.clear();
  };

  for (const auto& line : lines) {
    block_data += line;
    block_data += '\n';
    if (block_data.size() >= options_.block_bytes) flush_block();
  }
  flush_block();

  std::ofstream metaf(dir / kMetaFile);
  DIAS_EXPECTS(metaf.good(), "cannot write file metadata");
  metaf << meta.bytes << ' ' << meta.blocks << ' ' << meta.lines << '\n';
  for (std::uint64_t c : checksums) metaf << c << '\n';
  return meta;
}

FileMetadata BlockStore::write_bytes(const std::string& name, const std::string& data) {
  check_name(name);
  if (storage_write_point().armed()) {
    storage_write_point().inject(chaos::detail::fnv1a(name), data.size());
  }
  const auto dir = file_dir(name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  FileMetadata meta;
  meta.name = name;

  std::vector<std::uint64_t> checksums;
  for (std::size_t off = 0; off < data.size(); off += options_.block_bytes) {
    const std::string block_data = data.substr(off, options_.block_bytes);
    for (int r = 0; r < options_.replication; ++r) {
      std::ofstream out(block_path(name, meta.blocks, r), std::ios::binary);
      DIAS_EXPECTS(out.good(), "cannot open block file for writing");
      out << block_data;
    }
    checksums.push_back(fnv1a(block_data));
    blocks_written_ += static_cast<std::uint64_t>(options_.replication);
    bytes_written_ +=
        static_cast<std::uint64_t>(block_data.size()) * options_.replication;
    meta.bytes += block_data.size();
    ++meta.blocks;
  }

  std::ofstream metaf(dir / kMetaFile);
  DIAS_EXPECTS(metaf.good(), "cannot write file metadata");
  metaf << meta.bytes << ' ' << meta.blocks << ' ' << meta.lines << '\n';
  for (std::uint64_t c : checksums) metaf << c << '\n';
  return meta;
}

FileMetadata BlockStore::stat(const std::string& name) const {
  check_name(name);
  std::ifstream metaf(file_dir(name) / kMetaFile);
  DIAS_EXPECTS(metaf.good(), "file does not exist in block store");
  FileMetadata meta;
  meta.name = name;
  metaf >> meta.bytes >> meta.blocks >> meta.lines;
  return meta;
}

bool BlockStore::exists(const std::string& name) const {
  return std::filesystem::exists(file_dir(name) / kMetaFile);
}

std::vector<std::string> BlockStore::list() const {
  std::vector<std::string> names;
  if (!std::filesystem::exists(options_.root)) return names;
  for (const auto& entry : std::filesystem::directory_iterator(options_.root)) {
    if (entry.is_directory() &&
        std::filesystem::exists(entry.path() / kMetaFile)) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

void BlockStore::remove(const std::string& name) {
  check_name(name);
  std::filesystem::remove_all(file_dir(name));
}

std::vector<std::uint64_t> BlockStore::load_checksums(const std::string& name,
                                                      std::size_t blocks) const {
  std::ifstream metaf(file_dir(name) / kMetaFile);
  DIAS_EXPECTS(metaf.good(), "file does not exist in block store");
  FileMetadata ignored;
  metaf >> ignored.bytes >> ignored.blocks >> ignored.lines;
  std::vector<std::uint64_t> checksums(blocks, 0);
  for (auto& c : checksums) metaf >> c;
  DIAS_EXPECTS(metaf.good() || metaf.eof(), "corrupt metadata");
  return checksums;
}

std::string BlockStore::read_block_raw(const std::string& name, std::size_t block,
                                       std::uint64_t expected) const {
  if (storage_read_point().armed()) {
    storage_read_point().inject(chaos::detail::fnv1a(name), block);
  }
  for (int r = 0; r < options_.replication; ++r) {
    std::ifstream in(block_path(name, block, r), std::ios::binary);
    if (!in.good()) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string data = buffer.str();
    if (fnv1a(data) != expected) continue;  // corrupt copy: try a replica
    ++blocks_read_;
    bytes_read_ += data.size();
    return data;
  }
  throw error("all replicas of block are missing or corrupt: " + name);
}

std::vector<std::string> BlockStore::read_block_lines(const std::string& name,
                                                      std::size_t block) const {
  const std::string data = read_block_bytes(name, block);
  std::vector<std::string> lines;
  std::istringstream stream(data);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(std::move(line));
  return lines;
}

std::string BlockStore::read_block_bytes(const std::string& name, std::size_t block) const {
  check_name(name);
  const auto meta = stat(name);
  DIAS_EXPECTS(block < meta.blocks, "block index out of range");
  const auto checksums = load_checksums(name, meta.blocks);
  return read_block_raw(name, block, checksums[block]);
}

BlockStore::Reader BlockStore::open_reader(const std::string& name) const {
  check_name(name);
  auto meta = stat(name);
  auto checksums = load_checksums(name, meta.blocks);
  return Reader(this, std::move(meta), std::move(checksums));
}

bool BlockStore::Reader::next(std::string& chunk) {
  if (next_block_ >= meta_.blocks) return false;
  chunk = store_->read_block_raw(meta_.name, next_block_, checksums_[next_block_]);
  ++next_block_;
  return true;
}

std::vector<std::string> BlockStore::read_all_lines(const std::string& name) const {
  const auto meta = stat(name);
  std::vector<std::string> lines;
  lines.reserve(meta.lines);
  for (std::size_t b = 0; b < meta.blocks; ++b) {
    auto block = read_block_lines(name, b);
    lines.insert(lines.end(), std::make_move_iterator(block.begin()),
                 std::make_move_iterator(block.end()));
  }
  return lines;
}

std::size_t BlockStore::verify(const std::string& name) const {
  const auto meta = stat(name);
  std::size_t healthy = 0;
  for (std::size_t b = 0; b < meta.blocks; ++b) {
    try {
      read_block_lines(name, b);
      ++healthy;
    } catch (const error&) {
      // corrupt block: not healthy
    }
  }
  return healthy;
}

IoStats BlockStore::io_stats() const {
  return IoStats{blocks_read_.load(), bytes_read_.load(), blocks_written_.load(),
                 bytes_written_.load()};
}

void BlockStore::reset_io_stats() {
  blocks_read_ = 0;
  bytes_read_ = 0;
  blocks_written_ = 0;
  bytes_written_ = 0;
}

}  // namespace dias::storage
