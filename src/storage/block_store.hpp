// HDFS-like block storage (paper Section 2.4).
//
// The paper's jobs read XML dumps from HDFS: files are split into blocks
// spread over datanodes, each map task processes one block, and dropping a
// task "saves the overhead of fetching data". This scaled-down stand-in
// stores line-oriented files as fixed-size blocks on the local filesystem
// with per-block checksums and optional replication, and counts I/O so
// experiments can measure the fetch savings of dropped tasks.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace dias::storage {

struct BlockStoreOptions {
  std::filesystem::path root;         // created if missing
  std::size_t block_bytes = 64 * 1024;  // block size (HDFS: 128 MB; scaled)
  int replication = 1;                // copies written per block
};

struct FileMetadata {
  std::string name;
  std::size_t bytes = 0;
  std::size_t blocks = 0;
  std::size_t lines = 0;
};

struct IoStats {
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t blocks_written = 0;
  std::uint64_t bytes_written = 0;
};

class BlockStore {
 public:
  explicit BlockStore(BlockStoreOptions options);

  const BlockStoreOptions& options() const { return options_; }

  // Writes `lines` as a block file; lines are never split across blocks
  // (a block may exceed block_bytes by one line). Overwrites an existing
  // file of the same name.
  FileMetadata write_lines(const std::string& name, const std::vector<std::string>& lines);

  // Writes raw bytes as fixed-size binary blocks (exactly block_bytes each
  // except possibly the last) with the same checksum/replication scheme as
  // line files; meta.lines is 0. This is the on-disk shape of spilled
  // shuffle segments.
  FileMetadata write_bytes(const std::string& name, const std::string& data);

  // Reads the lines of one block (0-based), verifying its checksum. Falls
  // back to a replica when the primary copy is corrupt or missing; throws
  // if every copy fails.
  std::vector<std::string> read_block_lines(const std::string& name,
                                            std::size_t block) const;

  // Reads the raw bytes of one block, with the same checksum verification
  // and replica fallback as read_block_lines.
  std::string read_block_bytes(const std::string& name, std::size_t block) const;

  // Reads the whole file in block order.
  std::vector<std::string> read_all_lines(const std::string& name) const;

  // Streaming block reader: loads the file's metadata — sizes plus every
  // block checksum — once at open, then yields verified blocks in order.
  // Unlike per-block reads it never re-opens the metadata file, which is
  // what the merge phase wants when streaming spilled segments back.
  class Reader {
   public:
    // Replaces `chunk` with the next block's bytes; false after the last
    // block. Throws when every replica of a block is missing or corrupt.
    bool next(std::string& chunk);
    const FileMetadata& meta() const { return meta_; }

   private:
    friend class BlockStore;
    Reader(const BlockStore* store, FileMetadata meta, std::vector<std::uint64_t> checksums)
        : store_(store), meta_(std::move(meta)), checksums_(std::move(checksums)) {}

    const BlockStore* store_;
    FileMetadata meta_;
    std::vector<std::uint64_t> checksums_;
    std::size_t next_block_ = 0;
  };
  Reader open_reader(const std::string& name) const;

  FileMetadata stat(const std::string& name) const;
  bool exists(const std::string& name) const;
  std::vector<std::string> list() const;
  void remove(const std::string& name);

  // Verifies every block checksum; returns the number of healthy blocks.
  std::size_t verify(const std::string& name) const;

  // Cumulative I/O counters (thread-safe; map tasks read concurrently).
  IoStats io_stats() const;
  void reset_io_stats();

 private:
  std::filesystem::path file_dir(const std::string& name) const;
  std::filesystem::path block_path(const std::string& name, std::size_t block,
                                   int replica) const;
  // All block checksums from the metadata file (one read).
  std::vector<std::uint64_t> load_checksums(const std::string& name,
                                            std::size_t blocks) const;
  // One block's raw bytes, verified against `expected`, with replica
  // fallback; updates the read counters.
  std::string read_block_raw(const std::string& name, std::size_t block,
                             std::uint64_t expected) const;

  BlockStoreOptions options_;
  mutable std::atomic<std::uint64_t> blocks_read_{0};
  mutable std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> blocks_written_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

// FNV-1a 64-bit checksum used for block integrity.
std::uint64_t fnv1a(const std::string& data);

}  // namespace dias::storage
