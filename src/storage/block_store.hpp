// HDFS-like block storage (paper Section 2.4).
//
// The paper's jobs read XML dumps from HDFS: files are split into blocks
// spread over datanodes, each map task processes one block, and dropping a
// task "saves the overhead of fetching data". This scaled-down stand-in
// stores line-oriented files as fixed-size blocks on the local filesystem
// with per-block checksums and optional replication, and counts I/O so
// experiments can measure the fetch savings of dropped tasks.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace dias::storage {

struct BlockStoreOptions {
  std::filesystem::path root;         // created if missing
  std::size_t block_bytes = 64 * 1024;  // block size (HDFS: 128 MB; scaled)
  int replication = 1;                // copies written per block
};

struct FileMetadata {
  std::string name;
  std::size_t bytes = 0;
  std::size_t blocks = 0;
  std::size_t lines = 0;
};

struct IoStats {
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t blocks_written = 0;
  std::uint64_t bytes_written = 0;
};

class BlockStore {
 public:
  explicit BlockStore(BlockStoreOptions options);

  const BlockStoreOptions& options() const { return options_; }

  // Writes `lines` as a block file; lines are never split across blocks
  // (a block may exceed block_bytes by one line). Overwrites an existing
  // file of the same name.
  FileMetadata write_lines(const std::string& name, const std::vector<std::string>& lines);

  // Reads the lines of one block (0-based), verifying its checksum. Falls
  // back to a replica when the primary copy is corrupt or missing; throws
  // if every copy fails.
  std::vector<std::string> read_block_lines(const std::string& name,
                                            std::size_t block) const;

  // Reads the whole file in block order.
  std::vector<std::string> read_all_lines(const std::string& name) const;

  FileMetadata stat(const std::string& name) const;
  bool exists(const std::string& name) const;
  std::vector<std::string> list() const;
  void remove(const std::string& name);

  // Verifies every block checksum; returns the number of healthy blocks.
  std::size_t verify(const std::string& name) const;

  // Cumulative I/O counters (thread-safe; map tasks read concurrently).
  IoStats io_stats() const;
  void reset_io_stats();

 private:
  std::filesystem::path file_dir(const std::string& name) const;
  std::filesystem::path block_path(const std::string& name, std::size_t block,
                                   int replica) const;

  BlockStoreOptions options_;
  mutable std::atomic<std::uint64_t> blocks_read_{0};
  mutable std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> blocks_written_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

// FNV-1a 64-bit checksum used for block integrity.
std::uint64_t fnv1a(const std::string& data);

}  // namespace dias::storage
