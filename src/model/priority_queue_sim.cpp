#include "model/priority_queue_sim.hpp"

#include <deque>
#include <limits>
#include <optional>

#include "common/error.hpp"

namespace dias::model {
namespace {

struct Job {
  std::size_t job_class = 0;  // 0-based
  double arrival = 0.0;
  double work_total = 0.0;      // sampled service requirement
  double work_remaining = 0.0;  // under resume; reset under repeat
  double first_start = -1.0;    // -1 = never served yet
  bool needs_resample = false;  // repeat-resample: draw new work at restart
};

}  // namespace

PriorityQueueSimResult simulate_priority_queue(const Mmap& arrivals,
                                               std::span<const PhaseType> services,
                                               SimDiscipline discipline,
                                               const PriorityQueueSimOptions& options) {
  DIAS_EXPECTS(services.size() == arrivals.classes(),
               "one service distribution per arrival class required");
  DIAS_EXPECTS(options.jobs > options.warmup, "need more jobs than warmup");

  const std::size_t k = services.size();
  Rng rng(options.seed);
  Rng service_rng = rng.split();
  auto sampler = arrivals.sampler(rng);

  PriorityQueueSimResult result;
  result.response.resize(k);
  result.waiting.resize(k);
  result.generated.assign(k, 0);
  result.completed.assign(k, 0);

  std::vector<std::deque<Job>> queues(k);
  std::optional<Job> active;
  double active_since = 0.0;  // when the current service quantum began

  double t = 0.0;
  std::size_t generated = 0;
  std::size_t completed = 0;
  std::size_t backlog = 0;
  double next_arrival = 0.0;
  std::size_t next_class = 0;
  bool arrival_pending = false;

  const auto draw_arrival = [&] {
    if (generated >= options.jobs) {
      arrival_pending = false;
      return;
    }
    const auto a = sampler.next();
    next_arrival = t + a.inter_arrival;
    next_class = a.job_class - 1;
    arrival_pending = true;
  };

  const auto dispatch = [&] {
    DIAS_EXPECTS(!active.has_value(), "dispatch with a job in service");
    for (std::size_t c = k; c-- > 0;) {
      if (queues[c].empty()) continue;
      active = std::move(queues[c].front());
      queues[c].pop_front();
      --backlog;
      break;
    }
    if (!active) return;
    if (active->needs_resample) {
      active->work_total = services[active->job_class].sample(service_rng);
      active->work_remaining = active->work_total;
      active->needs_resample = false;
    }
    if (active->first_start < 0.0) {
      active->first_start = t;
      if (completed >= options.warmup) {
        result.waiting[active->job_class].add(t - active->arrival);
      }
    }
    active_since = t;
  };

  draw_arrival();
  // Drain-time fairness: arrivals stop after options.jobs; we run to empty.
  for (;;) {
    const double completion_at =
        active ? active_since + active->work_remaining : std::numeric_limits<double>::infinity();
    const double arrival_at =
        arrival_pending ? next_arrival : std::numeric_limits<double>::infinity();
    if (!active && !arrival_pending) break;

    if (arrival_at < completion_at) {
      // --- arrival ---------------------------------------------------------
      t = arrival_at;
      Job job;
      job.job_class = next_class;
      job.arrival = t;
      job.work_total = services[next_class].sample(service_rng);
      job.work_remaining = job.work_total;
      ++generated;
      ++result.generated[job.job_class];
      draw_arrival();

      const bool preempts = discipline != SimDiscipline::kNonPreemptive && active &&
                            job.job_class > active->job_class;
      if (preempts) {
        result.busy_time += t - active_since;
        Job evicted = *active;
        active.reset();
        switch (discipline) {
          case SimDiscipline::kPreemptiveResume:
            evicted.work_remaining -= t - active_since;
            break;
          case SimDiscipline::kPreemptiveRepeatIdentical:
            evicted.work_remaining = evicted.work_total;
            break;
          case SimDiscipline::kPreemptiveRepeatResample:
            evicted.needs_resample = true;
            break;
          case SimDiscipline::kNonPreemptive:
            break;
        }
        queues[evicted.job_class].push_front(std::move(evicted));
        ++backlog;
      }
      queues[job.job_class].push_back(std::move(job));
      ++backlog;
      if (!active) dispatch();
      if (backlog > options.max_backlog) {
        result.truncated = true;
        break;
      }
    } else {
      // --- completion ------------------------------------------------------
      t = completion_at;
      result.busy_time += t - active_since;
      ++completed;
      ++result.completed[active->job_class];
      if (completed > options.warmup) {
        result.response[active->job_class].add(t - active->arrival);
      }
      active.reset();
      dispatch();
      if (!options.drain_after_arrivals && !arrival_pending) break;
    }
  }
  result.horizon = t;
  return result;
}

}  // namespace dias::model
