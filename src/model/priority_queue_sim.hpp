// Simulation of the MMAP[K]/PH[K]/1 priority queue.
//
// The paper leans on Horvath's analytic treatment of this queue for
// response-time *distributions*; we complement the exact mean-value
// analysis in mg1_priority with a fast special-purpose simulator that
// estimates the full per-class distributions for arbitrary MMAP arrivals
// (including correlated/bursty streams) and PH services, under four
// disciplines -- including both preemptive-repeat flavours, whose
// stability gap (identical vs resample) the paper cites via Jelenkovic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "model/mmap.hpp"
#include "model/phase_type.hpp"

namespace dias::model {

enum class SimDiscipline {
  kNonPreemptive,
  kPreemptiveResume,           // evicted work is kept
  kPreemptiveRepeatIdentical,  // re-execute the same sampled work (eviction)
  kPreemptiveRepeatResample,   // re-execute freshly sampled work
};

struct PriorityQueueSimOptions {
  std::size_t jobs = 100000;       // arrivals to generate
  std::size_t warmup = 10000;      // completions to discard
  std::uint64_t seed = 1;
  // Safety valve for (near-)unstable repeat disciplines: stop once any
  // backlog exceeds this many jobs and flag the run.
  std::size_t max_backlog = 1u << 20;
  // If false, the run stops at the last arrival instead of draining the
  // queues; jobs still queued are censored (visible via generated vs
  // completed counts). Avoids the drain phase masking instability.
  bool drain_after_arrivals = true;
};

struct PriorityQueueSimResult {
  // Index k is class k+1 of the MMAP (larger index = higher priority).
  std::vector<SampleSet> response;
  std::vector<SampleSet> waiting;  // delay before first service
  std::vector<std::size_t> generated;  // arrivals per class
  std::vector<std::size_t> completed;  // completions per class (incl. warmup)
  bool truncated = false;          // hit the backlog safety valve
  double horizon = 0.0;
  double busy_time = 0.0;

  double utilization() const { return horizon > 0.0 ? busy_time / horizon : 0.0; }
};

// Runs the queue: class k jobs (1-based in the MMAP) have service
// distribution services[k-1]. Higher class index preempts lower under the
// preemptive disciplines.
PriorityQueueSimResult simulate_priority_queue(const Mmap& arrivals,
                                               std::span<const PhaseType> services,
                                               SimDiscipline discipline,
                                               const PriorityQueueSimOptions& options);

}  // namespace dias::model
