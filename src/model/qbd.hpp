// Quasi-Birth-Death (QBD) utilities and the M/PH/1 queue.
//
// The matrix-analytic machinery behind the paper's latency model
// (Latouche & Ramaswami): a level-independent CTMC QBD with blocks
// (A0 up, A1 local, A2 down) has a matrix-geometric stationary vector
// pi_{n+1} = pi_n R where R is the minimal non-negative solution of
//   A0 + R A1 + R^2 A2 = 0.
// M/PH/1 instantiates this with A0 = lambda I, A1 = A - lambda I,
// A2 = a * alpha, giving exact queue-length and response-time metrics used
// to validate the bottom-up PH job models against simulation.
#pragma once

#include <vector>

#include "common/matrix.hpp"
#include "model/mmap.hpp"
#include "model/phase_type.hpp"

namespace dias::model {

// Minimal non-negative solution R of A0 + R A1 + R^2 A2 = 0 via functional
// iteration R <- -(A0 + R^2 A2) A1^{-1}. Throws numeric_error if the
// iteration fails to converge (e.g. unstable queue).
Matrix solve_qbd_r(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                   double tol = 1e-12, int max_iter = 200000);

// Stationary waiting-time distribution of the M/PH/1 FCFS queue in closed
// form: the Pollaczek-Khinchine geometric compound of the service-time
// equilibrium distribution, which is again PH (point mass 1 - rho at zero,
// initial vector rho * pi_e, sub-generator A + rho * a * pi_e). Requires
// rho = lambda E[S] < 1.
PhaseType mg1_waiting_time(double arrival_rate, const PhaseType& service);

// Stationary response time: waiting convolved with an independent service.
PhaseType mg1_response_time(double arrival_rate, const PhaseType& service);

// Single-server FCFS queue with Poisson arrivals and PH service.
class MPh1Queue {
 public:
  MPh1Queue(double arrival_rate, PhaseType service);

  double utilization() const { return rho_; }
  bool stable() const { return rho_ < 1.0; }

  // P(N = 0) and the per-level (number-in-system) probabilities.
  double empty_probability() const;
  std::vector<double> level_probabilities(std::size_t max_level) const;

  // Mean number in system and mean response time (Little's law).
  double mean_jobs_in_system() const;
  double mean_response_time() const;
  double mean_waiting_time() const;

  const Matrix& r_matrix() const { return r_; }

 private:
  double lambda_;
  PhaseType service_;
  double rho_;
  Matrix r_;        // m x m rate matrix
  Matrix pi1_;      // 1 x m stationary vector of level 1
  double pi0_ = 0;  // empty-system probability
};

// Single-server FCFS queue with Markovian Arrival Process (MAP) input and
// PH service -- the analytic core behind the paper's MMAP-based model for
// correlated/bursty arrival streams. Solved as a QBD whose repeating level
// couples the arrival phase with the service phase:
//   A0 = D1 (x) I,  A1 = D0 (+) S,  A2 = I (x) (s * beta).
// The boundary level (empty system) carries the arrival phase only.
class MapPh1Queue {
 public:
  // The MAP is given by (d0, d1); for a marked MMAP aggregate the classes:
  // d1 = sum_k Dk.
  MapPh1Queue(const Mmap& arrivals, PhaseType service);

  double arrival_rate() const { return lambda_; }
  double utilization() const { return rho_; }
  bool stable() const { return rho_ < 1.0; }

  double empty_probability() const;
  double mean_jobs_in_system() const;
  double mean_response_time() const;
  double mean_waiting_time() const;

 private:
  double lambda_;
  PhaseType service_;
  double rho_;
  Matrix r_;    // (ma*ms) x (ma*ms)
  Matrix pi0_;  // 1 x ma (empty system, arrival phase)
  Matrix pi1_;  // 1 x (ma*ms)
};

}  // namespace dias::model
