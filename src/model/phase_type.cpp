#include "model/phase_type.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace dias::model {
namespace {

constexpr double kTol = 1e-9;

}  // namespace

PhaseType::PhaseType(Matrix alpha, Matrix subgenerator)
    : alpha_(std::move(alpha)), a_(std::move(subgenerator)) {
  DIAS_EXPECTS(alpha_.rows() == 1, "alpha must be a row vector");
  DIAS_EXPECTS(a_.is_square(), "sub-generator must be square");
  DIAS_EXPECTS(alpha_.cols() == a_.rows(), "alpha/sub-generator size mismatch");
  DIAS_EXPECTS(alpha_.cols() >= 1, "PH distribution needs at least one phase");
  double asum = 0.0;
  for (std::size_t j = 0; j < alpha_.cols(); ++j) {
    DIAS_EXPECTS(alpha_(0, j) >= -kTol && alpha_(0, j) <= 1.0 + kTol,
                 "alpha entries must be probabilities");
    asum += alpha_(0, j);
  }
  DIAS_EXPECTS(asum > kTol && asum <= 1.0 + kTol, "alpha must sum to (0, 1]");
  for (std::size_t i = 0; i < a_.rows(); ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < a_.cols(); ++j) {
      if (i == j) {
        DIAS_EXPECTS(a_(i, j) < 0.0, "sub-generator diagonal must be negative");
      } else {
        DIAS_EXPECTS(a_(i, j) >= -kTol, "sub-generator off-diagonal must be non-negative");
      }
      rowsum += a_(i, j);
    }
    DIAS_EXPECTS(rowsum <= kTol, "sub-generator row sums must be <= 0");
  }
}

PhaseType PhaseType::exponential(double rate) {
  DIAS_EXPECTS(rate > 0.0, "rate must be positive");
  return PhaseType(Matrix{{1.0}}, Matrix{{-rate}});
}

PhaseType PhaseType::erlang(int k, double rate) {
  DIAS_EXPECTS(k >= 1, "Erlang shape must be >= 1");
  DIAS_EXPECTS(rate > 0.0, "rate must be positive");
  const auto n = static_cast<std::size_t>(k);
  Matrix alpha(1, n);
  alpha(0, 0) = 1.0;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = -rate;
    if (i + 1 < n) a(i, i + 1) = rate;
  }
  return PhaseType(std::move(alpha), std::move(a));
}

PhaseType PhaseType::hyper_exponential(std::span<const double> probs,
                                       std::span<const double> rates) {
  DIAS_EXPECTS(probs.size() == rates.size() && !probs.empty(),
               "hyper-exponential needs matching, non-empty probs/rates");
  double psum = 0.0;
  for (double p : probs) psum += p;
  DIAS_EXPECTS(std::abs(psum - 1.0) < 1e-6, "branch probabilities must sum to 1");
  const std::size_t n = probs.size();
  Matrix alpha(1, n);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    DIAS_EXPECTS(rates[i] > 0.0, "rates must be positive");
    alpha(0, i) = probs[i];
    a(i, i) = -rates[i];
  }
  return PhaseType(std::move(alpha), std::move(a));
}

PhaseType PhaseType::hyper_exponential(std::initializer_list<double> probs,
                                       std::initializer_list<double> rates) {
  return hyper_exponential(std::span<const double>(probs.begin(), probs.size()),
                           std::span<const double>(rates.begin(), rates.size()));
}

PhaseType PhaseType::fit_two_moments(double mean, double scv) {
  DIAS_EXPECTS(mean > 0.0, "mean must be positive");
  DIAS_EXPECTS(scv > 0.0, "scv must be positive");
  if (std::abs(scv - 1.0) < 1e-9) return exponential(1.0 / mean);
  if (scv < 1.0) {
    // Generalized Erlang: k phases with 1/scv <= k, mixing Erlang(k-1) and
    // Erlang(k) is the classical fit; we use the simpler "Erlang with one
    // slowed phase" variant: choose k = ceil(1/scv) and solve a two-phase-
    // rate Erlang. For practical purposes the mixture fit below suffices.
    const int k = static_cast<int>(std::ceil(1.0 / scv));
    // Mixture of Erlang(k-1, mu) and Erlang(k, mu) (Tijms' fit):
    //   scv in [1/k, 1/(k-1)] ; p chooses the blend.
    if (k <= 1) return exponential(1.0 / mean);
    const double kk = static_cast<double>(k);
    const double p =
        (kk * scv - std::sqrt(kk * (1.0 + scv) - kk * kk * scv)) / (1.0 + scv);
    const double mu = (kk - p) / mean;
    // Build: with prob p start an Erlang(k-1), else Erlang(k) -- realized as
    // a k-phase chain where phase 1 is skipped with probability p.
    const auto n = static_cast<std::size_t>(k);
    Matrix alpha(1, n);
    alpha(0, 0) = 1.0 - p;
    alpha(0, 1) = p;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) = -mu;
      if (i + 1 < n) a(i, i + 1) = mu;
    }
    return PhaseType(std::move(alpha), std::move(a));
  }
  // scv > 1: balanced-means two-phase hyper-exponential.
  const double p = 0.5 * (1.0 + std::sqrt((scv - 1.0) / (scv + 1.0)));
  const double r1 = 2.0 * p / mean;
  const double r2 = 2.0 * (1.0 - p) / mean;
  return hyper_exponential({p, 1.0 - p}, {r1, r2});
}

PhaseType PhaseType::convolve(const PhaseType& x, const PhaseType& y) {
  const std::size_t nx = x.phases();
  const std::size_t ny = y.phases();
  Matrix alpha(1, nx + ny);
  const double x0 = x.point_mass_at_zero();
  for (std::size_t j = 0; j < nx; ++j) alpha(0, j) = x.alpha_(0, j);
  // If X is 0 with probability x0, start directly in Y.
  for (std::size_t j = 0; j < ny; ++j) alpha(0, nx + j) = x0 * y.alpha_(0, j);

  Matrix a(nx + ny, nx + ny);
  a.set_block(0, 0, x.a_);
  a.set_block(nx, nx, y.a_);
  // Upon absorption from X, start Y: block = exit(x) * alpha(y).
  const Matrix ax = x.exit_rates();
  for (std::size_t i = 0; i < nx; ++i)
    for (std::size_t j = 0; j < ny; ++j) a(i, nx + j) = ax(i, 0) * y.alpha_(0, j);
  return PhaseType(std::move(alpha), std::move(a));
}

PhaseType PhaseType::mixture(double p, const PhaseType& x, const PhaseType& y) {
  DIAS_EXPECTS(p >= 0.0 && p <= 1.0, "mixture probability must be in [0,1]");
  const std::size_t nx = x.phases();
  const std::size_t ny = y.phases();
  Matrix alpha(1, nx + ny);
  for (std::size_t j = 0; j < nx; ++j) alpha(0, j) = p * x.alpha_(0, j);
  for (std::size_t j = 0; j < ny; ++j) alpha(0, nx + j) = (1.0 - p) * y.alpha_(0, j);
  Matrix a(nx + ny, nx + ny);
  a.set_block(0, 0, x.a_);
  a.set_block(nx, nx, y.a_);
  return PhaseType(std::move(alpha), std::move(a));
}

PhaseType PhaseType::mixture_many(std::span<const std::pair<double, PhaseType>> branches,
                                  double zero_mass) {
  DIAS_EXPECTS(!branches.empty(), "mixture_many needs at least one branch");
  DIAS_EXPECTS(zero_mass >= 0.0 && zero_mass < 1.0, "zero mass must be in [0,1)");
  double psum = zero_mass;
  std::size_t total_phases = 0;
  for (const auto& [p, ph] : branches) {
    DIAS_EXPECTS(p >= 0.0, "branch probabilities must be non-negative");
    psum += p;
    total_phases += ph.phases();
  }
  DIAS_EXPECTS(std::abs(psum - 1.0) < 1e-6, "mixture probabilities must sum to 1");
  Matrix alpha(1, total_phases);
  Matrix a(total_phases, total_phases);
  std::size_t offset = 0;
  for (const auto& [p, ph] : branches) {
    for (std::size_t j = 0; j < ph.phases(); ++j) alpha(0, offset + j) = p * ph.alpha_(0, j);
    a.set_block(offset, offset, ph.a_);
    offset += ph.phases();
  }
  return PhaseType(std::move(alpha), std::move(a));
}

PhaseType PhaseType::convolve_n(const PhaseType& x, int count) {
  DIAS_EXPECTS(count >= 1, "convolve_n needs count >= 1");
  PhaseType acc = x;
  for (int i = 1; i < count; ++i) acc = convolve(acc, x);
  return acc;
}

PhaseType PhaseType::scaled(double c) const {
  DIAS_EXPECTS(c > 0.0, "scale factor must be positive");
  return PhaseType(alpha_, a_ * (1.0 / c));
}

Matrix PhaseType::exit_rates() const {
  const std::size_t n = phases();
  Matrix a(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) rowsum += a_(i, j);
    a(i, 0) = -rowsum;
  }
  return a;
}

double PhaseType::point_mass_at_zero() const {
  double s = 0.0;
  for (std::size_t j = 0; j < alpha_.cols(); ++j) s += alpha_(0, j);
  return std::max(0.0, 1.0 - s);
}

double PhaseType::moment(int k) const {
  DIAS_EXPECTS(k >= 1, "moment order must be >= 1");
  // E[X^k] = k! alpha (-A)^{-k} 1
  const Matrix neg_a_inv = inverse(a_ * -1.0);
  Matrix acc = alpha_;
  double factorial = 1.0;
  for (int i = 1; i <= k; ++i) {
    acc = acc * neg_a_inv;
    factorial *= static_cast<double>(i);
  }
  return factorial * (acc * Matrix::ones_column(phases()))(0, 0);
}

double PhaseType::variance() const {
  const double m1 = moment(1);
  return moment(2) - m1 * m1;
}

double PhaseType::scv() const {
  const double m = mean();
  DIAS_EXPECTS(m > 0.0, "scv undefined for zero-mean distribution");
  return variance() / (m * m);
}

double PhaseType::cdf(double t) const {
  if (t < 0.0) return 0.0;
  // Uniformization: P(X > t) = alpha exp(At) 1
  //   exp(At) 1 = sum_m e^{-qt} (qt)^m / m! * P^m 1,  P = I + A/q.
  const std::size_t n = phases();
  double q = 0.0;
  for (std::size_t i = 0; i < n; ++i) q = std::max(q, -a_(i, i));
  if (q <= 0.0) return 1.0;
  q *= 1.0000001;  // keep P sub-stochastic even with rounding

  // v = P^m 1 updated iteratively; survive = sum_m pois(m) * alpha v_m.
  std::vector<double> v(n, 1.0);
  std::vector<double> next(n, 0.0);
  const double qt = q * t;
  double log_pois = -qt;  // log of e^{-qt} (qt)^0 / 0!
  double survive = 0.0;
  double cum_pois = 0.0;
  const int max_terms =
      static_cast<int>(qt + 12.0 * std::sqrt(qt + 1.0) + 60.0);
  for (int m = 0; m <= max_terms; ++m) {
    const double pois = std::exp(log_pois);
    double av = 0.0;
    for (std::size_t j = 0; j < n; ++j) av += alpha_(0, j) * v[j];
    survive += pois * av;
    cum_pois += pois;
    if (1.0 - cum_pois < 1e-13) break;
    // v <- P v
    for (std::size_t i = 0; i < n; ++i) {
      double acc = v[i];  // I part
      for (std::size_t j = 0; j < n; ++j) acc += a_(i, j) / q * v[j];
      next[i] = acc;
    }
    v.swap(next);
    log_pois += std::log(qt) - std::log(static_cast<double>(m + 1));
  }
  return std::clamp(1.0 - survive, 0.0, 1.0);
}

double PhaseType::pdf(double t) const {
  if (t < 0.0) return 0.0;
  const Matrix e = expm(a_ * t);
  return (alpha_ * e * exit_rates())(0, 0);
}

double PhaseType::lst(double s) const {
  DIAS_EXPECTS(s >= 0.0, "LST argument must be non-negative");
  const std::size_t n = phases();
  const Matrix m = Matrix::identity(n) * s - a_;
  const Matrix x = solve(m, exit_rates());
  return (alpha_ * x)(0, 0) + point_mass_at_zero();
}

double PhaseType::decay_rate() const {
  // The decay rate is -max Re(eig(A)). A + qI is entrywise non-negative for
  // q = max |a_ii|, so its Perron root (found by power iteration) gives the
  // dominant eigenvalue of A as rho(A + qI) - q.
  const std::size_t n = phases();
  double q = 0.0;
  for (std::size_t i = 0; i < n; ++i) q = std::max(q, -a_(i, i));
  const Matrix b = a_ + Matrix::identity(n) * q;
  std::vector<double> v(n, 1.0 / static_cast<double>(n));
  double lambda = 0.0;
  // Triangular chains keep the iterate on a nilpotent plateau for up to n
  // steps, so never stop before ~10 n iterations.
  const int min_iters = static_cast<int>(10 * n) + 20;
  for (int it = 0; it < 20000; ++it) {
    std::vector<double> next(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) next[i] += b(i, j) * v[j];
    }
    double norm = 0.0;
    for (double x : next) norm = std::max(norm, std::abs(x));
    if (norm == 0.0) return q;  // nilpotent B: decay dominated by q
    for (double& x : next) x /= norm;
    const double prev = lambda;
    lambda = norm;
    v.swap(next);
    if (it > min_iters && std::abs(lambda - prev) < 1e-13 * std::max(1.0, lambda)) break;
  }
  return q - lambda;
}

double PhaseType::mgf(double s) const {
  // E[e^{sX}] = alpha (-A - sI)^{-1} a + p0 ; exists iff s is below the
  // decay rate (the abscissa of convergence).
  if (s > 0.0 && s >= decay_rate() - 1e-12) {
    throw numeric_error("PH moment generating function does not exist at s");
  }
  const std::size_t n = phases();
  const Matrix m = a_ * -1.0 - Matrix::identity(n) * s;
  Matrix x;
  try {
    x = solve(m, exit_rates());
  } catch (const numeric_error&) {
    throw numeric_error("PH moment generating function does not exist at s");
  }
  if (s > 0.0) {
    // Backstop: the resolvent applied to the exit vector must stay
    // non-negative below the abscissa of convergence.
    for (std::size_t i = 0; i < n; ++i) {
      if (x(i, 0) < -1e-12) {
        throw numeric_error("PH moment generating function does not exist at s");
      }
    }
  }
  const double val = (alpha_ * x)(0, 0) + point_mass_at_zero();
  if (s > 0.0 && val < 1.0) {
    throw numeric_error("PH moment generating function does not exist at s");
  }
  return val;
}

double PhaseType::sample(Rng& rng) const {
  const std::size_t n = phases();
  // Pick the initial phase (or immediate absorption).
  double u = rng.uniform();
  std::size_t phase = n;  // n == absorbed
  for (std::size_t j = 0; j < n; ++j) {
    if (u < alpha_(0, j)) {
      phase = j;
      break;
    }
    u -= alpha_(0, j);
  }
  double t = 0.0;
  const Matrix exits = exit_rates();
  while (phase < n) {
    const double rate = -a_(phase, phase);
    t += rng.exponential(rate);
    // Choose the next phase among transitions + absorption.
    double x = rng.uniform() * rate;
    std::size_t next = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == phase) continue;
      if (x < a_(phase, j)) {
        next = j;
        break;
      }
      x -= a_(phase, j);
    }
    // Remaining mass is absorption (exits(phase)).
    phase = next;
  }
  return t;
}

}  // namespace dias::model
