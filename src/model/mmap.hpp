// Marked Markovian Arrival Process (MMAP[K]).
//
// Parameterized by K+1 matrices (D0, D1, ..., DK): Dk holds transition
// rates that generate a class-k arrival and D0 the remaining (non-arrival)
// rates, so that D = sum_k Dk is a CTMC generator (Section 4 of the paper).
// The simplest instance is the marked Poisson process used throughout the
// evaluation; the class also supports correlated arrivals (e.g., MMPP).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace dias::model {

class Mmap {
 public:
  // d0: non-arrival generator block; dk[i]: rate block for class i+1.
  Mmap(Matrix d0, std::vector<Matrix> dk);

  // Marked Poisson process: independent Poisson streams, one per class.
  static Mmap marked_poisson(std::span<const double> rates);
  static Mmap marked_poisson(std::initializer_list<double> rates);

  // A 2-state Markov-modulated marked Poisson process: in state s the
  // class-k rate is rates[s][k]; switching rates r01, r10.
  static Mmap mmpp2(const std::vector<std::vector<double>>& rates, double r01, double r10);

  std::size_t classes() const { return dk_.size(); }
  std::size_t states() const { return d0_.rows(); }
  const Matrix& d0() const { return d0_; }
  const Matrix& dk(std::size_t k) const;  // 1-based class index
  // Full generator D = D0 + sum Dk.
  Matrix generator() const;
  // Stationary distribution of the underlying CTMC.
  Matrix stationary() const;
  // Stationary arrival rate of class k (1-based): theta * Dk * 1.
  double arrival_rate(std::size_t k) const;
  double total_arrival_rate() const;

  // One marked arrival: advances the phase process and returns the
  // inter-arrival time and the class (1-based) of the next arrival.
  struct Arrival {
    double inter_arrival;
    std::size_t job_class;
  };
  // Stateful sampler; keeps the current CTMC state.
  class Sampler {
   public:
    explicit Sampler(const Mmap& process, Rng rng);
    Arrival next();

   private:
    const Mmap* process_;
    Rng rng_;
    std::size_t state_;
  };
  Sampler sampler(Rng rng) const { return Sampler(*this, rng); }

 private:
  Matrix d0_;
  std::vector<Matrix> dk_;
};

}  // namespace dias::model
