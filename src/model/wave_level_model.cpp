#include "model/wave_level_model.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace dias::model {
namespace {

// pmf over wave counts for a stage: q(d) = sum of task-count probabilities
// whose effective task count needs exactly d waves.
std::vector<double> wave_pmf(const std::vector<double>& task_pmf, double theta, int slots) {
  const int n_max = static_cast<int>(task_pmf.size());
  const int d_max = waves_for_tasks(effective_tasks(n_max, theta), slots);
  std::vector<double> q(static_cast<std::size_t>(d_max) + 1, 0.0);
  for (int t = 1; t <= n_max; ++t) {
    const int d = waves_for_tasks(effective_tasks(t, theta), slots);
    q[static_cast<std::size_t>(d)] += task_pmf[static_cast<std::size_t>(t - 1)];
  }
  return q;
}

// Mixes the per-wave-count convolutions by q(d); q(0) becomes the zero mass.
// Returns nullopt-like "all mass at zero" via a flag.
struct StageMix {
  bool all_zero = false;
  PhaseType dist = PhaseType::exponential(1.0);
};

}  // namespace

int waves_for_tasks(int tasks, int slots) {
  DIAS_EXPECTS(tasks >= 0, "task count must be non-negative");
  DIAS_EXPECTS(slots >= 1, "slot count must be positive");
  return (tasks + slots - 1) / slots;
}

WaveLevelModel::WaveLevelModel(WaveLevelParams params)
    : params_(std::move(params)), processing_time_(PhaseType::exponential(1.0)) {
  DIAS_EXPECTS(params_.slots >= 1, "cluster needs at least one slot");
  DIAS_EXPECTS(!params_.map_waves.empty(), "map wave distributions must be non-empty");
  DIAS_EXPECTS(!params_.reduce_waves.empty(), "reduce wave distributions must be non-empty");
  DIAS_EXPECTS(!params_.map_task_pmf.empty() && !params_.reduce_task_pmf.empty(),
               "task pmfs must be non-empty");
  map_wave_pmf_ = wave_pmf(params_.map_task_pmf, params_.theta_map, params_.slots);
  reduce_wave_pmf_ = wave_pmf(params_.reduce_task_pmf, params_.theta_reduce, params_.slots);
  processing_time_ = build();
}

PhaseType WaveLevelModel::waves_convolution(const std::vector<PhaseType>& waves, int d) const {
  DIAS_EXPECTS(d >= 1, "waves_convolution needs d >= 1");
  const auto wave_at = [&](int i) -> const PhaseType& {
    const auto idx = std::min<std::size_t>(static_cast<std::size_t>(i), waves.size() - 1);
    return waves[idx];
  };
  PhaseType acc = wave_at(0);
  for (int i = 1; i < d; ++i) acc = PhaseType::convolve(acc, wave_at(i));
  return acc;
}

PhaseType WaveLevelModel::build() const {
  const auto stage_mixture = [&](const std::vector<double>& q,
                                 const std::vector<PhaseType>& waves) -> StageMix {
    std::vector<std::pair<double, PhaseType>> branches;
    for (std::size_t d = 1; d < q.size(); ++d) {
      if (q[d] <= 0.0) continue;
      branches.emplace_back(q[d], waves_convolution(waves, static_cast<int>(d)));
    }
    if (branches.empty()) return StageMix{true, PhaseType::exponential(1.0)};
    return StageMix{false, PhaseType::mixture_many(branches, q[0])};
  };

  const StageMix map_stage = stage_mixture(map_wave_pmf_, params_.map_waves);
  const StageMix reduce_stage = stage_mixture(reduce_wave_pmf_, params_.reduce_waves);

  PhaseType total = params_.setup;
  if (!map_stage.all_zero) total = PhaseType::convolve(total, map_stage.dist);
  total = PhaseType::convolve(total, params_.shuffle);
  if (!reduce_stage.all_zero) total = PhaseType::convolve(total, reduce_stage.dist);
  return total;
}

}  // namespace dias::model
