// Deflator-facing response-time model (paper Sections 4.3 and 5.2.1).
//
// Combines the bottom-up PH processing-time model with the M[K]/G/1
// priority-queue analysis: given per-class workload profiles and candidate
// drop ratios, predicts mean processing and response times per class under
// non-preemptive, preemptive-resume, and preemptive-repeat disciplines.
// The setup (overhead) time is interpolated linearly between profiling runs
// at theta = 0 and theta = 0.9, exactly as the paper calibrates it.
#pragma once

#include <span>
#include <vector>

#include "model/mg1_priority.hpp"
#include "model/phase_type.hpp"
#include "model/task_level_model.hpp"

namespace dias::model {

// Everything the model needs to know about one priority class's jobs.
// Classes are ordered by priority: a larger index is a higher priority.
struct JobClassProfile {
  double arrival_rate = 0.0;  // jobs per second (Poisson)
  int slots = 1;              // C

  std::vector<double> map_task_pmf;     // pm(t), index 0 == one task
  std::vector<double> reduce_task_pmf;  // pr(u)

  double map_rate = 1.0;     // mu_m
  double reduce_rate = 1.0;  // mu_r
  double shuffle_rate = 1.0; // mu_s

  // Profiled mean overhead (setup) time at theta = 0 and theta = 0.9; the
  // model interpolates linearly in between (Section 4.3).
  double mean_overhead_theta0 = 1.0;
  double mean_overhead_theta90 = 1.0;

  // Effective sprinting speedup (>= 1) from the sprint-rate oracle: all
  // service rates are multiplied by this factor. 1.0 = no sprinting.
  double sprint_speedup = 1.0;

  // Squared coefficient of variation of individual task times, used by the
  // wave-level model (Section 4.2) to fit per-wave PH distributions.
  // 1.0 reproduces the task-level model's exponential assumption.
  double task_scv = 1.0;
};

// Which of the paper's two job models to build (Section 4.1 vs 4.2).
enum class ModelGranularity {
  kTaskLevel,  // exponential tasks, death-chain CTMC (Eq. 1)
  kWaveLevel,  // per-wave PH execution times fitted from task moments
};

enum class Discipline {
  kNonPreemptive,
  kPreemptiveResume,
  kPreemptiveRepeat,
};

struct ClassPrediction {
  double mean_processing = 0.0;  // E[S_k] after dropping/sprinting
  double mean_waiting = 0.0;
  double mean_response = 0.0;
  double utilization = 0.0;
  bool stable = true;
};

struct Prediction {
  std::vector<ClassPrediction> per_class;  // same order as the inputs
  double total_utilization = 0.0;
};

class ResponseTimeModel {
 public:
  // Interpolated mean overhead for a drop ratio.
  static double interpolated_overhead(const JobClassProfile& profile, double theta);

  // PH processing time of one class at drop ratio theta (applied to both
  // map and reduce stages, matching the evaluation's DA(.) notation).
  static PhaseType processing_time(const JobClassProfile& profile, double theta,
                                   ModelGranularity granularity = ModelGranularity::kTaskLevel);

  // Predicts per-class means. `theta[i]` is the drop ratio of class i;
  // classes and theta are ordered low -> high priority.
  static Prediction predict(std::span<const JobClassProfile> classes,
                            std::span<const double> theta, Discipline discipline,
                            ModelGranularity granularity = ModelGranularity::kTaskLevel);
};

}  // namespace dias::model
