// Wave-level PH model of an approximate MapReduce job (paper Section 4.2).
//
// Instead of tracking individual tasks with exponential service, the job is
// a sequence of *waves*: with C slots, a stage of t effective tasks runs in
// ceil(t / C) waves, and each wave's execution time is an arbitrary PH
// distribution (possibly different per wave, as observed on Spark). The job
// processing time is then
//   setup (+) map wave 1 (+) ... (+) map wave d_m (+) shuffle (+) reduce waves
// mixed over the wave-count probabilities q_m(d) / q_r(d) induced by the
// task-count pmf and the drop ratio.
#pragma once

#include <vector>

#include "model/phase_type.hpp"
#include "model/task_level_model.hpp"

namespace dias::model {

// Number of waves needed for `tasks` effective tasks on `slots` slots.
int waves_for_tasks(int tasks, int slots);

struct WaveLevelParams {
  int slots = 1;

  std::vector<double> map_task_pmf;     // pm(t), index 0 == one task
  std::vector<double> reduce_task_pmf;  // pr(u)

  PhaseType setup = PhaseType::exponential(1.0);    // (alpha_o, A_o)
  PhaseType shuffle = PhaseType::exponential(1.0);  // (alpha_s, A_s)

  // Per-wave execution time distributions, indexed by wave (0-based).
  // Wave d > size() reuses the last entry, so a single element means
  // "all waves iid". Must be non-empty.
  std::vector<PhaseType> map_waves;
  std::vector<PhaseType> reduce_waves;

  double theta_map = 0.0;
  double theta_reduce = 0.0;
};

class WaveLevelModel {
 public:
  explicit WaveLevelModel(WaveLevelParams params);

  // q_m(d): probability the map stage needs d waves (index d, including 0).
  const std::vector<double>& map_wave_pmf() const { return map_wave_pmf_; }
  const std::vector<double>& reduce_wave_pmf() const { return reduce_wave_pmf_; }

  const PhaseType& processing_time() const { return processing_time_; }
  double mean_processing_time() const { return processing_time_.mean(); }

  const WaveLevelParams& params() const { return params_; }

 private:
  PhaseType build() const;
  // PH of `d` consecutive waves drawn from `waves` (clamping to the last).
  PhaseType waves_convolution(const std::vector<PhaseType>& waves, int d) const;

  WaveLevelParams params_;
  std::vector<double> map_wave_pmf_;
  std::vector<double> reduce_wave_pmf_;
  PhaseType processing_time_;
};

}  // namespace dias::model
