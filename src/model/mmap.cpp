#include "model/mmap.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dias::model {

Mmap::Mmap(Matrix d0, std::vector<Matrix> dk) : d0_(std::move(d0)), dk_(std::move(dk)) {
  DIAS_EXPECTS(d0_.is_square(), "D0 must be square");
  DIAS_EXPECTS(!dk_.empty(), "MMAP needs at least one class");
  const std::size_t n = d0_.rows();
  for (const auto& d : dk_) {
    DIAS_EXPECTS(d.rows() == n && d.cols() == n, "Dk shape mismatch");
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        DIAS_EXPECTS(d(i, j) >= 0.0, "Dk entries must be non-negative");
  }
  // D = D0 + sum Dk must have zero row sums, non-negative off-diagonals in
  // D0, and negative diagonals.
  const Matrix d = generator();
  for (std::size_t i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      rowsum += d(i, j);
      if (i != j) DIAS_EXPECTS(d0_(i, j) >= 0.0, "D0 off-diagonal must be non-negative");
    }
    DIAS_EXPECTS(std::abs(rowsum) < 1e-9, "D = D0 + sum Dk must be a generator");
    DIAS_EXPECTS(d0_(i, i) < 0.0, "D0 diagonal must be negative");
  }
}

Mmap Mmap::marked_poisson(std::span<const double> rates) {
  DIAS_EXPECTS(!rates.empty(), "marked Poisson needs at least one class");
  double total = 0.0;
  for (double r : rates) {
    DIAS_EXPECTS(r >= 0.0, "arrival rates must be non-negative");
    total += r;
  }
  DIAS_EXPECTS(total > 0.0, "total arrival rate must be positive");
  Matrix d0{{-total}};
  std::vector<Matrix> dk;
  dk.reserve(rates.size());
  for (double r : rates) dk.push_back(Matrix{{r}});
  return Mmap(std::move(d0), std::move(dk));
}

Mmap Mmap::marked_poisson(std::initializer_list<double> rates) {
  return marked_poisson(std::span<const double>(rates.begin(), rates.size()));
}

Mmap Mmap::mmpp2(const std::vector<std::vector<double>>& rates, double r01, double r10) {
  DIAS_EXPECTS(rates.size() == 2, "mmpp2 needs per-state rate rows for 2 states");
  DIAS_EXPECTS(r01 > 0.0 && r10 > 0.0, "switching rates must be positive");
  const std::size_t k = rates[0].size();
  DIAS_EXPECTS(rates[1].size() == k && k >= 1, "mmpp2 rate rows must match");
  double t0 = 0.0, t1 = 0.0;
  for (double r : rates[0]) t0 += r;
  for (double r : rates[1]) t1 += r;
  Matrix d0{{-(t0 + r01), r01}, {r10, -(t1 + r10)}};
  std::vector<Matrix> dk;
  dk.reserve(k);
  for (std::size_t c = 0; c < k; ++c) {
    Matrix d(2, 2);
    d(0, 0) = rates[0][c];
    d(1, 1) = rates[1][c];
    dk.push_back(std::move(d));
  }
  return Mmap(std::move(d0), std::move(dk));
}

const Matrix& Mmap::dk(std::size_t k) const {
  DIAS_EXPECTS(k >= 1 && k <= dk_.size(), "class index out of range");
  return dk_[k - 1];
}

Matrix Mmap::generator() const {
  Matrix d = d0_;
  for (const auto& m : dk_) d += m;
  return d;
}

Matrix Mmap::stationary() const { return ctmc_stationary(generator()); }

double Mmap::arrival_rate(std::size_t k) const {
  const Matrix theta = stationary();
  return (theta * dk(k) * Matrix::ones_column(states()))(0, 0);
}

double Mmap::total_arrival_rate() const {
  double total = 0.0;
  for (std::size_t k = 1; k <= classes(); ++k) total += arrival_rate(k);
  return total;
}

Mmap::Sampler::Sampler(const Mmap& process, Rng rng)
    : process_(&process), rng_(rng), state_(0) {
  // Start from the stationary phase distribution for a stationary stream.
  const Matrix theta = process.stationary();
  double u = rng_.uniform();
  for (std::size_t s = 0; s < process.states(); ++s) {
    if (u < theta(0, s)) {
      state_ = s;
      break;
    }
    u -= theta(0, s);
  }
}

Mmap::Arrival Mmap::Sampler::next() {
  const Mmap& p = *process_;
  const std::size_t n = p.states();
  double elapsed = 0.0;
  for (;;) {
    const double hold_rate = -p.d0()(state_, state_);
    elapsed += rng_.exponential(hold_rate);
    // Choose the transition: D0 off-diagonals (no arrival) or any Dk entry
    // (class-k arrival, possibly with a state change).
    double x = rng_.uniform() * hold_rate;
    // D0 off-diagonal moves.
    for (std::size_t j = 0; j < n; ++j) {
      if (j == state_) continue;
      if (x < p.d0()(state_, j)) {
        state_ = j;
        goto no_arrival;
      }
      x -= p.d0()(state_, j);
    }
    // Arrival transitions.
    for (std::size_t k = 1; k <= p.classes(); ++k) {
      const Matrix& d = p.dk(k);
      for (std::size_t j = 0; j < n; ++j) {
        if (x < d(state_, j)) {
          state_ = j;
          return Arrival{elapsed, k};
        }
        x -= d(state_, j);
      }
    }
    // Rounding fallthrough: treat as an arrival of the last class.
    return Arrival{elapsed, p.classes()};
  no_arrival:;
  }
}

}  // namespace dias::model
