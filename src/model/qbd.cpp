#include "model/qbd.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dias::model {

Matrix solve_qbd_r(const Matrix& a0, const Matrix& a1, const Matrix& a2, double tol,
                   int max_iter) {
  DIAS_EXPECTS(a0.is_square() && a1.is_square() && a2.is_square(), "QBD blocks must be square");
  DIAS_EXPECTS(a0.rows() == a1.rows() && a1.rows() == a2.rows(), "QBD block sizes must match");
  const std::size_t m = a0.rows();
  const Matrix a1_inv = inverse(a1);
  Matrix r = Matrix::zeros(m, m);
  for (int it = 0; it < max_iter; ++it) {
    const Matrix next = (a0 + r * r * a2) * a1_inv * -1.0;
    const double delta = (next - r).max_abs();
    r = next;
    if (delta < tol) return r;
  }
  throw numeric_error("QBD R-matrix iteration did not converge");
}

PhaseType mg1_waiting_time(double arrival_rate, const PhaseType& service) {
  DIAS_EXPECTS(arrival_rate > 0.0, "arrival rate must be positive");
  const double rho = arrival_rate * service.mean();
  DIAS_EXPECTS(rho < 1.0, "mg1_waiting_time requires a stable queue (rho < 1)");
  const std::size_t n = service.phases();
  const Matrix& a = service.subgenerator();
  // Equilibrium phase distribution pi_e = alpha (-A)^{-1} / E[S].
  Matrix pi_e = service.alpha() * inverse(a * -1.0);
  pi_e *= 1.0 / service.mean();
  // Geometric compound: restart an equilibrium stage with probability rho.
  const Matrix exits = service.exit_rates();
  Matrix a_w = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a_w(i, j) += rho * exits(i, 0) * pi_e(0, j);
    }
  }
  Matrix alpha_w = pi_e;
  alpha_w *= rho;  // remaining mass (1 - rho) is the empty-queue atom at 0
  return PhaseType(std::move(alpha_w), std::move(a_w));
}

PhaseType mg1_response_time(double arrival_rate, const PhaseType& service) {
  return PhaseType::convolve(mg1_waiting_time(arrival_rate, service), service);
}

MPh1Queue::MPh1Queue(double arrival_rate, PhaseType service)
    : lambda_(arrival_rate), service_(std::move(service)), rho_(0.0), r_(), pi1_() {
  DIAS_EXPECTS(lambda_ > 0.0, "arrival rate must be positive");
  rho_ = lambda_ * service_.mean();
  const std::size_t m = service_.phases();
  if (!stable()) {
    // Leave r_ / pi1_ empty; metric accessors guard on stability.
    return;
  }
  const Matrix& a = service_.subgenerator();
  const Matrix exits = service_.exit_rates();       // m x 1
  const Matrix& alpha = service_.alpha();           // 1 x m
  const Matrix a0 = Matrix::identity(m) * lambda_;  // arrival: level up
  const Matrix a1 = a - a0;                         // local: service phase moves
  const Matrix a2 = exits * alpha;                  // completion: level down
  r_ = solve_qbd_r(a0, a1, a2);

  // Boundary: level 0 is the single empty state.
  //   pi0 * (-lambda) + pi1 * exits = 0
  //   pi0 * (lambda alpha) + pi1 * (A1 + R A2) = 0
  //   pi0 + pi1 (I - R)^{-1} 1 = 1
  // Unknowns x = [pi0, pi1] (row). Build the linear system column-wise and
  // replace one balance column with normalization.
  const std::size_t n = m + 1;
  Matrix sys(n, n);  // sys columns are equations; solve x * sys = rhs via transpose
  // Equation 0 (empty-state balance) -> column 0.
  sys(0, 0) = -lambda_;
  for (std::size_t i = 0; i < m; ++i) sys(1 + i, 0) = exits(i, 0);
  // Equations 1..m-1: level-1 balance for phases 1..m-1 (phase 0's balance
  // is redundant; its column carries normalization instead).
  const Matrix level1 = a1 + r_ * a2;
  for (std::size_t j = 1; j < m; ++j) {
    sys(0, j) = lambda_ * alpha(0, j);
    for (std::size_t i = 0; i < m; ++i) sys(1 + i, j) = level1(i, j);
  }
  // Normalization -> column m.
  const Matrix geo = inverse(Matrix::identity(m) - r_) * Matrix::ones_column(m);
  sys(0, m) = 1.0;
  for (std::size_t i = 0; i < m; ++i) sys(1 + i, m) = geo(i, 0);

  Matrix rhs(n, 1);
  rhs(m, 0) = 1.0;
  const Matrix x = solve(sys.transpose(), rhs);
  pi0_ = x(0, 0);
  pi1_ = Matrix(1, m);
  for (std::size_t i = 0; i < m; ++i) pi1_(0, i) = x(1 + i, 0);
}

double MPh1Queue::empty_probability() const {
  DIAS_EXPECTS(stable(), "queue is unstable");
  return pi0_;
}

std::vector<double> MPh1Queue::level_probabilities(std::size_t max_level) const {
  DIAS_EXPECTS(stable(), "queue is unstable");
  std::vector<double> out;
  out.reserve(max_level + 1);
  out.push_back(pi0_);
  Matrix pin = pi1_;
  for (std::size_t n = 1; n <= max_level; ++n) {
    out.push_back((pin * Matrix::ones_column(pin.cols()))(0, 0));
    pin = pin * r_;
  }
  return out;
}

double MPh1Queue::mean_jobs_in_system() const {
  DIAS_EXPECTS(stable(), "queue is unstable");
  // E[N] = sum_{n>=1} n pi_n 1 = pi1 (I - R)^{-2} 1.
  const std::size_t m = pi1_.cols();
  const Matrix inv = inverse(Matrix::identity(m) - r_);
  return (pi1_ * inv * inv * Matrix::ones_column(m))(0, 0);
}

double MPh1Queue::mean_response_time() const { return mean_jobs_in_system() / lambda_; }

double MPh1Queue::mean_waiting_time() const {
  return mean_response_time() - service_.mean();
}

namespace {

// Kronecker product of two matrices.
Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double v = a(i, j);
      if (v == 0.0) continue;
      for (std::size_t r = 0; r < b.rows(); ++r) {
        for (std::size_t c = 0; c < b.cols(); ++c) {
          out(i * b.rows() + r, j * b.cols() + c) = v * b(r, c);
        }
      }
    }
  }
  return out;
}

}  // namespace

MapPh1Queue::MapPh1Queue(const Mmap& arrivals, PhaseType service)
    : lambda_(arrivals.total_arrival_rate()), service_(std::move(service)), rho_(0.0) {
  rho_ = lambda_ * service_.mean();
  if (!stable()) return;

  const std::size_t ma = arrivals.states();
  const std::size_t ms = service_.phases();
  const std::size_t m = ma * ms;

  // Aggregate the marked streams into a single MAP (D0, D1).
  const Matrix& d0 = arrivals.d0();
  Matrix d1(ma, ma);
  for (std::size_t k = 1; k <= arrivals.classes(); ++k) d1 += arrivals.dk(k);

  const Matrix i_ma = Matrix::identity(ma);
  const Matrix i_ms = Matrix::identity(ms);
  const Matrix& s_gen = service_.subgenerator();
  const Matrix s_exit = service_.exit_rates();  // ms x 1
  const Matrix& beta = service_.alpha();        // 1 x ms

  const Matrix a0 = kron(d1, i_ms);
  const Matrix a1 = kron(d0, i_ms) + kron(i_ma, s_gen);
  const Matrix a2 = kron(i_ma, s_exit * beta);
  r_ = solve_qbd_r(a0, a1, a2);

  // Boundary: level 0 carries the arrival phase only.
  //   pi0 D0 + pi1 B10 = 0,           B10 = I (x) s_exit   (m x ma)
  //   pi0 B01 + pi1 (A1 + R A2) = 0,  B01 = D1 (x) beta    (ma x m)
  //   pi0 1 + pi1 (I - R)^{-1} 1 = 1.
  const Matrix b10 = kron(i_ma, s_exit);
  const Matrix b01 = kron(d1, beta);
  const std::size_t n = ma + m;
  Matrix sys(n, n);
  // Level-0 balance -> columns 0..ma-1.
  for (std::size_t j = 0; j < ma; ++j) {
    for (std::size_t i = 0; i < ma; ++i) sys(i, j) = d0(i, j);
    for (std::size_t r = 0; r < m; ++r) sys(ma + r, j) = b10(r, j);
  }
  // Level-1 balance -> columns ma..n-1 (the last is replaced below).
  const Matrix level1 = a1 + r_ * a2;
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t i = 0; i < ma; ++i) sys(i, ma + c) = b01(i, c);
    for (std::size_t r = 0; r < m; ++r) sys(ma + r, ma + c) = level1(r, c);
  }
  // Normalization replaces the last column.
  const Matrix geo = inverse(Matrix::identity(m) - r_) * Matrix::ones_column(m);
  for (std::size_t i = 0; i < ma; ++i) sys(i, n - 1) = 1.0;
  for (std::size_t r = 0; r < m; ++r) sys(ma + r, n - 1) = geo(r, 0);

  Matrix rhs(n, 1);
  rhs(n - 1, 0) = 1.0;
  const Matrix x = solve(sys.transpose(), rhs);
  pi0_ = Matrix(1, ma);
  for (std::size_t i = 0; i < ma; ++i) pi0_(0, i) = x(i, 0);
  pi1_ = Matrix(1, m);
  for (std::size_t r = 0; r < m; ++r) pi1_(0, r) = x(ma + r, 0);
}

double MapPh1Queue::empty_probability() const {
  DIAS_EXPECTS(stable(), "queue is unstable");
  return pi0_.sum();
}

double MapPh1Queue::mean_jobs_in_system() const {
  DIAS_EXPECTS(stable(), "queue is unstable");
  const std::size_t m = pi1_.cols();
  const Matrix inv = inverse(Matrix::identity(m) - r_);
  return (pi1_ * inv * inv * Matrix::ones_column(m))(0, 0);
}

double MapPh1Queue::mean_response_time() const { return mean_jobs_in_system() / lambda_; }

double MapPh1Queue::mean_waiting_time() const {
  return mean_response_time() - service_.mean();
}

}  // namespace dias::model
