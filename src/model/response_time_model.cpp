#include "model/response_time_model.hpp"

#include "model/wave_level_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dias::model {

double ResponseTimeModel::interpolated_overhead(const JobClassProfile& profile, double theta) {
  DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratio must be in [0,1]");
  DIAS_EXPECTS(profile.mean_overhead_theta0 > 0.0 && profile.mean_overhead_theta90 > 0.0,
               "overhead profiling points must be positive");
  // Linear interpolation between the theta=0 and theta=0.9 profiling runs;
  // clamp beyond 0.9 to the profiled endpoint.
  const double w = std::min(theta / 0.9, 1.0);
  return profile.mean_overhead_theta0 * (1.0 - w) + profile.mean_overhead_theta90 * w;
}

namespace {

PhaseType task_level_processing(const JobClassProfile& profile, double theta) {
  const double s = profile.sprint_speedup;
  TaskLevelParams p;
  p.slots = profile.slots;
  p.map_task_pmf = profile.map_task_pmf;
  p.reduce_task_pmf = profile.reduce_task_pmf;
  p.map_rate = profile.map_rate * s;
  p.reduce_rate = profile.reduce_rate * s;
  p.shuffle_rate = profile.shuffle_rate * s;
  p.setup_rate = 1.0 / (ResponseTimeModel::interpolated_overhead(profile, theta) / s);
  p.theta_map = theta;
  p.theta_reduce = theta;
  return TaskLevelModel(std::move(p)).processing_time();
}

PhaseType wave_level_processing(const JobClassProfile& profile, double theta) {
  const double s = profile.sprint_speedup;
  DIAS_EXPECTS(profile.task_scv > 0.0, "wave-level model needs a positive task scv");
  WaveLevelParams p;
  p.slots = profile.slots;
  p.map_task_pmf = profile.map_task_pmf;
  p.reduce_task_pmf = profile.reduce_task_pmf;
  // A wave of near-equal tasks executes in about one task time; its spread
  // is the measured per-task scv (the paper fits per-wave PH distributions
  // from profiling runs the same way).
  p.map_waves = {PhaseType::fit_two_moments(1.0 / (profile.map_rate * s), profile.task_scv)};
  p.reduce_waves = {
      PhaseType::fit_two_moments(1.0 / (profile.reduce_rate * s), profile.task_scv)};
  p.setup = PhaseType::fit_two_moments(
      ResponseTimeModel::interpolated_overhead(profile, theta) / s, 0.05);
  p.shuffle = PhaseType::fit_two_moments(1.0 / (profile.shuffle_rate * s), 0.05);
  p.theta_map = theta;
  p.theta_reduce = theta;
  return WaveLevelModel(std::move(p)).processing_time();
}

}  // namespace

PhaseType ResponseTimeModel::processing_time(const JobClassProfile& profile, double theta,
                                             ModelGranularity granularity) {
  DIAS_EXPECTS(profile.sprint_speedup >= 1.0, "sprint speedup must be >= 1");
  return granularity == ModelGranularity::kTaskLevel
             ? task_level_processing(profile, theta)
             : wave_level_processing(profile, theta);
}

Prediction ResponseTimeModel::predict(std::span<const JobClassProfile> classes,
                                      std::span<const double> theta, Discipline discipline,
                                      ModelGranularity granularity) {
  DIAS_EXPECTS(!classes.empty(), "predict() needs at least one class");
  DIAS_EXPECTS(classes.size() == theta.size(), "one theta per class required");

  std::vector<PhaseType> services;
  services.reserve(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    services.push_back(processing_time(classes[i], theta[i], granularity));
  }

  std::vector<PriorityClassResult> results;
  if (discipline == Discipline::kPreemptiveRepeat) {
    std::vector<Mg1PriorityQueue::RepeatClassInput> inputs;
    inputs.reserve(classes.size());
    for (std::size_t i = 0; i < classes.size(); ++i) {
      inputs.push_back({classes[i].arrival_rate, services[i]});
    }
    results = Mg1PriorityQueue::preemptive_repeat(inputs);
  } else {
    std::vector<PriorityClassInput> inputs;
    inputs.reserve(classes.size());
    for (std::size_t i = 0; i < classes.size(); ++i) {
      inputs.push_back(make_class_input(classes[i].arrival_rate, services[i]));
    }
    results = discipline == Discipline::kNonPreemptive
                  ? Mg1PriorityQueue::non_preemptive(inputs)
                  : Mg1PriorityQueue::preemptive_resume(inputs);
  }

  Prediction out;
  out.per_class.resize(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    auto& c = out.per_class[i];
    c.mean_processing = services[i].mean();
    c.mean_waiting = results[i].mean_waiting;
    c.mean_response = results[i].mean_response;
    c.utilization = classes[i].arrival_rate * services[i].mean();
    c.stable = results[i].stable;
    out.total_utilization += c.utilization;
  }
  return out;
}

}  // namespace dias::model
