#include "model/task_level_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dias::model {
namespace {

void check_pmf(const std::vector<double>& pmf, const char* what) {
  DIAS_EXPECTS(!pmf.empty(), "task pmf must be non-empty");
  double sum = 0.0;
  for (double p : pmf) {
    DIAS_EXPECTS(p >= 0.0, "task pmf entries must be non-negative");
    sum += p;
  }
  (void)what;
  DIAS_EXPECTS(std::abs(sum - 1.0) < 1e-6, "task pmf must sum to 1");
}

// pmf over the effective (post-drop) task counts. Entry i = P(eff == i),
// i = 0..effective_tasks(N, theta).
std::vector<double> effective_pmf(const std::vector<double>& pmf, double theta) {
  const int n_max = static_cast<int>(pmf.size());
  std::vector<double> out(static_cast<std::size_t>(effective_tasks(n_max, theta)) + 1, 0.0);
  for (int t = 1; t <= n_max; ++t) {
    out[static_cast<std::size_t>(effective_tasks(t, theta))] += pmf[static_cast<std::size_t>(t - 1)];
  }
  return out;
}

}  // namespace

int effective_tasks(int tasks, double theta) {
  DIAS_EXPECTS(tasks >= 0, "task count must be non-negative");
  DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratio must be in [0,1]");
  return static_cast<int>(std::ceil(static_cast<double>(tasks) * (1.0 - theta) - 1e-12));
}

TaskLevelModel::TaskLevelModel(TaskLevelParams params)
    : params_(std::move(params)),
      eff_map_pmf_(),
      eff_reduce_pmf_(),
      processing_time_(PhaseType::exponential(1.0)) {
  DIAS_EXPECTS(params_.slots >= 1, "cluster needs at least one slot");
  DIAS_EXPECTS(params_.setup_rate > 0.0 && params_.map_rate > 0.0 &&
                   params_.shuffle_rate > 0.0 && params_.reduce_rate > 0.0,
               "all stage rates must be positive");
  DIAS_EXPECTS(params_.setup_scale > 0.0, "setup scale must be positive");
  check_pmf(params_.map_task_pmf, "map");
  check_pmf(params_.reduce_task_pmf, "reduce");
  eff_map_pmf_ = effective_pmf(params_.map_task_pmf, params_.theta_map);
  eff_reduce_pmf_ = effective_pmf(params_.reduce_task_pmf, params_.theta_reduce);
  processing_time_ = build();
}

PhaseType TaskLevelModel::build() const {
  const int c = params_.slots;
  const double mu_o = params_.setup_rate / params_.setup_scale;
  const double mu_m = params_.map_rate;
  const double mu_s = params_.shuffle_rate;
  const double mu_r = params_.reduce_rate;

  const int nm_bar = static_cast<int>(eff_map_pmf_.size()) - 1;  // max effective map tasks
  const int nr_bar = static_cast<int>(eff_reduce_pmf_.size()) - 1;

  // Phase layout: [O][M_{nm_bar} .. M_1][S][R_{nr_bar} .. R_1].
  const std::size_t n_phases = 1 + static_cast<std::size_t>(nm_bar) + 1 +
                               static_cast<std::size_t>(nr_bar);
  const std::size_t idx_o = 0;
  const auto idx_m = [&](int t) {  // t in [1, nm_bar]
    return 1 + static_cast<std::size_t>(nm_bar - t);
  };
  const std::size_t idx_s = 1 + static_cast<std::size_t>(nm_bar);
  const auto idx_r = [&](int u) {  // u in [1, nr_bar]
    return idx_s + 1 + static_cast<std::size_t>(nr_bar - u);
  };

  Matrix f(n_phases, n_phases);

  // Setup -> map stage with t_bar effective tasks (or straight to shuffle
  // when everything was dropped).
  double o_exit = 0.0;
  for (int t_bar = 0; t_bar <= nm_bar; ++t_bar) {
    const double p = eff_map_pmf_[static_cast<std::size_t>(t_bar)];
    if (p <= 0.0) continue;
    const double rate = mu_o * p;
    if (t_bar == 0) {
      f(idx_o, idx_s) += rate;
    } else {
      f(idx_o, idx_m(t_bar)) += rate;
    }
    o_exit += rate;
  }
  f(idx_o, idx_o) = -o_exit;

  // Map tasks finish one by one; parallelism is min(t, C).
  for (int t = nm_bar; t >= 1; --t) {
    const double rate = static_cast<double>(std::min(t, c)) * mu_m;
    const std::size_t from = idx_m(t);
    const std::size_t to = (t >= 2) ? idx_m(t - 1) : idx_s;
    f(from, to) = rate;
    f(from, from) = -rate;
  }

  // Shuffle -> reduce stage (mass on u_bar == 0 exits to absorption, which
  // the sub-generator encodes as a deficient row sum).
  double s_to_r = 0.0;
  for (int u_bar = 1; u_bar <= nr_bar; ++u_bar) {
    const double p = eff_reduce_pmf_[static_cast<std::size_t>(u_bar)];
    if (p <= 0.0) continue;
    f(idx_s, idx_r(u_bar)) = mu_s * p;
    s_to_r += mu_s * p;
  }
  f(idx_s, idx_s) = -mu_s;  // total exit rate; (mu_s - s_to_r) is absorption
  (void)s_to_r;

  // Reduce tasks; R_1 -> absorption via deficient row sum.
  for (int u = nr_bar; u >= 1; --u) {
    const double rate = static_cast<double>(std::min(u, c)) * mu_r;
    const std::size_t from = idx_r(u);
    f(from, from) = -rate;
    if (u >= 2) f(from, idx_r(u - 1)) = rate;
  }

  Matrix phi(1, n_phases);
  phi(0, 0) = 1.0;  // all jobs start in the setup phase
  return PhaseType(std::move(phi), std::move(f));
}

}  // namespace dias::model
