// Mean-value analysis of the M[K]/G/1 priority queue.
//
// The paper (Section 4) analyses DiAS as a single-server priority queue
// whose per-class service times are the PH job processing times built by
// the task/wave-level models. For Poisson arrivals, exact mean waiting and
// response times follow from classical M/G/1 priority theory driven by the
// first two service moments (Cobham / Conway-Maxwell-Miller / Takagi):
//
//  * non-preemptive  - what DiAS actually runs (jobs are never evicted);
//  * preemptive-resume - the idealized preemptive baseline;
//  * preemptive-repeat (identical) - the eviction-and-re-execution baseline
//    of production schedulers. Means use the completion-time transform
//    E[e^{aS}], which may diverge (the instability highlighted by
//    Jelenkovic); in that case the class is reported unstable.
//
// Class convention follows the paper: a *larger* index is a *higher*
// priority. classes[i] is priority class i+1 of K.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "model/phase_type.hpp"

namespace dias::model {

struct PriorityClassInput {
  double arrival_rate = 0.0;    // lambda_k (Poisson)
  double mean_service = 0.0;    // E[S_k]
  double second_moment = 0.0;   // E[S_k^2]
};

struct PriorityClassResult {
  double utilization = 0.0;     // rho_k = lambda_k E[S_k]
  double mean_waiting = 0.0;    // E[W_k]: queueing delay before first service
  double mean_response = 0.0;   // E[T_k]: waiting + (completion) service
  bool stable = true;           // false when the class backlog diverges
};

// Builds the two-moment input from a PH service time.
PriorityClassInput make_class_input(double arrival_rate, const PhaseType& service);

class Mg1PriorityQueue {
 public:
  // Exact means under non-preemptive priority (higher index served first,
  // FCFS within class, job in service always completes).
  static std::vector<PriorityClassResult> non_preemptive(
      std::span<const PriorityClassInput> classes);

  // Exact means under preemptive-resume priority.
  static std::vector<PriorityClassResult> preemptive_resume(
      std::span<const PriorityClassInput> classes);

  // Approximate means under preemptive-repeat-identical priority (eviction
  // restarts the job from scratch with the *same* total work, as in the
  // production traces motivating the paper). Requires the full PH service
  // distribution to evaluate E[e^{aS}]. Classes whose restart transform
  // diverges are flagged unstable. The waiting-time term treats completion
  // times as the effective service in Cobham's non-preemptive formula --
  // an approximation documented in DESIGN.md; the DES provides exact
  // numbers.
  struct RepeatClassInput {
    double arrival_rate = 0.0;
    PhaseType service = PhaseType::exponential(1.0);
  };
  static std::vector<PriorityClassResult> preemptive_repeat(
      std::span<const RepeatClassInput> classes);

  // Mean completion time (own restarts + higher-priority busy periods) of a
  // job with PH service `service`, interrupted by a Poisson stream of rate
  // `interrupt_rate`, where each interruption opens a busy period of mean
  // `busy_period_mean`. Returns nullopt when E[e^{aS}] diverges.
  static std::optional<double> repeat_completion_mean(const PhaseType& service,
                                                      double interrupt_rate,
                                                      double busy_period_mean);
};

}  // namespace dias::model
