#include "model/mg1_priority.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dias::model {
namespace {

void check_inputs(std::span<const PriorityClassInput> classes) {
  DIAS_EXPECTS(!classes.empty(), "priority queue needs at least one class");
  for (const auto& c : classes) {
    DIAS_EXPECTS(c.arrival_rate >= 0.0, "arrival rates must be non-negative");
    DIAS_EXPECTS(c.mean_service > 0.0, "mean service must be positive");
    DIAS_EXPECTS(c.second_moment >= c.mean_service * c.mean_service,
                 "second moment must satisfy E[S^2] >= E[S]^2");
  }
}

// sigma_at_least[i] = total utilization of classes with priority >= class i
// (i.e. indices >= i under the paper's larger-index-is-higher convention).
std::vector<double> cumulative_high_utilization(std::span<const PriorityClassInput> classes) {
  const std::size_t k = classes.size();
  std::vector<double> sigma(k + 1, 0.0);  // sigma[k] = 0 (nothing higher than top)
  for (std::size_t i = k; i-- > 0;) {
    sigma[i] = sigma[i + 1] + classes[i].arrival_rate * classes[i].mean_service;
  }
  return sigma;
}

}  // namespace

PriorityClassInput make_class_input(double arrival_rate, const PhaseType& service) {
  DIAS_EXPECTS(arrival_rate >= 0.0, "arrival rate must be non-negative");
  return PriorityClassInput{arrival_rate, service.mean(), service.moment(2)};
}

std::vector<PriorityClassResult> Mg1PriorityQueue::non_preemptive(
    std::span<const PriorityClassInput> classes) {
  check_inputs(classes);
  const std::size_t k = classes.size();
  const auto sigma = cumulative_high_utilization(classes);  // sigma[i] = util of >= i

  // Mean residual work at an arrival instant: all classes contribute, since
  // the job in service is never preempted.
  double w0 = 0.0;
  for (const auto& c : classes) w0 += 0.5 * c.arrival_rate * c.second_moment;

  std::vector<PriorityClassResult> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto& r = out[i];
    r.utilization = classes[i].arrival_rate * classes[i].mean_service;
    // Delay for class i: residual work + backlog of classes >= i present at
    // arrival + higher classes (> i) arriving during the wait.
    const double denom = (1.0 - sigma[i + 1]) * (1.0 - sigma[i]);
    if (sigma[i] >= 1.0 || denom <= 0.0) {
      r.stable = false;
      r.mean_waiting = std::numeric_limits<double>::infinity();
      r.mean_response = std::numeric_limits<double>::infinity();
      continue;
    }
    r.mean_waiting = w0 / denom;
    r.mean_response = r.mean_waiting + classes[i].mean_service;
  }
  return out;
}

std::vector<PriorityClassResult> Mg1PriorityQueue::preemptive_resume(
    std::span<const PriorityClassInput> classes) {
  check_inputs(classes);
  const std::size_t k = classes.size();
  const auto sigma = cumulative_high_utilization(classes);

  std::vector<PriorityClassResult> out(k);
  for (std::size_t i = 0; i < k; ++i) {
    auto& r = out[i];
    r.utilization = classes[i].arrival_rate * classes[i].mean_service;
    const double hi = sigma[i + 1];  // strictly higher classes
    const double hi_or_eq = sigma[i];
    if (hi_or_eq >= 1.0) {
      r.stable = false;
      r.mean_waiting = std::numeric_limits<double>::infinity();
      r.mean_response = std::numeric_limits<double>::infinity();
      continue;
    }
    // Residual work from classes >= i only (lower classes are transparent).
    double w0 = 0.0;
    for (std::size_t j = i; j < k; ++j) w0 += 0.5 * classes[j].arrival_rate * classes[j].second_moment;
    const double response =
        classes[i].mean_service / (1.0 - hi) + w0 / ((1.0 - hi) * (1.0 - hi_or_eq));
    r.mean_response = response;
    r.mean_waiting = response - classes[i].mean_service;
  }
  return out;
}

std::optional<double> Mg1PriorityQueue::repeat_completion_mean(const PhaseType& service,
                                                               double interrupt_rate,
                                                               double busy_period_mean) {
  DIAS_EXPECTS(interrupt_rate >= 0.0, "interrupt rate must be non-negative");
  DIAS_EXPECTS(busy_period_mean >= 0.0, "busy period mean must be non-negative");
  if (interrupt_rate == 0.0) return service.mean();
  // Own occupancy: E[(e^{aS} - 1)] / a; expected interruptions: E[e^{aS}] - 1;
  // each interruption inserts a higher-priority busy period.
  double mgf;
  try {
    mgf = service.mgf(interrupt_rate);
  } catch (const numeric_error&) {
    return std::nullopt;
  }
  if (!std::isfinite(mgf) || mgf <= 0.0) return std::nullopt;
  const double restarts = mgf - 1.0;
  return restarts / interrupt_rate + restarts * busy_period_mean;
}

std::vector<PriorityClassResult> Mg1PriorityQueue::preemptive_repeat(
    std::span<const RepeatClassInput> classes) {
  DIAS_EXPECTS(!classes.empty(), "priority queue needs at least one class");
  const std::size_t k = classes.size();

  // Utilization of strictly-higher classes uses their *completion* load,
  // computed top-down (the top class is never interrupted).
  std::vector<PriorityClassResult> out(k);
  std::vector<double> completion_mean(k, 0.0);
  double higher_arrival = 0.0;          // sum of lambda_j for j > i
  double higher_service_weighted = 0.0;  // sum lambda_j E[S_j] for busy periods
  double higher_util = 0.0;              // completion-load of higher classes

  for (std::size_t i = k; i-- > 0;) {
    const auto& c = classes[i];
    DIAS_EXPECTS(c.arrival_rate >= 0.0, "arrival rates must be non-negative");
    auto& r = out[i];

    // Busy period opened by one higher-priority arrival: initiating job has
    // the lambda-weighted mean service of higher classes, extended by their
    // own arrivals: mean = E[S_hi] / (1 - sigma_hi).
    double busy_mean = 0.0;
    if (higher_arrival > 0.0) {
      const double mean_hi_service = higher_service_weighted / higher_arrival;
      if (higher_util >= 1.0) {
        r.stable = false;
      } else {
        busy_mean = mean_hi_service / (1.0 - higher_util);
      }
    }
    std::optional<double> comp;
    if (r.stable) comp = repeat_completion_mean(c.service, higher_arrival, busy_mean);
    if (!comp.has_value()) {
      r.stable = false;
      r.mean_waiting = std::numeric_limits<double>::infinity();
      r.mean_response = std::numeric_limits<double>::infinity();
      r.utilization = c.arrival_rate * c.service.mean();
    } else {
      completion_mean[i] = *comp;
      r.utilization = c.arrival_rate * *comp;  // effective (completion) load
    }
    higher_arrival += c.arrival_rate;
    higher_service_weighted += c.arrival_rate * c.service.mean();
    higher_util += r.stable ? out[i].utilization : 1.0;
  }

  // Waiting via Cobham's formula on completion times (approximation: uses
  // completion means; the second moment of completion is approximated by
  // scaling the service SCV onto the completion mean).
  std::vector<double> sigma(k + 1, 0.0);
  for (std::size_t i = k; i-- > 0;) {
    sigma[i] = sigma[i + 1] + (out[i].stable ? out[i].utilization : 1.0);
  }
  double w0 = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    if (!out[j].stable) continue;
    const double scv = classes[j].service.scv();
    const double m2 = (scv + 1.0) * completion_mean[j] * completion_mean[j];
    w0 += 0.5 * classes[j].arrival_rate * m2;
  }
  for (std::size_t i = 0; i < k; ++i) {
    auto& r = out[i];
    if (!r.stable) continue;
    const double denom = (1.0 - sigma[i + 1]) * (1.0 - sigma[i]);
    if (sigma[i] >= 1.0 || denom <= 0.0) {
      r.stable = false;
      r.mean_waiting = std::numeric_limits<double>::infinity();
      r.mean_response = std::numeric_limits<double>::infinity();
      continue;
    }
    r.mean_waiting = w0 / denom;
    r.mean_response = r.mean_waiting + completion_mean[i];
  }
  return out;
}

}  // namespace dias::model
