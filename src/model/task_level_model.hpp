// Task-level PH model of an approximate MapReduce job (paper Section 4.1).
//
// The job processing time is the absorption time of a CTMC over phases
//   P = {O, M_{Nm..1}, S, R_{Nr..1}}
// with the transition rates of Eq. (1): setup completes at rate mu_o and
// jumps to the map stage with the (dropped) effective task count; map tasks
// finish at rate min(t, C) * mu_m; the shuffle stage at rate mu_s moves to
// the reduce stage; reduce tasks finish at rate min(u, C) * mu_r.
// Dropping reduces a job with t tasks to ceil(t * (1 - theta)) tasks.
#pragma once

#include <vector>

#include "model/phase_type.hpp"

namespace dias::model {

// Effective task count after applying drop ratio theta (paper notation
// t_bar = ceil(t (1 - theta))). theta in [0,1]; theta == 1 drops everything.
int effective_tasks(int tasks, double theta);

struct TaskLevelParams {
  int slots = 1;  // C: cluster computing slots

  // pmf over the number of map tasks: map_task_pmf[i] = P(t = i+1),
  // i.e. index 0 is "one task". Must sum to 1. Same for reduce.
  std::vector<double> map_task_pmf;
  std::vector<double> reduce_task_pmf;

  double setup_rate = 1.0;    // mu_o
  double map_rate = 1.0;      // mu_m (per task)
  double shuffle_rate = 1.0;  // mu_s
  double reduce_rate = 1.0;   // mu_r (per task)

  double theta_map = 0.0;     // map drop ratio
  double theta_reduce = 0.0;  // reduce drop ratio

  // Optional setup-time inflation factor applied to 1/mu_o; the paper
  // interpolates overhead linearly between the theta=0 and theta=0.9
  // profiles. 1.0 means "use setup_rate as-is".
  double setup_scale = 1.0;
};

class TaskLevelModel {
 public:
  explicit TaskLevelModel(TaskLevelParams params);

  // PH representation (phi, F) of the job processing time.
  const PhaseType& processing_time() const { return processing_time_; }
  double mean_processing_time() const { return processing_time_.mean(); }

  // pmf over the *effective* (post-drop) map/reduce task counts;
  // entry i is P(effective tasks == i) including i == 0 (stage skipped).
  const std::vector<double>& effective_map_pmf() const { return eff_map_pmf_; }
  const std::vector<double>& effective_reduce_pmf() const { return eff_reduce_pmf_; }

  const TaskLevelParams& params() const { return params_; }

 private:
  PhaseType build() const;

  TaskLevelParams params_;
  std::vector<double> eff_map_pmf_;
  std::vector<double> eff_reduce_pmf_;
  PhaseType processing_time_;
};

}  // namespace dias::model
