// Phase-Type (PH) distributions and their closure operations.
//
// A PH distribution is the absorption time of a CTMC with transient phases
// 1..n, sub-generator A (n x n) and initial row vector alpha (1 x n).
// The paper builds job processing times bottom-up from PH components
// (Section 4): setup, map waves, shuffle, reduce waves are all PH, and
// their concatenation (convolution) is again PH.
#pragma once

#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace dias::model {

class PhaseType {
 public:
  // Constructs from an initial probability row vector (1 x n) and a
  // sub-generator (n x n). Validates PH structure:
  //   - alpha entries in [0,1], sum in (0, 1]
  //   - A has negative diagonal, non-negative off-diagonal, row sums <= 0
  //   - at least one phase can reach absorption
  PhaseType(Matrix alpha, Matrix subgenerator);

  // --- factories ---------------------------------------------------------
  static PhaseType exponential(double rate);
  static PhaseType erlang(int k, double rate);
  // Branch i is exponential(rates[i]) with probability probs[i].
  static PhaseType hyper_exponential(std::span<const double> probs,
                                     std::span<const double> rates);
  static PhaseType hyper_exponential(std::initializer_list<double> probs,
                                     std::initializer_list<double> rates);
  // Two-moment fit: matches the given mean (> 0) and squared coefficient of
  // variation (scv > 0).  scv == 1 -> exponential; scv < 1 -> generalized
  // Erlang; scv > 1 -> balanced-means two-phase hyper-exponential.
  static PhaseType fit_two_moments(double mean, double scv);

  // --- closure operations -------------------------------------------------
  // Distribution of X + Y for independent PH X, Y.
  static PhaseType convolve(const PhaseType& x, const PhaseType& y);
  // Distribution that is X with probability p, else Y.
  static PhaseType mixture(double p, const PhaseType& x, const PhaseType& y);
  // General mixture over branches (probability, distribution) plus an
  // optional point mass at zero; probabilities + zero_mass must sum to 1.
  static PhaseType mixture_many(std::span<const std::pair<double, PhaseType>> branches,
                                double zero_mass = 0.0);
  // Convolution of `count` iid copies of x.
  static PhaseType convolve_n(const PhaseType& x, int count);
  // Time-scaled variant: if X ~ this, returns distribution of c * X.
  PhaseType scaled(double c) const;

  // --- queries ------------------------------------------------------------
  std::size_t phases() const { return alpha_.cols(); }
  const Matrix& alpha() const { return alpha_; }
  const Matrix& subgenerator() const { return a_; }
  // Exit-rate column vector a = -A 1 (accounts for sub-stochastic alpha via
  // the immediate-absorption mass 1 - sum(alpha)).
  Matrix exit_rates() const;
  // Probability of zero value (immediate absorption) = 1 - sum(alpha).
  double point_mass_at_zero() const;

  // k-th raw moment E[X^k] = k! * alpha * (-A)^{-k} * 1.
  double moment(int k) const;
  double mean() const { return moment(1); }
  double variance() const;
  // Squared coefficient of variation Var[X] / E[X]^2.
  double scv() const;

  // CDF via uniformization (exact up to truncation tolerance).
  double cdf(double t) const;
  // Complementary CDF.
  double ccdf(double t) const { return 1.0 - cdf(t); }
  // Density via alpha * expm(A t) * a.
  double pdf(double t) const;
  // Laplace-Stieltjes transform at s >= 0: alpha (sI - A)^{-1} a + p0.
  double lst(double s) const;
  // Moment generating function E[e^{sX}] for s below the decay rate;
  // throws numeric_error when the MGF does not exist at s.
  double mgf(double s) const;
  // Asymptotic decay rate of the tail: -max Re(eig(A)); the abscissa of
  // convergence of the MGF.
  double decay_rate() const;

  // Simulates one absorption time.
  double sample(Rng& rng) const;

 private:
  Matrix alpha_;  // 1 x n
  Matrix a_;      // n x n sub-generator
};

}  // namespace dias::model
