// Closed-loop adaptive deflation (ISSUE 5, tentpole part 3).
//
// The offline Deflator picks theta_k / Tk from *profiled* arrival rates;
// under a real overload burst those rates are stale and the plan under-
// degrades, so queues grow without bound. The OverloadController closes
// the loop: it samples the live dispatcher (measured per-class arrival
// rates via EWMA, queue depths, single-runner utilization), re-runs the
// same Deflator grid search against the measured load, and installs the
// escalated drop ratios through DiasDispatcher::set_theta.
//
// Stability knobs:
//   * hysteresis — the controller flips into "overloaded" when the total
//     queue depth crosses `queue_depth_high`, and only flips back (and
//     relaxes to the baseline plan) once depth falls to `queue_depth_low`;
//     plan switches are additionally rate-limited by `min_hold_s`;
//   * theta ceilings — every installed theta_k is clamped to the class's
//     accuracy-derived ceiling (max theta whose predicted error stays
//     within the class constraint), so closing the loop can never
//     silently violate an accuracy contract. When even the ceilings are
//     infeasible for the measured load, the controller installs the
//     ceilings (maximum admissible degradation) — the remaining overload
//     must be absorbed by admission control, not by accuracy.
//
// Threading: sample_once() is the whole control step and is safe to call
// from any single thread; start()/stop() run it on an internal cadence
// thread for production use, while tests call sample_once() directly for
// determinism.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "core/deflator.hpp"
#include "core/dispatcher.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::runtime {

struct OverloadControllerConfig {
  // Cadence of the background sampler (start()); sample_once() ignores it.
  double sample_period_s = 0.5;
  // EWMA weight of the newest per-class rate sample, in (0, 1].
  double ewma_alpha = 0.3;
  // Hysteresis band on the dispatcher's total queue depth.
  std::size_t queue_depth_high = 8;
  std::size_t queue_depth_low = 2;
  // Hysteresis band on the dispatcher's accounted memory footprint
  // (queued + running, bytes). 0 disables the memory trigger: the
  // controller then reacts to queue depth alone, as before. When enabled,
  // memory pressure is an independent overload trigger — either signal
  // flips the controller into "overloaded", and BOTH must clear before it
  // relaxes back to the baseline plan.
  std::size_t memory_high_bytes = 0;
  std::size_t memory_low_bytes = 0;
  // Hysteresis band on the number of over-quota tenants reported by the
  // dispatcher's FairShareLedger (ISSUE 7). 0 disables the trigger. When
  // enabled, sustained multi-tenant contention escalates deflation for
  // everyone *before* queues build: the ladder already degrades the
  // over-quota tenants individually, and this trigger additionally treats
  // "many tenants simultaneously over quota" as plant-wide overload.
  std::size_t tenant_overquota_high = 0;
  std::size_t tenant_overquota_low = 0;
  // Minimum seconds between installed plan changes (escalate or relax).
  double min_hold_s = 2.0;
  // Optional per-class ceilings on installed theta; empty = derive each
  // class's ceiling from its accuracy profile and error constraint.
  std::vector<double> theta_ceiling;
  // Spawn the cadence thread from the constructor.
  bool start_thread = false;
};

class OverloadController {
 public:
  struct Status {
    bool overloaded = false;
    // True while the memory trigger alone would hold the controller in
    // the overloaded state (footprint at or above memory_high_bytes and
    // not yet back down to memory_low_bytes).
    bool memory_pressure = false;
    std::size_t memory_in_use_bytes = 0;
    // True while the tenant trigger alone would hold the controller in the
    // overloaded state (over-quota tenant count at or above
    // tenant_overquota_high and not yet back down to tenant_overquota_low).
    bool tenant_pressure = false;
    std::size_t tenants_over_quota = 0;
    double tenant_fairness_index = 1.0;
    std::uint64_t samples = 0;
    std::uint64_t replans = 0;      // deflator grid searches triggered
    std::uint64_t escalations = 0;  // installed plans that raised some theta
    std::uint64_t relaxations = 0;  // installed plans that lowered some theta
    std::vector<double> measured_rate;  // EWMA jobs/s per class
    std::vector<double> installed_theta;
    std::vector<double> theta_ceiling;
    double utilization = 0.0;  // busy fraction over the last sample window
  };

  // `deflator` is copied; its profiled rates seed the EWMA and its
  // baseline plan (profiled load) is what relaxation restores. The
  // dispatcher must outlive the controller. `metrics`/`tracer` may be
  // null; with sinks attached the controller exports overload state /
  // measured-rate / theta gauges, replan counters, and one
  // "overload.plan" trace event per installed plan.
  OverloadController(core::DiasDispatcher& dispatcher, core::Deflator deflator,
                     std::vector<core::ClassConstraint> constraints,
                     OverloadControllerConfig config, obs::Registry* metrics = nullptr,
                     obs::Tracer* tracer = nullptr);
  ~OverloadController();
  OverloadController(const OverloadController&) = delete;
  OverloadController& operator=(const OverloadController&) = delete;

  // One full control iteration: sample the dispatcher, update the EWMA
  // load estimate, apply the hysteresis state machine, and (when due)
  // re-plan and install new drop ratios.
  void sample_once();

  void start();  // idempotent; spawns the cadence thread
  void stop();   // idempotent; joins it

  Status status() const;

 private:
  void cadence_loop();
  // Re-runs the grid search against `rates` and installs the resulting
  // thetas (clamped to the ceilings); `now_s` is dispatcher uptime.
  // Callers hold mutex_.
  void replan_locked(const std::vector<double>& rates, bool overloaded, double now_s);
  void install_locked(const std::vector<double>& theta, bool escalate, double now_s,
                      bool feasible);

  core::DiasDispatcher& dispatcher_;
  core::Deflator deflator_;
  std::vector<core::ClassConstraint> constraints_;
  OverloadControllerConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool thread_running_ = false;

  // Control state (guarded by mutex_).
  bool overloaded_ = false;
  bool memory_pressure_ = false;
  std::size_t memory_in_use_bytes_ = 0;
  bool tenant_pressure_ = false;
  std::size_t tenants_over_quota_ = 0;
  double tenant_fairness_index_ = 1.0;
  bool have_sample_ = false;
  double last_uptime_s_ = 0.0;
  double last_busy_s_ = 0.0;
  // Uptime of the last installed plan; -inf so the first change is never
  // blocked by the hold window.
  double last_change_s_ = -std::numeric_limits<double>::infinity();
  std::vector<std::uint64_t> last_arrivals_;
  std::vector<double> ewma_rate_;
  std::vector<double> ceiling_;
  std::vector<double> baseline_theta_;  // relax target (profiled-load plan)
  std::vector<double> installed_;
  double utilization_ = 0.0;
  std::uint64_t samples_ = 0;
  std::uint64_t replans_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t relaxations_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::Gauge* overloaded_gauge_ = nullptr;
  obs::Gauge* utilization_gauge_ = nullptr;
  obs::Gauge* memory_gauge_ = nullptr;
  obs::Gauge* memory_pressure_gauge_ = nullptr;
  obs::Gauge* tenant_pressure_gauge_ = nullptr;
  obs::Gauge* tenants_over_quota_gauge_ = nullptr;
  obs::Counter* replans_counter_ = nullptr;
  obs::Counter* escalations_counter_ = nullptr;
  obs::Counter* relaxations_counter_ = nullptr;
  std::vector<obs::Gauge*> rate_gauges_;
  std::vector<obs::Gauge*> theta_gauges_;

  std::thread cadence_;
};

}  // namespace dias::runtime
