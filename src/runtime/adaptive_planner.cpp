#include "runtime/adaptive_planner.hpp"

#include <algorithm>
#include <set>

namespace dias::runtime {

namespace {

// EWMA fold with first-sample snap: the first observation seeds the
// average directly instead of blending against the neutral initial value.
void blend(double& ewma, double sample, double alpha, bool have_prior) {
  ewma = have_prior ? (1.0 - alpha) * ewma + alpha * sample : sample;
}

std::uint64_t counter_value(const obs::Registry* reg, const char* name) {
  if (reg == nullptr) return 0;
  const obs::Counter* c = reg->find_counter(name);
  return c == nullptr ? 0 : c->value();
}

double gauge_value(const obs::Registry* reg, const char* name, double fallback) {
  if (reg == nullptr) return fallback;
  const obs::Gauge* g = reg->find_gauge(name);
  return g == nullptr ? fallback : g->value();
}

// Smallest power of two >= demand, capped at the largest power of two
// <= max_partitions. Both the decision path and reachable_plans() use
// this, which is what keeps every emitted width inside the enumerated set.
std::size_t quantize_width(double demand, std::size_t max_partitions) {
  std::size_t cap = 1;
  while (cap * 2 <= max_partitions) cap *= 2;
  std::size_t width = 1;
  while (static_cast<double>(width) < demand && width < cap) width *= 2;
  return width;
}

}  // namespace

AdaptivePlanner::AdaptivePlanner(const obs::Registry* source, AdaptivePlannerConfig config,
                                 obs::Registry* metrics, obs::Tracer* tracer)
    : source_(source), config_(std::move(config)), metrics_(metrics), tracer_(tracer) {
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) config_.ewma_alpha = 1.0;
  if (config_.workers == 0) config_.workers = 1;
  if (config_.min_hold_decisions == 0) config_.min_hold_decisions = 1;
  if (metrics_ != nullptr) {
    decisions_counter_ = &metrics_->counter("planner.decisions");
    switches_counter_ = &metrics_->counter("planner.switches");
  }
}

PlannerMetricSnapshot AdaptivePlanner::observe() {
  PlannerMetricSnapshot snap;
  const std::uint64_t in = counter_value(source_, "engine.shuffle.records_in");
  const std::uint64_t out = counter_value(source_, "engine.shuffle.records_out");
  const std::uint64_t bytes = counter_value(source_, "engine.shuffle.bytes");
  const std::uint64_t spill = counter_value(source_, "engine.shuffle.spill_bytes");

  std::lock_guard lock(mu_);
  snap.shuffle_records_in = in - std::min(in, last_records_in_);
  snap.shuffle_records_out = out - std::min(out, last_records_out_);
  snap.shuffle_bytes = bytes - std::min(bytes, last_bytes_);
  snap.spill_bytes = spill - std::min(spill, last_spill_bytes_);
  last_records_in_ = in;
  last_records_out_ = out;
  last_bytes_ = bytes;
  last_spill_bytes_ = spill;

  snap.merge_skew = gauge_value(source_, "engine.shuffle.merge_skew", 1.0);
  snap.queue_depth = gauge_value(source_, "engine.pool.queue_depth", 0.0);
  if (source_ != nullptr) {
    if (const obs::HistogramMetric* h = source_->find_histogram("engine.task_time_s")) {
      const auto stats = h->stats();
      snap.task_time_p50 = stats.p50;
      snap.task_time_p95 = stats.p95;
    }
  }
  return snap;
}

template <typename T>
bool AdaptivePlanner::flip_locked(StageState& st, Knob knob, T& cur, const T& want) {
  if (cur == want) return false;
  if (st.last_switch[knob] != 0 &&
      st.decisions - st.last_switch[knob] < config_.min_hold_decisions) {
    return false;  // hold window still open: keep the previous decision
  }
  cur = want;
  st.last_switch[knob] = st.decisions;
  ++switches_;
  if (switches_counter_ != nullptr) switches_counter_->add(1);
  return true;
}

engine::StagePlan AdaptivePlanner::decide(const PlannerMetricSnapshot& snap,
                                          const engine::StageTraits& traits) {
  std::lock_guard lock(mu_);
  return decide_locked(snap, traits);
}

engine::StagePlan AdaptivePlanner::decide_locked(const PlannerMetricSnapshot& snap,
                                                 const engine::StageTraits& traits) {
  StageState& st = stages_[traits.name];
  ++st.decisions;
  const double alpha = config_.ewma_alpha;

  // Fold the snapshot into the engine-wide smoothed signals.
  if (snap.has_shuffle_sample()) {
    const double collapse = static_cast<double>(snap.shuffle_records_out) /
                            static_cast<double>(snap.shuffle_records_in);
    blend(signals_.ewma_collapse, collapse, alpha, signals_.have_shuffle);
    blend(signals_.ewma_bytes, static_cast<double>(snap.shuffle_bytes), alpha,
          signals_.have_shuffle);
    blend(signals_.ewma_spill, static_cast<double>(snap.spill_bytes), alpha,
          signals_.have_shuffle);
    signals_.have_shuffle = true;
    if (snap.merge_skew >= 1.0) {
      blend(signals_.ewma_skew, snap.merge_skew, alpha, signals_.have_skew);
      signals_.have_skew = true;
    }
  }
  if (snap.has_task_sample()) {
    blend(signals_.ewma_tail, snap.task_time_p95 / snap.task_time_p50, alpha,
          signals_.have_tail);
    signals_.have_tail = true;
  }

  // Combiner: pay for the map-side pass only when keys actually collapse.
  // Gated on order-insensitivity (stage_plan.hpp determinism contract).
  if (traits.order_insensitive && signals_.have_shuffle) {
    std::optional<bool> want = st.combine;
    if (signals_.ewma_collapse <= config_.combine_enable_ratio) {
      want = true;
    } else if (signals_.ewma_collapse >= config_.combine_disable_ratio) {
      want = false;
    }
    flip_locked(st, kCombine, st.combine, want);
  }

  // Route: single-thread for tiny shuffles, else skew-indexed width. The
  // two sub-knobs share one hold window so the route changes at most once
  // per window.
  if (signals_.have_shuffle) {
    bool want_single = st.single_thread;
    if (signals_.ewma_bytes <= static_cast<double>(config_.small_shuffle_low_bytes)) {
      want_single = true;
    } else if (signals_.ewma_bytes >=
               static_cast<double>(config_.small_shuffle_high_bytes)) {
      want_single = false;
    }
    if (!traits.allow_single_thread) want_single = false;

    std::size_t want_parts = st.partitions;
    if (traits.allow_repartition && config_.target_partition_bytes > 0) {
      // Volume-proportional width (one bucket per target_partition_bytes
      // of shipped data), multiplied by the largest ladder rung the
      // smoothed skew has reached — the ~1.05 skew every finite sample
      // shows stays on rung 1 and adds nothing.
      double rung = 1.0;
      for (const double m : config_.partition_ladder) {
        if (m <= signals_.ewma_skew) rung = m;
      }
      const double demand =
          signals_.ewma_bytes / static_cast<double>(config_.target_partition_bytes) * rung;
      want_parts = quantize_width(demand, config_.max_partitions);
    }

    if (want_single != st.single_thread || want_parts != st.partitions) {
      const std::pair<bool, std::size_t> want{want_single, want_parts};
      std::pair<bool, std::size_t> cur{st.single_thread, st.partitions};
      if (flip_locked(st, kRoute, cur, want)) {
        st.single_thread = cur.first;
        st.partitions = cur.second;
      }
    }
  }

  // Speculation: engage on a heavy task-time tail. Content-preserving by
  // exactly-once body completion, so only gated on the traits switch.
  if (traits.allow_speculation && signals_.have_tail) {
    std::optional<bool> want = st.speculate;
    if (signals_.ewma_tail >= config_.speculation_tail_high) {
      want = true;
    } else if (signals_.ewma_tail <= config_.speculation_tail_low) {
      want = false;
    }
    flip_locked(st, kSpeculate, st.speculate, want);
  }

  // Spill budget hint: advisory cap once the engine is observed spilling.
  if (traits.allow_spill_hint && config_.spill_budget_bytes > 0 &&
      signals_.have_shuffle) {
    bool want = st.spill_hint;
    if (signals_.ewma_spill >= static_cast<double>(config_.spill_high_bytes)) {
      want = true;
    } else if (signals_.ewma_spill <= static_cast<double>(config_.spill_low_bytes)) {
      want = false;
    }
    flip_locked(st, kSpill, st.spill_hint, want);
  }

  engine::StagePlan plan;
  plan.decision_seq = ++decision_seq_;
  if (traits.order_insensitive) plan.combine = st.combine;
  if (st.single_thread) {
    plan.single_thread = true;
  } else if (st.partitions != 0 && st.partitions != traits.default_partitions) {
    plan.partitions = st.partitions;
  }
  if (traits.allow_speculation) plan.speculate = st.speculate;
  if (st.spill_hint) plan.spill_budget_bytes = config_.spill_budget_bytes;
  return plan;
}

engine::StagePlan AdaptivePlanner::plan_for(const engine::StageTraits& traits) {
  const PlannerMetricSnapshot snap = observe();
  std::lock_guard lock(mu_);
  const engine::StagePlan plan = decide_locked(snap, traits);
  if (decisions_counter_ != nullptr) decisions_counter_->add(1);
  export_locked(traits, plan);
  return plan;
}

void AdaptivePlanner::export_locked(const engine::StageTraits& traits,
                                    const engine::StagePlan& plan) {
  const auto tri = [](const std::optional<bool>& v) {
    return !v.has_value() ? -1.0 : (*v ? 1.0 : 0.0);
  };
  if (metrics_ != nullptr) {
    const std::string prefix = "planner." + traits.name + ".";
    metrics_->gauge(prefix + "combine").set(tri(plan.combine));
    metrics_->gauge(prefix + "single_thread").set(plan.single_thread ? 1.0 : 0.0);
    metrics_->gauge(prefix + "partitions")
        .set(static_cast<double>(plan.single_thread ? 1
                                 : plan.partitions != 0 ? plan.partitions
                                                        : traits.default_partitions));
    metrics_->gauge(prefix + "speculate").set(tri(plan.speculate));
    metrics_->gauge(prefix + "spill_budget")
        .set(static_cast<double>(plan.spill_budget_bytes.value_or(0)));
  }
  if (tracer_ != nullptr) {
    tracer_->event("planner.decide",
                   {{"stage", traits.name},
                    {"plan", plan.summary()},
                    {"seq", plan.decision_seq},
                    {"collapse", signals_.ewma_collapse},
                    {"bytes", signals_.ewma_bytes},
                    {"skew", signals_.ewma_skew},
                    {"tail", signals_.ewma_tail},
                    {"spill", signals_.ewma_spill}});
  }
}

std::vector<engine::StagePlan> AdaptivePlanner::reachable_plans(
    const AdaptivePlannerConfig& config, const engine::StageTraits& traits) {
  std::vector<std::optional<bool>> combine_opts = {std::nullopt};
  if (traits.order_insensitive) {
    combine_opts.push_back(true);
    combine_opts.push_back(false);
  }

  // (single_thread, partitions) routes; partitions 0 = keep the default.
  std::vector<std::pair<bool, std::size_t>> route_opts = {{false, 0}};
  if (traits.allow_single_thread) route_opts.push_back({true, 0});
  if (traits.allow_repartition && config.target_partition_bytes > 0) {
    // Every power of two quantize_width() can produce.
    for (std::size_t parts = 1;; parts *= 2) {
      if (parts != traits.default_partitions) route_opts.push_back({false, parts});
      if (parts * 2 > config.max_partitions) break;
    }
  }

  std::vector<std::optional<bool>> spec_opts = {std::nullopt};
  if (traits.allow_speculation) {
    spec_opts.push_back(true);
    spec_opts.push_back(false);
  }

  std::vector<std::optional<std::size_t>> spill_opts = {std::nullopt};
  if (traits.allow_spill_hint && config.spill_budget_bytes > 0) {
    spill_opts.push_back(config.spill_budget_bytes);
  }

  std::vector<engine::StagePlan> out;
  std::set<std::string> seen;
  for (const auto& combine : combine_opts) {
    for (const auto& [single, parts] : route_opts) {
      for (const auto& spec : spec_opts) {
        for (const auto& spill : spill_opts) {
          engine::StagePlan plan;
          plan.combine = combine;
          plan.single_thread = single;
          plan.partitions = parts;
          plan.speculate = spec;
          if (spill.has_value()) plan.spill_budget_bytes = *spill;
          if (seen.insert(plan.summary()).second) out.push_back(plan);
        }
      }
    }
  }
  return out;
}

AdaptivePlanner::Status AdaptivePlanner::status() const {
  std::lock_guard lock(mu_);
  Status s;
  s.decisions = decision_seq_;
  s.switches = switches_;
  return s;
}

}  // namespace dias::runtime
