// Sprint governor for the real engine (paper Section 3.2, runtime host).
//
// The simulator models sprinting as a DVFS frequency boost; commodity
// containers rarely expose DVFS, so the runtime stand-in grants *extra
// worker slots* on the engine's elastic thread pool instead — the same
// ~3x capacity knob, spent from the same energy budget. The governor owns:
//
//   * per-class Tk timers: when the dispatcher reports a job start, a
//     watchdog thread arms the class's timeout; if the job is still running
//     when Tk elapses (and the budget has charge), the governor leases the
//     pool's reserve slots and starts draining the shared EnergyBudget;
//   * budget enforcement: a sprint ends at job completion or at the
//     budget's predicted depletion time, whichever comes first, so energy
//     spent never exceeds budget + replenishment (the same conservation
//     contract the simulator's SprintBudget keeps);
//   * grant/revoke bookkeeping: every sprint produces a SprintInterval
//     (seconds relative to the job's start) that the dispatcher copies
//     into its JobRecord, plus obs counters/gauges and "runtime.sprint"
//     tracer spans.
//
// Concurrency contract: the dispatcher is non-preemptive and single-runner,
// so at most one job is active at a time; job_started/job_finished must
// alternate. The watchdog thread and the dispatcher thread synchronize on
// one mutex; pool lease/release happen outside engine stages' data paths
// (the elastic pool makes resizes safe mid-stage).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/energy_budget.hpp"

namespace dias::runtime {

// One boost window, in seconds relative to the owning job's start.
struct SprintInterval {
  double begin_s = 0.0;
  double end_s = 0.0;
  double duration_s() const { return end_s - begin_s; }
};

struct SprintGovernorConfig {
  bool enabled = true;
  // Reserve slots to lease while sprinting; 0 falls back to "whatever the
  // pool has free" (the whole reserve).
  std::size_t boost_workers = 0;
  EnergyBudgetConfig budget;
  // Per-class sprint timeout Tk in seconds since job start; infinity = the
  // class never sprints; 0 = sprint immediately. Classes beyond the vector
  // never sprint (same convention as cluster::SprintConfig).
  std::vector<double> timeout_s;

  double timeout_for_class(std::size_t priority) const {
    if (!enabled || priority >= timeout_s.size()) {
      return std::numeric_limits<double>::infinity();
    }
    return timeout_s[priority];
  }
};

class SprintGovernor {
 public:
  SprintGovernor(SprintGovernorConfig config, engine::ThreadPool& pool);
  ~SprintGovernor();
  SprintGovernor(const SprintGovernor&) = delete;
  SprintGovernor& operator=(const SprintGovernor&) = delete;

  // Dispatcher hooks. job_started arms the class's Tk timer (or sprints
  // immediately when Tk == 0); job_finished revokes any active boost and
  // returns the job's sprint intervals in seconds since its start.
  void job_started(std::size_t priority);
  std::vector<SprintInterval> job_finished();

  // --- introspection (tests, benches) -------------------------------------
  bool sprinting() const;
  std::size_t sprints_granted() const;
  std::size_t sprints_denied() const;  // Tk fired but the budget was empty
  double budget_level() const;
  double budget_consumed() const;

  // Attaches metric/trace sinks (either may be null; null detaches):
  // runtime.sprint.{granted,denied,revoked_budget} counters, budget level /
  // consumed / boost-slot gauges, and one "runtime.sprint" span per boost
  // window (priority, leased slots, joules). Attach while idle.
  void attach_observability(obs::Registry* metrics, obs::Tracer* tracer);

 private:
  void watchdog_loop();
  double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  // Starts/stops the boost; callers hold mutex_.
  void begin_boost(double now);
  void end_boost(double now, const char* reason);

  SprintGovernorConfig config_;
  engine::ThreadPool& pool_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // Active-job state (dispatcher is single-runner).
  bool job_active_ = false;
  std::size_t job_priority_ = 0;
  double job_start_s_ = 0.0;
  double deadline_s_ = std::numeric_limits<double>::infinity();  // Tk fire time
  double depletion_s_ = std::numeric_limits<double>::infinity();  // budget cutoff
  std::vector<SprintInterval> intervals_;  // absolute begin/end, rebased on finish

  EnergyBudget budget_;
  engine::SlotLease lease_;
  bool boosting_ = false;
  double boost_begin_s_ = 0.0;
  std::size_t granted_total_ = 0;
  std::size_t denied_total_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::Tracer::SpanId span_ = 0;
  obs::Counter* granted_counter_ = nullptr;
  obs::Counter* denied_counter_ = nullptr;
  obs::Counter* budget_revoked_counter_ = nullptr;
  obs::Gauge* boost_slots_gauge_ = nullptr;

  std::thread watchdog_;
};

// RAII wrapper for the job_started/job_finished pair. The governor's
// watchdog is armed between the two calls, and job_finished is what
// revokes an active boost (returning its SlotLease and stopping the
// budget drain) — so a job body that throws or is cancelled between the
// hooks would otherwise leak the boost and wedge the single-runner
// contract (the next job_started asserts). The guard makes revocation
// exception-safe: construct it before running the job, call finish() on
// the success path to collect the intervals; if the scope unwinds first,
// the destructor still closes the pair (discarding the intervals — the
// job has no record to attach them to anyway).
class SprintJobGuard {
 public:
  SprintJobGuard(SprintGovernor& governor, std::size_t priority) : governor_(&governor) {
    governor_->job_started(priority);
  }
  ~SprintJobGuard() {
    if (governor_ != nullptr) governor_->job_finished();
  }
  SprintJobGuard(const SprintJobGuard&) = delete;
  SprintJobGuard& operator=(const SprintJobGuard&) = delete;

  // Closes the pair and hands out the job's boost windows (seconds since
  // job start). After finish() the destructor is a no-op.
  std::vector<SprintInterval> finish() {
    auto out = governor_->job_finished();
    governor_ = nullptr;
    return out;
  }

 private:
  SprintGovernor* governor_;
};

}  // namespace dias::runtime
