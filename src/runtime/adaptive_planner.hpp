// Online per-stage strategy selection (ISSUE 8 tentpole).
//
// The paper's measure/re-plan/act loop already runs in the control plane
// (Deflator theta, OverloadController); the AdaptivePlanner extends it to
// the *execution* plane. It reads the engine's obs registry at stage
// boundaries, distills a handful of signals — key-collapse ratio, shuffle
// bytes, merge skew, task-time tail ratio, spill pressure — and emits an
// engine::StagePlan per stage:
//
//   signal (EWMA-smoothed)          knob                    direction
//   ------------------------------  ----------------------  -----------------
//   records_out / records_in        combiner on/off         low ratio -> on
//   shuffle bytes per stage         single-thread route     small -> 1 bucket
//   shipped bytes x merge skew      partition width         volume -> wider
//   task p95 / p50                  speculation             heavy tail -> on
//   spill bytes delta               spill budget hint       spilling -> hint
//
// Stability: every knob is two-sided (separate engage / release
// thresholds, like OverloadController's queue bands) and rate-limited by a
// per-knob min-hold measured in decisions, so an input oscillating around
// one threshold produces at most one switch per hold window (the flap
// property test pins this down). decide() is a pure deterministic function
// of the snapshot sequence fed to it — no clocks, no randomness — which is
// what lets the determinism battery replay decisions exactly.
//
// Correctness: the planner only ever emits knobs the stage's StageTraits
// allow. See stage_plan.hpp for the relocating-vs-reordering determinism
// contract; DESIGN.md §15 has the full decision table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "engine/stage_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::runtime {

// Raw signals distilled from one read of the source registry. Counter
// fields are *deltas* since the previous observe(); gauges and histogram
// quantiles are instantaneous. Tests synthesize these directly to drive
// decide() with scripted metric streams.
struct PlannerMetricSnapshot {
  std::uint64_t shuffle_records_in = 0;
  std::uint64_t shuffle_records_out = 0;
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t spill_bytes = 0;
  double merge_skew = 1.0;     // engine.shuffle.merge_skew gauge
  double task_time_p50 = 0.0;  // engine.task_time_s histogram
  double task_time_p95 = 0.0;
  double queue_depth = 0.0;  // engine.pool.queue_depth gauge

  bool has_shuffle_sample() const { return shuffle_records_in > 0; }
  bool has_task_sample() const { return task_time_p50 > 0.0; }
};

struct AdaptivePlannerConfig {
  // Worker count the partition ladder multiplies; callers pass the
  // engine's configured worker count.
  std::size_t workers = 4;
  // EWMA weight of the newest signal sample, in (0, 1].
  double ewma_alpha = 0.4;
  // Minimum decide() calls between switches of any one knob on one stage.
  std::uint64_t min_hold_decisions = 3;
  // Combiner band on the smoothed collapse ratio records_out/records_in:
  // at or below enable the combiner pays for itself; at or above disable
  // it is pure overhead. In between, keep the previous decision. The
  // defaults sit at the engine's measured break-even (bench_ext_adaptive):
  // removing half the records already wins ~10%, while a high-cardinality
  // stream that keeps >3/4 of its records pays the map-side fold — and
  // its scratch flush churn — for nothing.
  double combine_enable_ratio = 0.5;
  double combine_disable_ratio = 0.75;
  // Single-thread band on smoothed shuffle bytes per stage: below low the
  // whole shuffle routes through one bucket; above high it parallelizes.
  std::size_t small_shuffle_low_bytes = 64 * 1024;
  std::size_t small_shuffle_high_bytes = 256 * 1024;
  // Partition width follows *shipped* volume, widened under skew: the
  // demand is (smoothed post-combine bytes / target_partition_bytes)
  // times the largest ladder rung <= smoothed merge skew, rounded up to a
  // power of two in [1, max_partitions]. Small post-combine outputs merge
  // fastest in one bucket (wide outputs pay flush overhead per bucket);
  // volume adds buckets for parallel merge; a hot bucket carrying a real
  // multiple of the mean widens further to spread its keys. Powers of two
  // keep the width set finite so reachable_plans() can enumerate it.
  std::size_t target_partition_bytes = std::size_t{4} << 20;
  std::vector<double> partition_ladder = {1.0, 2.0, 4.0};
  std::size_t max_partitions = 1024;
  // Speculation band on the smoothed task-time tail ratio p95/p50.
  double speculation_tail_high = 4.0;
  double speculation_tail_low = 2.0;
  // Spill-hint band on smoothed spill-bytes deltas, and the budget the
  // hint carries. budget 0 disables the knob entirely.
  std::size_t spill_high_bytes = 1;
  std::size_t spill_low_bytes = 0;
  std::size_t spill_budget_bytes = 0;
};

// PlanSource backed by live metrics. plan_for() = observe() + decide() +
// export (gauges "planner.<stage>.<knob>", counters "planner.decisions" /
// "planner.switches", one "planner.decide" trace event per call).
// Thread-safe; intended to be consulted from the driver thread at stage
// boundaries only, never inside a stage.
class AdaptivePlanner : public engine::PlanSource {
 public:
  // `source` is the registry the engine under observation writes to (may
  // be null: the planner then sees no signals and emits identity plans).
  // `metrics`/`tracer` are the planner's own export sinks and may be null;
  // source and metrics may be the same registry.
  AdaptivePlanner(const obs::Registry* source, AdaptivePlannerConfig config,
                  obs::Registry* metrics = nullptr, obs::Tracer* tracer = nullptr);

  engine::StagePlan plan_for(const engine::StageTraits& traits) override;

  // Reads the source registry and returns the delta snapshot since the
  // previous observe(). Exposed for tests and for callers that want to
  // observe once per round rather than once per stage.
  PlannerMetricSnapshot observe();

  // The pure decision core: folds `snap` into the named stage's smoothed
  // state and returns the plan. Deterministic given the call sequence.
  engine::StagePlan decide(const PlannerMetricSnapshot& snap,
                           const engine::StageTraits& traits);

  // Every plan decide() could ever emit for `traits` under `config`,
  // deduplicated. The determinism battery iterates exactly this set.
  static std::vector<engine::StagePlan> reachable_plans(
      const AdaptivePlannerConfig& config, const engine::StageTraits& traits);

  struct Status {
    std::uint64_t decisions = 0;  // decide() calls across all stages
    std::uint64_t switches = 0;   // knob flips across all stages
  };
  Status status() const;

 private:
  // Indices into StageState::last_switch; each knob holds independently.
  enum Knob { kCombine = 0, kRoute = 1, kSpeculate = 2, kSpill = 3, kKnobCount = 4 };

  // Smoothed signals. Engine-wide, not per-stage: the source counters are
  // global, and whichever stage observes a delta folds it in for everyone
  // (otherwise the first plan_for of a round would consume the delta and
  // starve the stages consulted after it). The have_* flags gate knobs
  // until a first sample arrives, so the planner never overrides static
  // config on no data.
  struct Signals {
    bool have_shuffle = false;
    bool have_tail = false;
    bool have_skew = false;
    double ewma_collapse = 1.0;
    double ewma_bytes = 0.0;
    double ewma_skew = 1.0;
    double ewma_tail = 1.0;
    double ewma_spill = 0.0;
  };

  struct StageState {
    // Current knob positions. nullopt = not yet decided (stay static).
    std::optional<bool> combine;
    bool single_thread = false;
    std::size_t partitions = 0;  // 0 = keep the stage default
    std::optional<bool> speculate;
    bool spill_hint = false;
    std::uint64_t decisions = 0;
    std::uint64_t last_switch[kKnobCount] = {0, 0, 0, 0};
  };

  engine::StagePlan decide_locked(const PlannerMetricSnapshot& snap,
                                  const engine::StageTraits& traits);
  // Applies min-hold: flips `cur` to `want` only when the knob's hold
  // window has elapsed. Returns true when a flip happened.
  template <typename T>
  bool flip_locked(StageState& st, Knob knob, T& cur, const T& want);
  void export_locked(const engine::StageTraits& traits, const engine::StagePlan& plan);

  const obs::Registry* source_;
  AdaptivePlannerConfig config_;
  obs::Registry* metrics_;
  obs::Tracer* tracer_;
  obs::Counter* decisions_counter_ = nullptr;
  obs::Counter* switches_counter_ = nullptr;

  mutable std::mutex mu_;
  Signals signals_;
  std::map<std::string, StageState> stages_;
  std::uint64_t last_records_in_ = 0;
  std::uint64_t last_records_out_ = 0;
  std::uint64_t last_bytes_ = 0;
  std::uint64_t last_spill_bytes_ = 0;
  std::uint64_t decision_seq_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace dias::runtime
