#include "runtime/energy_budget.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dias::runtime {

EnergyBudget::EnergyBudget(const EnergyBudgetConfig& config, double now)
    : config_(config), level_(config.budget_joules), last_update_(now) {
  DIAS_EXPECTS(config_.sprint_power_w >= config_.base_power_w,
               "sprint power must be >= base power");
  DIAS_EXPECTS(config_.replenish_watts >= 0.0, "replenish rate must be non-negative");
  DIAS_EXPECTS(config_.budget_joules >= 0.0, "budget must be non-negative");
}

void EnergyBudget::advance(double now) {
  DIAS_EXPECTS(now >= last_update_, "sprint budget cannot move backwards in time");
  const double dt = now - last_update_;
  if (dt > 0.0) {
    if (sprinting_) {
      const double net = config_.extra_power() - config_.replenish_watts;
      if (net > 0.0 && std::isfinite(level_)) {
        // A sprint can only draw what the battery holds plus what flows
        // in: past the depletion point (level == 0) the net drain stops
        // and consumption is capped at the replenishment inflow. Wall-
        // clock hosts revoke a depleted boost a scheduler-latency late;
        // without this cap that latency would overdraw the budget.
        const double drained_dt = std::min(dt, level_ / net);
        level_ = std::max(0.0, level_ - net * drained_dt);
        consumed_ += config_.extra_power() * drained_dt +
                     config_.replenish_watts * (dt - drained_dt);
      } else {
        level_ = std::max(0.0, level_ - net * dt);
        consumed_ += config_.extra_power() * dt;
      }
    } else {
      level_ = std::min(config_.budget_cap_joules, level_ + config_.replenish_watts * dt);
    }
  }
  last_update_ = now;
}

double EnergyBudget::level(double now) const {
  EnergyBudget copy = *this;
  copy.advance(now);
  return copy.level_;
}

double EnergyBudget::consumed(double now) const {
  EnergyBudget copy = *this;
  copy.advance(now);
  return copy.consumed_;
}

double EnergyBudget::begin_sprint(double now) {
  advance(now);
  DIAS_EXPECTS(!sprinting_, "sprint already active");
  sprinting_ = true;
  publish();
  const double net = config_.extra_power() - config_.replenish_watts;
  if (!std::isfinite(level_) || net <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return now + level_ / net;
}

void EnergyBudget::end_sprint(double now) {
  advance(now);
  DIAS_EXPECTS(sprinting_, "no sprint active");
  sprinting_ = false;
  publish();
}

void EnergyBudget::attach_gauges(obs::Gauge* level, obs::Gauge* consumed) {
  level_gauge_ = level;
  consumed_gauge_ = consumed;
  publish();
}

void EnergyBudget::publish() const {
  if (level_gauge_ != nullptr) level_gauge_->set(level_);
  if (consumed_gauge_ != nullptr) consumed_gauge_->set(consumed_);
}

}  // namespace dias::runtime
