// Host-agnostic sprint energy accounting (paper Sections 2.3, 3.2).
//
// One policy, two hosts: this is the single implementation of the DVFS
// budget semantics shared by the cluster *simulator* (cluster::SprintBudget
// delegates here, feeding simulation time) and the real-engine runtime
// (runtime::SprintGovernor, feeding wall-clock seconds). The budget holds
// Joules; while a sprint is active it drains at the *extra* power drawn by
// the high frequency (sprint_power - base_power) net of replenishment;
// while idle it replenishes at the configured rate up to a cap (e.g. "6
// sprinting minutes per hour"). Accounting is lazy: the stored level is
// valid as of the last event; queries advance a copy to `now`.
//
// Callers own the clock. Time is monotone seconds (double) from any epoch;
// feeding a `now` earlier than the previous event is a precondition error.
// The class is not synchronized — the simulator is single-threaded and the
// governor serializes access behind its own mutex.
#pragma once

#include <limits>

#include "obs/metrics.hpp"

namespace dias::runtime {

struct EnergyBudgetConfig {
  double base_power_w = 180.0;
  double sprint_power_w = 270.0;
  // Initial/total budget in Joules; infinity = unlimited sprinting.
  double budget_joules = std::numeric_limits<double>::infinity();
  // Replenish rate (Watts) and cap for the budget.
  double replenish_watts = 0.0;
  double budget_cap_joules = std::numeric_limits<double>::infinity();

  double extra_power() const { return sprint_power_w - base_power_w; }
};

class EnergyBudget {
 public:
  EnergyBudget(const EnergyBudgetConfig& config, double now);

  // Current budget level at time `now`.
  double level(double now) const;
  bool has_budget(double now) const { return level(now) > 1e-9; }

  // Marks the start of a sprint at `now`. Returns the time at which the
  // budget will deplete if the sprint never ends (infinity when the
  // replenish rate covers the drain or the budget is unlimited). Hosts
  // should end the sprint no later than the returned depletion time; if a
  // wall-clock host revokes a scheduler-latency late, the drain past the
  // depletion point is capped at the replenishment inflow, so the
  // conservation invariant — consumed never exceeds the initial budget
  // plus replenishment — holds regardless.
  double begin_sprint(double now);
  // Marks the end of the sprint at `now`.
  void end_sprint(double now);

  bool sprinting() const { return sprinting_; }
  // Total Joules drained by sprints so far (extra power integrated).
  double consumed(double now) const;

  const EnergyBudgetConfig& config() const { return config_; }

  // Mirrors the budget level (Joules) and cumulative consumption into
  // gauges on every state change (null detaches). Levels are as of the
  // begin/end sprint events — lazy advancement means intermediate decay is
  // not published.
  void attach_gauges(obs::Gauge* level, obs::Gauge* consumed);

 private:
  void advance(double now);
  void publish() const;

  EnergyBudgetConfig config_;
  double level_;
  double consumed_ = 0.0;
  double last_update_;
  bool sprinting_ = false;
  obs::Gauge* level_gauge_ = nullptr;
  obs::Gauge* consumed_gauge_ = nullptr;
};

}  // namespace dias::runtime
