#include "runtime/overload_controller.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace dias::runtime {

OverloadController::OverloadController(core::DiasDispatcher& dispatcher,
                                       core::Deflator deflator,
                                       std::vector<core::ClassConstraint> constraints,
                                       OverloadControllerConfig config,
                                       obs::Registry* metrics, obs::Tracer* tracer)
    : dispatcher_(dispatcher), deflator_(std::move(deflator)),
      constraints_(std::move(constraints)), config_(std::move(config)),
      tracer_(tracer) {
  const std::size_t n = deflator_.profiles().size();
  DIAS_EXPECTS(n == dispatcher_.priorities(),
               "deflator profiles and dispatcher classes must agree");
  DIAS_EXPECTS(constraints_.size() == n, "one constraint per class required");
  DIAS_EXPECTS(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
               "ewma_alpha must be in (0,1]");
  DIAS_EXPECTS(config_.queue_depth_low <= config_.queue_depth_high,
               "hysteresis band must have low <= high");
  DIAS_EXPECTS(config_.memory_high_bytes == 0 ||
                   config_.memory_low_bytes <= config_.memory_high_bytes,
               "memory hysteresis band must have low <= high");
  DIAS_EXPECTS(config_.tenant_overquota_high == 0 ||
                   config_.tenant_overquota_low <= config_.tenant_overquota_high,
               "tenant hysteresis band must have low <= high");
  DIAS_EXPECTS(config_.min_hold_s >= 0.0, "min_hold_s must be >= 0");
  DIAS_EXPECTS(config_.theta_ceiling.empty() || config_.theta_ceiling.size() == n,
               "theta_ceiling must be empty or one per class");

  // Per-class ceilings: explicit, or the accuracy profile's admissible cap
  // for the class's error tolerance. The closed loop never installs above
  // these, so accuracy contracts survive any overload.
  ceiling_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    if (!config_.theta_ceiling.empty()) {
      DIAS_EXPECTS(config_.theta_ceiling[k] >= 0.0 && config_.theta_ceiling[k] <= 1.0,
                   "theta ceilings must be in [0,1]");
      ceiling_[k] = config_.theta_ceiling[k];
    } else {
      ceiling_[k] = std::clamp(
          deflator_.accuracy(k).max_theta_for_error(constraints_[k].max_error_percent),
          0.0, 1.0);
    }
  }

  // EWMA seeds from the profiled rates; the relax target is the offline
  // plan (or the dispatcher's current thetas when no plan is feasible).
  ewma_rate_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    ewma_rate_[k] = deflator_.profiles()[k].arrival_rate;
  }
  last_arrivals_.assign(n, 0);
  installed_.resize(n);
  for (std::size_t k = 0; k < n; ++k) installed_[k] = dispatcher_.theta(k);
  const auto base = deflator_.plan(constraints_);
  baseline_theta_ = base.feasible ? base.theta : installed_;
  for (std::size_t k = 0; k < n; ++k) {
    baseline_theta_[k] = std::min(baseline_theta_[k], ceiling_[k]);
  }

  if (metrics != nullptr) {
    overloaded_gauge_ = &metrics->gauge("overload.state");
    utilization_gauge_ = &metrics->gauge("overload.utilization");
    memory_gauge_ = &metrics->gauge("overload.memory_in_use_bytes");
    memory_pressure_gauge_ = &metrics->gauge("overload.memory_pressure");
    tenant_pressure_gauge_ = &metrics->gauge("overload.tenant_pressure");
    tenants_over_quota_gauge_ = &metrics->gauge("overload.tenants_over_quota");
    replans_counter_ = &metrics->counter("overload.replans");
    escalations_counter_ = &metrics->counter("overload.escalations");
    relaxations_counter_ = &metrics->counter("overload.relaxations");
    for (std::size_t k = 0; k < n; ++k) {
      const std::string suffix = ".class" + std::to_string(k);
      rate_gauges_.push_back(&metrics->gauge("overload.rate" + suffix));
      theta_gauges_.push_back(&metrics->gauge("overload.theta" + suffix));
      rate_gauges_.back()->set(ewma_rate_[k]);
      theta_gauges_.back()->set(installed_[k]);
    }
  }

  if (config_.start_thread) start();
}

OverloadController::~OverloadController() { stop(); }

void OverloadController::start() {
  std::lock_guard lock(mutex_);
  if (thread_running_) return;
  stopping_ = false;
  thread_running_ = true;
  cadence_ = std::thread([this] { cadence_loop(); });
}

void OverloadController::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!thread_running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  cadence_.join();
  std::lock_guard lock(mutex_);
  thread_running_ = false;
  stopping_ = false;
}

void OverloadController::cadence_loop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double>(config_.sample_period_s));
    if (stopping_) break;
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void OverloadController::sample_once() {
  const auto snap = dispatcher_.load_snapshot();
  std::lock_guard lock(mutex_);
  ++samples_;
  const double now = snap.uptime_s;
  const double dt = now - last_uptime_s_;
  if (have_sample_ && dt > 1e-9) {
    for (std::size_t k = 0; k < ewma_rate_.size(); ++k) {
      const double sample =
          static_cast<double>(snap.classes[k].arrivals - last_arrivals_[k]) / dt;
      ewma_rate_[k] =
          (1.0 - config_.ewma_alpha) * ewma_rate_[k] + config_.ewma_alpha * sample;
    }
    utilization_ = std::clamp((snap.busy_s - last_busy_s_) / dt, 0.0, 1.0);
  }
  for (std::size_t k = 0; k < last_arrivals_.size(); ++k) {
    last_arrivals_[k] = snap.classes[k].arrivals;
    if (!rate_gauges_.empty()) rate_gauges_[k]->set(ewma_rate_[k]);
  }
  last_uptime_s_ = now;
  last_busy_s_ = snap.busy_s;
  have_sample_ = true;

  // Hysteresis: sticky between the low and high thresholds. Queue depth
  // and accounted memory footprint are independent triggers with their
  // own bands; either can flip the controller into "overloaded" and both
  // must clear before it relaxes.
  const std::size_t depth = snap.total_queue_depth();
  memory_in_use_bytes_ = snap.memory_in_use_bytes;
  const bool memory_enabled = config_.memory_high_bytes != 0;
  if (memory_enabled) {
    if (memory_in_use_bytes_ >= config_.memory_high_bytes) {
      memory_pressure_ = true;
    } else if (memory_in_use_bytes_ <= config_.memory_low_bytes) {
      memory_pressure_ = false;
    }
  }
  // Tenant trigger (ISSUE 7): sustained multi-tenant contention — many
  // tenants simultaneously over their fair share — is plant-wide overload
  // even while queues are still short, because the ledger's ladder is
  // already deferring/shedding their work. Same sticky-band shape as the
  // memory trigger.
  tenants_over_quota_ = snap.tenants_over_quota;
  tenant_fairness_index_ = snap.tenant_fairness_index;
  const bool tenant_enabled = config_.tenant_overquota_high != 0;
  if (tenant_enabled) {
    if (tenants_over_quota_ >= config_.tenant_overquota_high) {
      tenant_pressure_ = true;
    } else if (tenants_over_quota_ <= config_.tenant_overquota_low) {
      tenant_pressure_ = false;
    }
  }
  if (depth >= config_.queue_depth_high || (memory_enabled && memory_pressure_) ||
      (tenant_enabled && tenant_pressure_)) {
    overloaded_ = true;
  } else if (depth <= config_.queue_depth_low &&
             (!memory_enabled || !memory_pressure_) &&
             (!tenant_enabled || !tenant_pressure_)) {
    overloaded_ = false;
  }
  if (overloaded_gauge_ != nullptr) overloaded_gauge_->set(overloaded_ ? 1.0 : 0.0);
  if (utilization_gauge_ != nullptr) utilization_gauge_->set(utilization_);
  if (memory_gauge_ != nullptr) {
    memory_gauge_->set(static_cast<double>(memory_in_use_bytes_));
  }
  if (memory_pressure_gauge_ != nullptr) {
    memory_pressure_gauge_->set(memory_pressure_ ? 1.0 : 0.0);
  }
  if (tenant_pressure_gauge_ != nullptr) {
    tenant_pressure_gauge_->set(tenant_pressure_ ? 1.0 : 0.0);
  }
  if (tenants_over_quota_gauge_ != nullptr) {
    tenants_over_quota_gauge_->set(static_cast<double>(tenants_over_quota_));
  }

  // Plan switches are rate-limited; within the hold window the previous
  // plan stands even if the state machine flipped.
  if (now - last_change_s_ < config_.min_hold_s) return;
  if (overloaded_) {
    std::vector<double> rates(ewma_rate_.size());
    for (std::size_t k = 0; k < rates.size(); ++k) {
      rates[k] = std::max(ewma_rate_[k], 1e-6);
    }
    replan_locked(rates, true, now);
  } else if (installed_ != baseline_theta_) {
    install_locked(baseline_theta_, false, now, true);
  }
}

void OverloadController::replan_locked(const std::vector<double>& rates,
                                       bool overloaded, double now_s) {
  ++replans_;
  if (replans_counter_ != nullptr) replans_counter_->add();
  const auto plan = deflator_.plan(constraints_, rates);
  std::vector<double> target(ceiling_.size());
  for (std::size_t k = 0; k < target.size(); ++k) {
    // Infeasible measured load: escalate to the accuracy ceilings — the
    // most degradation the contracts admit; admission control carries the
    // rest of the overload.
    target[k] = plan.feasible ? std::min(plan.theta[k], ceiling_[k]) : ceiling_[k];
  }
  if (target == installed_) return;
  bool raised = false;
  for (std::size_t k = 0; k < target.size(); ++k) {
    if (target[k] > installed_[k]) raised = true;
  }
  (void)overloaded;
  install_locked(target, raised, now_s, plan.feasible);
}

void OverloadController::install_locked(const std::vector<double>& theta, bool escalate,
                                        double now_s, bool feasible) {
  for (std::size_t k = 0; k < theta.size(); ++k) {
    dispatcher_.set_theta(k, theta[k]);
    if (!theta_gauges_.empty()) theta_gauges_[k]->set(theta[k]);
  }
  installed_ = theta;
  last_change_s_ = now_s;
  if (escalate) {
    ++escalations_;
    if (escalations_counter_ != nullptr) escalations_counter_->add();
  } else {
    ++relaxations_;
    if (relaxations_counter_ != nullptr) relaxations_counter_->add();
  }
  if (tracer_ != nullptr) {
    std::vector<obs::Field> fields;
    fields.emplace_back("overloaded", overloaded_);
    fields.emplace_back("escalate", escalate);
    fields.emplace_back("feasible", feasible);
    fields.emplace_back("uptime_s", now_s);
    for (std::size_t k = 0; k < theta.size(); ++k) {
      fields.emplace_back("theta" + std::to_string(k), theta[k]);
      fields.emplace_back("rate" + std::to_string(k), ewma_rate_[k]);
    }
    tracer_->event("overload.plan", std::move(fields));
  }
}

OverloadController::Status OverloadController::status() const {
  std::lock_guard lock(mutex_);
  Status s;
  s.overloaded = overloaded_;
  s.memory_pressure = memory_pressure_;
  s.memory_in_use_bytes = memory_in_use_bytes_;
  s.tenant_pressure = tenant_pressure_;
  s.tenants_over_quota = tenants_over_quota_;
  s.tenant_fairness_index = tenant_fairness_index_;
  s.samples = samples_;
  s.replans = replans_;
  s.escalations = escalations_;
  s.relaxations = relaxations_;
  s.measured_rate = ewma_rate_;
  s.installed_theta = installed_;
  s.theta_ceiling = ceiling_;
  s.utilization = utilization_;
  return s;
}

}  // namespace dias::runtime
