#include "runtime/sprint_governor.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace dias::runtime {

SprintGovernor::SprintGovernor(SprintGovernorConfig config, engine::ThreadPool& pool)
    : config_(std::move(config)), pool_(pool),
      epoch_(std::chrono::steady_clock::now()), budget_(config_.budget, 0.0) {
  for (double tk : config_.timeout_s) {
    DIAS_EXPECTS(tk >= 0.0, "sprint timeouts must be non-negative");
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

SprintGovernor::~SprintGovernor() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    if (boosting_) end_boost(now_s(), "shutdown");
  }
  cv_.notify_all();
  watchdog_.join();
}

void SprintGovernor::attach_observability(obs::Registry* metrics, obs::Tracer* tracer) {
  std::lock_guard lock(mutex_);
  DIAS_EXPECTS(!job_active_, "attach observability while the governor is idle");
  tracer_ = tracer;
  if (metrics != nullptr) {
    granted_counter_ = &metrics->counter("runtime.sprint.granted");
    denied_counter_ = &metrics->counter("runtime.sprint.denied");
    budget_revoked_counter_ = &metrics->counter("runtime.sprint.revoked_budget");
    boost_slots_gauge_ = &metrics->gauge("runtime.sprint.boost_slots");
    budget_.attach_gauges(&metrics->gauge("runtime.sprint.budget_level_j"),
                          &metrics->gauge("runtime.sprint.budget_consumed_j"));
  } else {
    granted_counter_ = nullptr;
    denied_counter_ = nullptr;
    budget_revoked_counter_ = nullptr;
    boost_slots_gauge_ = nullptr;
    budget_.attach_gauges(nullptr, nullptr);
  }
}

void SprintGovernor::job_started(std::size_t priority) {
  std::lock_guard lock(mutex_);
  DIAS_EXPECTS(!job_active_, "the dispatcher is single-runner: finish the previous job");
  job_active_ = true;
  job_priority_ = priority;
  job_start_s_ = now_s();
  intervals_.clear();
  const double tk = config_.timeout_for_class(priority);
  deadline_s_ = std::isfinite(tk) ? job_start_s_ + tk
                                  : std::numeric_limits<double>::infinity();
  cv_.notify_all();
}

std::vector<SprintInterval> SprintGovernor::job_finished() {
  std::vector<SprintInterval> out;
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(job_active_, "job_finished without a started job");
    if (boosting_) end_boost(now_s(), "completed");
    job_active_ = false;
    deadline_s_ = std::numeric_limits<double>::infinity();
    out = std::move(intervals_);
    intervals_.clear();
    // Intervals are tracked on the governor clock; hand them out relative
    // to the job's start so the dispatcher can rebase onto its own epoch.
    for (auto& iv : out) {
      iv.begin_s -= job_start_s_;
      iv.end_s -= job_start_s_;
    }
  }
  cv_.notify_all();
  return out;
}

bool SprintGovernor::sprinting() const {
  std::lock_guard lock(mutex_);
  return boosting_;
}

std::size_t SprintGovernor::sprints_granted() const {
  std::lock_guard lock(mutex_);
  return granted_total_;
}

std::size_t SprintGovernor::sprints_denied() const {
  std::lock_guard lock(mutex_);
  return denied_total_;
}

double SprintGovernor::budget_level() const {
  std::lock_guard lock(mutex_);
  return budget_.level(now_s());
}

double SprintGovernor::budget_consumed() const {
  std::lock_guard lock(mutex_);
  return budget_.consumed(now_s());
}

void SprintGovernor::begin_boost(double now) {
  const std::size_t reserve = pool_.workers() - pool_.base_workers();
  const std::size_t want =
      config_.boost_workers > 0 ? config_.boost_workers : reserve;
  engine::SlotLease lease(pool_, want);
  if (lease.granted() == 0) {
    // Nothing to grant (no reserve, or it is already leased out): burning
    // budget without extra capacity would be pure waste.
    ++denied_total_;
    if (denied_counter_ != nullptr) denied_counter_->add();
    return;
  }
  lease_ = std::move(lease);
  boosting_ = true;
  boost_begin_s_ = now;
  depletion_s_ = budget_.begin_sprint(now);
  ++granted_total_;
  if (granted_counter_ != nullptr) granted_counter_->add();
  if (boost_slots_gauge_ != nullptr) {
    boost_slots_gauge_->set(static_cast<double>(lease_.granted()));
  }
  if (tracer_ != nullptr) {
    span_ = tracer_->begin_span(
        "runtime.sprint",
        {{"priority", std::uint64_t{job_priority_}},
         {"slots", std::uint64_t{lease_.granted()}},
         {"since_job_start_s", now - job_start_s_},
         {"budget_level_j", budget_.level(now)}});
  }
}

void SprintGovernor::end_boost(double now, const char* reason) {
  budget_.end_sprint(now);
  intervals_.push_back({boost_begin_s_, now});
  lease_.reset();
  boosting_ = false;
  depletion_s_ = std::numeric_limits<double>::infinity();
  if (boost_slots_gauge_ != nullptr) boost_slots_gauge_->set(0.0);
  if (tracer_ != nullptr) {
    tracer_->end_span(span_, {{"reason", reason},
                              {"duration_s", now - boost_begin_s_},
                              {"budget_consumed_j", budget_.consumed(now)}});
    span_ = 0;
  }
}

void SprintGovernor::watchdog_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stopping_) return;
    const double wake = std::min(deadline_s_, depletion_s_);
    if (!std::isfinite(wake)) {
      cv_.wait(lock);
      continue;
    }
    const double now = now_s();
    if (now < wake) {
      cv_.wait_for(lock, std::chrono::duration<double>(wake - now));
      continue;  // re-evaluate: the job may have finished, or Tk moved
    }
    // Tk elapsed with the job still running: grant a boost if the budget
    // has charge, otherwise record the denial. Either way the timer is
    // disarmed — one sprint attempt per job, like the simulator.
    if (job_active_ && !boosting_ && now >= deadline_s_) {
      deadline_s_ = std::numeric_limits<double>::infinity();
      if (budget_.has_budget(now)) {
        begin_boost(now);
      } else {
        ++denied_total_;
        if (denied_counter_ != nullptr) denied_counter_->add();
      }
    }
    // Budget ran dry mid-boost: revoke the lease, conserving the budget
    // invariant (consumption stops at depletion, job keeps base slots).
    if (boosting_ && now >= depletion_s_) {
      end_boost(now, "budget_depleted");
      if (budget_revoked_counter_ != nullptr) budget_revoked_counter_->add();
    }
  }
}

}  // namespace dias::runtime
