// Small dense linear algebra for the matrix-analytic models.
//
// The stochastic models in `dias::model` operate on generator matrices of a
// few hundred phases at most, so a straightforward row-major double matrix
// with partial-pivot LU and a Pade matrix exponential covers all needs.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace dias {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  // Construct from nested braces: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  static Matrix zeros(std::size_t rows, std::size_t cols);
  // Column vector of ones.
  static Matrix ones_column(std::size_t n);
  // 1 x n row vector from values.
  static Matrix row(std::initializer_list<double> values);
  static Matrix row(const std::vector<double>& values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool is_square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }
  friend Matrix operator*(const Matrix& lhs, const Matrix& rhs);

  Matrix transpose() const;

  // Sum of all entries; handy for probability checks.
  double sum() const;
  // Maximum absolute row sum.
  double inf_norm() const;
  // Maximum absolute entry.
  double max_abs() const;

  // Writes a block of `src` at (r0, c0); the block must fit.
  void set_block(std::size_t r0, std::size_t c0, const Matrix& src);
  // Extracts the block [r0, r0+rows) x [c0, c0+cols).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t rows, std::size_t cols) const;

  friend std::ostream& operator<<(std::ostream& os, const Matrix& m);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Solves A x = b via partial-pivot LU. A must be square and non-singular;
// b may have multiple right-hand-side columns.
Matrix solve(const Matrix& a, const Matrix& b);

// Matrix inverse via LU; throws numeric_error on singular input.
Matrix inverse(const Matrix& a);

// Matrix exponential exp(A) via scaling-and-squaring with a (6,6) Pade
// approximant. Suitable for generator matrices of moderate size.
Matrix expm(const Matrix& a);

// Solves x A = 0 with x 1 = 1 for an irreducible CTMC generator A
// (stationary distribution as a 1 x n row vector).
Matrix ctmc_stationary(const Matrix& generator);

// Solves x P = x with x 1 = 1 for an irreducible DTMC transition matrix P.
Matrix dtmc_stationary(const Matrix& transition);

}  // namespace dias
