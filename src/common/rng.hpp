// Random-number generation for simulations and workload synthesis.
//
// A single engine type (xoshiro256**) is used everywhere so experiments are
// reproducible from a seed and independent streams can be split cheaply via
// jump().  Distribution helpers cover everything the DiAS models need:
// uniform, exponential, Erlang, hyper-exponential, discrete pmf, Zipf.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace dias {

// xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
// Satisfies UniformRandomBitGenerator so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  // Advances the state by 2^128 draws; use to derive independent streams.
  void jump();

  // Returns a new generator whose stream is independent of this one
  // (this generator is jumped past the returned stream).
  Rng split();

  // Uniform real in [0, 1).
  double uniform();
  // Uniform real in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  // Exponential with rate `rate` (> 0); mean 1/rate.
  double exponential(double rate);
  // Erlang-k: sum of k exponentials with rate `rate`.
  double erlang(int k, double rate);
  // Two-branch hyper-exponential: rate r1 w.p. p, else rate r2.
  double hyper_exponential(double p, double r1, double r2);
  // Standard normal via Box-Muller (no state caching; simple and adequate).
  double normal(double mean, double stddev);
  // Log-normal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);

  // Samples an index from an unnormalized weight vector (all weights >= 0,
  // at least one positive).
  std::size_t discrete(std::span<const double> weights);

  // Bernoulli trial.
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> state_;
};

// Zipf(s, n) sampler over {1..n} using precomputed CDF inversion
// (binary search). Exact, O(log n) per draw; construction O(n).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double exponent);

  // Draws a rank in [1, n].
  std::size_t operator()(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }
  // Probability of rank r (1-based).
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace dias
