// Error handling primitives shared across the DiAS libraries.
//
// We follow the Core Guidelines: exceptions signal failure to perform a
// required task (I.10); preconditions are stated and checked at the
// interface (I.5/I.6).  `DIAS_EXPECTS` is our `Expects()`: it throws
// `precondition_error` so callers can test contract violations, rather than
// aborting the process.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace dias {

// Base class for all DiAS errors so callers can catch the whole family.
class error : public std::runtime_error {
 public:
  explicit error(const std::string& what) : std::runtime_error(what) {}
};

// A caller violated a stated precondition.
class precondition_error : public error {
 public:
  explicit precondition_error(const std::string& what) : error(what) {}
};

// A numeric routine failed to converge or met a singular input.
class numeric_error : public error {
 public:
  explicit numeric_error(const std::string& what) : error(what) {}
};

// A configuration (experiment, workload, model) is internally inconsistent.
class config_error : public error {
 public:
  explicit config_error(const std::string& what) : error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view expr, std::string_view file, int line,
                                     std::string_view msg);
}  // namespace detail

}  // namespace dias

// Precondition check: throws dias::precondition_error when `cond` is false.
#define DIAS_EXPECTS(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::dias::detail::throw_precondition(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                        \
  } while (false)
