#include "common/error.hpp"

#include <sstream>

namespace dias::detail {

void throw_precondition(std::string_view expr, std::string_view file, int line,
                        std::string_view msg) {
  std::ostringstream os;
  os << "precondition failed: " << msg << " [" << expr << " at " << file << ":" << line << "]";
  throw precondition_error(os.str());
}

}  // namespace dias::detail
