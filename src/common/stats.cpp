#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace dias {

void Welford::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_sq_ += x * x;
}

void Welford::merge(const Welford& other) {
  if (&other == this) {
    // Self-merge doubles the sample: every observation counted twice. The
    // general path below reads other.* while mutating the same fields, so
    // aliasing must be handled before it.
    n_ *= 2;
    m2_ *= 2.0;
    sum_sq_ *= 2.0;
    return;
  }
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Welford::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double Welford::stddev() const { return std::sqrt(variance()); }

double Welford::sample_variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Welford::min() const {
  DIAS_EXPECTS(n_ > 0, "min() of empty accumulator");
  return min_;
}

double Welford::max() const {
  DIAS_EXPECTS(n_ > 0, "max() of empty accumulator");
  return max_;
}

double Welford::second_moment() const {
  DIAS_EXPECTS(n_ > 0, "second_moment() of empty accumulator");
  return sum_sq_ / static_cast<double>(n_);
}

void SampleSet::add(double x) {
  xs_.push_back(x);
  sorted_valid_ = false;
}

double SampleSet::mean() const {
  DIAS_EXPECTS(!xs_.empty(), "mean() of empty sample");
  return sum() / static_cast<double>(xs_.size());
}

double SampleSet::sum() const { return std::accumulate(xs_.begin(), xs_.end(), 0.0); }

double SampleSet::variance() const {
  DIAS_EXPECTS(!xs_.empty(), "variance() of empty sample");
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs_.size());
}

double SampleSet::stddev() const { return std::sqrt(variance()); }

double SampleSet::min() const {
  DIAS_EXPECTS(!xs_.empty(), "min() of empty sample");
  return *std::min_element(xs_.begin(), xs_.end());
}

double SampleSet::max() const {
  DIAS_EXPECTS(!xs_.empty(), "max() of empty sample");
  return *std::max_element(xs_.begin(), xs_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SampleSet::quantile(double q) const {
  DIAS_EXPECTS(!xs_.empty(), "quantile() of empty sample");
  DIAS_EXPECTS(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

void SampleSet::clear() {
  xs_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  // Validate before deriving anything from the arguments: computing
  // (hi - lo) / bins first would divide by zero for bins == 0 and produce
  // a negative width for hi <= lo before the guards ever ran.
  DIAS_EXPECTS(bins > 0, "histogram needs at least one bin");
  DIAS_EXPECTS(hi > lo, "histogram range must be non-empty");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  DIAS_EXPECTS(i < counts_.size(), "bin index out of range");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i) + width_; }

double Histogram::quantile(double q) const {
  DIAS_EXPECTS(total_ > 0, "quantile() of empty histogram");
  DIAS_EXPECTS(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

double mean_absolute_percent_error(std::span<const double> reference,
                                   std::span<const double> estimate) {
  DIAS_EXPECTS(reference.size() == estimate.size(), "MAPE requires equal-length inputs");
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (reference[i] == 0.0) continue;
    acc += std::abs(estimate[i] - reference[i]) / std::abs(reference[i]);
    ++n;
  }
  DIAS_EXPECTS(n > 0, "MAPE requires at least one non-zero reference entry");
  return 100.0 * acc / static_cast<double>(n);
}

double relative_error_percent(double reference, double estimate) {
  DIAS_EXPECTS(reference != 0.0, "relative error needs a non-zero reference");
  return 100.0 * std::abs(estimate - reference) / std::abs(reference);
}

}  // namespace dias
