#include "common/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "common/error.hpp"

namespace dias {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    DIAS_EXPECTS(r.size() == cols_, "ragged initializer for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

Matrix Matrix::ones_column(std::size_t n) { return Matrix(n, 1, 1.0); }

Matrix Matrix::row(std::initializer_list<double> values) {
  Matrix m(1, values.size());
  std::size_t c = 0;
  for (double v : values) m(0, c++) = v;
  return m;
}

Matrix Matrix::row(const std::vector<double>& values) {
  Matrix m(1, values.size());
  for (std::size_t c = 0; c < values.size(); ++c) m(0, c) = values[c];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  DIAS_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  DIAS_EXPECTS(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  DIAS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  DIAS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  DIAS_EXPECTS(lhs.cols_ == rhs.rows_, "matrix shape mismatch in *");
  Matrix out(lhs.rows_, rhs.cols_);
  for (std::size_t i = 0; i < lhs.rows_; ++i) {
    for (std::size_t k = 0; k < lhs.cols_; ++k) {
      const double a = lhs.data_[i * lhs.cols_ + k];
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out.data_[i * out.cols_ + j] += a * rhs.data_[k * rhs.cols_ + j];
      }
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (double x : data_) acc += x;
  return acc;
}

double Matrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double rowsum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) rowsum += std::abs((*this)(i, j));
    best = std::max(best, rowsum);
  }
  return best;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::abs(x));
  return best;
}

void Matrix::set_block(std::size_t r0, std::size_t c0, const Matrix& src) {
  DIAS_EXPECTS(r0 + src.rows_ <= rows_ && c0 + src.cols_ <= cols_,
               "set_block target does not fit");
  for (std::size_t i = 0; i < src.rows_; ++i)
    for (std::size_t j = 0; j < src.cols_; ++j) (*this)(r0 + i, c0 + j) = src(i, j);
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t rows, std::size_t cols) const {
  DIAS_EXPECTS(r0 + rows <= rows_ && c0 + cols <= cols_, "block out of range");
  Matrix out(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) out(i, j) = (*this)(r0 + i, c0 + j);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols_; ++j) {
      os << m(i, j) << (j + 1 < m.cols_ ? ", " : "");
    }
    os << (i + 1 < m.rows_ ? ";\n" : "]");
  }
  return os;
}

namespace {

// In-place partial-pivot LU factorization; returns the pivot permutation.
// Throws numeric_error for singular matrices.
std::vector<std::size_t> lu_factorize(Matrix& a) {
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > best) {
        best = std::abs(a(i, k));
        pivot = i;
      }
    }
    if (best < 1e-300) throw numeric_error("LU factorization: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(perm[k], perm[pivot]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) /= a(k, k);
      const double f = a(i, k);
      if (f == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= f * a(k, j);
    }
  }
  return perm;
}

Matrix lu_solve(const Matrix& lu, const std::vector<std::size_t>& perm, const Matrix& b) {
  const std::size_t n = lu.rows();
  Matrix x(n, b.cols());
  for (std::size_t col = 0; col < b.cols(); ++col) {
    // Forward substitution with permuted rhs.
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b(perm[i], col);
      for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x(j, col);
      x(i, col) = acc;
    }
    // Back substitution.
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      double acc = x(i, col);
      for (std::size_t j = i + 1; j < n; ++j) acc -= lu(i, j) * x(j, col);
      x(i, col) = acc / lu(i, i);
    }
  }
  return x;
}

}  // namespace

Matrix solve(const Matrix& a, const Matrix& b) {
  DIAS_EXPECTS(a.is_square(), "solve() needs a square matrix");
  DIAS_EXPECTS(a.rows() == b.rows(), "solve() shape mismatch");
  Matrix lu = a;
  const auto perm = lu_factorize(lu);
  return lu_solve(lu, perm, b);
}

Matrix inverse(const Matrix& a) {
  DIAS_EXPECTS(a.is_square(), "inverse() needs a square matrix");
  return solve(a, Matrix::identity(a.rows()));
}

Matrix expm(const Matrix& a) {
  DIAS_EXPECTS(a.is_square(), "expm() needs a square matrix");
  const std::size_t n = a.rows();
  // Scaling: bring the norm below 0.5 for the Pade approximant.
  const double norm = a.inf_norm();
  int squarings = 0;
  double scale = 1.0;
  while (norm * scale > 0.5) {
    scale *= 0.5;
    ++squarings;
  }
  const Matrix as = a * scale;

  // (6,6) Pade approximant of exp(X).
  // c_j = (2m-j)! m! / ((2m)! j! (m-j)!) for m = 6.
  static constexpr double kC[] = {1.0,         0.5,           5.0 / 44.0, 1.0 / 66.0,
                                  1.0 / 792.0, 1.0 / 15840.0, 1.0 / 665280.0};
  Matrix x2 = as * as;
  Matrix even = Matrix::identity(n) * kC[0] + x2 * kC[2];
  Matrix odd = Matrix::identity(n) * kC[1] + x2 * kC[3];
  Matrix x4 = x2 * x2;
  even += x4 * kC[4];
  odd += x4 * kC[5];
  Matrix x6 = x4 * x2;
  even += x6 * kC[6];
  const Matrix odd_x = as * odd;
  // exp(X) ~ (even - odd_x)^{-1} (even + odd_x)
  Matrix result = solve(even - odd_x, even + odd_x);
  for (int i = 0; i < squarings; ++i) result = result * result;
  return result;
}

Matrix ctmc_stationary(const Matrix& generator) {
  DIAS_EXPECTS(generator.is_square(), "generator must be square");
  const std::size_t n = generator.rows();
  // Solve pi Q = 0, pi 1 = 1: replace the last column of Q^T's system with
  // the normalization constraint.
  Matrix a = generator.transpose();
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  Matrix b(n, 1);
  b(n - 1, 0) = 1.0;
  const Matrix x = solve(a, b);
  return x.transpose();
}

Matrix dtmc_stationary(const Matrix& transition) {
  DIAS_EXPECTS(transition.is_square(), "transition matrix must be square");
  const std::size_t n = transition.rows();
  // pi (P - I) = 0 with normalization.
  Matrix a = (transition - Matrix::identity(n)).transpose();
  for (std::size_t j = 0; j < n; ++j) a(n - 1, j) = 1.0;
  Matrix b(n, 1);
  b(n - 1, 0) = 1.0;
  const Matrix x = solve(a, b);
  return x.transpose();
}

}  // namespace dias
