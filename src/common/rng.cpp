#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dias {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
                                            0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::array<std::uint64_t, 4> s{0, 0, 0, 0};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) s[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = s;
}

Rng Rng::split() {
  Rng child = *this;  // child keeps the current stream position
  jump();             // parent moves 2^128 draws ahead
  return child;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DIAS_EXPECTS(lo <= hi, "uniform(lo,hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  DIAS_EXPECTS(n > 0, "uniform_int requires n > 0");
  // Lemire's rejection method for unbiased bounded integers.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) {
  DIAS_EXPECTS(rate > 0.0, "exponential rate must be positive");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::erlang(int k, double rate) {
  DIAS_EXPECTS(k >= 1, "erlang shape must be >= 1");
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += exponential(rate);
  return sum;
}

double Rng::hyper_exponential(double p, double r1, double r2) {
  DIAS_EXPECTS(p >= 0.0 && p <= 1.0, "branch probability must be in [0,1]");
  return exponential(bernoulli(p) ? r1 : r2);
}

double Rng::normal(double mean, double stddev) {
  DIAS_EXPECTS(stddev >= 0.0, "stddev must be non-negative");
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

std::size_t Rng::discrete(std::span<const double> weights) {
  DIAS_EXPECTS(!weights.empty(), "discrete() needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    DIAS_EXPECTS(w >= 0.0, "discrete() weights must be non-negative");
    total += w;
  }
  DIAS_EXPECTS(total > 0.0, "discrete() needs a positive total weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (x < weights[i]) return i;
    x -= weights[i];
  }
  return weights.size() - 1;
}

bool Rng::bernoulli(double p) {
  DIAS_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli probability must be in [0,1]");
  return uniform() < p;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double exponent) : exponent_(exponent) {
  DIAS_EXPECTS(n >= 1, "Zipf support size must be >= 1");
  DIAS_EXPECTS(exponent >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r), exponent);
    cdf_[r - 1] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::pmf(std::size_t rank) const {
  DIAS_EXPECTS(rank >= 1 && rank <= cdf_.size(), "Zipf pmf rank out of range");
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

}  // namespace dias
