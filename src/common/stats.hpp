// Streaming and batch statistics used by the simulator, the benches, and the
// model-validation code: Welford accumulators, exact-percentile samples,
// fixed-bin histograms, and small helpers (MAPE, relative error).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dias {

// Numerically stable streaming mean/variance (Welford).
class Welford {
 public:
  void add(double x);
  // Folds `other` into this accumulator, as if every observation of both
  // had been add()ed to one. Aliasing is allowed: w.merge(w) doubles the
  // sample (each observation counted twice — count and m2 double, mean,
  // min and max are unchanged).
  void merge(const Welford& other);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  // Population variance of the observed sample (0 for n < 2).
  double variance() const;
  double stddev() const;
  // Unbiased sample variance (0 for n < 2).
  double sample_variance() const;
  double min() const;
  double max() const;
  // Second raw moment E[X^2] of the observations.
  double second_moment() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores every observation; provides exact quantiles. Intended for
// experiment-sized samples (up to a few million doubles).
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  // Exact quantile with linear interpolation, q in [0,1].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double sum() const;

  std::span<const double> values() const { return xs_; }
  void clear();

 private:
  void ensure_sorted() const;

  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Fixed-width-bin histogram over [lo, hi); out-of-range values clamp into
// the first/last bin. Used for latency distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  // Approximate quantile by linear interpolation within the bin.
  double quantile(double q) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Mean absolute percentage error between predictions and a reference,
// skipping reference entries equal to zero. Returns a percentage.
double mean_absolute_percent_error(std::span<const double> reference,
                                   std::span<const double> estimate);

// |a - b| / |a| as a percentage; a must be non-zero.
double relative_error_percent(double reference, double estimate);

}  // namespace dias
