// Cooperative cancellation for the job-lifecycle robustness layer.
//
// The dispatcher hands every job a CancellationToken; the engine polls it
// between partitions (and inside retry backoff / straggler sleeps), so a
// job that outlives its per-class deadline is cut short mid-stage instead
// of running to completion — releasing its workers and any sprint lease.
// Cancellation is *cooperative*: requesting it never interrupts a running
// task body, it only stops new work from starting (the same non-preemptive
// contract the paper's dispatcher keeps).
//
// Tokens are copyable handles to shared state, so the dispatcher's
// deadline watchdog, the engine's stage loops, and user job code can all
// observe one flag without lifetime coupling. Lives in dias::common (not
// the engine) because both the dispatcher (core) and the engine honor it.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "common/error.hpp"

namespace dias {

// Thrown by cancellation points (Engine stages, CancellationToken::
// throw_if_cancelled) once cancellation was requested. The dispatcher
// catches it and records the job's terminal outcome as kCancelled.
class JobCancelledError : public error {
 public:
  explicit JobCancelledError(const std::string& where)
      : error("job cancelled at " + where) {}
};

class CancellationToken {
 public:
  // A fresh, not-yet-cancelled token with its own state.
  CancellationToken() : state_(std::make_shared<State>()) {}

  // Sets the flag; idempotent, safe from any thread, never blocks.
  void request_cancel() noexcept { state_->flag.store(true, std::memory_order_release); }

  bool cancelled() const noexcept {
    return state_->flag.load(std::memory_order_acquire);
  }

  // Cancellation point: raises JobCancelledError naming the checkpoint.
  void throw_if_cancelled(const std::string& where) const {
    if (cancelled()) throw JobCancelledError(where);
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
  };
  std::shared_ptr<State> state_;
};

}  // namespace dias
