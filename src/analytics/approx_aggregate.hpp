// Approximate aggregation with error bounds (ApproxHadoop / BlinkDB style,
// the paper's references [18] and [10]).
//
// Task dropping is cluster sampling: partitions are clusters, and running
// ceil(n (1 - theta)) random partitions is sampling m of M clusters
// without replacement. Classical survey-sampling theory then gives
// *unbiased* SUM/COUNT estimates with closed-form standard errors, and a
// delta-method interval for MEAN (a ratio of totals) -- the "bounded
// errors in bounded response times" contract of approximate engines.
#pragma once

#include <cmath>
#include <cstddef>

#include "common/error.hpp"
#include "engine/engine.hpp"

namespace dias::analytics {

struct ApproxEstimate {
  double estimate = 0.0;
  double standard_error = 0.0;
  std::size_t partitions_total = 0;  // M clusters
  std::size_t partitions_used = 0;   // m sampled clusters

  // 95% normal-approximation confidence interval.
  double ci_half_width() const { return 1.959964 * standard_error; }
  double lo() const { return estimate - ci_half_width(); }
  double hi() const { return estimate + ci_half_width(); }
  bool contains(double truth) const { return truth >= lo() && truth <= hi(); }
  // Half-width relative to the estimate, in percent.
  double relative_error_percent() const {
    DIAS_EXPECTS(estimate != 0.0, "relative error needs a non-zero estimate");
    return 100.0 * ci_half_width() / std::abs(estimate);
  }
};

namespace detail {

// Per-partition sums of (value, count) produced by a droppable map stage;
// entries for dropped partitions are absent (empty partitions).
struct ClusterSums {
  std::vector<double> values;  // per executed partition: sum of f(record)
  std::vector<double> counts;  // per executed partition: number of records
  std::size_t total_partitions = 0;
};

// Horvitz-Thompson-style estimator for the population total of the
// per-cluster statistic ys: T_hat = M * mean(ys), with the finite-
// population-corrected variance M^2 (1 - m/M) s^2 / m.
ApproxEstimate estimate_total(const std::vector<double>& ys, std::size_t total_partitions);

// Ratio estimator value_total / count_total with a delta-method standard
// error using the per-cluster covariance.
ApproxEstimate estimate_ratio(const ClusterSums& sums);

}  // namespace detail

// Runs a droppable aggregation stage over `data` and returns the estimated
// population SUM of value_fn(record), with its standard error. theta = 0
// returns the exact sum with zero error.
template <typename T, typename F>
ApproxEstimate approx_sum(engine::Engine& eng, const engine::Dataset<T>& data, F value_fn,
                          double theta, const std::string& name = "approx-sum") {
  detail::ClusterSums sums;
  sums.total_partitions = data.partitions();
  std::vector<double> values(data.partitions(), 0.0);
  std::vector<double> counts(data.partitions(), 0.0);
  std::vector<char> executed(data.partitions(), 0);
  engine::StageOptions opts;
  opts.name = name;
  opts.droppable = true;
  opts.drop_ratio_override = theta;
  eng.map_partitions_indexed(
      data,
      [&](std::size_t p, const std::vector<T>& part) {
        double acc = 0.0;
        for (const auto& x : part) acc += value_fn(x);
        values[p] = acc;
        counts[p] = static_cast<double>(part.size());
        executed[p] = 1;
        return std::vector<int>{};
      },
      opts);
  for (std::size_t p = 0; p < data.partitions(); ++p) {
    if (executed[p]) {
      sums.values.push_back(values[p]);
      sums.counts.push_back(counts[p]);
    }
  }
  return detail::estimate_total(sums.values, sums.total_partitions);
}

// Estimated record COUNT of the dataset under dropping.
template <typename T>
ApproxEstimate approx_count(engine::Engine& eng, const engine::Dataset<T>& data,
                            double theta) {
  return approx_sum(eng, data, [](const T&) { return 1.0; }, theta, "approx-count");
}

// Estimated population MEAN of value_fn(record): a ratio of totals with a
// delta-method interval (the dominant error source is which partitions
// were dropped, which cancels partially between numerator and denominator).
template <typename T, typename F>
ApproxEstimate approx_mean(engine::Engine& eng, const engine::Dataset<T>& data, F value_fn,
                           double theta) {
  detail::ClusterSums sums;
  sums.total_partitions = data.partitions();
  std::vector<double> values(data.partitions(), 0.0);
  std::vector<double> counts(data.partitions(), 0.0);
  std::vector<char> executed(data.partitions(), 0);
  engine::StageOptions opts;
  opts.name = "approx-mean";
  opts.droppable = true;
  opts.drop_ratio_override = theta;
  eng.map_partitions_indexed(
      data,
      [&](std::size_t p, const std::vector<T>& part) {
        double acc = 0.0;
        for (const auto& x : part) acc += value_fn(x);
        values[p] = acc;
        counts[p] = static_cast<double>(part.size());
        executed[p] = 1;
        return std::vector<int>{};
      },
      opts);
  for (std::size_t p = 0; p < data.partitions(); ++p) {
    if (executed[p]) {
      sums.values.push_back(values[p]);
      sums.counts.push_back(counts[p]);
    }
  }
  return detail::estimate_ratio(sums);
}

}  // namespace dias::analytics
