// Approximate word-count text analytics (paper Section 5.1).
//
// Mirrors the paper's StackExchange job: parse XML rows to extract post
// bodies, tokenize, and count word frequencies via map + reduce-by-key.
// The map stage is droppable; accuracy loss is measured as the mean
// absolute percent error of the approximate counts against an exact run
// (Figure 6).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.hpp"

namespace dias::analytics {

using WordCounts = std::unordered_map<std::string, std::uint64_t>;

struct WordCountResult {
  WordCounts counts;
  double duration_s = 0.0;          // wall time of the engine stages
  std::size_t map_tasks_total = 0;  // before dropping
  std::size_t map_tasks_run = 0;    // after dropping

  // Fraction of map tasks that actually ran.
  double executed_fraction() const {
    return map_tasks_total == 0
               ? 1.0
               : static_cast<double>(map_tasks_run) / static_cast<double>(map_tasks_total);
  }
  // ApproxHadoop-style estimator: scales the raw counts by the inverse of
  // the executed fraction to approximately unbias them.
  WordCounts rescaled_counts() const;
};

// Runs word count over the XML rows with the engine's current drop ratio
// (or `drop_override` when >= 0) applied to the map stage. `shuffle`
// configures the reduce-by-key shuffle — notably memory_budget_bytes,
// which lets the job run on inputs far larger than worker memory by
// spilling through the engine's attached backend. A non-null `planner`
// (typically runtime::AdaptivePlanner) is consulted at each stage
// boundary: the map stage exposes only the speculation knob, while the
// reduce stage — a uint64 sum, bitwise order-insensitive — exposes every
// knob including the combiner toggle.
WordCountResult word_count(engine::Engine& eng, const engine::Dataset<std::string>& rows,
                           std::size_t reduce_partitions = 20, double drop_override = -1.0,
                           engine::ShuffleOptions shuffle = {},
                           engine::PlanSource* planner = nullptr);

// Exact single-threaded reference count (no engine, no dropping).
WordCounts exact_word_count(const std::vector<std::string>& rows);

// Mean absolute percent error of `estimate` vs `reference` over the
// `top_k` most frequent reference words (missing words count as zero).
double word_count_error(const WordCounts& reference, const WordCounts& estimate,
                        std::size_t top_k = 200);

}  // namespace dias::analytics
