// Approximate PageRank (iterative graph analytics).
//
// Spark's headline capability is fast iterative computation; PageRank is
// its canonical example and stresses DiAS differently from word count or
// triangle counting: every iteration contributes droppable ShuffleMap
// stages, so a per-stage drop ratio compounds across iterations. Rank
// error is measured as the normalized L1 distance to an exact run.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "engine/engine.hpp"
#include "workload/graph_gen.hpp"

namespace dias::analytics {

using RankVector = std::unordered_map<std::uint32_t, double>;

struct PageRankResult {
  RankVector ranks;
  int iterations = 0;
  double duration_s = 0.0;
  std::size_t tasks_total = 0;  // droppable-stage tasks before dropping
  std::size_t tasks_run = 0;
};

struct PageRankOptions {
  int iterations = 10;
  double damping = 0.85;
  // Drop ratio applied to every droppable stage of every iteration.
  double stage_drop_ratio = 0.0;
  std::size_t partitions = 32;  // shuffle width
  // Applied to every shuffle (adjacency build + per-iteration sums); a
  // finite memory_budget_bytes spills through the engine's backend.
  engine::ShuffleOptions shuffle;
  // Optional per-stage planner, consulted only for the per-iteration rank
  // sums. The adjacency build is deliberately static: its partitioning
  // fixes the (src, seq) merge order of every downstream floating-point
  // shuffle, so adapting it would break bitwise reproducibility. The sum
  // stages are double additions — order-sensitive — so their traits leave
  // order_insensitive false and the planner may only relocate work
  // (partitions / single-thread / speculation / spill), never reorder it.
  engine::PlanSource* planner = nullptr;
};

// Runs PageRank over the (undirected, canonical) edge list; each edge
// propagates rank in both directions.
PageRankResult page_rank(engine::Engine& eng, const engine::Dataset<workload::Edge>& edges,
                         const PageRankOptions& options);

// Normalized L1 distance between two rank vectors, in percent of total
// reference mass (missing entries count as zero).
double rank_error_percent(const RankVector& reference, const RankVector& estimate);

}  // namespace dias::analytics
