#include "analytics/word_count.hpp"

#include <algorithm>
#include <utility>

#include "common/stats.hpp"
#include "workload/text_corpus.hpp"

namespace dias::analytics {

WordCountResult word_count(engine::Engine& eng, const engine::Dataset<std::string>& rows,
                           std::size_t reduce_partitions, double drop_override,
                           engine::ShuffleOptions shuffle, engine::PlanSource* planner) {
  eng.clear_stage_log();

  // Map: parse rows -> (word, 1) pairs. This is the droppable stage.
  engine::StageOptions map_opts;
  map_opts.name = "wordcount/map";
  map_opts.droppable = true;
  map_opts.drop_ratio_override = drop_override;
  if (planner != nullptr) {
    // No shuffle on the map stage: only the speculation knob applies.
    engine::StageTraits traits;
    traits.name = "wordcount/map";
    traits.allow_repartition = false;
    traits.allow_single_thread = false;
    traits.allow_spill_hint = false;
    map_opts.plan = planner->plan_for(traits);
  }
  auto pairs = eng.map_partitions(
      rows,
      [](const std::vector<std::string>& part) {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        for (const auto& row : part) {
          const std::string body = workload::extract_post_body(row);
          for (auto& word : workload::tokenize(body)) {
            out.emplace_back(std::move(word), 1);
          }
        }
        return out;
      },
      map_opts);

  // Shuffle + reduce: sum counts per word. Map-side combining collapses
  // the (word, 1) stream to one entry per distinct word per map task
  // before it crosses the shuffle.
  engine::StageOptions reduce_opts;
  reduce_opts.name = "wordcount";
  reduce_opts.droppable = false;
  shuffle.combine = true;
  if (planner != nullptr) {
    // The reduce is a uint64 sum — bitwise order-insensitive — so every
    // knob (combiner included) is plan-safe.
    engine::StageTraits traits;
    traits.name = "wordcount";
    traits.default_partitions = reduce_partitions;
    traits.order_insensitive = true;
    reduce_opts.plan = planner->plan_for(traits);
  }
  auto reduced = eng.reduce_by_key(
      pairs, [](std::uint64_t a, std::uint64_t b) { return a + b; }, reduce_partitions,
      reduce_opts, shuffle);

  WordCountResult result;
  for (const auto& kv : reduced.collect()) result.counts.emplace(kv.first, kv.second);
  result.duration_s = eng.logged_duration();
  for (const auto& stage : eng.stage_log()) {
    if (stage.kind == engine::EngineStageKind::kMap) {
      result.map_tasks_total += stage.total_partitions;
      result.map_tasks_run += stage.executed_partitions;
    }
  }
  return result;
}

WordCounts WordCountResult::rescaled_counts() const {
  const double fraction = executed_fraction();
  WordCounts scaled;
  scaled.reserve(counts.size());
  for (const auto& [word, count] : counts) {
    scaled.emplace(word, static_cast<std::uint64_t>(
                             static_cast<double>(count) / fraction + 0.5));
  }
  return scaled;
}

WordCounts exact_word_count(const std::vector<std::string>& rows) {
  WordCounts counts;
  for (const auto& row : rows) {
    const std::string body = workload::extract_post_body(row);
    for (const auto& word : workload::tokenize(body)) ++counts[word];
  }
  return counts;
}

double word_count_error(const WordCounts& reference, const WordCounts& estimate,
                        std::size_t top_k) {
  DIAS_EXPECTS(!reference.empty(), "reference counts must be non-empty");
  // Rank reference words by frequency.
  std::vector<std::pair<std::string, std::uint64_t>> ranked(reference.begin(), reference.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const std::size_t n = std::min(top_k, ranked.size());
  std::vector<double> ref(n), est(n);
  for (std::size_t i = 0; i < n; ++i) {
    ref[i] = static_cast<double>(ranked[i].second);
    const auto it = estimate.find(ranked[i].first);
    est[i] = it != estimate.end() ? static_cast<double>(it->second) : 0.0;
  }
  return mean_absolute_percent_error(ref, est);
}

}  // namespace dias::analytics
