#include "analytics/page_rank.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace dias::analytics {

PageRankResult page_rank(engine::Engine& eng, const engine::Dataset<workload::Edge>& edges,
                         const PageRankOptions& options) {
  DIAS_EXPECTS(options.iterations >= 1, "PageRank needs at least one iteration");
  DIAS_EXPECTS(options.damping > 0.0 && options.damping < 1.0,
               "damping must be in (0,1)");
  eng.clear_stage_log();

  const auto droppable = [&](const std::string& name) {
    engine::StageOptions opts;
    opts.name = name;
    opts.droppable = true;
    opts.drop_ratio_override = options.stage_drop_ratio;
    return opts;
  };

  // Build the (symmetric) adjacency once; this stage is droppable like the
  // graphx vertex-RDD construction. The gather runs through the combining
  // shuffle (group_by_key), so neighbour lists grow in per-task combiner
  // maps instead of shipping a singleton vector per edge endpoint.
  auto neighbour_pairs = eng.map_partitions(
      edges,
      [](const std::vector<workload::Edge>& part) {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
        out.reserve(2 * part.size());
        for (const auto& [u, v] : part) {
          if (u == v) continue;
          out.emplace_back(u, v);
          out.emplace_back(v, u);
        }
        return out;
      },
      droppable("pagerank/edges"));
  auto adjacency = eng.group_by_key(
      neighbour_pairs, options.partitions,
      [] {
        engine::StageOptions opts;
        opts.name = "pagerank/adjacency";
        opts.droppable = false;
        return opts;
      }(),
      options.shuffle);

  // Vertex count for the teleport term.
  const std::size_t n_vertices = eng.count(adjacency);
  DIAS_EXPECTS(n_vertices > 0, "graph has no vertices after dropping");
  const double teleport =
      (1.0 - options.damping) / static_cast<double>(n_vertices);

  // Ranks start uniform.
  RankVector ranks;
  ranks.reserve(n_vertices);
  for (std::size_t p = 0; p < adjacency.partitions(); ++p) {
    for (const auto& [v, nbrs] : adjacency.partition(p)) {
      ranks.emplace(v, 1.0 / static_cast<double>(n_vertices));
    }
  }

  for (int it = 0; it < options.iterations; ++it) {
    // Contribution stage (droppable ShuffleMap): each vertex spreads its
    // rank over its neighbours.
    auto contributions = eng.map_partitions(
        adjacency,
        [&ranks](const std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>>&
                     part) {
          std::vector<std::pair<std::uint32_t, double>> out;
          for (const auto& [v, nbrs] : part) {
            if (nbrs.empty()) continue;
            const auto it_rank = ranks.find(v);
            if (it_rank == ranks.end()) continue;
            const double share = it_rank->second / static_cast<double>(nbrs.size());
            for (std::uint32_t u : nbrs) out.emplace_back(u, share);
          }
          return out;
        },
        droppable("pagerank/contrib-" + std::to_string(it)));
    auto summed = eng.reduce_by_key(
        contributions, [](double a, double b) { return a + b; }, options.partitions,
        [&] {
          engine::StageOptions opts;
          opts.name = "pagerank/sum-" + std::to_string(it);
          opts.droppable = false;
          if (options.planner != nullptr) {
            // Double sums: relocating knobs only (order_insensitive stays
            // false, masking combiner/buffer changes).
            engine::StageTraits traits;
            traits.name = "pagerank/sum";
            traits.default_partitions = options.partitions;
            traits.input_partitions = options.partitions;
            opts.plan = options.planner->plan_for(traits);
          }
          return opts;
        }(),
        options.shuffle);

    RankVector next;
    next.reserve(n_vertices);
    for (const auto& [v, unused] : ranks) {
      next.emplace(v, teleport);
      (void)unused;
    }
    for (std::size_t p = 0; p < summed.partitions(); ++p) {
      for (const auto& [v, sum] : summed.partition(p)) {
        auto [entry, inserted] = next.try_emplace(v, teleport);
        entry->second = teleport + options.damping * sum;
        (void)inserted;
      }
    }
    ranks = std::move(next);
  }

  PageRankResult result;
  result.ranks = std::move(ranks);
  result.iterations = options.iterations;
  result.duration_s = eng.logged_duration();
  for (const auto& stage : eng.stage_log()) {
    if (stage.applied_drop_ratio > 0.0 || options.stage_drop_ratio == 0.0) {
      if (stage.kind == engine::EngineStageKind::kMap) {
        result.tasks_total += stage.total_partitions;
        result.tasks_run += stage.executed_partitions;
      }
    }
  }
  return result;
}

double rank_error_percent(const RankVector& reference, const RankVector& estimate) {
  DIAS_EXPECTS(!reference.empty(), "reference ranks must be non-empty");
  double l1 = 0.0;
  double mass = 0.0;
  for (const auto& [v, r] : reference) {
    const auto it = estimate.find(v);
    const double e = it != estimate.end() ? it->second : 0.0;
    l1 += std::abs(r - e);
    mass += r;
  }
  // Estimated vertices missing from the reference also count.
  for (const auto& [v, e] : estimate) {
    if (reference.find(v) == reference.end()) l1 += std::abs(e);
  }
  DIAS_EXPECTS(mass > 0.0, "reference ranks have no mass");
  return 100.0 * l1 / mass;
}

}  // namespace dias::analytics
