// Approximate triangle counting (paper Section 5.2.4).
//
// Mirrors the graphx job the paper runs: a multi-stage pipeline over the
// (web) graph where every ShuffleMap stage is droppable, so a per-stage
// drop ratio compounds into the total effective drop ratio. Stages:
//   1. map          - canonicalize edges (u < v, drop self loops)
//   2. shuffle-map  - build forward adjacency lists (vertex RDD)
//   3. shuffle-map  - per-edge intersection counting
//   4. result       - global sum
// A triangle u < v < w is counted exactly once, at edge (u, v).
#pragma once

#include <cstdint>

#include "engine/engine.hpp"
#include "workload/graph_gen.hpp"

namespace dias::analytics {

struct TriangleCountResult {
  std::uint64_t triangles = 0;
  double duration_s = 0.0;
  std::size_t tasks_total = 0;  // droppable-stage tasks before dropping
  std::size_t tasks_run = 0;    // after dropping
};

// Counts triangles with `stage_drop_ratio` applied to every droppable
// stage (0 = exact result).
TriangleCountResult triangle_count(engine::Engine& eng,
                                   const engine::Dataset<workload::Edge>& edges,
                                   double stage_drop_ratio = 0.0);

}  // namespace dias::analytics
