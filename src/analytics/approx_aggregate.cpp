#include "analytics/approx_aggregate.hpp"

namespace dias::analytics::detail {

ApproxEstimate estimate_total(const std::vector<double>& ys, std::size_t total_partitions) {
  DIAS_EXPECTS(!ys.empty(), "estimator needs at least one executed partition");
  DIAS_EXPECTS(ys.size() <= total_partitions, "executed partitions exceed total");
  const double m = static_cast<double>(ys.size());
  const double big_m = static_cast<double>(total_partitions);

  double mean = 0.0;
  for (double y : ys) mean += y;
  mean /= m;

  ApproxEstimate out;
  out.estimate = big_m * mean;
  out.partitions_total = total_partitions;
  out.partitions_used = ys.size();
  if (ys.size() >= 2 && ys.size() < total_partitions) {
    double s2 = 0.0;
    for (double y : ys) s2 += (y - mean) * (y - mean);
    s2 /= (m - 1.0);
    // Finite population correction: a full census has zero error.
    const double variance = big_m * big_m * (1.0 - m / big_m) * s2 / m;
    out.standard_error = std::sqrt(std::max(variance, 0.0));
  }
  return out;
}

ApproxEstimate estimate_ratio(const ClusterSums& sums) {
  DIAS_EXPECTS(sums.values.size() == sums.counts.size(), "cluster sums misaligned");
  DIAS_EXPECTS(!sums.values.empty(), "estimator needs at least one executed partition");
  const double m = static_cast<double>(sums.values.size());
  const double big_m = static_cast<double>(sums.total_partitions);

  double y_mean = 0.0, x_mean = 0.0;
  for (std::size_t i = 0; i < sums.values.size(); ++i) {
    y_mean += sums.values[i];
    x_mean += sums.counts[i];
  }
  y_mean /= m;
  x_mean /= m;
  DIAS_EXPECTS(x_mean > 0.0, "ratio estimator needs non-empty sampled partitions");
  const double ratio = y_mean / x_mean;

  ApproxEstimate out;
  out.estimate = ratio;
  out.partitions_total = sums.total_partitions;
  out.partitions_used = sums.values.size();
  if (sums.values.size() >= 2 && sums.values.size() < sums.total_partitions) {
    // Delta method on R = y_bar / x_bar via the residuals e_i = y_i - R x_i:
    // var(R) ~ (1 - m/M) * s_e^2 / (m * x_bar^2).
    double s2 = 0.0;
    for (std::size_t i = 0; i < sums.values.size(); ++i) {
      const double e = sums.values[i] - ratio * sums.counts[i];
      s2 += e * e;
    }
    s2 /= (m - 1.0);
    const double variance = (1.0 - m / big_m) * s2 / (m * x_mean * x_mean);
    out.standard_error = std::sqrt(std::max(variance, 0.0));
  }
  return out;
}

}  // namespace dias::analytics::detail
