#include "analytics/triangle_count.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dias::analytics {

TriangleCountResult triangle_count(engine::Engine& eng,
                                   const engine::Dataset<workload::Edge>& edges,
                                   double stage_drop_ratio) {
  eng.clear_stage_log();
  const auto droppable = [&](const char* name) {
    engine::StageOptions opts;
    opts.name = name;
    opts.droppable = true;
    opts.drop_ratio_override = stage_drop_ratio;
    return opts;
  };

  // Stage 1 (map, droppable): canonicalize edges.
  auto canonical = eng.map_partitions(
      edges,
      [](const std::vector<workload::Edge>& part) {
        std::vector<workload::Edge> out;
        out.reserve(part.size());
        for (auto [u, v] : part) {
          if (u == v) continue;
          if (u > v) std::swap(u, v);
          out.emplace_back(u, v);
        }
        return out;
      },
      droppable("triangles/canonicalize"));

  // Stage 2 (shuffle-map, droppable): forward adjacency lists keyed by the
  // smaller endpoint (the "vertex RDD"). group_by_key gathers the
  // neighbours through the combining shuffle — no per-edge singleton
  // vectors.
  auto keyed = eng.map_partitions(
      canonical,
      [](const std::vector<workload::Edge>& part) {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
        out.reserve(part.size());
        for (const auto& [u, v] : part) out.emplace_back(u, v);
        return out;
      },
      droppable("triangles/adjacency"));
  auto adjacency = eng.group_by_key(keyed, keyed.partitions(), [] {
    engine::StageOptions opts;
    opts.name = "triangles/group";
    opts.droppable = false;  // shuffle barrier itself is not dropped
    return opts;
  }());

  // Broadcast view: vertex -> sorted forward neighbours.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adj;
  for (auto& kv : adjacency.collect()) {
    auto nbrs = kv.second;
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    adj.emplace(kv.first, std::move(nbrs));
  }

  // Stage 3 (shuffle-map, droppable): per-edge intersection counts.
  auto partial = eng.map_partitions(
      canonical,
      [&adj](const std::vector<workload::Edge>& part) {
        const std::vector<std::uint32_t> empty;
        std::uint64_t count = 0;
        for (const auto& [u, v] : part) {
          const auto iu = adj.find(u);
          const auto iv = adj.find(v);
          const auto& nu = iu != adj.end() ? iu->second : empty;
          const auto& nv = iv != adj.end() ? iv->second : empty;
          auto a = nu.begin();
          auto b = nv.begin();
          while (a != nu.end() && b != nv.end()) {
            if (*a < *b) {
              ++a;
            } else if (*b < *a) {
              ++b;
            } else {
              ++count;
              ++a;
              ++b;
            }
          }
        }
        return std::vector<std::uint64_t>{count};
      },
      droppable("triangles/intersect"));

  // Stage 4 (result): global sum.
  engine::StageOptions result_opts;
  result_opts.name = "triangles/result";
  result_opts.droppable = false;
  const std::uint64_t total = eng.aggregate(
      partial, std::uint64_t{0}, [](std::uint64_t a, std::uint64_t b) { return a + b; },
      result_opts);

  TriangleCountResult result;
  result.triangles = total;
  result.duration_s = eng.logged_duration();
  for (const auto& stage : eng.stage_log()) {
    if (stage.applied_drop_ratio > 0.0 ||
        (stage.kind == engine::EngineStageKind::kMap && stage.name != "triangles/result")) {
      result.tasks_total += stage.total_partitions;
      result.tasks_run += stage.executed_partitions;
    }
  }
  return result;
}

}  // namespace dias::analytics
