// dias::chaos — the unified, deterministic fault-injection plane (ISSUE 10).
//
// PR 1's FaultInjector throws from compute-task bodies and nothing else;
// PR 6's spill faults were hand-rolled per test. This plane generalizes
// both: every subsystem registers *named injection points* (engine task
// bodies, thread-pool wave lanes, spill backend write/open/read, block
// store I/O, dispatcher admission, arena allocation), and one seeded
// ChaosSchedule arms any subset of them with a fault shape:
//
//   kThrow   — raise ChaosError (a dias::error) at the point
//   kStall   — sleep a bounded, configured latency (the dominant
//              real-world failure mode: slow disks, hung workers)
//   kCorrupt — spill-write only: the caller mangles the encoded bytes so
//              the decode/checksum path fires on read-back
//
// Determinism contract: a decision is a pure hash of
// (schedule seed, point-name hash, caller-supplied coordinates). Call
// sites pass scheduling-independent coordinates where they exist (stage
// sequence / partition / attempt, wave sequence / index, content hash for
// spill writes) and a per-point operation counter otherwise. Same seed +
// same logical work ⇒ the same set of points fires, independent of thread
// interleaving at the coordinate-stable sites; the soak battery asserts
// reproducibility at the outcome level (result bytes + JobOutcome) either
// way. Injected stalls are bounded by kMaxStallMs and cancellation-aware
// at sites that hold a token, so chaos can slow a job but never wedge it.
//
// Fast path: a disarmed point costs one relaxed atomic load and a
// predictable branch (`armed()`); the decision hash runs only when armed.
// bench_ext_chaos gates that disabled overhead stays under 1% of the
// shuffle hot path.
//
// Configuration: programmatic (ChaosPlane::install / ScopedChaos for
// tests), environment (DIAS_CHAOS_SEED + DIAS_CHAOS_POINTS, parsed once
// at first ChaosPlane::instance()), or CLI (dias_cli --chaos-seed /
// --chaos-rate / --chaos-points). Point selectors are exact names or
// prefix wildcards ("spill.*", "*").
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.hpp"
#include "common/error.hpp"

namespace dias::chaos {

// Injected failure. Derives from dias::error so every existing absorption
// layer (spill guard, retry loop, breaker) treats it like a genuine I/O or
// task fault — chaos exercises the real paths, it does not add new ones.
class ChaosError : public error {
 public:
  explicit ChaosError(const std::string& what) : error("chaos: " + what) {}
};

enum class Shape { kThrow, kStall, kCorrupt };

const char* to_string(Shape shape);

// Hard ceiling on any injected stall: chaos may slow execution, never
// wedge it. The watchdog/latch hardening is tested against stalls below
// this bound.
inline constexpr double kMaxStallMs = 2000.0;

// Per-point arming: fire with probability `rate` per decision, acting out
// `shape` (kStall sleeps `stall_ms`, clamped to kMaxStallMs).
struct PointSpec {
  double rate = 0.0;
  Shape shape = Shape::kThrow;
  double stall_ms = 5.0;
};

// A seed plus point-selector → spec bindings. Selectors are matched
// exact-name first, then by longest `*`-suffix prefix ("spill.*" beats
// "*"). Later bindings of an equally specific selector win.
struct ChaosSchedule {
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, PointSpec>> points;

  bool empty() const { return points.empty(); }

  // Arms every selector-matched point with `spec`.
  static ChaosSchedule uniform(std::uint64_t seed, const PointSpec& spec,
                               std::string selector = "*");

  // DIAS_CHAOS_SEED=<n> and DIAS_CHAOS_POINTS=<sel>=<shape>:<rate>[:<stall_ms>][,...]
  // e.g. DIAS_CHAOS_POINTS="spill.write=throw:0.2,pool.wave=stall:0.05:20".
  // Unset/empty ⇒ an empty (disarmed) schedule. Malformed entries are a
  // config_error: silently ignoring a typo'd chaos storm would make a soak
  // pass vacuously.
  static ChaosSchedule from_env();

  // Parses the DIAS_CHAOS_POINTS grammar from a string (CLI reuse).
  static std::vector<std::pair<std::string, PointSpec>> parse_points(
      const std::string& text);
};

// One named injection point. Registered on first use, lives for the
// process; call sites cache the reference in a function-local static so
// the steady-state cost is one armed() load.
class InjectionPoint {
 public:
  struct Decision {
    bool fire = false;
    Shape shape = Shape::kThrow;
    double stall_ms = 0.0;
  };

  const std::string& name() const { return name_; }

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Pure decision for coordinates (a, b, c): a hash of
  // (seed, name, a, b, c) under the installed spec. Counted in the plane's
  // evaluation total (the bench gate's hook census).
  Decision decide(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0) const;

  // decide() + act: kThrow raises ChaosError, kStall sleeps (bounded by
  // kMaxStallMs, returning early when `cancel` fires), kCorrupt returns
  // true so the caller mangles its bytes. Returns false when nothing fired
  // or a non-corrupt shape completed.
  bool inject(std::uint64_t a, std::uint64_t b = 0, std::uint64_t c = 0,
              const CancellationToken* cancel = nullptr);

  // Fallback coordinate for sites with no scheduling-independent identity
  // (arena allocations, reader chunks): a per-point op counter, reset to 0
  // by every install(). Decisions drawn from it are deterministic per
  // (seed, point, op index) but the index assignment may depend on
  // interleaving — the soak asserts outcome-level reproducibility for
  // those points.
  std::uint64_t next_op() { return op_.fetch_add(1, std::memory_order_relaxed); }

  std::uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  friend class ChaosPlane;
  explicit InjectionPoint(std::string name);

  void arm(std::uint64_t seed, const PointSpec& spec);
  void disarm();

  const std::string name_;
  const std::uint64_t name_hash_;
  // Spec fields are written only by install()/clear() (quiescent by
  // contract: schedules change between jobs, not during) and read with
  // relaxed loads on the hot path; `armed_` is written last.
  std::atomic<std::uint64_t> seed_{0};
  std::atomic<double> rate_{0.0};
  std::atomic<int> shape_{static_cast<int>(Shape::kThrow)};
  std::atomic<double> stall_ms_{0.0};
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> op_{0};
  std::atomic<std::uint64_t> fired_{0};
};

// Process-wide registry of injection points. instance() reads the
// environment schedule once on first use, so exporting DIAS_CHAOS_* arms
// every binary with zero wiring.
class ChaosPlane {
 public:
  static ChaosPlane& instance();

  // Registers (or finds) a point; the reference is stable for the process
  // lifetime. A newly registered point inherits the installed schedule.
  InjectionPoint& point(std::string_view name);

  // Arms matching points and remembers the schedule for points registered
  // later. Not safe against concurrently *armed* chaos-sensitive work;
  // install between jobs (tests use ScopedChaos around whole scenarios).
  void install(const ChaosSchedule& schedule);
  // Disarms everything and forgets the installed schedule.
  void clear();

  // True when any registered point is armed — the one-load cheap check
  // for sites that want to skip coordinate computation entirely.
  bool armed() const { return armed_points_.load(std::memory_order_relaxed) > 0; }

  // Total decide() evaluations across armed points since process start —
  // the bench gate multiplies this census by the measured per-hook cost.
  std::uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  std::vector<std::string> point_names() const;

 private:
  friend class InjectionPoint;
  ChaosPlane();

  // Longest-prefix selector match against the installed schedule; null
  // when no selector covers `name`.
  const PointSpec* match_locked(const std::string& name) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<InjectionPoint>, std::less<>> points_;
  ChaosSchedule installed_;
  std::atomic<std::size_t> armed_points_{0};
  std::atomic<std::uint64_t> evaluations_{0};
};

// RAII schedule installation for tests: installs on construction, clears
// on destruction, so a failing assertion can never leak an armed plane
// into the next test.
class ScopedChaos {
 public:
  explicit ScopedChaos(const ChaosSchedule& schedule) {
    ChaosPlane::instance().install(schedule);
  }
  ~ScopedChaos() { ChaosPlane::instance().clear(); }
  ScopedChaos(const ScopedChaos&) = delete;
  ScopedChaos& operator=(const ScopedChaos&) = delete;
};

// Canonical point names: one constant per registration site, so tests and
// schedules never drift from the call sites.
namespace points {
inline constexpr const char* kEngineTask = "engine.task";
inline constexpr const char* kPoolWave = "pool.wave";
inline constexpr const char* kSpillWrite = "spill.write";
inline constexpr const char* kSpillOpen = "spill.open";
inline constexpr const char* kSpillRead = "spill.read";
inline constexpr const char* kStorageWrite = "storage.write";
inline constexpr const char* kStorageRead = "storage.read";
inline constexpr const char* kDispatcherAdmit = "dispatcher.admit";
inline constexpr const char* kArenaAlloc = "engine.arena.alloc";
}  // namespace points

namespace detail {

// splitmix64 finalizer — the same mixer FaultInjector has always used;
// chaos decisions and fault-injector decisions share one decision core.
std::uint64_t mix(std::uint64_t x);

// Independent uniform in [0, 1) per coordinate tuple (top 53 bits, the
// Rng's conversion).
double uniform_draw(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c, std::uint64_t salt);

// FNV-1a over a string — stable point-name hashing for the decision key.
std::uint64_t fnv1a(std::string_view s);

}  // namespace detail

}  // namespace dias::chaos
