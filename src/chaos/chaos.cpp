#include "chaos/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

namespace dias::chaos {

const char* to_string(Shape shape) {
  switch (shape) {
    case Shape::kThrow:
      return "throw";
    case Shape::kStall:
      return "stall";
    case Shape::kCorrupt:
      return "corrupt";
  }
  return "?";
}

namespace detail {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double uniform_draw(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                    std::uint64_t c, std::uint64_t salt) {
  std::uint64_t h = mix(seed + salt);
  h = mix(h ^ a);
  h = mix(h ^ b);
  h = mix(h ^ c);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace detail

namespace {

constexpr std::uint64_t kChaosSalt = 0xC405;

Shape parse_shape(const std::string& text) {
  if (text == "throw") return Shape::kThrow;
  if (text == "stall") return Shape::kStall;
  if (text == "corrupt") return Shape::kCorrupt;
  throw config_error("chaos: unknown fault shape '" + text +
                     "' (expected throw|stall|corrupt)");
}

double parse_double(const std::string& text, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw config_error(std::string("chaos: malformed ") + what + " '" + text + "'");
  }
  return v;
}

// Specificity of a selector for longest-prefix matching: exact names beat
// any wildcard, longer wildcard prefixes beat shorter ones.
bool selector_matches(const std::string& selector, const std::string& name) {
  if (!selector.empty() && selector.back() == '*') {
    return name.compare(0, selector.size() - 1, selector, 0, selector.size() - 1) == 0;
  }
  return selector == name;
}

std::size_t selector_specificity(const std::string& selector) {
  if (!selector.empty() && selector.back() == '*') return selector.size() - 1;
  return selector.size() + 1024;  // exact match outranks every prefix
}

}  // namespace

ChaosSchedule ChaosSchedule::uniform(std::uint64_t seed, const PointSpec& spec,
                                     std::string selector) {
  ChaosSchedule s;
  s.seed = seed;
  s.points.emplace_back(std::move(selector), spec);
  return s;
}

std::vector<std::pair<std::string, PointSpec>> ChaosSchedule::parse_points(
    const std::string& text) {
  std::vector<std::pair<std::string, PointSpec>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw config_error("chaos: malformed point binding '" + entry +
                         "' (expected <selector>=<shape>:<rate>[:<stall_ms>])");
    }
    const std::string selector = entry.substr(0, eq);
    const std::string rhs = entry.substr(eq + 1);
    PointSpec spec;
    const std::size_t c1 = rhs.find(':');
    if (c1 == std::string::npos) {
      throw config_error("chaos: binding '" + entry + "' is missing a rate");
    }
    spec.shape = parse_shape(rhs.substr(0, c1));
    const std::size_t c2 = rhs.find(':', c1 + 1);
    const std::string rate_text =
        c2 == std::string::npos ? rhs.substr(c1 + 1) : rhs.substr(c1 + 1, c2 - c1 - 1);
    spec.rate = parse_double(rate_text, "rate");
    if (spec.rate < 0.0 || spec.rate > 1.0) {
      throw config_error("chaos: rate must be in [0,1] in '" + entry + "'");
    }
    if (c2 != std::string::npos) {
      spec.stall_ms = parse_double(rhs.substr(c2 + 1), "stall_ms");
      if (spec.stall_ms < 0.0) {
        throw config_error("chaos: stall_ms must be >= 0 in '" + entry + "'");
      }
    }
    out.emplace_back(selector, spec);
  }
  return out;
}

ChaosSchedule ChaosSchedule::from_env() {
  ChaosSchedule s;
  if (const char* seed = std::getenv("DIAS_CHAOS_SEED"); seed != nullptr && *seed != '\0') {
    char* end = nullptr;
    s.seed = std::strtoull(seed, &end, 10);
    if (end == seed || *end != '\0') {
      throw config_error(std::string("chaos: malformed DIAS_CHAOS_SEED '") + seed + "'");
    }
  }
  if (const char* pts = std::getenv("DIAS_CHAOS_POINTS"); pts != nullptr && *pts != '\0') {
    s.points = parse_points(pts);
  }
  return s;
}

InjectionPoint::InjectionPoint(std::string name)
    : name_(std::move(name)), name_hash_(detail::fnv1a(name_)) {}

void InjectionPoint::arm(std::uint64_t seed, const PointSpec& spec) {
  seed_.store(seed, std::memory_order_relaxed);
  rate_.store(spec.rate, std::memory_order_relaxed);
  shape_.store(static_cast<int>(spec.shape), std::memory_order_relaxed);
  stall_ms_.store(std::min(spec.stall_ms, kMaxStallMs), std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void InjectionPoint::disarm() { armed_.store(false, std::memory_order_release); }

InjectionPoint::Decision InjectionPoint::decide(std::uint64_t a, std::uint64_t b,
                                                std::uint64_t c) const {
  Decision d;
  if (!armed()) return d;
  ChaosPlane::instance().evaluations_.fetch_add(1, std::memory_order_relaxed);
  const double rate = rate_.load(std::memory_order_relaxed);
  if (rate <= 0.0) return d;
  const std::uint64_t key = seed_.load(std::memory_order_relaxed) ^ name_hash_;
  if (detail::uniform_draw(key, a, b, c, kChaosSalt) >= rate) return d;
  d.fire = true;
  d.shape = static_cast<Shape>(shape_.load(std::memory_order_relaxed));
  d.stall_ms = stall_ms_.load(std::memory_order_relaxed);
  return d;
}

bool InjectionPoint::inject(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                            const CancellationToken* cancel) {
  const Decision d = decide(a, b, c);
  if (!d.fire) return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  switch (d.shape) {
    case Shape::kThrow:
      throw ChaosError("injected fault at " + name_);
    case Shape::kStall: {
      // Bounded, cancellation-aware sleep: poll in 1ms slices like the
      // engine's interruptible_sleep_ms, so a fired token is never held
      // back by an injected stall.
      using clock = std::chrono::steady_clock;
      const auto deadline =
          clock::now() + std::chrono::duration_cast<clock::duration>(
                             std::chrono::duration<double, std::milli>(d.stall_ms));
      while (!(cancel != nullptr && cancel->cancelled()) && clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return false;
    }
    case Shape::kCorrupt:
      return true;
  }
  return false;
}

ChaosPlane::ChaosPlane() {
  // Environment arming happens once, before any point exists; points
  // registered later pick the schedule up in point().
  installed_ = ChaosSchedule::from_env();
}

ChaosPlane& ChaosPlane::instance() {
  static ChaosPlane* plane = new ChaosPlane();  // leaked: outlives all statics
  return *plane;
}

const PointSpec* ChaosPlane::match_locked(const std::string& name) const {
  const PointSpec* best = nullptr;
  std::size_t best_score = 0;
  for (const auto& [selector, spec] : installed_.points) {
    if (!selector_matches(selector, name)) continue;
    const std::size_t score = selector_specificity(selector);
    // >= so the later of two equally specific bindings wins.
    if (best == nullptr || score >= best_score) {
      best = &spec;
      best_score = score;
    }
  }
  return best;
}

InjectionPoint& ChaosPlane::point(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    auto inserted = points_.emplace(std::string(name), std::unique_ptr<InjectionPoint>(
                                                           new InjectionPoint(std::string(name))));
    it = inserted.first;
    if (const PointSpec* spec = match_locked(it->first); spec != nullptr) {
      it->second->arm(installed_.seed, *spec);
      armed_points_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return *it->second;
}

void ChaosPlane::install(const ChaosSchedule& schedule) {
  std::lock_guard lock(mu_);
  installed_ = schedule;
  std::size_t armed = 0;
  for (auto& [name, pt] : points_) {
    // Fresh op/fired streams per installation: two runs of the same work
    // under the same schedule draw identical op coordinates, which is what
    // makes the soak's identical-seed ⇒ identical-outcome check possible
    // for counter-coordinate points.
    pt->op_.store(0, std::memory_order_relaxed);
    pt->fired_.store(0, std::memory_order_relaxed);
    if (const PointSpec* spec = match_locked(name); spec != nullptr) {
      pt->arm(installed_.seed, *spec);
      ++armed;
    } else {
      pt->disarm();
    }
  }
  armed_points_.store(armed, std::memory_order_relaxed);
}

void ChaosPlane::clear() {
  std::lock_guard lock(mu_);
  installed_ = ChaosSchedule{};
  for (auto& [name, pt] : points_) pt->disarm();
  armed_points_.store(0, std::memory_order_relaxed);
}

std::vector<std::string> ChaosPlane::point_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, pt] : points_) names.push_back(name);
  return names;
}

}  // namespace dias::chaos
