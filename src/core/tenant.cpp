#include "core/tenant.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dias::core {
namespace {

constexpr double kLn2 = 0.6931471805599453;

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::size_t stripe_index(TenantId tenant, std::size_t mask) {
  // Fibonacci hash: tenant ids are often small consecutive integers, and
  // the high multiplier bits spread them evenly across stripes.
  const std::uint64_t h = tenant.value * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h >> 32) & mask;
}

void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* to_string(TenantAction action) {
  switch (action) {
    case TenantAction::kNone: return "none";
    case TenantAction::kBurst: return "burst";
    case TenantAction::kDeflate: return "deflate";
    case TenantAction::kDeprioritize: return "deprioritize";
    case TenantAction::kShed: return "shed";
  }
  return "unknown";
}

FairShareLedger::FairShareLedger(FairShareOptions options)
    : options_(std::move(options)) {
  DIAS_EXPECTS(options_.capacity_slots > 0.0, "ledger capacity must be positive");
  DIAS_EXPECTS(options_.usage_halflife_s > 0.0, "usage half-life must be positive");
  DIAS_EXPECTS(options_.burst_credit_s >= 0.0, "burst credits must be >= 0");
  DIAS_EXPECTS(options_.credit_refill_per_s >= 0.0, "credit refill must be >= 0");
  DIAS_EXPECTS(options_.deprioritize_ratio >= 1.0 &&
                   options_.shed_ratio >= options_.deprioritize_ratio,
               "ladder ratios must satisfy 1 <= deprioritize <= shed");
  DIAS_EXPECTS(options_.default_weight > 0.0, "default weight must be positive");
  DIAS_EXPECTS(options_.stripes >= 1, "ledger needs at least one stripe");
  tau_s_ = options_.usage_halflife_s / kLn2;
  const std::size_t n = round_up_pow2(options_.stripes);
  stripes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) stripes_.push_back(std::make_unique<Stripe>());
  stripe_mask_ = n - 1;
}

FairShareLedger::Stripe& FairShareLedger::stripe_for(TenantId tenant) const {
  return *stripes_[stripe_index(tenant, stripe_mask_)];
}

FairShareLedger::TenantState& FairShareLedger::get_or_create_locked(Stripe& stripe,
                                                                    TenantId tenant,
                                                                    double now_s) {
  auto [it, inserted] = stripe.tenants.try_emplace(tenant.value);
  if (inserted) {
    it->second.weight = options_.default_weight;
    it->second.credits = options_.burst_credit_s;
    it->second.last_s = now_s;
    tracked_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

double FairShareLedger::fair_rate(double weight) const {
  const double total = total_active_weight_.load(std::memory_order_relaxed);
  if (total <= weight) return options_.capacity_slots;  // alone (or nearly): full share
  return options_.capacity_slots * weight / total;
}

void FairShareLedger::set_active_locked(TenantState& state, bool active) {
  if (state.active == active) return;
  state.active = active;
  atomic_add(total_active_weight_, active ? state.weight : -state.weight);
}

void FairShareLedger::refresh_locked(TenantState& state, double now_s) {
  const double dt = now_s - state.last_s;
  if (dt <= 0.0) return;
  state.usage *= std::exp(-dt / tau_s_);
  const double rate = state.usage / tau_s_;
  const double fair = fair_rate(state.weight);
  if (rate > fair) {
    // Spending the burst: charge the excess slot-time over the interval.
    state.credits = std::max(0.0, state.credits - (rate - fair) * dt);
  } else {
    state.credits = std::min(options_.burst_credit_s,
                             state.credits + options_.credit_refill_per_s * dt);
  }
  state.last_s = now_s;
  set_active_locked(state, rate > options_.activity_floor * options_.capacity_slots);
}

void FairShareLedger::project(const TenantState& state, double now_s, double& rate,
                              double& credits) const {
  const double dt = std::max(0.0, now_s - state.last_s);
  const double usage = state.usage * std::exp(-dt / tau_s_);
  rate = usage / tau_s_;
  const double fair = fair_rate(state.weight);
  credits = rate > fair
                ? std::max(0.0, state.credits - (rate - fair) * dt)
                : std::min(options_.burst_credit_s,
                           state.credits + options_.credit_refill_per_s * dt);
}

TenantAction FairShareLedger::ladder(double rate, double credits, double weight) const {
  const double fair = fair_rate(weight);
  if (rate <= fair) return TenantAction::kNone;
  if (credits > 0.0) return TenantAction::kBurst;
  if (rate > options_.shed_ratio * fair) return TenantAction::kShed;
  if (rate > options_.deprioritize_ratio * fair) return TenantAction::kDeprioritize;
  return TenantAction::kDeflate;
}

void FairShareLedger::set_weight(TenantId tenant, double weight) {
  DIAS_EXPECTS(tenant.has_value(), "tenant id 0 is reserved for 'no tenant'");
  DIAS_EXPECTS(weight > 0.0, "tenant weight must be positive");
  Stripe& stripe = stripe_for(tenant);
  std::lock_guard lock(stripe.mutex);
  TenantState& state = get_or_create_locked(stripe, tenant, 0.0);
  if (state.active) {
    atomic_add(total_active_weight_, weight - state.weight);
  }
  state.weight = weight;
}

TenantAction FairShareLedger::on_submit(TenantId tenant, double now_s) {
  DIAS_EXPECTS(tenant.has_value(), "tenant id 0 is reserved for 'no tenant'");
  Stripe& stripe = stripe_for(tenant);
  std::lock_guard lock(stripe.mutex);
  TenantState& state = get_or_create_locked(stripe, tenant, now_s);
  refresh_locked(state, now_s);
  return ladder(state.usage / tau_s_, state.credits, state.weight);
}

void FairShareLedger::note_completion(TenantId tenant, double service_s, double now_s) {
  DIAS_EXPECTS(tenant.has_value(), "tenant id 0 is reserved for 'no tenant'");
  DIAS_EXPECTS(service_s >= 0.0, "service time must be >= 0");
  Stripe& stripe = stripe_for(tenant);
  std::lock_guard lock(stripe.mutex);
  TenantState& state = get_or_create_locked(stripe, tenant, now_s);
  refresh_locked(state, now_s);
  state.usage += service_s;
  set_active_locked(state,
                    state.usage / tau_s_ >
                        options_.activity_floor * options_.capacity_slots);
}

FairShareLedger::Summary FairShareLedger::summary(double now_s) const {
  Summary out;
  std::vector<double> shares;  // usage_rate / weight of active tenants
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    out.tracked += stripe->tenants.size();
    for (const auto& [id, state] : stripe->tenants) {
      double rate = 0.0, credits = 0.0;
      project(state, now_s, rate, credits);
      if (rate <= options_.activity_floor * options_.capacity_slots) continue;
      ++out.active;
      shares.push_back(rate / state.weight);
      if (rate > fair_rate(state.weight) && credits <= 0.0) ++out.over_quota;
    }
  }
  out.fairness_index = jain_index(shares);
  return out;
}

std::vector<FairShareLedger::TenantStat> FairShareLedger::stats(double now_s) const {
  std::vector<TenantStat> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard lock(stripe->mutex);
    for (const auto& [id, state] : stripe->tenants) {
      TenantStat stat;
      stat.tenant = TenantId{id};
      stat.weight = state.weight;
      project(state, now_s, stat.usage_rate, stat.credits_s);
      stat.level = ladder(stat.usage_rate, stat.credits_s, state.weight);
      out.push_back(stat);
    }
  }
  return out;
}

double FairShareLedger::jain_index(std::span<const double> xs) {
  if (xs.size() < 2) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace dias::core
