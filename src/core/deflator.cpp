#include "core/deflator.hpp"

#include <algorithm>

#include "model/priority_queue_sim.hpp"
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace dias::core {

Deflator::Deflator(std::vector<model::JobClassProfile> profiles, AccuracyProfile accuracy,
                   Options options)
    : Deflator(std::move(profiles),
               std::vector<AccuracyProfile>{std::move(accuracy)}, std::move(options)) {}

Deflator::Deflator(std::vector<model::JobClassProfile> profiles,
                   std::vector<AccuracyProfile> per_class_accuracy, Options options)
    : profiles_(std::move(profiles)), accuracy_(std::move(per_class_accuracy)),
      options_(std::move(options)) {
  DIAS_EXPECTS(!profiles_.empty(), "deflator needs at least one class profile");
  DIAS_EXPECTS(!accuracy_.empty(), "deflator needs at least one accuracy profile");
  // A single curve is shared across every class.
  while (accuracy_.size() < profiles_.size()) accuracy_.push_back(accuracy_.front());
  DIAS_EXPECTS(accuracy_.size() == profiles_.size(),
               "one accuracy profile per class (or exactly one shared) required");
  DIAS_EXPECTS(!options_.theta_grid.empty(), "theta grid must be non-empty");
  for (double t : options_.theta_grid) {
    DIAS_EXPECTS(t >= 0.0 && t < 1.0, "grid thetas must be in [0,1)");
  }
  DIAS_EXPECTS(options_.sprint_speedup >= 1.0, "sprint speedup must be >= 1");
}

std::pair<double, double> Deflator::sprint_plan_for_class(std::size_t k) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (options_.sprint_speedup <= 1.0) return {kInf, 1.0};
  // Non-sprinted mean execution at theta = 0 parameterizes the oracle.
  const double mean_exec =
      model::ResponseTimeModel::processing_time(profiles_[k], 0.0).mean();
  double timeout = options_.sprint_timeout_s;
  if (!options_.timeout_grid.empty()) {
    cluster::SprintConfig config = options_.sprint_config;
    config.speedup = options_.sprint_speedup;
    timeout = SprintOracle::min_sustainable_timeout(config, profiles_[k].arrival_rate,
                                                    mean_exec, options_.timeout_grid);
  }
  if (!std::isfinite(timeout)) return {kInf, 1.0};
  return {timeout,
          SprintOracle::effective_speedup(mean_exec, timeout, options_.sprint_speedup)};
}

model::Prediction Deflator::predict(std::span<const double> theta,
                                    const std::vector<bool>& sprint_class) const {
  std::vector<model::JobClassProfile> profiles = profiles_;
  if (options_.sprint_speedup > 1.0) {
    for (std::size_t k = 0; k < profiles.size(); ++k) {
      if (!sprint_class[k]) continue;
      const auto [timeout, effective] = sprint_plan_for_class(k);
      (void)timeout;
      profiles[k].sprint_speedup = effective;
    }
  }
  return model::ResponseTimeModel::predict(profiles, theta, options_.discipline);
}

DeflatorPlan Deflator::plan(std::span<const ClassConstraint> constraints,
                            std::span<const double> arrival_rates) const {
  DIAS_EXPECTS(arrival_rates.size() == profiles_.size(),
               "one measured arrival rate per class required");
  Deflator live(*this);
  for (std::size_t k = 0; k < profiles_.size(); ++k) {
    DIAS_EXPECTS(arrival_rates[k] > 0.0, "measured arrival rates must be positive");
    live.profiles_[k].arrival_rate = arrival_rates[k];
  }
  return live.plan(constraints);
}

DeflatorPlan Deflator::plan(std::span<const ClassConstraint> constraints) const {
  DIAS_EXPECTS(constraints.size() == profiles_.size(), "one constraint per class required");

  // (a) accuracy tolerances cap the admissible grid per class.
  std::vector<std::vector<double>> grids(profiles_.size());
  for (std::size_t k = 0; k < profiles_.size(); ++k) {
    const double cap = accuracy_[k].max_theta_for_error(constraints[k].max_error_percent);
    for (double t : options_.theta_grid) {
      if (t <= cap + 1e-12) grids[k].push_back(t);
    }
    if (grids[k].empty()) grids[k].push_back(0.0);
    std::sort(grids[k].begin(), grids[k].end());
  }

  // Sprinting targets the classes the constraints require to run exact
  // (the paper sprints the high-priority jobs, which carry no error budget).
  std::vector<bool> sprint_class(profiles_.size(), false);
  for (std::size_t k = 0; k < profiles_.size(); ++k) {
    sprint_class[k] = constraints[k].max_error_percent == 0.0;
  }

  // (b) exhaustive search over the grid product (the paper's procedure).
  DeflatorPlan best;
  std::vector<std::size_t> odometer(profiles_.size(), 0);
  std::vector<double> theta(profiles_.size(), 0.0);
  for (;;) {
    for (std::size_t k = 0; k < profiles_.size(); ++k) theta[k] = grids[k][odometer[k]];

    const model::Prediction pred = predict(theta, sprint_class);
    bool feasible = true;
    double objective = 0.0;
    double theta_sum = 0.0;
    for (std::size_t k = 0; k < profiles_.size(); ++k) {
      const auto& c = pred.per_class[k];
      if (!c.stable || c.mean_response > constraints[k].max_mean_response_s) {
        feasible = false;
        break;
      }
      objective += constraints[k].latency_weight * c.mean_response;
      theta_sum += theta[k];
    }
    if (feasible) {
      // Prefer the feasible plan with the least dropping; break ties on the
      // weighted latency objective (Section 5.2.1: pick the *minimum* drop
      // ratio that already satisfies the latency constraint).
      const bool better =
          !best.feasible ||
          theta_sum < std::accumulate(best.theta.begin(), best.theta.end(), 0.0) - 1e-12 ||
          (std::abs(theta_sum - std::accumulate(best.theta.begin(), best.theta.end(), 0.0)) <=
               1e-12 &&
           objective < best.objective);
      if (better) {
        best.feasible = true;
        best.theta = theta;
        best.prediction = pred;
        best.objective = objective;
      }
    }

    // Advance the odometer.
    std::size_t k = 0;
    while (k < odometer.size() && ++odometer[k] == grids[k].size()) {
      odometer[k] = 0;
      ++k;
    }
    if (k == odometer.size()) break;
  }

  if (best.feasible) {
    best.sprint_timeout_s.assign(profiles_.size(),
                                 std::numeric_limits<double>::infinity());
    best.predicted_error.resize(profiles_.size());
    for (std::size_t k = 0; k < profiles_.size(); ++k) {
      best.predicted_error[k] = accuracy_[k].error_at(best.theta[k]);
      if (sprint_class[k] && options_.sprint_speedup > 1.0) {
        best.sprint_timeout_s[k] = sprint_plan_for_class(k).first;
      }
    }
    if (options_.estimate_tails) {
      // Tail estimation: simulate the MMAP/PH/1 priority queue with the
      // plan's per-class PH processing times.
      std::vector<double> rates;
      std::vector<model::PhaseType> services;
      rates.reserve(profiles_.size());
      services.reserve(profiles_.size());
      for (std::size_t k = 0; k < profiles_.size(); ++k) {
        rates.push_back(profiles_[k].arrival_rate);
        auto profile = profiles_[k];
        if (sprint_class[k]) profile.sprint_speedup = sprint_plan_for_class(k).second;
        services.push_back(
            model::ResponseTimeModel::processing_time(profile, best.theta[k]));
      }
      const auto arrivals = model::Mmap::marked_poisson(rates);
      model::PriorityQueueSimOptions sim_options;
      sim_options.jobs = options_.tail_sample_jobs;
      sim_options.warmup = options_.tail_sample_jobs / 10;
      sim_options.seed = options_.tail_seed;
      const auto tails = model::simulate_priority_queue(
          arrivals, services, model::SimDiscipline::kNonPreemptive, sim_options);
      best.predicted_p95.resize(profiles_.size());
      for (std::size_t k = 0; k < profiles_.size(); ++k) {
        best.predicted_p95[k] =
            tails.response[k].count() > 0 ? tails.response[k].p95() : 0.0;
      }
    }
  }
  publish_plan(best);
  return best;
}

void Deflator::publish_plan(const DeflatorPlan& plan) const {
  if (options_.metrics != nullptr) {
    // The per-theta gauges below are overwritten on every re-plan, so a
    // test (or dashboard) watching them cannot tell "no re-plan yet" from
    // "re-planned to the same value". The monotonic counters disambiguate:
    // replans counts every solve, plans_infeasible the subset that found
    // no feasible plan.
    options_.metrics->counter("deflator.replans").add(1);
    if (!plan.feasible) options_.metrics->counter("deflator.plans_infeasible").add(1);
  }
  if (options_.metrics != nullptr && plan.feasible) {
    for (std::size_t k = 0; k < plan.theta.size(); ++k) {
      options_.metrics->gauge("deflator.theta.k" + std::to_string(k)).set(plan.theta[k]);
      options_.metrics->gauge("deflator.timeout_s.k" + std::to_string(k))
          .set(plan.sprint_timeout_s[k]);
    }
    options_.metrics->gauge("deflator.objective_s").set(plan.objective);
  }
  if (options_.tracer != nullptr) {
    std::vector<obs::Field> fields;
    fields.push_back({"feasible", plan.feasible});
    fields.push_back({"objective_s", plan.objective});
    for (std::size_t k = 0; k < plan.theta.size(); ++k) {
      const std::string suffix = ".k" + std::to_string(k);
      fields.push_back({"theta" + suffix, plan.theta[k]});
      fields.push_back({"timeout_s" + suffix, plan.sprint_timeout_s[k]});
      fields.push_back({"error_pct" + suffix, plan.predicted_error[k]});
    }
    options_.tracer->event("deflator.plan", fields);
  }
}

std::vector<FrontierPoint> Deflator::frontier(std::size_t class_index,
                                              std::span<const double> base_theta) const {
  DIAS_EXPECTS(class_index < profiles_.size(), "class index out of range");
  DIAS_EXPECTS(base_theta.size() == profiles_.size(), "one base theta per class required");
  std::vector<FrontierPoint> points;
  std::vector<double> theta(base_theta.begin(), base_theta.end());
  const std::vector<bool> no_sprint(profiles_.size(), false);
  for (double t : options_.theta_grid) {
    theta[class_index] = t;
    const model::Prediction pred = predict(theta, no_sprint);
    FrontierPoint p;
    p.theta = t;
    p.error_percent = accuracy_[class_index].error_at(t);
    p.mean_response_s = pred.per_class[class_index].mean_response;
    points.push_back(p);
  }
  return points;
}

}  // namespace dias::core
