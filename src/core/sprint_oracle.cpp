#include "core/sprint_oracle.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace dias::core {

double SprintOracle::effective_speedup(double mean_exec_s, double timeout_s,
                                       double speedup) {
  DIAS_EXPECTS(mean_exec_s > 0.0, "execution time must be positive");
  DIAS_EXPECTS(timeout_s >= 0.0, "timeout must be non-negative");
  DIAS_EXPECTS(speedup >= 1.0, "speedup must be >= 1");
  if (timeout_s >= mean_exec_s || speedup == 1.0) return 1.0;
  const double sprinted_exec = timeout_s + (mean_exec_s - timeout_s) / speedup;
  return mean_exec_s / sprinted_exec;
}

double SprintOracle::sprint_seconds_per_job(double mean_exec_s, double timeout_s,
                                            double speedup) {
  DIAS_EXPECTS(mean_exec_s > 0.0, "execution time must be positive");
  DIAS_EXPECTS(timeout_s >= 0.0, "timeout must be non-negative");
  DIAS_EXPECTS(speedup >= 1.0, "speedup must be >= 1");
  if (timeout_s >= mean_exec_s) return 0.0;
  return (mean_exec_s - timeout_s) / speedup;
}

bool SprintOracle::sustainable(const cluster::SprintConfig& config,
                               double sprint_jobs_per_s, double sprint_seconds_per_job) {
  DIAS_EXPECTS(sprint_jobs_per_s >= 0.0, "arrival rate must be non-negative");
  DIAS_EXPECTS(sprint_seconds_per_job >= 0.0, "sprint duration must be non-negative");
  if (std::isinf(config.budget_joules)) return true;
  // Average extra power drawn by sprinting vs the replenish rate.
  const double average_drain =
      config.extra_power() * sprint_jobs_per_s * sprint_seconds_per_job;
  return average_drain <= config.replenish_watts + 1e-12;
}

double SprintOracle::min_sustainable_timeout(const cluster::SprintConfig& config,
                                             double arrival_rate, double mean_exec_s,
                                             const std::vector<double>& timeout_grid) {
  DIAS_EXPECTS(!timeout_grid.empty(), "timeout grid must be non-empty");
  for (double timeout : timeout_grid) {
    const double per_job =
        sprint_seconds_per_job(mean_exec_s, timeout, config.speedup);
    if (sustainable(config, arrival_rate, per_job)) return timeout;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace dias::core
