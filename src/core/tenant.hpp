// Multi-tenant fair-share accounting for the sharded dispatcher (ISSUE 7).
//
// A tenant is an opaque id layered *over* priority classes: one tenant may
// submit jobs of several classes, and one class serves many tenants. The
// FairShareLedger tracks, per tenant, the long-term consumed slot-time as a
// decaying integral (an EWMA rate) and a refillable burst-credit balance,
// following the burstiness-fairness tradeoff of BoPF (Chen et al.) and the
// multi-user Spark fairness study (PAPERS.md): a tenant whose long-term
// rate stays within its fair share keeps full credits and zero-penalty
// latency; a tenant bursting *above* its share spends credits while the
// burst lasts (still zero penalty — that is the point of credits); only
// when the credits are gone does the over-quota ladder engage, and it
// escalates in the differential-approximation spirit — degrade before you
// drop:
//
//   kDeflate      -> the job still runs, at a raised drop ratio (theta
//                    floor), so the tenant pays in accuracy first;
//   kDeprioritize -> the job is queued behind its class's compliant work;
//   kShed         -> the job is turned away with a terminal kShed record.
//
// Thread-safety: tenant state lives in hash-striped buckets, each with its
// own mutex, so 10k tenants submitting from many threads never serialize
// on one lock. Aggregate state (total active weight) is a lock-free
// atomic. All clock inputs are caller-provided seconds (the dispatcher
// passes its epoch-relative now_s()), which keeps the ledger deterministic
// under test.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace dias::core {

// Opaque tenant identity. value == 0 is "no tenant": such jobs bypass the
// ledger entirely (the PR-5/6 single-tenant behavior).
struct TenantId {
  std::uint64_t value = 0;
  constexpr bool has_value() const { return value != 0; }
  friend constexpr bool operator==(TenantId a, TenantId b) { return a.value == b.value; }
  friend constexpr bool operator!=(TenantId a, TenantId b) { return a.value != b.value; }
};

// What the ledger decided for one submission (the over-quota ladder).
// kNone: within fair share. kBurst: above share but covered by credits —
// treated exactly like kNone by the dispatcher, recorded for observability.
enum class TenantAction { kNone, kBurst, kDeflate, kDeprioritize, kShed };

const char* to_string(TenantAction action);

struct FairShareOptions {
  // Slot-seconds per second the plant offers (1.0 = the dispatcher's
  // single non-preemptive runner). Fair share of a tenant with weight w is
  // capacity_slots * w / (total weight of active tenants).
  double capacity_slots = 1.0;
  // Half-life of the consumed-slot-time integral; the tenant's "long-term
  // rate" is the integral divided by the mean lifetime tau = T½/ln2.
  double usage_halflife_s = 5.0;
  // Burst-credit balance ceiling (slot-seconds of *excess over fair
  // share*), also the initial balance of a new tenant.
  double burst_credit_s = 0.5;
  // Credits regained per second while the tenant is at or under its share.
  double credit_refill_per_s = 0.05;
  // Ladder thresholds once credits are exhausted, as multiples of the fair
  // rate: (fair, deprioritize_ratio*fair] -> kDeflate;
  // (deprioritize_ratio*fair, shed_ratio*fair] -> kDeprioritize;
  // above shed_ratio*fair -> kShed.
  double deprioritize_ratio = 2.0;
  double shed_ratio = 4.0;
  // A tenant counts as "active" (and its weight in the fair-share
  // denominator) while its rate exceeds this fraction of capacity.
  double activity_floor = 1e-4;
  // Weight assigned to tenants never seen by set_weight().
  double default_weight = 1.0;
  // Lock stripes for the tenant table (rounded up to a power of two).
  std::size_t stripes = 64;
};

class FairShareLedger {
 public:
  explicit FairShareLedger(FairShareOptions options = {});
  FairShareLedger(const FairShareLedger&) = delete;
  FairShareLedger& operator=(const FairShareLedger&) = delete;

  // Declares a tenant's relative weight (creates the tenant if new).
  void set_weight(TenantId tenant, double weight);

  // Admission-time consult: refreshes decay and credits, then returns the
  // ladder action for a job arriving now. Never blocks beyond one stripe
  // mutex. tenant must have a value.
  TenantAction on_submit(TenantId tenant, double now_s);

  // Charges `service_s` consumed slot-seconds to the tenant.
  void note_completion(TenantId tenant, double service_s, double now_s);

  struct TenantStat {
    TenantId tenant;
    double weight = 1.0;
    double usage_rate = 0.0;  // consumed slot-time per second, decayed
    double credits_s = 0.0;
    TenantAction level = TenantAction::kNone;
  };
  struct Summary {
    std::size_t tracked = 0;      // tenants ever seen
    std::size_t active = 0;       // rate above the activity floor
    std::size_t over_quota = 0;   // over fair share with credits exhausted
    // Jain fairness index of usage_rate/weight across active tenants
    // (1.0 when fewer than two are active).
    double fairness_index = 1.0;
  };

  // Aggregate view (walks every stripe; intended for sampler cadence, not
  // per-submit). Non-mutating: decay is applied to the *returned* values
  // only, so a summary never perturbs credit accounting.
  Summary summary(double now_s) const;
  // Per-tenant view, same staleness contract. Order is unspecified.
  std::vector<TenantStat> stats(double now_s) const;

  // Fair consumed-slot-time rate for a tenant of `weight` right now.
  double fair_rate(double weight) const;

  const FairShareOptions& options() const { return options_; }

  // Jain's fairness index (sum x)^2 / (n * sum x^2); 1.0 for n < 2 or all
  // zeros. Values in (0, 1], 1 = perfectly even.
  static double jain_index(std::span<const double> xs);

 private:
  struct TenantState {
    double weight = 1.0;
    double usage = 0.0;    // decayed integral of consumed slot-seconds
    double credits = 0.0;
    double last_s = 0.0;
    bool active = false;
  };
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
    std::unordered_map<std::uint64_t, TenantState> tenants;
  };

  Stripe& stripe_for(TenantId tenant) const;
  TenantState& get_or_create_locked(Stripe& stripe, TenantId tenant, double now_s);
  // Applies decay + credit charge/refill for the interval since last_s.
  void refresh_locked(TenantState& state, double now_s);
  // Rate/credits as refresh_locked would leave them, without mutating.
  void project(const TenantState& state, double now_s, double& rate,
               double& credits) const;
  TenantAction ladder(double rate, double credits, double weight) const;
  void set_active_locked(TenantState& state, bool active);

  FairShareOptions options_;
  double tau_s_ = 1.0;  // usage mean lifetime = halflife / ln2
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::size_t stripe_mask_ = 0;
  std::atomic<double> total_active_weight_{0.0};
  std::atomic<std::size_t> tracked_{0};
};

}  // namespace dias::core
