// Experiment controller: maps the paper's named policies onto cluster
// simulator configurations and provides the comparison helpers used by the
// evaluation (relative mean/tail latency differences vs the preemptive
// baseline, Figures 7-11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_simulator.hpp"

namespace dias::core {

// The scheduling policies of the evaluation section.
enum class Policy {
  kPreemptive,          // P: evict on higher-priority arrival, re-execute
  kNonPreemptive,       // NP: never evict, no approximation
  kDifferentialApprox,  // DA(theta): NP + per-class task dropping
  kNonPreemptiveSprint, // NPS: NP + sprinting, no approximation
  kDias,                // DiAS(theta): NP + dropping + sprinting
};

const char* to_string(Policy policy);
bool policy_uses_sprinting(Policy policy);
bool policy_uses_dropping(Policy policy);

struct ExperimentConfig {
  Policy policy = Policy::kNonPreemptive;
  int slots = 20;
  // What eviction costs under the preemptive policy (restart = the paper's
  // production baseline; resume = Natjam-style task checkpointing).
  cluster::EvictionMode eviction = cluster::EvictionMode::kRestart;
  // Per-class drop ratios (ignored unless the policy drops tasks).
  std::vector<double> theta;
  // Sprint settings (ignored unless the policy sprints).
  cluster::SprintConfig sprint;
  // Straggler injection / mitigation (off by default).
  cluster::StragglerConfig stragglers;
  // Optional per-slot speed factors (heterogeneous executors).
  std::vector<double> slot_speed_factors;
  cluster::TaskTimeFamily task_time_family = cluster::TaskTimeFamily::kLogNormal;
  double idle_power_w = 0.0;
  std::size_t warmup_jobs = 200;
  std::uint64_t seed = 1;
  // Optional observability sinks, forwarded verbatim to the simulator
  // (see ClusterSimulator::Config). Not owned; may be null.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
};

// Runs one policy over a trace.
cluster::SimResult run_experiment(const ExperimentConfig& config,
                                  std::vector<cluster::TraceEntry> trace);

// Relative difference in percent ((other - base) / base * 100) of mean and
// tail (p95) response times, as plotted in Figures 7-11.
struct LatencyDelta {
  double mean_percent = 0.0;
  double tail_percent = 0.0;
};
LatencyDelta relative_difference(const cluster::ClassMetrics& baseline,
                                 const cluster::ClassMetrics& other);

}  // namespace dias::core
