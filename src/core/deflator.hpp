// The DiAS task deflator (paper Sections 3.2 and 5.2.1).
//
// Decides the approximation level theta_k and sprint timeout Tk per
// priority class by combining
//   (a) the offline accuracy profile (error vs drop ratio) with per-class
//       accuracy tolerances, which cap each class's admissible theta, and
//   (b) the stochastic response-time model, which predicts per-class mean
//       latencies for each candidate theta vector.
// The deflator exhaustively searches the candidate grid (the paper's
// suggested procedure) and returns the feasible configuration minimizing a
// weighted latency objective, plus the full latency-accuracy frontier so a
// user can pick a different tradeoff.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/accuracy_profile.hpp"
#include "core/sprint_oracle.hpp"
#include "model/response_time_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::core {

struct ClassConstraint {
  // Maximum tolerated relative error in percent (0 = exact).
  double max_error_percent = 0.0;
  // Optional cap on the class's predicted mean response time (seconds).
  double max_mean_response_s = std::numeric_limits<double>::infinity();
  // Weight of this class's mean response in the deflator objective.
  double latency_weight = 1.0;
};

struct DeflatorPlan {
  bool feasible = false;
  std::vector<double> theta;            // per class (same order as profiles)
  std::vector<double> sprint_timeout_s; // per class; +inf = no sprinting
  model::Prediction prediction;         // model output for the chosen plan
  std::vector<double> predicted_error;  // accuracy loss per class
  // Estimated p95 response per class (filled when Options::estimate_tails
  // is set, via the MMAP/PH/1 queue simulation); empty otherwise.
  std::vector<double> predicted_p95;
  double objective = std::numeric_limits<double>::infinity();
};

// One point of the latency/accuracy frontier for a single class.
struct FrontierPoint {
  double theta = 0.0;
  double error_percent = 0.0;
  double mean_response_s = 0.0;
};

class Deflator {
 public:
  struct Options {
    // Candidate drop ratios evaluated per class (the search grid).
    std::vector<double> theta_grid = {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6};
    model::Discipline discipline = model::Discipline::kNonPreemptive;
    // Sprint timeout assigned to classes whose constraint demands latency
    // help (finite cap) when sprinting is available; +inf disables.
    double sprint_timeout_s = std::numeric_limits<double>::infinity();
    // Effective sprint speedup fed to the model for sprinted classes.
    double sprint_speedup = 1.0;
    // When non-empty, the deflator searches this (ascending) timeout grid
    // per sprinted class: the smallest budget-sustainable timeout wins and
    // the SprintOracle's effective speedup for it parameterizes the model
    // (the paper's "combinations of dropping ratios, priorities, and
    // frequency thresholds" search). `sprint_config` supplies the budget,
    // power, and replenish rate for the sustainability check.
    std::vector<double> timeout_grid;
    cluster::SprintConfig sprint_config;
    // When true, the chosen plan's per-class p95 response times are
    // estimated by simulating the MMAP/PH/1 priority queue with the plan's
    // PH services (the paper's headline results are tail latencies).
    bool estimate_tails = false;
    std::size_t tail_sample_jobs = 60000;
    std::uint64_t tail_seed = 1;
    // Optional observability sinks (not owned; may be null). With a
    // registry, plan() publishes the chosen theta_k and Tk per class as
    // gauges ("deflator.theta.kK" / "deflator.timeout_s.kK"), bumps the
    // monotonic "deflator.replans" counter on every solve (and
    // "deflator.plans_infeasible" when no feasible plan exists) so tests
    // can count re-plans instead of sleeping; with a tracer it emits one
    // "deflator.plan" event per decision carrying feasibility, the
    // objective, and the per-class choices.
    obs::Registry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  // `profiles` are ordered low -> high priority (paper convention). The
  // single-profile constructors share one accuracy curve across classes;
  // the vector overload assigns one per class (different analyses lose
  // accuracy differently under dropping).
  Deflator(std::vector<model::JobClassProfile> profiles, AccuracyProfile accuracy,
           Options options);
  Deflator(std::vector<model::JobClassProfile> profiles, AccuracyProfile accuracy)
      : Deflator(std::move(profiles), std::move(accuracy), Options{}) {}
  Deflator(std::vector<model::JobClassProfile> profiles,
           std::vector<AccuracyProfile> per_class_accuracy, Options options);

  // Searches the grid for the best feasible plan under the constraints
  // (one per class, same order as the profiles).
  DeflatorPlan plan(std::span<const ClassConstraint> constraints) const;

  // Same search, but with the profiled per-class arrival rates replaced by
  // live measurements (jobs/s, one per class, > 0). This is the re-plan
  // entry point of the closed-loop overload controller: the offline
  // service/overhead profile is kept, only the load estimate changes.
  DeflatorPlan plan(std::span<const ClassConstraint> constraints,
                    std::span<const double> arrival_rates) const;

  // Latency-accuracy frontier of class `class_index`, holding the other
  // classes' thetas fixed at `base_theta`.
  std::vector<FrontierPoint> frontier(std::size_t class_index,
                                      std::span<const double> base_theta) const;

  const std::vector<model::JobClassProfile>& profiles() const { return profiles_; }
  // Accuracy curve of class k (all identical for the shared-curve ctors).
  const AccuracyProfile& accuracy(std::size_t k = 0) const { return accuracy_.at(k); }

 private:
  model::Prediction predict(std::span<const double> theta,
                            const std::vector<bool>& sprint_class) const;
  // Timeout and effective speedup the oracle assigns to class k when it
  // sprints (theta == 0 classes); {inf, 1.0} when sprinting is off.
  std::pair<double, double> sprint_plan_for_class(std::size_t k) const;
  // Mirrors a finished plan into the configured metrics/tracer sinks.
  void publish_plan(const DeflatorPlan& plan) const;

  std::vector<model::JobClassProfile> profiles_;
  std::vector<AccuracyProfile> accuracy_;  // one per class
  Options options_;
};

}  // namespace dias::core
