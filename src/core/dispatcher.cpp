#include "core/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <tuple>
#include <utility>

#include "common/error.hpp"

namespace dias::core {

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kShed: return "shed";
    case JobOutcome::kCancelled: return "cancelled";
    case JobOutcome::kFailed: return "failed";
  }
  return "unknown";
}

DiasDispatcher::DiasDispatcher(std::vector<double> theta)
    : DiasDispatcher(std::move(theta), DispatcherOptions{}) {}

DiasDispatcher::DiasDispatcher(std::vector<double> theta, DispatcherOptions options)
    : theta_(std::move(theta)), options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()), buffers_(theta_.size()),
      queued_memory_(theta_.size(), 0), memory_profile_(theta_.size(), 0.0),
      loads_(theta_.size()) {
  DIAS_EXPECTS(!theta_.empty(), "dispatcher needs at least one priority class");
  for (double t : theta_) {
    DIAS_EXPECTS(t >= 0.0 && t <= 1.0, "drop ratios must be in [0,1]");
  }
  DIAS_EXPECTS(options_.classes.size() <= theta_.size(),
               "more class policies than priority classes");
  DIAS_EXPECTS(options_.memory_profile_alpha > 0.0 && options_.memory_profile_alpha <= 1.0,
               "memory profile alpha must be in (0,1]");
  options_.classes.resize(theta_.size());
  for (const auto& cp : options_.classes) {
    DIAS_EXPECTS(cp.deadline_s > 0.0, "class deadlines must be positive");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  deadline_watchdog_ = std::thread([this] { deadline_loop(); });
}

void DiasDispatcher::attach_observability(obs::Registry* metrics, obs::Tracer* tracer) {
  std::lock_guard lock(mutex_);
  DIAS_EXPECTS(in_flight_ == 0, "attach observability before submitting jobs");
  tracer_ = tracer;
  completed_counters_.clear();
  shed_counters_.clear();
  cancelled_counters_.clear();
  failed_counters_.clear();
  depth_gauges_.clear();
  theta_gauges_.clear();
  response_hist_ = nullptr;
  queueing_hist_ = nullptr;
  memory_gauge_ = nullptr;
  if (metrics != nullptr) {
    for (std::size_t k = 0; k < theta_.size(); ++k) {
      const std::string prefix = "dispatcher.class" + std::to_string(k);
      completed_counters_.push_back(&metrics->counter(prefix + ".completed"));
      shed_counters_.push_back(&metrics->counter(prefix + ".shed"));
      cancelled_counters_.push_back(&metrics->counter(prefix + ".cancelled"));
      failed_counters_.push_back(&metrics->counter(prefix + ".failed"));
      depth_gauges_.push_back(&metrics->gauge(prefix + ".queue_depth"));
      theta_gauges_.push_back(&metrics->gauge(prefix + ".theta"));
      theta_gauges_.back()->set(theta_[k]);
    }
    response_hist_ = &metrics->histogram("dispatcher.response_s", 0.0, 600.0, 240);
    queueing_hist_ = &metrics->histogram("dispatcher.queueing_s", 0.0, 600.0, 240);
    memory_gauge_ = &metrics->gauge("dispatcher.memory_in_use_bytes");
  }
}

void DiasDispatcher::attach_sprint_governor(runtime::SprintGovernor* governor) {
  std::lock_guard lock(mutex_);
  DIAS_EXPECTS(in_flight_ == 0, "attach the sprint governor before submitting jobs");
  governor_ = governor;
}

DiasDispatcher::~DiasDispatcher() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  deadline_cv_.notify_all();
  space_cv_.notify_all();
  dispatcher_.join();
  deadline_watchdog_.join();
}

double DiasDispatcher::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

bool DiasDispatcher::queue_has_space(std::size_t priority, std::size_t memory_bytes) const {
  const ClassPolicy& cp = options_.classes[priority];
  if (cp.queue_capacity != 0 && buffers_[priority].size() >= cp.queue_capacity) {
    return false;
  }
  if (options_.total_capacity != 0 && queued_total_ >= options_.total_capacity) {
    return false;
  }
  // Aggregate-footprint admission. An over-budget job is still admitted
  // when nothing else holds memory: no amount of waiting or shedding could
  // ever make it fit, so refusing it would starve (kBlock) or shed the
  // whole queue for nothing (kShedOldestLowest).
  if (options_.memory_capacity_bytes != 0 && memory_in_use_ > 0 &&
      memory_in_use_ + memory_bytes > options_.memory_capacity_bytes) {
    return false;
  }
  return true;
}

void DiasDispatcher::release_memory_locked(const JobRecord& record) {
  memory_in_use_ -= std::min(memory_in_use_, record.memory_bytes);
  if (memory_gauge_ != nullptr) memory_gauge_->set(static_cast<double>(memory_in_use_));
}

void DiasDispatcher::update_memory_profile_locked(std::size_t priority,
                                                  std::size_t declared) {
  if (declared == 0) return;
  double& profile = memory_profile_[priority];
  const double sample = static_cast<double>(declared);
  profile = profile == 0.0
                ? sample  // first declared sample seeds the profile
                : (1.0 - options_.memory_profile_alpha) * profile +
                      options_.memory_profile_alpha * sample;
  loads_[priority].profiled_memory_bytes = static_cast<std::size_t>(profile);
}

void DiasDispatcher::note_outcome_locked(const JobRecord& record) {
  ClassLoad& load = loads_[record.priority];
  obs::Counter* counter = nullptr;
  switch (record.outcome) {
    case JobOutcome::kCompleted:
      ++load.completed;
      if (!completed_counters_.empty()) counter = completed_counters_[record.priority];
      break;
    case JobOutcome::kShed:
      ++load.shed;
      if (!shed_counters_.empty()) counter = shed_counters_[record.priority];
      break;
    case JobOutcome::kCancelled:
      ++load.cancelled;
      if (!cancelled_counters_.empty()) counter = cancelled_counters_[record.priority];
      break;
    case JobOutcome::kFailed:
      ++load.failed;
      if (!failed_counters_.empty()) counter = failed_counters_[record.priority];
      break;
  }
  if (counter != nullptr) counter->add();
}

void DiasDispatcher::finish_without_running(Pending&& pending, JobOutcome outcome,
                                            std::string why) {
  pending.token.request_cancel();
  pending.record.outcome = outcome;
  pending.record.error = std::move(why);
  pending.record.completion_s = now_s();
  // Never ran: stamp start at the terminal instant so execution_s() is 0
  // and response_s() still measures the time spent queued.
  pending.record.start_s = pending.record.completion_s;
  pending.record.theta = theta_[pending.record.priority];
  note_outcome_locked(pending.record);
  completed_.push_back(std::move(pending.record));
}

Admission DiasDispatcher::submit(std::size_t priority, JobFn job, std::size_t memory_bytes) {
  DIAS_EXPECTS(static_cast<bool>(job), "job callable must be non-empty");
  return submit(priority,
                ContextJobFn([fn = std::move(job)](const JobContext& ctx) {
                  fn(ctx.theta);
                }),
                memory_bytes);
}

Admission DiasDispatcher::submit(std::size_t priority, ContextJobFn job,
                                 std::size_t memory_bytes) {
  DIAS_EXPECTS(priority < theta_.size(), "priority out of range");
  DIAS_EXPECTS(static_cast<bool>(job), "job callable must be non-empty");
  Pending pending;
  pending.fn = std::move(job);
  pending.record.priority = priority;
  pending.declared_memory = memory_bytes;

  bool shed_victim = false;
  {
    std::unique_lock lock(mutex_);
    DIAS_EXPECTS(!stopping_, "submit on a stopping dispatcher");
    pending.record.seq = next_seq_++;
    pending.record.arrival_s = now_s();
    ++loads_[priority].arrivals;
    // Accounted footprint: what the submitter declared, else the class's
    // learned profile (0 when nothing of this class ever declared one).
    const std::size_t accounted =
        memory_bytes > 0 ? memory_bytes
                         : static_cast<std::size_t>(memory_profile_[priority]);
    pending.record.memory_bytes = accounted;

    if (!queue_has_space(priority, accounted)) {
      switch (options_.admission) {
        case AdmissionPolicy::kBlock:
          space_cv_.wait(lock,
                         [&] { return stopping_ || queue_has_space(priority, accounted); });
          DIAS_EXPECTS(!stopping_, "submit on a stopping dispatcher");
          break;
        case AdmissionPolicy::kReject:
          finish_without_running(std::move(pending), JobOutcome::kShed,
                                 "rejected at admission: queue or memory full");
          lock.unlock();
          drain_cv_.notify_all();
          return Admission::kRejected;
        case AdmissionPolicy::kShedOldestLowest: {
          // Memory feasibility first: queued jobs of classes the newcomer
          // outranks (or ties) are the only reclaimable footprint — the
          // running job and higher-priority queues stay. If evicting all
          // of them still cannot fit the newcomer, reject it up front
          // instead of shedding the whole queue for nothing.
          if (options_.memory_capacity_bytes != 0) {
            std::size_t reclaimable = 0;
            for (std::size_t k = 0; k <= priority; ++k) reclaimable += queued_memory_[k];
            const std::size_t rest =
                memory_in_use_ - std::min(memory_in_use_, reclaimable);
            // rest == 0 falls under the oversized-runs-alone rule (see
            // queue_has_space): with nothing else holding memory the
            // newcomer is admissible no matter its footprint.
            if (rest > 0 && rest + accounted > options_.memory_capacity_bytes) {
              finish_without_running(std::move(pending), JobOutcome::kShed,
                                     "rejected at admission: footprint cannot fit "
                                     "even after shedding every job it outranks");
              lock.unlock();
              drain_cv_.notify_all();
              return Admission::kRejected;
            }
          }
          // Shed until the newcomer fits. One victim suffices when a queue
          // cap binds; under the memory cap several small jobs may have to
          // go to make room for one big footprint. Each round either
          // dequeues a victim (finite queues, so the loop terminates) or
          // gives up and sheds the newcomer.
          while (!queue_has_space(priority, accounted)) {
            // Prefer shedding within the class whose cap was hit; when only
            // a dispatcher-wide cap binds, shed the oldest job of the
            // lowest non-empty class the newcomer does not outrank.
            const ClassPolicy& cp = options_.classes[priority];
            std::size_t victim_class = theta_.size();
            if (cp.queue_capacity != 0 && buffers_[priority].size() >= cp.queue_capacity) {
              victim_class = priority;
            } else {
              for (std::size_t k = 0; k <= priority; ++k) {
                if (!buffers_[k].empty()) {
                  victim_class = k;
                  break;
                }
              }
            }
            if (victim_class == theta_.size()) {
              finish_without_running(std::move(pending), JobOutcome::kShed,
                                     "rejected at admission: no queued job to shed "
                                     "that it outranks");
              lock.unlock();
              drain_cv_.notify_all();
              return Admission::kRejected;
            }
            Pending victim = std::move(buffers_[victim_class].front());
            buffers_[victim_class].pop_front();
            --queued_total_;
            --in_flight_;
            queued_memory_[victim_class] -=
                std::min(queued_memory_[victim_class], victim.record.memory_bytes);
            release_memory_locked(victim.record);
            if (!depth_gauges_.empty()) {
              depth_gauges_[victim_class]->set(
                  static_cast<double>(buffers_[victim_class].size()));
            }
            finish_without_running(std::move(victim), JobOutcome::kShed,
                                   "shed for arriving priority-" +
                                       std::to_string(priority) + " job");
            shed_victim = true;
          }
          break;
        }
      }
    }

    buffers_[priority].push_back(std::move(pending));
    ++queued_total_;
    ++in_flight_;
    memory_in_use_ += accounted;
    queued_memory_[priority] += accounted;
    if (memory_gauge_ != nullptr) {
      memory_gauge_->set(static_cast<double>(memory_in_use_));
    }
    if (!depth_gauges_.empty()) {
      depth_gauges_[priority]->set(static_cast<double>(buffers_[priority].size()));
    }
  }
  work_cv_.notify_one();
  if (shed_victim) drain_cv_.notify_all();
  return Admission::kAdmitted;
}

std::vector<DiasDispatcher::JobRecord> DiasDispatcher::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
  auto out = std::move(completed_);
  completed_.clear();
  lock.unlock();
  std::stable_sort(out.begin(), out.end(), [](const JobRecord& a, const JobRecord& b) {
    return std::tie(a.completion_s, a.arrival_s, a.seq) <
           std::tie(b.completion_s, b.arrival_s, b.seq);
  });
  return out;
}

void DiasDispatcher::set_theta(std::size_t priority, double theta) {
  DIAS_EXPECTS(priority < theta_.size(), "priority out of range");
  DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratios must be in [0,1]");
  std::lock_guard lock(mutex_);
  theta_[priority] = theta;
  if (!theta_gauges_.empty()) theta_gauges_[priority]->set(theta);
}

double DiasDispatcher::theta(std::size_t priority) const {
  DIAS_EXPECTS(priority < theta_.size(), "priority out of range");
  std::lock_guard lock(mutex_);
  return theta_[priority];
}

DiasDispatcher::LoadSnapshot DiasDispatcher::load_snapshot() const {
  std::lock_guard lock(mutex_);
  LoadSnapshot snap;
  snap.uptime_s = now_s();
  snap.busy_s = busy_accum_s_;
  if (running_active_) snap.busy_s += snap.uptime_s - running_start_s_;
  snap.classes = loads_;
  for (std::size_t k = 0; k < buffers_.size(); ++k) {
    snap.classes[k].queue_depth = buffers_[k].size();
    snap.classes[k].queued_memory_bytes = queued_memory_[k];
  }
  snap.memory_in_use_bytes = memory_in_use_;
  snap.memory_capacity_bytes = options_.memory_capacity_bytes;
  return snap;
}

void DiasDispatcher::dispatcher_loop() {
  for (;;) {
    Pending job;
    bool have_job = false;
    double theta = 0.0;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& b : buffers_) {
          if (!b.empty()) return true;
        }
        return false;
      });
      // Head of the highest non-empty priority buffer.
      for (std::size_t k = buffers_.size(); k-- > 0;) {
        if (!buffers_[k].empty()) {
          job = std::move(buffers_[k].front());
          buffers_[k].pop_front();
          --queued_total_;
          queued_memory_[k] -= std::min(queued_memory_[k], job.record.memory_bytes);
          if (!depth_gauges_.empty()) {
            depth_gauges_[k]->set(static_cast<double>(buffers_[k].size()));
          }
          have_job = true;
          break;
        }
      }
      if (!have_job && stopping_) return;
      if (have_job) {
        space_cv_.notify_all();
        const std::size_t p = job.record.priority;
        const double deadline_abs =
            job.record.arrival_s + options_.classes[p].deadline_s;
        if (now_s() >= deadline_abs) {
          // Expired while queued: terminal kCancelled, the body never runs.
          release_memory_locked(job.record);
          finish_without_running(std::move(job), JobOutcome::kCancelled,
                                 "deadline exceeded before start");
          --in_flight_;
          lock.unlock();
          space_cv_.notify_all();
          drain_cv_.notify_all();
          continue;
        }
        theta = theta_[p];
        job.record.theta = theta;
        job.record.start_s = now_s();
        running_active_ = true;
        running_token_ = job.token;
        running_deadline_abs_s_ = deadline_abs;
        running_start_s_ = job.record.start_s;
        deadline_cv_.notify_all();
      }
    }
    if (!have_job) continue;

    // Non-preemptive: the job runs to completion (or its terminal outcome)
    // before the next dispatch.
    obs::Tracer::SpanId span = 0;
    if (tracer_ != nullptr) {
      span = tracer_->begin_span("dispatcher.job",
                                 {{"priority", job.record.priority},
                                  {"theta", theta},
                                  {"arrival_s", job.record.arrival_s}});
    }
    // RAII guard: a job that throws (failure or deadline cancellation)
    // still revokes its sprint boost and re-arms the governor.
    std::optional<runtime::SprintJobGuard> guard;
    if (governor_ != nullptr) guard.emplace(*governor_, job.record.priority);
    JobContext ctx;
    ctx.theta = theta;
    ctx.priority = job.record.priority;
    ctx.token = job.token;
    ctx.memory_bytes = job.record.memory_bytes;
    try {
      job.fn(ctx);
      job.record.outcome = JobOutcome::kCompleted;
    } catch (const JobCancelledError& e) {
      job.record.outcome = JobOutcome::kCancelled;
      job.record.error = e.what();
    } catch (const std::exception& e) {
      job.record.outcome = JobOutcome::kFailed;
      job.record.error = e.what();
    }
    job.record.completion_s = now_s();
    if (guard) {
      // The governor reports boost windows relative to the job start;
      // rebase them onto the dispatcher epoch for the record.
      job.record.sprint_intervals = guard->finish();
      for (auto& iv : job.record.sprint_intervals) {
        iv.begin_s += job.record.start_s;
        iv.end_s += job.record.start_s;
      }
    }
    if (tracer_ != nullptr) {
      tracer_->end_span(span, {{"queueing_s", job.record.queueing_s()},
                               {"response_s", job.record.response_s()},
                               {"sprint_s", job.record.sprint_s()},
                               {"outcome", to_string(job.record.outcome)}});
    }
    if (response_hist_ != nullptr) {
      response_hist_->observe(job.record.response_s());
      queueing_hist_->observe(job.record.queueing_s());
    }

    {
      std::lock_guard lock(mutex_);
      busy_accum_s_ += job.record.completion_s - job.record.start_s;
      running_active_ = false;
      running_deadline_abs_s_ = std::numeric_limits<double>::infinity();
      running_token_ = CancellationToken{};
      release_memory_locked(job.record);
      update_memory_profile_locked(job.record.priority, job.declared_memory);
      note_outcome_locked(job.record);
      completed_.push_back(std::move(job.record));
      --in_flight_;
    }
    space_cv_.notify_all();
    deadline_cv_.notify_all();
    drain_cv_.notify_all();
  }
}

void DiasDispatcher::deadline_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    if (stopping_) return;
    if (!running_active_ ||
        running_deadline_abs_s_ == std::numeric_limits<double>::infinity()) {
      deadline_cv_.wait(lock);
      continue;
    }
    const auto until =
        epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(running_deadline_abs_s_));
    if (deadline_cv_.wait_until(lock, until) == std::cv_status::timeout) {
      if (running_active_ && now_s() >= running_deadline_abs_s_) {
        // Fire the running job's token; the job unwinds cooperatively at
        // its next cancellation point. One shot per job.
        running_token_.request_cancel();
        running_deadline_abs_s_ = std::numeric_limits<double>::infinity();
      }
    }
  }
}

}  // namespace dias::core
