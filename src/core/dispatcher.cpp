#include "core/dispatcher.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"

namespace dias::core {

DiasDispatcher::DiasDispatcher(std::vector<double> theta)
    : theta_(std::move(theta)), epoch_(std::chrono::steady_clock::now()),
      buffers_(theta_.size()) {
  DIAS_EXPECTS(!theta_.empty(), "dispatcher needs at least one priority class");
  for (double t : theta_) {
    DIAS_EXPECTS(t >= 0.0 && t <= 1.0, "drop ratios must be in [0,1]");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

void DiasDispatcher::attach_observability(obs::Registry* metrics, obs::Tracer* tracer) {
  std::lock_guard lock(mutex_);
  DIAS_EXPECTS(in_flight_ == 0, "attach observability before submitting jobs");
  tracer_ = tracer;
  completed_counters_.clear();
  response_hist_ = nullptr;
  queueing_hist_ = nullptr;
  if (metrics != nullptr) {
    completed_counters_.reserve(theta_.size());
    for (std::size_t k = 0; k < theta_.size(); ++k) {
      completed_counters_.push_back(
          &metrics->counter("dispatcher.class" + std::to_string(k) + ".completed"));
      metrics->gauge("dispatcher.class" + std::to_string(k) + ".theta").set(theta_[k]);
    }
    response_hist_ = &metrics->histogram("dispatcher.response_s", 0.0, 600.0, 240);
    queueing_hist_ = &metrics->histogram("dispatcher.queueing_s", 0.0, 600.0, 240);
  }
}

void DiasDispatcher::attach_sprint_governor(runtime::SprintGovernor* governor) {
  std::lock_guard lock(mutex_);
  DIAS_EXPECTS(in_flight_ == 0, "attach the sprint governor before submitting jobs");
  governor_ = governor;
}

DiasDispatcher::~DiasDispatcher() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  dispatcher_.join();
}

double DiasDispatcher::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void DiasDispatcher::submit(std::size_t priority, JobFn job) {
  DIAS_EXPECTS(priority < theta_.size(), "priority out of range");
  DIAS_EXPECTS(static_cast<bool>(job), "job callable must be non-empty");
  Pending pending;
  pending.fn = std::move(job);
  pending.record.priority = priority;
  pending.record.arrival_s = now_s();
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(!stopping_, "submit on a stopping dispatcher");
    buffers_[priority].push_back(std::move(pending));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

std::vector<DiasDispatcher::JobRecord> DiasDispatcher::drain() {
  std::unique_lock lock(mutex_);
  drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
  auto out = std::move(completed_);
  completed_.clear();
  return out;
}

void DiasDispatcher::dispatcher_loop() {
  for (;;) {
    Pending job;
    bool have_job = false;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] {
        if (stopping_) return true;
        for (const auto& b : buffers_) {
          if (!b.empty()) return true;
        }
        return false;
      });
      // Head of the highest non-empty priority buffer.
      for (std::size_t k = buffers_.size(); k-- > 0;) {
        if (!buffers_[k].empty()) {
          job = std::move(buffers_[k].front());
          buffers_[k].pop_front();
          have_job = true;
          break;
        }
      }
      if (!have_job && stopping_) return;
    }
    if (!have_job) continue;

    // Non-preemptive: the job runs to completion before the next dispatch.
    const double theta = theta_[job.record.priority];
    obs::Tracer::SpanId span = 0;
    if (tracer_ != nullptr) {
      span = tracer_->begin_span("dispatcher.job",
                                 {{"priority", job.record.priority},
                                  {"theta", theta},
                                  {"arrival_s", job.record.arrival_s}});
    }
    if (governor_ != nullptr) governor_->job_started(job.record.priority);
    job.record.start_s = now_s();
    job.fn(theta);
    job.record.completion_s = now_s();
    if (governor_ != nullptr) {
      // The governor reports boost windows relative to the job start;
      // rebase them onto the dispatcher epoch for the record.
      job.record.sprint_intervals = governor_->job_finished();
      for (auto& iv : job.record.sprint_intervals) {
        iv.begin_s += job.record.start_s;
        iv.end_s += job.record.start_s;
      }
    }
    if (tracer_ != nullptr) {
      tracer_->end_span(span, {{"queueing_s", job.record.queueing_s()},
                               {"response_s", job.record.response_s()},
                               {"sprint_s", job.record.sprint_s()}});
    }
    if (!completed_counters_.empty()) {
      completed_counters_[job.record.priority]->add();
      response_hist_->observe(job.record.response_s());
      queueing_hist_->observe(job.record.queueing_s());
    }

    {
      std::lock_guard lock(mutex_);
      completed_.push_back(job.record);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
}

}  // namespace dias::core
