#include "core/dispatcher.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <tuple>
#include <utility>

#include "chaos/chaos.hpp"
#include "common/error.hpp"
#include "engine/thread_pool.hpp"

namespace dias::core {

const char* to_string(JobOutcome outcome) {
  switch (outcome) {
    case JobOutcome::kCompleted: return "completed";
    case JobOutcome::kShed: return "shed";
    case JobOutcome::kCancelled: return "cancelled";
    case JobOutcome::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::size_t default_lanes() {
  const std::size_t hw = std::thread::hardware_concurrency();
  return std::clamp<std::size_t>(hw, 1, 16);
}

}  // namespace

DiasDispatcher::DiasDispatcher(std::vector<double> theta)
    : DiasDispatcher(std::move(theta), DispatcherOptions{}) {}

DiasDispatcher::DiasDispatcher(std::vector<double> theta, DispatcherOptions options)
    : priorities_(theta.size()), options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()) {
  DIAS_EXPECTS(priorities_ > 0, "dispatcher needs at least one priority class");
  theta_ = std::make_unique<std::atomic<double>[]>(priorities_);
  for (std::size_t k = 0; k < priorities_; ++k) {
    DIAS_EXPECTS(theta[k] >= 0.0 && theta[k] <= 1.0, "drop ratios must be in [0,1]");
    theta_[k].store(theta[k], std::memory_order_relaxed);
  }
  DIAS_EXPECTS(options_.classes.size() <= priorities_,
               "more class policies than priority classes");
  DIAS_EXPECTS(options_.memory_profile_alpha > 0.0 && options_.memory_profile_alpha <= 1.0,
               "memory profile alpha must be in (0,1]");
  DIAS_EXPECTS(options_.tenant.deflate_theta >= 0.0 && options_.tenant.deflate_theta <= 1.0,
               "tenant deflate theta must be in [0,1]");
  options_.classes.resize(priorities_);
  for (const auto& cp : options_.classes) {
    DIAS_EXPECTS(cp.deadline_s > 0.0, "class deadlines must be positive");
  }

  bounded_ = options_.total_capacity != 0 || options_.memory_capacity_bytes != 0;
  for (const auto& cp : options_.classes) {
    if (cp.queue_capacity != 0) bounded_ = true;
  }

  const std::size_t lane_count = options_.lanes != 0 ? options_.lanes : default_lanes();
  lanes_.reserve(lane_count);
  for (std::size_t i = 0; i < lane_count; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->normal.resize(priorities_);
    lane->penalized.resize(priorities_);
    lane->loads.resize(priorities_);
    lane->head_normal = std::make_unique<std::atomic<std::uint64_t>[]>(priorities_);
    lane->head_penalized = std::make_unique<std::atomic<std::uint64_t>[]>(priorities_);
    for (std::size_t k = 0; k < priorities_; ++k) {
      lane->head_normal[k].store(kEmptySeq, std::memory_order_relaxed);
      lane->head_penalized[k].store(kEmptySeq, std::memory_order_relaxed);
    }
    lanes_.push_back(std::move(lane));
  }

  class_queued_ = std::make_unique<std::atomic<std::size_t>[]>(priorities_);
  class_queued_memory_ = std::make_unique<std::atomic<std::size_t>[]>(priorities_);
  memory_profile_ = std::make_unique<std::atomic<double>[]>(priorities_);
  for (std::size_t k = 0; k < priorities_; ++k) {
    class_queued_[k].store(0, std::memory_order_relaxed);
    class_queued_memory_[k].store(0, std::memory_order_relaxed);
    memory_profile_[k].store(0.0, std::memory_order_relaxed);
  }

  if (options_.tenant.enabled) {
    ledger_ = std::make_unique<FairShareLedger>(options_.tenant.ledger);
  }

  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  deadline_watchdog_ = std::thread([this] { deadline_loop(); });
}

void DiasDispatcher::attach_observability(obs::Registry* metrics, obs::Tracer* tracer) {
  DIAS_EXPECTS(in_flight_.load(std::memory_order_seq_cst) == 0,
               "attach observability before submitting jobs");
  tracer_ = tracer;
  completed_counters_.clear();
  shed_counters_.clear();
  cancelled_counters_.clear();
  failed_counters_.clear();
  depth_gauges_.clear();
  theta_gauges_.clear();
  response_hist_ = nullptr;
  queueing_hist_ = nullptr;
  memory_gauge_ = nullptr;
  tenant_burst_counter_ = nullptr;
  tenant_deflated_counter_ = nullptr;
  tenant_deprioritized_counter_ = nullptr;
  tenant_shed_counter_ = nullptr;
  tenant_fairness_gauge_ = nullptr;
  tenant_over_quota_gauge_ = nullptr;
  if (metrics != nullptr) {
    for (std::size_t k = 0; k < priorities_; ++k) {
      const std::string prefix = "dispatcher.class" + std::to_string(k);
      completed_counters_.push_back(&metrics->counter(prefix + ".completed"));
      shed_counters_.push_back(&metrics->counter(prefix + ".shed"));
      cancelled_counters_.push_back(&metrics->counter(prefix + ".cancelled"));
      failed_counters_.push_back(&metrics->counter(prefix + ".failed"));
      depth_gauges_.push_back(&metrics->gauge(prefix + ".queue_depth"));
      theta_gauges_.push_back(&metrics->gauge(prefix + ".theta"));
      theta_gauges_.back()->set(theta_[k].load(std::memory_order_relaxed));
    }
    response_hist_ = &metrics->histogram("dispatcher.response_s", 0.0, 600.0, 240);
    queueing_hist_ = &metrics->histogram("dispatcher.queueing_s", 0.0, 600.0, 240);
    memory_gauge_ = &metrics->gauge("dispatcher.memory_in_use_bytes");
    if (ledger_ != nullptr) {
      tenant_burst_counter_ = &metrics->counter("dispatcher.tenant.bursts");
      tenant_deflated_counter_ = &metrics->counter("dispatcher.tenant.deflated");
      tenant_deprioritized_counter_ = &metrics->counter("dispatcher.tenant.deprioritized");
      tenant_shed_counter_ = &metrics->counter("dispatcher.tenant.shed");
      tenant_fairness_gauge_ = &metrics->gauge("dispatcher.tenant.fairness_index");
      tenant_fairness_gauge_->set(1.0);
      tenant_over_quota_gauge_ = &metrics->gauge("dispatcher.tenant.over_quota");
    }
  }
}

void DiasDispatcher::attach_sprint_governor(runtime::SprintGovernor* governor) {
  DIAS_EXPECTS(in_flight_.load(std::memory_order_seq_cst) == 0,
               "attach the sprint governor before submitting jobs");
  governor_ = governor;
}

DiasDispatcher::~DiasDispatcher() {
  stopping_.store(true, std::memory_order_seq_cst);
  // Lock/unlock each waiter's mutex so no waiter is between its predicate
  // check and its park when the notify lands.
  {
    std::lock_guard lock(runner_mutex_);
  }
  work_cv_.notify_all();
  deadline_cv_.notify_all();
  {
    std::lock_guard lock(admission_mutex_);
  }
  space_cv_.notify_all();
  dispatcher_.join();
  deadline_watchdog_.join();
}

double DiasDispatcher::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

std::size_t DiasDispatcher::pick_lane(TenantId tenant) const {
  const std::size_t n = lanes_.size();
  if (n == 1) return 0;
  if (tenant.has_value()) {
    // Tenant-affine: one tenant's submissions always share a lane, so its
    // per-lane FCFS position is stable and its records cluster per stripe.
    const std::uint64_t h = tenant.value * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> 32) % n;
  }
  // Pool workers map to their stable slot; foreign threads get a sticky
  // id on first use, so a given submitter thread always hits one lane.
  const std::size_t slot = engine::ThreadPool::calling_thread_slot();
  if (slot != engine::ThreadPool::kNoSlot) return slot % n;
  static std::atomic<std::size_t> next_thread{0};
  thread_local const std::size_t sticky =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return sticky % n;
}

void DiasDispatcher::publish_heads_locked(Lane& lane, std::size_t cls) {
  lane.head_normal[cls].store(
      lane.normal[cls].empty() ? kEmptySeq : lane.normal[cls].front().record.seq,
      std::memory_order_seq_cst);
  lane.head_penalized[cls].store(
      lane.penalized[cls].empty() ? kEmptySeq : lane.penalized[cls].front().record.seq,
      std::memory_order_seq_cst);
}

void DiasDispatcher::stamp_arrival_locked(Lane& lane, Pending& pending) {
  // The admit seq is drawn under the lane lock, so each lane's deques stay
  // seq-sorted and the published head is always the lane's minimum.
  pending.record.seq = next_seq_.fetch_add(1, std::memory_order_seq_cst);
  ++lane.loads[pending.record.priority].arrivals;
}

void DiasDispatcher::note_outcome_locked(Lane& lane, const JobRecord& record) {
  ClassLoad& load = lane.loads[record.priority];
  obs::Counter* counter = nullptr;
  switch (record.outcome) {
    case JobOutcome::kCompleted:
      ++load.completed;
      if (!completed_counters_.empty()) counter = completed_counters_[record.priority];
      break;
    case JobOutcome::kShed:
      ++load.shed;
      if (!shed_counters_.empty()) counter = shed_counters_[record.priority];
      break;
    case JobOutcome::kCancelled:
      ++load.cancelled;
      if (!cancelled_counters_.empty()) counter = cancelled_counters_[record.priority];
      break;
    case JobOutcome::kFailed:
      ++load.failed;
      if (!failed_counters_.empty()) counter = failed_counters_[record.priority];
      break;
  }
  if (counter != nullptr) counter->add();
}

void DiasDispatcher::finish_without_running_locked(Lane& lane, Pending&& pending,
                                                   JobOutcome outcome, std::string why) {
  pending.token.request_cancel();
  pending.record.outcome = outcome;
  pending.record.error = std::move(why);
  pending.record.completion_s = now_s();
  // Never ran: stamp start at the terminal instant so execution_s() is 0
  // and response_s() still measures the time spent queued.
  pending.record.start_s = pending.record.completion_s;
  pending.record.theta = theta_[pending.record.priority].load(std::memory_order_relaxed);
  note_outcome_locked(lane, pending.record);
  lane.completed.push_back(std::move(pending.record));
}

void DiasDispatcher::enqueue_locked(Lane& lane, Pending&& pending) {
  const std::size_t cls = pending.record.priority;
  const std::size_t accounted = pending.record.memory_bytes;
  auto& queue = (pending.penalized ? lane.penalized : lane.normal)[cls];
  queue.push_back(std::move(pending));
  publish_heads_locked(lane, cls);
  queued_total_.fetch_add(1, std::memory_order_seq_cst);
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  class_queued_[cls].fetch_add(1, std::memory_order_seq_cst);
  class_queued_memory_[cls].fetch_add(accounted, std::memory_order_seq_cst);
  memory_in_use_.fetch_add(accounted, std::memory_order_seq_cst);
  if (memory_gauge_ != nullptr) {
    memory_gauge_->set(static_cast<double>(memory_in_use_.load(std::memory_order_relaxed)));
  }
  if (!depth_gauges_.empty()) {
    depth_gauges_[cls]->set(
        static_cast<double>(class_queued_[cls].load(std::memory_order_relaxed)));
  }
}

bool DiasDispatcher::queue_has_space(std::size_t priority, std::size_t memory_bytes) const {
  const ClassPolicy& cp = options_.classes[priority];
  if (cp.queue_capacity != 0 &&
      class_queued_[priority].load(std::memory_order_seq_cst) >= cp.queue_capacity) {
    return false;
  }
  if (options_.total_capacity != 0 &&
      queued_total_.load(std::memory_order_seq_cst) >= options_.total_capacity) {
    return false;
  }
  // Aggregate-footprint admission. An over-budget job is still admitted
  // when nothing else holds memory: no amount of waiting or shedding could
  // ever make it fit, so refusing it would starve (kBlock) or shed the
  // whole queue for nothing (kShedOldestLowest).
  const std::size_t in_use = memory_in_use_.load(std::memory_order_seq_cst);
  if (options_.memory_capacity_bytes != 0 && in_use > 0 &&
      in_use + memory_bytes > options_.memory_capacity_bytes) {
    return false;
  }
  return true;
}

bool DiasDispatcher::pop_oldest_of_class(std::size_t cls, Pending& out) {
  for (;;) {
    std::size_t best_lane = lanes_.size();
    bool best_penalized = false;
    std::uint64_t best_seq = kEmptySeq;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const std::uint64_t n = lanes_[i]->head_normal[cls].load(std::memory_order_seq_cst);
      if (n != kEmptySeq && n < best_seq) {
        best_seq = n;
        best_lane = i;
        best_penalized = false;
      }
      const std::uint64_t p =
          lanes_[i]->head_penalized[cls].load(std::memory_order_seq_cst);
      if (p != kEmptySeq && p < best_seq) {
        best_seq = p;
        best_lane = i;
        best_penalized = true;
      }
    }
    if (best_lane == lanes_.size()) return false;
    Lane& lane = *lanes_[best_lane];
    std::lock_guard guard(lane.mutex);
    auto& queue = (best_penalized ? lane.penalized : lane.normal)[cls];
    if (queue.empty() || queue.front().record.seq != best_seq) continue;  // runner raced us
    out = std::move(queue.front());
    queue.pop_front();
    publish_heads_locked(lane, cls);
    queued_total_.fetch_sub(1, std::memory_order_seq_cst);
    class_queued_[cls].fetch_sub(1, std::memory_order_seq_cst);
    class_queued_memory_[cls].fetch_sub(out.record.memory_bytes,
                                        std::memory_order_seq_cst);
    if (!depth_gauges_.empty()) {
      depth_gauges_[cls]->set(
          static_cast<double>(class_queued_[cls].load(std::memory_order_relaxed)));
    }
    return true;
  }
}

void DiasDispatcher::wake_runner() {
  // Dekker pair with the runner's park: the submitter published its lane
  // head (seq_cst) before this idle load; the runner stores idle (seq_cst)
  // before its park-side rescan. Whichever ordered first, either the
  // runner's rescan sees the job or this load sees idle and notifies under
  // the runner mutex.
  if (runner_idle_.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(runner_mutex_);
    work_cv_.notify_one();
  }
}

void DiasDispatcher::notify_space_if_blocked() {
  // Only bounded configurations ever wait for space, and only when a
  // submitter registered itself first (same Dekker argument as
  // wake_runner: capacity was released seq_cst before this load; waiters
  // register seq_cst before re-checking the predicate). notify_all, not
  // notify_one: waiters block on heterogeneous memory footprints, so the
  // freed capacity may fit any subset of them.
  if (bounded_ && blocked_submitters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard lock(admission_mutex_);
    space_cv_.notify_all();
  }
}

void DiasDispatcher::notify_drain_if_done() {
  // Caller just dropped in_flight_ to zero.
  if (drain_waiters_.load(std::memory_order_seq_cst) > 0) {
    std::lock_guard lock(drain_mutex_);
    drain_cv_.notify_all();
  }
}

void DiasDispatcher::seed_memory_profile(std::size_t priority, std::size_t declared) {
  // Cold-start fix: the first *declared* footprint of a class seeds the
  // profile at submission time, so concurrently arriving undeclared jobs
  // of the class stop being admitted with a near-zero estimate. The EWMA
  // fold at completion is idempotent for this first sample.
  double expected = 0.0;
  memory_profile_[priority].compare_exchange_strong(
      expected, static_cast<double>(declared), std::memory_order_seq_cst,
      std::memory_order_relaxed);
}

void DiasDispatcher::update_memory_profile(std::size_t priority, std::size_t declared) {
  if (declared == 0) return;
  const double sample = static_cast<double>(declared);
  double cur = memory_profile_[priority].load(std::memory_order_relaxed);
  double next = sample;
  do {
    next = cur == 0.0 ? sample  // first declared sample seeds the profile
                      : (1.0 - options_.memory_profile_alpha) * cur +
                            options_.memory_profile_alpha * sample;
  } while (!memory_profile_[priority].compare_exchange_weak(
      cur, next, std::memory_order_seq_cst, std::memory_order_relaxed));
}

double DiasDispatcher::effective_theta(const Pending& pending) const {
  double theta = theta_[pending.record.priority].load(std::memory_order_relaxed);
  if (ledger_ != nullptr && (pending.record.tenant_action == TenantAction::kDeflate ||
                             pending.record.tenant_action == TenantAction::kDeprioritize)) {
    // Over-quota tenants pay in accuracy first: their jobs run at least at
    // the configured deflation floor.
    theta = std::min(1.0, std::max(theta, options_.tenant.deflate_theta));
  }
  return theta;
}

Admission DiasDispatcher::submit(std::size_t priority, JobFn job, std::size_t memory_bytes) {
  return submit(priority, TenantId{}, std::move(job), memory_bytes);
}

Admission DiasDispatcher::submit(std::size_t priority, ContextJobFn job,
                                 std::size_t memory_bytes) {
  return submit(priority, TenantId{}, std::move(job), memory_bytes);
}

Admission DiasDispatcher::submit(std::size_t priority, TenantId tenant, JobFn job,
                                 std::size_t memory_bytes) {
  DIAS_EXPECTS(static_cast<bool>(job), "job callable must be non-empty");
  return submit(priority, tenant,
                ContextJobFn([fn = std::move(job)](const JobContext& ctx) {
                  fn(ctx.theta);
                }),
                memory_bytes);
}

Admission DiasDispatcher::submit(std::size_t priority, TenantId tenant, ContextJobFn job,
                                 std::size_t memory_bytes) {
  DIAS_EXPECTS(priority < priorities_, "priority out of range");
  DIAS_EXPECTS(static_cast<bool>(job), "job callable must be non-empty");
  Pending pending;
  pending.fn = std::move(job);
  pending.record.priority = priority;
  pending.record.tenant = tenant;
  pending.declared_memory = memory_bytes;
  pending.record.arrival_s = now_s();
  pending.lane = pick_lane(tenant);

  // dispatcher.admit chaos point. kStall delays admission (bounded — no
  // token exists yet at this point); kThrow sheds the job through the same
  // terminal path as the tenant ladder, so chaos never leaks a job that
  // ends in no JobOutcome.
  static chaos::InjectionPoint& chaos_admit =
      chaos::ChaosPlane::instance().point(chaos::points::kDispatcherAdmit);
  if (chaos_admit.armed()) {
    try {
      chaos_admit.inject(priority, pending.lane, chaos_admit.next_op());
    } catch (const chaos::ChaosError&) {
      Lane& lane = *lanes_[pending.lane];
      std::lock_guard guard(lane.mutex);
      DIAS_EXPECTS(!stopping_.load(std::memory_order_seq_cst),
                   "submit on a stopping dispatcher");
      stamp_arrival_locked(lane, pending);
      finish_without_running_locked(lane, std::move(pending), JobOutcome::kShed,
                                    "shed by chaos injection at admission");
      return Admission::kRejected;
    }
  }

  if (memory_bytes > 0) seed_memory_profile(priority, memory_bytes);

  // Tenant over-quota ladder: consult the ledger before admission so a
  // kShed verdict never consumes queue capacity.
  if (ledger_ != nullptr && tenant.has_value()) {
    const TenantAction action = ledger_->on_submit(tenant, now_s());
    pending.record.tenant_action = action;
    switch (action) {
      case TenantAction::kNone:
        break;
      case TenantAction::kBurst:
        tenant_bursts_.fetch_add(1, std::memory_order_relaxed);
        if (tenant_burst_counter_ != nullptr) tenant_burst_counter_->add();
        break;
      case TenantAction::kDeflate:
        tenant_deflated_.fetch_add(1, std::memory_order_relaxed);
        if (tenant_deflated_counter_ != nullptr) tenant_deflated_counter_->add();
        break;
      case TenantAction::kDeprioritize:
        tenant_deprioritized_.fetch_add(1, std::memory_order_relaxed);
        if (tenant_deprioritized_counter_ != nullptr) tenant_deprioritized_counter_->add();
        pending.penalized = true;
        break;
      case TenantAction::kShed: {
        tenant_shed_.fetch_add(1, std::memory_order_relaxed);
        if (tenant_shed_counter_ != nullptr) tenant_shed_counter_->add();
        Lane& lane = *lanes_[pending.lane];
        std::lock_guard guard(lane.mutex);
        DIAS_EXPECTS(!stopping_.load(std::memory_order_seq_cst),
                     "submit on a stopping dispatcher");
        stamp_arrival_locked(lane, pending);
        finish_without_running_locked(
            lane, std::move(pending), JobOutcome::kShed,
            "shed by tenant fair-share ladder: sustained usage beyond fair "
            "share with burst credits exhausted");
        return Admission::kRejected;
      }
    }
  }

  // Accounted footprint: what the submitter declared, else the class's
  // learned profile (0 when nothing of this class ever declared one).
  const std::size_t accounted =
      memory_bytes > 0
          ? memory_bytes
          : static_cast<std::size_t>(memory_profile_[priority].load(std::memory_order_seq_cst));
  pending.record.memory_bytes = accounted;

  if (!bounded_) {
    // Fast path: no capacity to check, so admission is one lane lock plus
    // lock-free accounting — submissions on different lanes never contend.
    Lane& lane = *lanes_[pending.lane];
    {
      std::lock_guard guard(lane.mutex);
      DIAS_EXPECTS(!stopping_.load(std::memory_order_seq_cst),
                   "submit on a stopping dispatcher");
      stamp_arrival_locked(lane, pending);
      enqueue_locked(lane, std::move(pending));
    }
    wake_runner();
    return Admission::kAdmitted;
  }

  // Bounded plane: the capacity check-then-enqueue must be atomic against
  // other submitters. The runner never takes this mutex — it only *frees*
  // capacity concurrently, which cannot invalidate a passed check.
  {
    std::unique_lock alock(admission_mutex_);
    DIAS_EXPECTS(!stopping_.load(std::memory_order_seq_cst),
                 "submit on a stopping dispatcher");
    if (!queue_has_space(priority, accounted)) {
      switch (options_.admission) {
        case AdmissionPolicy::kBlock:
          blocked_submitters_.fetch_add(1, std::memory_order_seq_cst);
          space_cv_.wait(alock, [&] {
            return stopping_.load(std::memory_order_seq_cst) ||
                   queue_has_space(priority, accounted);
          });
          blocked_submitters_.fetch_sub(1, std::memory_order_relaxed);
          DIAS_EXPECTS(!stopping_.load(std::memory_order_seq_cst),
                       "submit on a stopping dispatcher");
          break;
        case AdmissionPolicy::kReject: {
          Lane& lane = *lanes_[pending.lane];
          std::lock_guard guard(lane.mutex);
          stamp_arrival_locked(lane, pending);
          finish_without_running_locked(lane, std::move(pending), JobOutcome::kShed,
                                        "rejected at admission: queue or memory full");
          return Admission::kRejected;
        }
        case AdmissionPolicy::kShedOldestLowest: {
          // Memory feasibility first: queued jobs of classes the newcomer
          // outranks (or ties) are the only reclaimable footprint — the
          // running job and higher-priority queues stay. If evicting all
          // of them still cannot fit the newcomer, reject it up front
          // instead of shedding the whole queue for nothing.
          if (options_.memory_capacity_bytes != 0) {
            std::size_t reclaimable = 0;
            for (std::size_t k = 0; k <= priority; ++k) {
              reclaimable += class_queued_memory_[k].load(std::memory_order_seq_cst);
            }
            const std::size_t in_use = memory_in_use_.load(std::memory_order_seq_cst);
            const std::size_t rest = in_use - std::min(in_use, reclaimable);
            // rest == 0 falls under the oversized-runs-alone rule (see
            // queue_has_space): with nothing else holding memory the
            // newcomer is admissible no matter its footprint.
            if (rest > 0 && rest + accounted > options_.memory_capacity_bytes) {
              Lane& lane = *lanes_[pending.lane];
              std::lock_guard guard(lane.mutex);
              stamp_arrival_locked(lane, pending);
              finish_without_running_locked(
                  lane, std::move(pending), JobOutcome::kShed,
                  "rejected at admission: footprint cannot fit "
                  "even after shedding every job it outranks");
              return Admission::kRejected;
            }
          }
          // Shed until the newcomer fits. One victim suffices when a queue
          // cap binds; under the memory cap several small jobs may have to
          // go to make room for one big footprint. Each round either
          // dequeues a victim, observes the runner freeing space, or gives
          // up and sheds the newcomer.
          while (!queue_has_space(priority, accounted)) {
            // Prefer shedding within the class whose cap was hit; when only
            // a dispatcher-wide cap binds, shed the oldest job of the
            // lowest non-empty class the newcomer does not outrank.
            const ClassPolicy& cp = options_.classes[priority];
            std::size_t victim_class = priorities_;
            if (cp.queue_capacity != 0 &&
                class_queued_[priority].load(std::memory_order_seq_cst) >=
                    cp.queue_capacity) {
              victim_class = priority;
            } else {
              for (std::size_t k = 0; k <= priority; ++k) {
                if (class_queued_[k].load(std::memory_order_seq_cst) > 0) {
                  victim_class = k;
                  break;
                }
              }
            }
            if (victim_class == priorities_) {
              Lane& lane = *lanes_[pending.lane];
              std::lock_guard guard(lane.mutex);
              stamp_arrival_locked(lane, pending);
              finish_without_running_locked(lane, std::move(pending), JobOutcome::kShed,
                                            "rejected at admission: no queued job to shed "
                                            "that it outranks");
              return Admission::kRejected;
            }
            Pending victim;
            if (!pop_oldest_of_class(victim_class, victim)) {
              // The runner emptied that class between the count and the
              // pop; whatever it freed is re-checked by the loop guard.
              continue;
            }
            memory_in_use_.fetch_sub(victim.record.memory_bytes,
                                     std::memory_order_seq_cst);
            if (memory_gauge_ != nullptr) {
              memory_gauge_->set(
                  static_cast<double>(memory_in_use_.load(std::memory_order_relaxed)));
            }
            {
              Lane& vlane = *lanes_[victim.lane];
              std::lock_guard guard(vlane.mutex);
              finish_without_running_locked(vlane, std::move(victim), JobOutcome::kShed,
                                            "shed for arriving priority-" +
                                                std::to_string(priority) + " job");
            }
            if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
              notify_drain_if_done();
            }
          }
          break;
        }
      }
    }
    Lane& lane = *lanes_[pending.lane];
    std::lock_guard guard(lane.mutex);
    stamp_arrival_locked(lane, pending);
    enqueue_locked(lane, std::move(pending));
  }
  wake_runner();
  return Admission::kAdmitted;
}

std::vector<DiasDispatcher::JobRecord> DiasDispatcher::drain() {
  drain_waiters_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock lock(drain_mutex_);
    drain_cv_.wait(lock,
                   [this] { return in_flight_.load(std::memory_order_seq_cst) == 0; });
  }
  drain_waiters_.fetch_sub(1, std::memory_order_relaxed);
  std::vector<JobRecord> out;
  for (const auto& lane : lanes_) {
    std::lock_guard guard(lane->mutex);
    if (out.empty()) {
      out = std::move(lane->completed);
    } else {
      out.insert(out.end(), std::make_move_iterator(lane->completed.begin()),
                 std::make_move_iterator(lane->completed.end()));
    }
    lane->completed.clear();
  }
  std::stable_sort(out.begin(), out.end(), [](const JobRecord& a, const JobRecord& b) {
    return std::tie(a.completion_s, a.arrival_s, a.seq) <
           std::tie(b.completion_s, b.arrival_s, b.seq);
  });
  return out;
}

void DiasDispatcher::set_theta(std::size_t priority, double theta) {
  DIAS_EXPECTS(priority < priorities_, "priority out of range");
  DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratios must be in [0,1]");
  theta_[priority].store(theta, std::memory_order_seq_cst);
  if (!theta_gauges_.empty()) theta_gauges_[priority]->set(theta);
}

double DiasDispatcher::theta(std::size_t priority) const {
  DIAS_EXPECTS(priority < priorities_, "priority out of range");
  return theta_[priority].load(std::memory_order_seq_cst);
}

DiasDispatcher::LoadSnapshot DiasDispatcher::load_snapshot() const {
  LoadSnapshot snap;
  snap.admit_seq_lo = next_seq_.load(std::memory_order_seq_cst);
  snap.uptime_s = now_s();
  {
    std::lock_guard lock(runner_mutex_);
    snap.busy_s = busy_accum_s_;
    if (running_active_) snap.busy_s += snap.uptime_s - running_start_s_;
  }
  snap.classes.assign(priorities_, ClassLoad{});
  // One lane at a time: each per-lane view is exact (taken under that
  // lane's mutex); cross-lane skew is bounded by the submissions admitted
  // during the scan, i.e. admit_seq_hi - admit_seq_lo.
  for (const auto& lane_ptr : lanes_) {
    Lane& lane = *lane_ptr;
    std::lock_guard guard(lane.mutex);
    for (std::size_t k = 0; k < priorities_; ++k) {
      ClassLoad& acc = snap.classes[k];
      const ClassLoad& partial = lane.loads[k];
      acc.arrivals += partial.arrivals;
      acc.completed += partial.completed;
      acc.shed += partial.shed;
      acc.cancelled += partial.cancelled;
      acc.failed += partial.failed;
      acc.queue_depth += lane.normal[k].size() + lane.penalized[k].size();
      acc.penalized_depth += lane.penalized[k].size();
    }
  }
  for (std::size_t k = 0; k < priorities_; ++k) {
    snap.classes[k].queued_memory_bytes =
        class_queued_memory_[k].load(std::memory_order_seq_cst);
    snap.classes[k].profiled_memory_bytes =
        static_cast<std::size_t>(memory_profile_[k].load(std::memory_order_seq_cst));
  }
  snap.memory_in_use_bytes = memory_in_use_.load(std::memory_order_seq_cst);
  snap.memory_capacity_bytes = options_.memory_capacity_bytes;
  if (ledger_ != nullptr) {
    const FairShareLedger::Summary summary = ledger_->summary(snap.uptime_s);
    snap.tenants_tracked = summary.tracked;
    snap.tenants_active = summary.active;
    snap.tenants_over_quota = summary.over_quota;
    snap.tenant_fairness_index = summary.fairness_index;
    snap.tenant_bursts = tenant_bursts_.load(std::memory_order_relaxed);
    snap.tenant_deflated = tenant_deflated_.load(std::memory_order_relaxed);
    snap.tenant_deprioritized = tenant_deprioritized_.load(std::memory_order_relaxed);
    snap.tenant_shed = tenant_shed_.load(std::memory_order_relaxed);
    if (tenant_fairness_gauge_ != nullptr) {
      tenant_fairness_gauge_->set(summary.fairness_index);
    }
    if (tenant_over_quota_gauge_ != nullptr) {
      tenant_over_quota_gauge_->set(static_cast<double>(summary.over_quota));
    }
  }
  snap.admit_seq_hi = next_seq_.load(std::memory_order_seq_cst);
  return snap;
}

DiasDispatcher::Candidate DiasDispatcher::scan_heads() const {
  // Lock-free: reads only the published head mirrors. Highest class first;
  // within a class, compliant work before penalized, smallest admit seq
  // first — exactly the order the single-lane dispatcher pops.
  Candidate best;
  for (std::size_t cls = priorities_; cls-- > 0;) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const std::uint64_t seq = lanes_[i]->head_normal[cls].load(std::memory_order_seq_cst);
      if (seq != kEmptySeq && (!best.found || seq < best.seq)) {
        best.found = true;
        best.lane = i;
        best.cls = cls;
        best.penalized = false;
        best.seq = seq;
      }
    }
    if (best.found) return best;
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const std::uint64_t seq =
          lanes_[i]->head_penalized[cls].load(std::memory_order_seq_cst);
      if (seq != kEmptySeq && (!best.found || seq < best.seq)) {
        best.found = true;
        best.lane = i;
        best.cls = cls;
        best.penalized = true;
        best.seq = seq;
      }
    }
    if (best.found) return best;
  }
  return best;
}

bool DiasDispatcher::acquire_next_job(Pending& out) {
  for (;;) {
    const bool stop = stopping_.load(std::memory_order_seq_cst);
    Candidate cand = scan_heads();
    if (cand.found) {
      // Stability rescan: a submit that fully published before a scan is
      // always seen by it, so re-scanning until two passes agree closes
      // the window where lane A's older job lands between our reads of
      // lane A and lane B. (Submits still racing the final scan are
      // legitimate nondeterminism.) Bounded to stay live under a storm.
      for (int i = 0; i < 4; ++i) {
        const Candidate again = scan_heads();
        if (!again.found) {
          cand.found = false;
          break;
        }
        if (again.lane == cand.lane && again.cls == cand.cls &&
            again.seq == cand.seq && again.penalized == cand.penalized) {
          break;
        }
        cand = again;
      }
      if (!cand.found) continue;
      Lane& lane = *lanes_[cand.lane];
      std::lock_guard guard(lane.mutex);
      auto& queue = (cand.penalized ? lane.penalized : lane.normal)[cand.cls];
      if (queue.empty() || queue.front().record.seq != cand.seq) {
        continue;  // a shed victim took it first; rescan
      }
      out = std::move(queue.front());
      queue.pop_front();
      publish_heads_locked(lane, cand.cls);
      queued_total_.fetch_sub(1, std::memory_order_seq_cst);
      class_queued_[cand.cls].fetch_sub(1, std::memory_order_seq_cst);
      class_queued_memory_[cand.cls].fetch_sub(out.record.memory_bytes,
                                               std::memory_order_seq_cst);
      if (!depth_gauges_.empty()) {
        depth_gauges_[cand.cls]->set(
            static_cast<double>(class_queued_[cand.cls].load(std::memory_order_relaxed)));
      }
      return true;
    }
    if (stop) return false;  // the scan above ran after stopping was observed
    // Park. The idle flag + post-flag rescan (inside the wait predicate,
    // under the runner mutex) pairs with wake_runner(); see there.
    std::unique_lock lock(runner_mutex_);
    runner_idle_.store(true, std::memory_order_seq_cst);
    work_cv_.wait(lock, [this] {
      return stopping_.load(std::memory_order_seq_cst) || scan_heads().found;
    });
    runner_idle_.store(false, std::memory_order_seq_cst);
  }
}

void DiasDispatcher::dispatcher_loop() {
  for (;;) {
    Pending job;
    if (!acquire_next_job(job)) return;
    // The dequeue freed a queue slot (memory stays accounted while the job
    // runs); only submitters actually waiting are woken.
    notify_space_if_blocked();

    const std::size_t p = job.record.priority;
    const double deadline_abs = job.record.arrival_s + options_.classes[p].deadline_s;
    if (now_s() >= deadline_abs) {
      // Expired while queued: terminal kCancelled, the body never runs.
      memory_in_use_.fetch_sub(job.record.memory_bytes, std::memory_order_seq_cst);
      if (memory_gauge_ != nullptr) {
        memory_gauge_->set(
            static_cast<double>(memory_in_use_.load(std::memory_order_relaxed)));
      }
      {
        Lane& lane = *lanes_[job.lane];
        std::lock_guard guard(lane.mutex);
        finish_without_running_locked(lane, std::move(job), JobOutcome::kCancelled,
                                      "deadline exceeded before start");
      }
      notify_space_if_blocked();
      if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
        notify_drain_if_done();
      }
      continue;
    }

    const double theta = effective_theta(job);
    job.record.theta = theta;
    job.record.start_s = now_s();
    {
      std::lock_guard lock(runner_mutex_);
      running_active_ = true;
      running_token_ = job.token;
      running_deadline_abs_s_ = deadline_abs;
      running_start_s_ = job.record.start_s;
    }
    // Only a finite deadline can flip the watchdog's wait predicate, and
    // the watchdog is the cv's only waiter.
    if (deadline_abs != kInf) deadline_cv_.notify_one();

    // Non-preemptive: the job runs to completion (or its terminal outcome)
    // before the next dispatch.
    obs::Tracer::SpanId span = 0;
    if (tracer_ != nullptr) {
      span = tracer_->begin_span("dispatcher.job",
                                 {{"priority", job.record.priority},
                                  {"theta", theta},
                                  {"arrival_s", job.record.arrival_s}});
    }
    // RAII guard: a job that throws (failure or deadline cancellation)
    // still revokes its sprint boost and re-arms the governor.
    std::optional<runtime::SprintJobGuard> guard;
    if (governor_ != nullptr) guard.emplace(*governor_, job.record.priority);
    JobContext ctx;
    ctx.theta = theta;
    ctx.priority = job.record.priority;
    ctx.tenant = job.record.tenant;
    ctx.token = job.token;
    ctx.memory_bytes = job.record.memory_bytes;
    try {
      job.fn(ctx);
      job.record.outcome = JobOutcome::kCompleted;
    } catch (const JobCancelledError& e) {
      job.record.outcome = JobOutcome::kCancelled;
      job.record.error = e.what();
    } catch (const std::exception& e) {
      job.record.outcome = JobOutcome::kFailed;
      job.record.error = e.what();
    }
    job.record.completion_s = now_s();
    if (guard) {
      // The governor reports boost windows relative to the job start;
      // rebase them onto the dispatcher epoch for the record.
      job.record.sprint_intervals = guard->finish();
      for (auto& iv : job.record.sprint_intervals) {
        iv.begin_s += job.record.start_s;
        iv.end_s += job.record.start_s;
      }
    }
    if (tracer_ != nullptr) {
      tracer_->end_span(span, {{"queueing_s", job.record.queueing_s()},
                               {"response_s", job.record.response_s()},
                               {"sprint_s", job.record.sprint_s()},
                               {"outcome", to_string(job.record.outcome)}});
    }
    if (response_hist_ != nullptr) {
      response_hist_->observe(job.record.response_s());
      queueing_hist_->observe(job.record.queueing_s());
    }

    {
      std::lock_guard lock(runner_mutex_);
      busy_accum_s_ += job.record.completion_s - job.record.start_s;
      running_active_ = false;
      running_deadline_abs_s_ = kInf;
      running_token_ = CancellationToken{};
    }
    memory_in_use_.fetch_sub(job.record.memory_bytes, std::memory_order_seq_cst);
    if (memory_gauge_ != nullptr) {
      memory_gauge_->set(
          static_cast<double>(memory_in_use_.load(std::memory_order_relaxed)));
    }
    update_memory_profile(p, job.declared_memory);
    if (ledger_ != nullptr && job.record.tenant.has_value()) {
      ledger_->note_completion(job.record.tenant, job.record.execution_s(), now_s());
    }
    {
      Lane& lane = *lanes_[job.lane];
      std::lock_guard guard2(lane.mutex);
      note_outcome_locked(lane, job.record);
      lane.completed.push_back(std::move(job.record));
    }
    // Gated notifies (the PR-5 code broadcast all three cvs after every
    // job): space only when the freed memory can unblock a registered
    // waiter; drain only when this was the last in-flight job; the
    // deadline cv not at all — the watchdog re-arms from the *next* job's
    // start, and a stale wait_until deadline wakes it into a no-op check.
    notify_space_if_blocked();
    if (in_flight_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
      notify_drain_if_done();
    }
  }
}

void DiasDispatcher::deadline_loop() {
  std::unique_lock lock(runner_mutex_);
  for (;;) {
    if (stopping_.load(std::memory_order_seq_cst)) return;
    if (!running_active_ || running_deadline_abs_s_ == kInf) {
      deadline_cv_.wait(lock);
      continue;
    }
    const auto until =
        epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(running_deadline_abs_s_));
    if (deadline_cv_.wait_until(lock, until) == std::cv_status::timeout) {
      if (running_active_ && now_s() >= running_deadline_abs_s_) {
        // Fire the running job's token; the job unwinds cooperatively at
        // its next cancellation point. One shot per job.
        running_token_.request_cancel();
        running_deadline_abs_s_ = kInf;
      }
    }
  }
}

}  // namespace dias::core
