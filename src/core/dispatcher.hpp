// Real-time DiAS dispatcher (paper Section 3.3, the Go prototype).
//
// The production prototype keeps one buffer per priority and a dispatcher
// thread that launches the job at the head of the highest non-empty buffer
// into the processing engine, non-preemptively, passing it the class's
// approximation level. This C++ port drives in-process jobs (callables
// that receive their drop ratio) instead of external Spark processes, and
// records arrival / start / completion timestamps per job.
//
// Overload protection (ISSUE 5) extends the lifecycle: per-class queues
// can be bounded with an admission policy (block / reject / shed), every
// class can carry a response-time deadline enforced by cooperative
// cancellation, and every submitted job — whether it ran or not — ends in
// exactly one terminal JobOutcome recorded in its JobRecord.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/sprint_governor.hpp"

namespace dias::core {

// Terminal state of a submitted job. Every job reaches exactly one.
enum class JobOutcome {
  kCompleted,  // job body returned normally
  kShed,       // dropped by admission control; the body never ran
  kCancelled,  // cancelled cooperatively (deadline or explicit), body may
               // have partially run
  kFailed,     // body threw a non-cancellation exception
};

const char* to_string(JobOutcome outcome);

// What submit() does when the target queue (or the dispatcher-wide cap)
// is full.
enum class AdmissionPolicy {
  // Backpressure: submit() blocks until space frees. Lossless; callers
  // absorb the overload.
  kBlock,
  // Fail fast: the incoming job is shed immediately (recorded with
  // outcome kShed) and submit() returns kRejected.
  kReject,
  // Load-shedding: drop the oldest queued job of the lowest priority that
  // does not exceed the incoming job's priority, then admit the newcomer.
  // If every queued job outranks the newcomer, the newcomer is shed
  // instead (an overloaded system keeps its most important work).
  kShedOldestLowest,
};

// What submit() reported for one job.
enum class Admission {
  kAdmitted,  // queued (possibly after shedding a victim)
  kRejected,  // shed at the door; its JobRecord (outcome kShed) is still
              // emitted through drain()
};

// Per-priority-class lifecycle policy.
struct ClassPolicy {
  // Maximum queued (not yet started) jobs of this class; 0 = unbounded.
  std::size_t queue_capacity = 0;
  // Response-time deadline in seconds since arrival; infinity = none. A
  // queued job past its deadline is cancelled instead of started; a
  // running job past its deadline has its cancellation token fired so it
  // unwinds at the next cooperative check.
  double deadline_s = std::numeric_limits<double>::infinity();
};

struct DispatcherOptions {
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // Cap on total queued jobs across all classes; 0 = unbounded.
  std::size_t total_capacity = 0;
  // Cap on the aggregate memory footprint of queued + running jobs, in
  // bytes; 0 = unbounded. A job's footprint is what it declared at
  // submit(), or the class's profiled EWMA when it declared nothing (0
  // until the class has a profile, so undeclared workloads are admitted
  // exactly as before). A job too big for an *idle* dispatcher is still
  // admitted — rejecting it could never succeed later, and blocking it
  // would deadlock.
  std::size_t memory_capacity_bytes = 0;
  // EWMA weight for the per-class memory profile learned from declared
  // footprints of finished jobs.
  double memory_profile_alpha = 0.3;
  // Per-class policy; classes beyond the vector use the defaults
  // (unbounded, no deadline). Sized/padded to the theta vector on
  // construction.
  std::vector<ClassPolicy> classes;
};

class DiasDispatcher {
 public:
  // A job receives the drop ratio the deflator assigned to its class.
  using JobFn = std::function<void(double theta)>;

  // Context handed to lifecycle-aware jobs. The token is the job's own
  // cancellation flag: the dispatcher fires it when the class deadline
  // passes, and the job is expected to poll it (or hand it to
  // Engine::set_cancellation) and unwind with JobCancelledError.
  struct JobContext {
    double theta = 0.0;
    std::size_t priority = 0;
    // The footprint admission accounted for this job (declared, or the
    // class profile) — e.g. a sensible ShuffleOptions::memory_budget_bytes.
    std::size_t memory_bytes = 0;
    CancellationToken token;
  };
  using ContextJobFn = std::function<void(const JobContext&)>;

  struct JobRecord {
    std::size_t priority = 0;
    std::uint64_t seq = 0;      // arrival sequence number (global, 0-based)
    double arrival_s = 0.0;     // seconds since dispatcher start
    double start_s = 0.0;       // when the engine picked it up (0 if never ran)
    double completion_s = 0.0;  // when it reached its terminal outcome
    JobOutcome outcome = JobOutcome::kCompleted;
    std::string error;      // what() for kFailed/kCancelled, reason for kShed
    double theta = 0.0;     // drop ratio the job actually received
    // Memory footprint admission accounted for this job: the declared
    // value, or the class's profiled EWMA when nothing was declared.
    std::size_t memory_bytes = 0;
    // Boost windows the sprint governor granted this job, in seconds since
    // dispatcher start (empty without a governor or when it never fired).
    std::vector<runtime::SprintInterval> sprint_intervals;
    double response_s() const { return completion_s - arrival_s; }
    double queueing_s() const { return start_s - arrival_s; }
    double execution_s() const { return completion_s - start_s; }
    double sprint_s() const {
      double acc = 0.0;
      for (const auto& iv : sprint_intervals) acc += iv.duration_s();
      return acc;
    }
  };

  // Point-in-time load view for the adaptive overload controller.
  struct ClassLoad {
    std::size_t queue_depth = 0;   // queued, not yet started
    std::uint64_t arrivals = 0;    // cumulative submits (admitted or not)
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
    std::size_t queued_memory_bytes = 0;    // accounted footprint of queued jobs
    std::size_t profiled_memory_bytes = 0;  // EWMA of declared footprints
  };
  struct LoadSnapshot {
    double uptime_s = 0.0;
    // Cumulative seconds the dispatcher thread spent inside job bodies;
    // delta(busy_s)/delta(uptime_s) is the single-runner utilization.
    double busy_s = 0.0;
    // Accounted footprint of queued + running jobs, and the configured cap
    // (0 = unbounded). The overload controller reads these as its memory
    // pressure signal.
    std::size_t memory_in_use_bytes = 0;
    std::size_t memory_capacity_bytes = 0;
    std::vector<ClassLoad> classes;
    std::size_t total_queue_depth() const {
      std::size_t d = 0;
      for (const auto& c : classes) d += c.queue_depth;
      return d;
    }
  };

  // `theta[k]` is the drop ratio in [0, 1] handed to priority-k jobs; the
  // number of priorities equals theta.size(). theta[k] == 1 is the fully
  // degraded class (every droppable stage drops all of its tasks).
  explicit DiasDispatcher(std::vector<double> theta);
  DiasDispatcher(std::vector<double> theta, DispatcherOptions options);
  ~DiasDispatcher();
  DiasDispatcher(const DiasDispatcher&) = delete;
  DiasDispatcher& operator=(const DiasDispatcher&) = delete;

  std::size_t priorities() const { return theta_.size(); }

  // Enqueues a job. Returns kAdmitted unless admission control turned it
  // away (kReject policy, or kShedOldestLowest with nothing to shed); a
  // turned-away job still yields a terminal JobRecord with outcome kShed.
  // Under kBlock this call blocks while the target queue is full.
  // `memory_bytes` declares the job's expected memory footprint (0 = not
  // declared: admission falls back to the class's profiled EWMA, which is
  // 0 until some job of the class declared one). Admission counts the
  // footprint against DispatcherOptions::memory_capacity_bytes alongside
  // queue depth.
  Admission submit(std::size_t priority, JobFn job, std::size_t memory_bytes = 0);
  Admission submit(std::size_t priority, ContextJobFn job, std::size_t memory_bytes = 0);

  // Blocks until every admitted job reached a terminal outcome, then
  // returns the records. Ordering is stable and documented: ascending
  // completion time, ties broken by arrival time, then by arrival
  // sequence number — so two zero-duration jobs (or a shed burst stamped
  // with one clock reading) always drain in submission order. The
  // dispatcher stays usable afterwards.
  std::vector<JobRecord> drain();

  // Replaces class k's drop ratio for jobs dispatched from now on (the
  // running job keeps the theta it started with). Thread-safe; this is
  // the knob the adaptive overload controller turns.
  void set_theta(std::size_t priority, double theta);
  double theta(std::size_t priority) const;

  // Cheap, thread-safe snapshot of queue depths and cumulative outcome
  // counts; the overload controller samples this to estimate arrival
  // rates and utilization.
  LoadSnapshot load_snapshot() const;

  // Attaches metric/trace sinks (either may be null; null detaches). Every
  // dispatched job then emits a "dispatcher.job" span (priority, theta,
  // queueing/response times, outcome) and bumps per-class outcome
  // counters and queue-depth gauges. Attach before the first submit; not
  // synchronized with the dispatcher thread beyond the submit ordering.
  void attach_observability(obs::Registry* metrics, obs::Tracer* tracer);

  // Attaches a sprint governor (null detaches): every dispatched job then
  // runs between job_started/job_finished hooks, so its class's Tk timer
  // can grant the engine's reserve slots mid-job, and the resulting boost
  // windows land in the JobRecord. The hooks are held by an exception-safe
  // RAII guard, so a job that throws or is cancelled mid-boost still
  // revokes its lease. The governor must outlive the dispatcher; attach
  // before the first submit.
  void attach_sprint_governor(runtime::SprintGovernor* governor);

 private:
  struct Pending {
    ContextJobFn fn;
    JobRecord record;
    CancellationToken token;
    // The footprint the submitter declared (0 = none); feeds the class
    // profile when the job finishes. record.memory_bytes holds what
    // admission actually accounted.
    std::size_t declared_memory = 0;
  };

  void dispatcher_loop();
  void deadline_loop();
  double now_s() const;
  // Admission bookkeeping; callers hold mutex_.
  bool queue_has_space(std::size_t priority, std::size_t memory_bytes) const;
  void finish_without_running(Pending&& pending, JobOutcome outcome, std::string why);
  void note_outcome_locked(const JobRecord& record);
  // Returns the job's accounted footprint to the pool and updates the gauge.
  void release_memory_locked(const JobRecord& record);
  // Folds a finished job's declared footprint into its class profile.
  void update_memory_profile_locked(std::size_t priority, std::size_t declared);

  std::vector<double> theta_;  // guarded by mutex_ (set_theta is dynamic)
  DispatcherOptions options_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // signals the dispatcher
  std::condition_variable drain_cv_;  // signals drain() waiters
  std::condition_variable space_cv_;  // signals blocked kBlock submitters
  std::condition_variable deadline_cv_;  // signals the deadline watchdog
  std::vector<std::deque<Pending>> buffers_;
  std::vector<JobRecord> completed_;
  std::size_t queued_total_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;

  // Memory accounting (guarded by mutex_): aggregate accounted footprint
  // of queued + running jobs, per-class queued footprint, and the per-class
  // EWMA profile of declared footprints.
  std::size_t memory_in_use_ = 0;
  std::vector<std::size_t> queued_memory_;
  std::vector<double> memory_profile_;

  // Running-job state for the deadline watchdog (guarded by mutex_).
  bool running_active_ = false;
  CancellationToken running_token_;
  double running_deadline_abs_s_ = std::numeric_limits<double>::infinity();
  double running_start_s_ = 0.0;
  double busy_accum_s_ = 0.0;

  // Cumulative per-class outcome counts (guarded by mutex_).
  std::vector<ClassLoad> loads_;

  obs::Tracer* tracer_ = nullptr;                  // set before first submit
  runtime::SprintGovernor* governor_ = nullptr;    // set before first submit
  std::vector<obs::Counter*> completed_counters_;  // one per class, or empty
  std::vector<obs::Counter*> shed_counters_;
  std::vector<obs::Counter*> cancelled_counters_;
  std::vector<obs::Counter*> failed_counters_;
  std::vector<obs::Gauge*> depth_gauges_;
  std::vector<obs::Gauge*> theta_gauges_;
  obs::HistogramMetric* response_hist_ = nullptr;
  obs::HistogramMetric* queueing_hist_ = nullptr;
  obs::Gauge* memory_gauge_ = nullptr;

  std::thread dispatcher_;
  std::thread deadline_watchdog_;
};

}  // namespace dias::core
