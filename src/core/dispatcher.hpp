// Real-time DiAS dispatcher (paper Section 3.3, the Go prototype).
//
// The production prototype keeps one buffer per priority and a dispatcher
// thread that launches the job at the head of the highest non-empty buffer
// into the processing engine, non-preemptively, passing it the class's
// approximation level. This C++ port drives in-process jobs (callables
// that receive their drop ratio) instead of external Spark processes, and
// records arrival / start / completion timestamps per job.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/sprint_governor.hpp"

namespace dias::core {

class DiasDispatcher {
 public:
  // A job receives the drop ratio the deflator assigned to its class.
  using JobFn = std::function<void(double theta)>;

  struct JobRecord {
    std::size_t priority = 0;
    double arrival_s = 0.0;     // seconds since dispatcher start
    double start_s = 0.0;       // when the engine picked it up
    double completion_s = 0.0;  // when it finished
    // Boost windows the sprint governor granted this job, in seconds since
    // dispatcher start (empty without a governor or when it never fired).
    std::vector<runtime::SprintInterval> sprint_intervals;
    double response_s() const { return completion_s - arrival_s; }
    double queueing_s() const { return start_s - arrival_s; }
    double execution_s() const { return completion_s - start_s; }
    double sprint_s() const {
      double acc = 0.0;
      for (const auto& iv : sprint_intervals) acc += iv.duration_s();
      return acc;
    }
  };

  // `theta[k]` is the drop ratio in [0, 1] handed to priority-k jobs; the
  // number of priorities equals theta.size(). theta[k] == 1 is the fully
  // degraded class (every droppable stage drops all of its tasks).
  explicit DiasDispatcher(std::vector<double> theta);
  ~DiasDispatcher();
  DiasDispatcher(const DiasDispatcher&) = delete;
  DiasDispatcher& operator=(const DiasDispatcher&) = delete;

  std::size_t priorities() const { return theta_.size(); }

  // Enqueues a job; returns immediately.
  void submit(std::size_t priority, JobFn job);

  // Blocks until every submitted job completed, then returns the records
  // in completion order. The dispatcher stays usable afterwards.
  std::vector<JobRecord> drain();

  // Attaches metric/trace sinks (either may be null; null detaches). Every
  // dispatched job then emits a "dispatcher.job" span (priority, theta,
  // queueing/response times) and bumps per-class completion counters.
  // Attach before the first submit; not synchronized with the dispatcher
  // thread beyond the submit ordering.
  void attach_observability(obs::Registry* metrics, obs::Tracer* tracer);

  // Attaches a sprint governor (null detaches): every dispatched job then
  // runs between job_started/job_finished hooks, so its class's Tk timer
  // can grant the engine's reserve slots mid-job, and the resulting boost
  // windows land in the JobRecord. The governor must outlive the
  // dispatcher; attach before the first submit.
  void attach_sprint_governor(runtime::SprintGovernor* governor);

 private:
  struct Pending {
    JobFn fn;
    JobRecord record;
  };

  void dispatcher_loop();
  double now_s() const;

  std::vector<double> theta_;
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals the dispatcher
  std::condition_variable drain_cv_;  // signals drain() waiters
  std::vector<std::deque<Pending>> buffers_;
  std::vector<JobRecord> completed_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;

  obs::Tracer* tracer_ = nullptr;                  // set before first submit
  runtime::SprintGovernor* governor_ = nullptr;    // set before first submit
  std::vector<obs::Counter*> completed_counters_;  // one per class, or empty
  obs::HistogramMetric* response_hist_ = nullptr;
  obs::HistogramMetric* queueing_hist_ = nullptr;

  std::thread dispatcher_;
};

}  // namespace dias::core
