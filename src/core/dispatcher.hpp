// Real-time DiAS dispatcher (paper Section 3.3, the Go prototype).
//
// The production prototype keeps one buffer per priority and a dispatcher
// thread that launches the job at the head of the highest non-empty buffer
// into the processing engine, non-preemptively, passing it the class's
// approximation level. This C++ port drives in-process jobs (callables
// that receive their drop ratio) instead of external Spark processes, and
// records arrival / start / completion timestamps per job.
//
// Overload protection (ISSUE 5) extends the lifecycle: per-class queues
// can be bounded with an admission policy (block / reject / shed), every
// class can carry a response-time deadline enforced by cooperative
// cancellation, and every submitted job — whether it ran or not — ends in
// exactly one terminal JobOutcome recorded in its JobRecord.
//
// Sharded submission plane (ISSUE 7). PR 5's dispatcher serialized every
// submit(), dequeue, completion, and load_snapshot() on one mutex — fine
// for benchmarks, a bottleneck under a many-thread submission storm. The
// plane is now striped into N MPSC lanes (DispatcherOptions::lanes;
// per-core by default, tenant-group-affine when a TenantId is supplied):
//
//   * submit() stamps the global admit sequence and enqueues under *its
//     lane's* mutex only; submissions on different lanes never touch the
//     same lock. Global accounting (queued totals, per-class depths,
//     aggregate memory) is lock-free atomics.
//   * The JobRecord store is striped the same way: a job's terminal record
//     lands in its lane's completed segment; drain() merges the segments
//     and applies the documented stable order, which is byte-identical to
//     the single-lane dispatcher's (FCFS within class is preserved because
//     the runner always dequeues the smallest admit_seq among the lane
//     heads of the chosen class — see dispatcher.cpp).
//   * Bounded admission (queue caps / memory capacity) still needs a
//     consistent check-then-act against global capacity, so *bounded*
//     configurations serialize submissions on a dedicated admission mutex
//     (never held by the runner); unbounded configurations — the
//     submission-storm fast path — skip it entirely.
//
// Multi-tenancy (ISSUE 7): submit() overloads take a TenantId; with
// DispatcherOptions::tenant.enabled a FairShareLedger (core/tenant.hpp)
// tracks per-tenant long-term usage and burst credits and the dispatcher
// applies its over-quota ladder — deflate (theta floor) before
// deprioritize (behind the class's compliant work) before shed.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "core/tenant.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/sprint_governor.hpp"

namespace dias::core {

// Terminal state of a submitted job. Every job reaches exactly one.
enum class JobOutcome {
  kCompleted,  // job body returned normally
  kShed,       // dropped by admission control; the body never ran
  kCancelled,  // cancelled cooperatively (deadline or explicit), body may
               // have partially run
  kFailed,     // body threw a non-cancellation exception
};

const char* to_string(JobOutcome outcome);

// What submit() does when the target queue (or the dispatcher-wide cap)
// is full.
enum class AdmissionPolicy {
  // Backpressure: submit() blocks until space frees. Lossless; callers
  // absorb the overload.
  kBlock,
  // Fail fast: the incoming job is shed immediately (recorded with
  // outcome kShed) and submit() returns kRejected.
  kReject,
  // Load-shedding: drop the oldest queued job of the lowest priority that
  // does not exceed the incoming job's priority, then admit the newcomer.
  // If every queued job outranks the newcomer, the newcomer is shed
  // instead (an overloaded system keeps its most important work).
  kShedOldestLowest,
};

// What submit() reported for one job.
enum class Admission {
  kAdmitted,  // queued (possibly after shedding a victim)
  kRejected,  // shed at the door; its JobRecord (outcome kShed) is still
              // emitted through drain()
};

// Per-priority-class lifecycle policy.
struct ClassPolicy {
  // Maximum queued (not yet started) jobs of this class; 0 = unbounded.
  std::size_t queue_capacity = 0;
  // Response-time deadline in seconds since arrival; infinity = none. A
  // queued job past its deadline is cancelled instead of started; a
  // running job past its deadline has its cancellation token fired so it
  // unwinds at the next cooperative check.
  double deadline_s = std::numeric_limits<double>::infinity();
};

// Multi-tenant fairness policy (ISSUE 7).
struct MultiTenantOptions {
  // When false, TenantId arguments are recorded in JobRecords but no
  // ledger runs and no over-quota response fires.
  bool enabled = false;
  FairShareOptions ledger;
  // Drop-ratio floor applied to jobs of a tenant at the kDeflate (or
  // deeper) ladder stage: the job runs with
  // max(class theta, deflate_theta). Keep it at or below the class's
  // accuracy-derived ceiling (Deflator::plan constraints) so the tenant
  // response never violates an accuracy contract.
  double deflate_theta = 0.5;
};

struct DispatcherOptions {
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  // Cap on total queued jobs across all classes; 0 = unbounded.
  std::size_t total_capacity = 0;
  // Cap on the aggregate memory footprint of queued + running jobs, in
  // bytes; 0 = unbounded. A job's footprint is what it declared at
  // submit(), or the class's profiled EWMA when it declared nothing (0
  // until the class has a profile, so undeclared workloads are admitted
  // exactly as before). A job too big for an *idle* dispatcher is still
  // admitted — rejecting it could never succeed later, and blocking it
  // would deadlock.
  std::size_t memory_capacity_bytes = 0;
  // EWMA weight for the per-class memory profile learned from declared
  // footprints. The profile is seeded by the *first declared sample at
  // submission time* (not first completion), so the cold-start window in
  // which undeclared jobs were admitted with a near-zero estimate closes
  // as soon as any job of the class declares a footprint.
  double memory_profile_alpha = 0.3;
  // Number of striped submission lanes. 0 = auto (one per hardware
  // thread, capped at 16); 1 reproduces the PR-5 single-lane plane
  // bit-for-bit. Lane choice never affects semantics, only contention:
  // drain() ordering and within-class FCFS are lane-count-invariant.
  std::size_t lanes = 0;
  // Per-tenant fair-share policy; see MultiTenantOptions.
  MultiTenantOptions tenant;
  // Per-class policy; classes beyond the vector use the defaults
  // (unbounded, no deadline). Sized/padded to the theta vector on
  // construction.
  std::vector<ClassPolicy> classes;
};

class DiasDispatcher {
 public:
  // A job receives the drop ratio the deflator assigned to its class.
  using JobFn = std::function<void(double theta)>;

  // Context handed to lifecycle-aware jobs. The token is the job's own
  // cancellation flag: the dispatcher fires it when the class deadline
  // passes, and the job is expected to poll it (or hand it to
  // Engine::set_cancellation) and unwind with JobCancelledError.
  struct JobContext {
    double theta = 0.0;
    std::size_t priority = 0;
    TenantId tenant{};
    // The footprint admission accounted for this job (declared, or the
    // class profile) — e.g. a sensible ShuffleOptions::memory_budget_bytes.
    std::size_t memory_bytes = 0;
    CancellationToken token;
  };
  using ContextJobFn = std::function<void(const JobContext&)>;

  struct JobRecord {
    std::size_t priority = 0;
    std::uint64_t seq = 0;      // arrival sequence number (global, 0-based)
    TenantId tenant{};          // 0 = untenanted
    // Ladder stage the fair-share ledger assigned at admission (kNone
    // without a ledger or for untenanted jobs).
    TenantAction tenant_action = TenantAction::kNone;
    double arrival_s = 0.0;     // seconds since dispatcher start
    double start_s = 0.0;       // when the engine picked it up (0 if never ran)
    double completion_s = 0.0;  // when it reached its terminal outcome
    JobOutcome outcome = JobOutcome::kCompleted;
    std::string error;      // what() for kFailed/kCancelled, reason for kShed
    double theta = 0.0;     // drop ratio the job actually received
    // Memory footprint admission accounted for this job: the declared
    // value, or the class's profiled EWMA when nothing was declared.
    std::size_t memory_bytes = 0;
    // Boost windows the sprint governor granted this job, in seconds since
    // dispatcher start (empty without a governor or when it never fired).
    std::vector<runtime::SprintInterval> sprint_intervals;
    double response_s() const { return completion_s - arrival_s; }
    double queueing_s() const { return start_s - arrival_s; }
    double execution_s() const { return completion_s - start_s; }
    double sprint_s() const {
      double acc = 0.0;
      for (const auto& iv : sprint_intervals) acc += iv.duration_s();
      return acc;
    }
  };

  // Point-in-time load view for the adaptive overload controller.
  struct ClassLoad {
    std::size_t queue_depth = 0;   // queued, not yet started (both subqueues)
    std::size_t penalized_depth = 0;  // deprioritized within the class
    std::uint64_t arrivals = 0;    // cumulative submits (admitted or not)
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;
    std::size_t queued_memory_bytes = 0;    // accounted footprint of queued jobs
    std::size_t profiled_memory_bytes = 0;  // EWMA of declared footprints
  };
  struct LoadSnapshot {
    double uptime_s = 0.0;
    // Cumulative seconds the dispatcher thread spent inside job bodies;
    // delta(busy_s)/delta(uptime_s) is the single-runner utilization.
    double busy_s = 0.0;
    // Accounted footprint of queued + running jobs, and the configured cap
    // (0 = unbounded). The overload controller reads these as its memory
    // pressure signal.
    std::size_t memory_in_use_bytes = 0;
    std::size_t memory_capacity_bytes = 0;
    // Staleness bound of this merged view: the global admit sequence read
    // before the first lane was visited and after the last. Every per-lane
    // view is internally consistent (taken under that lane's mutex); the
    // only possible skew is submissions racing the scan, and there were at
    // most (admit_seq_hi - admit_seq_lo) of them. Both values are equal
    // when the snapshot is exact.
    std::uint64_t admit_seq_lo = 0;
    std::uint64_t admit_seq_hi = 0;
    // Tenant-plane aggregates (all zero / 1.0 without a ledger).
    std::size_t tenants_tracked = 0;
    std::size_t tenants_active = 0;
    std::size_t tenants_over_quota = 0;
    double tenant_fairness_index = 1.0;
    std::uint64_t tenant_bursts = 0;        // admissions covered by credits
    std::uint64_t tenant_deflated = 0;      // jobs given the deflate theta floor
    std::uint64_t tenant_deprioritized = 0;
    std::uint64_t tenant_shed = 0;          // jobs shed by the ladder
    std::vector<ClassLoad> classes;
    std::size_t total_queue_depth() const {
      std::size_t d = 0;
      for (const auto& c : classes) d += c.queue_depth;
      return d;
    }
  };

  // `theta[k]` is the drop ratio in [0, 1] handed to priority-k jobs; the
  // number of priorities equals theta.size(). theta[k] == 1 is the fully
  // degraded class (every droppable stage drops all of its tasks).
  explicit DiasDispatcher(std::vector<double> theta);
  DiasDispatcher(std::vector<double> theta, DispatcherOptions options);
  ~DiasDispatcher();
  DiasDispatcher(const DiasDispatcher&) = delete;
  DiasDispatcher& operator=(const DiasDispatcher&) = delete;

  std::size_t priorities() const { return priorities_; }
  std::size_t lanes() const { return lanes_.size(); }

  // Enqueues a job. Returns kAdmitted unless admission control turned it
  // away (kReject policy, kShedOldestLowest with nothing to shed, or the
  // tenant ladder's kShed stage); a turned-away job still yields a
  // terminal JobRecord with outcome kShed. Under kBlock this call blocks
  // while the target queue is full. `memory_bytes` declares the job's
  // expected memory footprint (0 = not declared: admission falls back to
  // the class's profiled EWMA). The TenantId overloads attribute the job
  // to a tenant; with MultiTenantOptions::enabled the fair-share ledger's
  // over-quota ladder applies.
  Admission submit(std::size_t priority, JobFn job, std::size_t memory_bytes = 0);
  Admission submit(std::size_t priority, ContextJobFn job, std::size_t memory_bytes = 0);
  Admission submit(std::size_t priority, TenantId tenant, JobFn job,
                   std::size_t memory_bytes = 0);
  Admission submit(std::size_t priority, TenantId tenant, ContextJobFn job,
                   std::size_t memory_bytes = 0);

  // Blocks until every admitted job reached a terminal outcome, then
  // returns the records. Ordering is stable and documented: ascending
  // completion time, ties broken by arrival time, then by arrival
  // sequence number — so two zero-duration jobs (or a shed burst stamped
  // with one clock reading) always drain in submission order. The order
  // is lane-count-invariant: a sharded dispatcher drains byte-identically
  // to the single-lane one for the same admitted sequence. The dispatcher
  // stays usable afterwards.
  std::vector<JobRecord> drain();

  // Replaces class k's drop ratio for jobs dispatched from now on (the
  // running job keeps the theta it started with). Thread-safe; this is
  // the knob the adaptive overload controller turns.
  void set_theta(std::size_t priority, double theta);
  double theta(std::size_t priority) const;

  // Cheap, thread-safe snapshot of queue depths and cumulative outcome
  // counts; the overload controller samples this to estimate arrival
  // rates and utilization. Lock-striped: the snapshot visits one lane at
  // a time and never stalls submissions on other lanes; see
  // LoadSnapshot::admit_seq_lo/hi for the documented staleness bound.
  LoadSnapshot load_snapshot() const;

  // The fair-share ledger, or nullptr when MultiTenantOptions::enabled is
  // false. Callers may set per-tenant weights or sample per-tenant stats;
  // the ledger lives exactly as long as the dispatcher.
  FairShareLedger* tenant_ledger() { return ledger_.get(); }
  const FairShareLedger* tenant_ledger() const { return ledger_.get(); }

  // Attaches metric/trace sinks (either may be null; null detaches). Every
  // dispatched job then emits a "dispatcher.job" span (priority, theta,
  // queueing/response times, outcome) and bumps per-class outcome
  // counters and queue-depth gauges; with a ledger, tenant ladder counters
  // and a fairness-index gauge (refreshed by load_snapshot()) are exported
  // too. Attach before the first submit; not synchronized with the
  // dispatcher thread beyond the submit ordering.
  void attach_observability(obs::Registry* metrics, obs::Tracer* tracer);

  // Attaches a sprint governor (null detaches): every dispatched job then
  // runs between job_started/job_finished hooks, so its class's Tk timer
  // can grant the engine's reserve slots mid-job, and the resulting boost
  // windows land in the JobRecord. The hooks are held by an exception-safe
  // RAII guard, so a job that throws or is cancelled mid-boost still
  // revokes its lease. The governor must outlive the dispatcher; attach
  // before the first submit.
  void attach_sprint_governor(runtime::SprintGovernor* governor);

 private:
  static constexpr std::uint64_t kEmptySeq = std::numeric_limits<std::uint64_t>::max();

  struct Pending {
    ContextJobFn fn;
    JobRecord record;
    CancellationToken token;
    // The footprint the submitter declared (0 = none); feeds the class
    // profile when the job finishes. record.memory_bytes holds what
    // admission actually accounted.
    std::size_t declared_memory = 0;
    std::size_t lane = 0;      // striped segment owning this job's record
    bool penalized = false;    // queued behind the class's compliant work
  };

  // One striped submission lane: an MPSC front (many submitters, the one
  // runner) plus this stripe's segment of the JobRecord store. Heads of
  // the per-class deques are mirrored into atomics so the runner can scan
  // for the next job without touching any lane lock.
  struct alignas(64) Lane {
    mutable std::mutex mutex;
    std::vector<std::deque<Pending>> normal;     // per class, seq-ordered
    std::vector<std::deque<Pending>> penalized;  // per class, seq-ordered
    std::vector<JobRecord> completed;            // this stripe's record segment
    std::vector<ClassLoad> loads;                // per-class counters
    std::unique_ptr<std::atomic<std::uint64_t>[]> head_normal;     // [classes]
    std::unique_ptr<std::atomic<std::uint64_t>[]> head_penalized;  // [classes]
  };

  struct Candidate {
    bool found = false;
    std::size_t lane = 0;
    std::size_t cls = 0;
    bool penalized = false;
    std::uint64_t seq = 0;
  };

  void dispatcher_loop();
  void deadline_loop();
  double now_s() const;

  std::size_t pick_lane(TenantId tenant) const;
  // Lock-free scan of the lane head mirrors: best dispatchable job
  // (highest class; compliant before penalized; smallest admit seq).
  Candidate scan_heads() const;
  // Pops the next job into `out`; false when (stopping and) nothing is
  // queued. Blocks on the runner cv while idle.
  bool acquire_next_job(Pending& out);
  // Re-publishes a lane's head mirrors for class `cls`; lane lock held.
  void publish_heads_locked(Lane& lane, std::size_t cls);
  // Stamps the admit seq and counts the arrival; lane lock held.
  void stamp_arrival_locked(Lane& lane, Pending& pending);
  // Pushes an admitted (seq-stamped) job and updates global accounting;
  // lane lock held.
  void enqueue_locked(Lane& lane, Pending&& pending);
  // Terminal record for a job that never ran; lane lock held.
  void finish_without_running_locked(Lane& lane, Pending&& pending, JobOutcome outcome,
                                     std::string why);
  void note_outcome_locked(Lane& lane, const JobRecord& record);
  // Global-capacity admission check against the lock-free accounting;
  // admission_mutex_ held (bounded configurations only).
  bool queue_has_space(std::size_t priority, std::size_t memory_bytes) const;
  // Pops the globally oldest queued job of `cls` (penalized first);
  // admission_mutex_ held. Returns false when the class is empty.
  bool pop_oldest_of_class(std::size_t cls, Pending& out);
  // Wakes the runner iff it parked itself idle.
  void wake_runner();
  // Wakes blocked submitters / drain waiters iff any are present.
  void notify_space_if_blocked();
  void notify_drain_if_done();
  // Seeds / folds a declared footprint into the class profile.
  void seed_memory_profile(std::size_t priority, std::size_t declared);
  void update_memory_profile(std::size_t priority, std::size_t declared);
  double effective_theta(const Pending& pending) const;

  std::size_t priorities_ = 0;
  std::unique_ptr<std::atomic<double>[]> theta_;  // per class, lock-free
  DispatcherOptions options_;
  bool bounded_ = false;  // any queue/memory cap configured
  std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<FairShareLedger> ledger_;  // null unless tenant.enabled

  // Striped submission lanes + record segments.
  std::vector<std::unique_ptr<Lane>> lanes_;

  // Lock-free global accounting.
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::size_t> queued_total_{0};
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> memory_in_use_{0};
  std::unique_ptr<std::atomic<std::size_t>[]> class_queued_;         // [classes]
  std::unique_ptr<std::atomic<std::size_t>[]> class_queued_memory_;  // [classes]
  std::unique_ptr<std::atomic<double>[]> memory_profile_;            // [classes]
  std::atomic<bool> stopping_{false};

  // Tenant ladder counters (lock-free; mirrored into LoadSnapshot).
  std::atomic<std::uint64_t> tenant_bursts_{0};
  std::atomic<std::uint64_t> tenant_deflated_{0};
  std::atomic<std::uint64_t> tenant_deprioritized_{0};
  std::atomic<std::uint64_t> tenant_shed_{0};

  // Bounded-admission plane: serializes capacity check-then-enqueue so
  // caps cannot be oversubscribed by racing submitters. Never taken by
  // the runner; unbounded configurations never take it at all.
  std::mutex admission_mutex_;
  std::condition_variable space_cv_;
  std::atomic<int> blocked_submitters_{0};

  // Runner parking + running-job state for the deadline watchdog.
  mutable std::mutex runner_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable deadline_cv_;
  std::atomic<bool> runner_idle_{false};
  bool running_active_ = false;                   // guarded by runner_mutex_
  CancellationToken running_token_;               // guarded by runner_mutex_
  double running_deadline_abs_s_ = std::numeric_limits<double>::infinity();
  double running_start_s_ = 0.0;                  // guarded by runner_mutex_
  double busy_accum_s_ = 0.0;                     // guarded by runner_mutex_

  // Drain rendezvous.
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;
  std::atomic<int> drain_waiters_{0};

  obs::Tracer* tracer_ = nullptr;                  // set before first submit
  runtime::SprintGovernor* governor_ = nullptr;    // set before first submit
  std::vector<obs::Counter*> completed_counters_;  // one per class, or empty
  std::vector<obs::Counter*> shed_counters_;
  std::vector<obs::Counter*> cancelled_counters_;
  std::vector<obs::Counter*> failed_counters_;
  std::vector<obs::Gauge*> depth_gauges_;
  std::vector<obs::Gauge*> theta_gauges_;
  obs::HistogramMetric* response_hist_ = nullptr;
  obs::HistogramMetric* queueing_hist_ = nullptr;
  obs::Gauge* memory_gauge_ = nullptr;
  obs::Counter* tenant_burst_counter_ = nullptr;
  obs::Counter* tenant_deflated_counter_ = nullptr;
  obs::Counter* tenant_deprioritized_counter_ = nullptr;
  obs::Counter* tenant_shed_counter_ = nullptr;
  obs::Gauge* tenant_fairness_gauge_ = nullptr;
  obs::Gauge* tenant_over_quota_gauge_ = nullptr;

  std::thread dispatcher_;
  std::thread deadline_watchdog_;
};

}  // namespace dias::core
