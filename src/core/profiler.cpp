#include "core/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dias::core {
namespace {

bool is_map_like(engine::EngineStageKind kind) {
  return kind == engine::EngineStageKind::kMap ||
         kind == engine::EngineStageKind::kShuffleMap;
}

// Task-weighted mean task time over a stage predicate.
template <typename Pred>
double weighted_mean(const std::vector<StageProfile>& stages, Pred pred) {
  double time = 0.0;
  double tasks = 0.0;
  for (const auto& s : stages) {
    if (!pred(s) || s.tasks == 0) continue;
    time += s.mean_task_time_s * static_cast<double>(s.tasks);
    tasks += static_cast<double>(s.tasks);
  }
  return tasks > 0.0 ? time / tasks : 0.0;
}

}  // namespace

double JobProfile::mean_map_task_time_s() const {
  return weighted_mean(stages, [](const StageProfile& s) { return is_map_like(s.kind); });
}

double JobProfile::mean_reduce_task_time_s() const {
  return weighted_mean(stages, [](const StageProfile& s) {
    return s.kind == engine::EngineStageKind::kReduce;
  });
}

double JobProfile::map_task_scv() const {
  for (const auto& s : stages) {
    if (is_map_like(s.kind) && s.tasks > 1) return s.task_scv;
  }
  return 1.0;
}

std::size_t JobProfile::map_tasks() const {
  std::size_t n = 0;
  for (const auto& s : stages) {
    if (is_map_like(s.kind)) n += s.tasks;
  }
  return n;
}

std::size_t JobProfile::reduce_tasks() const {
  std::size_t n = 0;
  for (const auto& s : stages) {
    if (s.kind == engine::EngineStageKind::kReduce) n += s.tasks;
  }
  return n;
}

JobProfile Profiler::profile_once(const JobBody& body, double theta) {
  DIAS_EXPECTS(theta >= 0.0 && theta < 1.0, "profiling theta must be in [0,1)");
  eng_->clear_stage_log();
  body(*eng_, theta);
  JobProfile profile;
  for (const auto& info : eng_->stage_log()) {
    StageProfile stage;
    stage.kind = info.kind;
    stage.tasks = info.executed_partitions;
    stage.stage_wall_time_s = info.duration_s;
    if (!info.task_times_s.empty()) {
      Welford acc;
      for (double t : info.task_times_s) acc.add(t);
      stage.mean_task_time_s = acc.mean();
      stage.task_scv = acc.mean() > 0.0 ? acc.variance() / (acc.mean() * acc.mean()) : 0.0;
    }
    profile.total_wall_time_s += info.duration_s;
    profile.stages.push_back(stage);
  }
  eng_->clear_stage_log();
  return profile;
}

model::JobClassProfile Profiler::build_class_profile(const JobBody& body,
                                                     double arrival_rate, int slots,
                                                     int repetitions) {
  DIAS_EXPECTS(repetitions >= 1, "need at least one profiling repetition");
  const auto average = [&](double theta) {
    JobProfile acc;
    double map_time = 0.0, reduce_time = 0.0, wall = 0.0;
    std::size_t map_tasks = 0, reduce_tasks = 0;
    double scv = 0.0;
    for (int r = 0; r < repetitions; ++r) {
      const JobProfile p = profile_once(body, theta);
      map_time += p.mean_map_task_time_s();
      reduce_time += p.mean_reduce_task_time_s();
      wall += p.total_wall_time_s;
      map_tasks = std::max(map_tasks, p.map_tasks());
      reduce_tasks = std::max(reduce_tasks, p.reduce_tasks());
      scv += p.map_task_scv();
      if (r == 0) acc = p;
    }
    const double n = static_cast<double>(repetitions);
    struct Avg {
      double map_task_time, reduce_task_time, wall, scv;
      std::size_t map_tasks, reduce_tasks;
    };
    return Avg{map_time / n, reduce_time / n, wall / n, scv / n, map_tasks, reduce_tasks};
  };

  const auto exact = average(0.0);
  const auto dropped = average(0.9);
  DIAS_EXPECTS(exact.map_tasks >= 1, "profiled job has no map tasks");

  model::JobClassProfile profile;
  profile.arrival_rate = arrival_rate;
  profile.slots = slots;
  profile.map_task_pmf.assign(exact.map_tasks, 0.0);
  profile.map_task_pmf.back() = 1.0;
  const std::size_t reduce_tasks = std::max<std::size_t>(exact.reduce_tasks, 1);
  profile.reduce_task_pmf.assign(reduce_tasks, 0.0);
  profile.reduce_task_pmf.back() = 1.0;
  profile.map_rate = 1.0 / std::max(exact.map_task_time, 1e-9);
  profile.reduce_rate =
      exact.reduce_task_time > 0.0 ? 1.0 / exact.reduce_task_time : 1.0e3;
  profile.shuffle_rate = 1.0e3;  // shuffle time folds into the overhead below

  // Overhead = wall time not explained by task execution on `slots` slots.
  const auto overhead = [&](const auto& run, std::size_t map_tasks) {
    const double task_wall =
        run.map_task_time * std::ceil(static_cast<double>(map_tasks) /
                                      static_cast<double>(slots)) +
        run.reduce_task_time * std::ceil(static_cast<double>(reduce_tasks) /
                                         static_cast<double>(slots));
    return std::max(run.wall - task_wall, 1e-6);
  };
  profile.mean_overhead_theta0 = overhead(exact, exact.map_tasks);
  profile.mean_overhead_theta90 = overhead(dropped, dropped.map_tasks);
  return profile;
}

model::PhaseType Profiler::fit_wave_distribution(const JobProfile& profile,
                                                 int slots) const {
  DIAS_EXPECTS(slots >= 1, "slots must be positive");
  // The wave mean comes from the *measured* stage wall time divided by the
  // wave count, so straggler/max-of-slots effects the per-task mean misses
  // are captured automatically (the paper fits per-wave distributions from
  // profiling runs the same way).
  double wall = 0.0;
  double waves = 0.0;
  for (const auto& s : profile.stages) {
    if (!is_map_like(s.kind) || s.tasks == 0) continue;
    wall += s.stage_wall_time_s;
    waves += std::ceil(static_cast<double>(s.tasks) / static_cast<double>(slots));
  }
  DIAS_EXPECTS(waves > 0.0, "profile has no map task measurements");
  const double mean_wave = wall / waves;
  DIAS_EXPECTS(mean_wave > 0.0, "measured wave time must be positive");
  // Wave makespans concentrate relative to task times (max of `slots`
  // near-equal tasks); shrink the measured per-task scv accordingly.
  const double scv =
      std::max(profile.map_task_scv() / static_cast<double>(slots), 1e-3);
  return model::PhaseType::fit_two_moments(mean_wave, scv);
}

}  // namespace dias::core
