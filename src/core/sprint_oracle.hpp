// Sprint-rate oracle (paper Section 4, "Assumptions and notations").
//
// The paper's model consumes "effective sprinting rates ... provided by an
// oracle for each class k and timeout value". This module is that oracle:
// given a class's non-sprinted mean execution time, a sprint timeout Tk,
// and the DVFS speedup, it returns the effective speedup factor of the
// whole execution; and given the workload it checks whether a timeout is
// sustainable under the replenished energy budget (e.g. "6 sprinting
// minutes per hour").
#pragma once

#include <vector>

#include "cluster/sprinter.hpp"

namespace dias::core {

class SprintOracle {
 public:
  // Effective whole-execution speedup when a job with non-sprinted mean
  // execution `mean_exec_s` sprints at `speedup` after `timeout_s`:
  //   exec' = timeout + (mean_exec - timeout) / speedup,
  //   effective = mean_exec / exec'.
  // Returns 1 when the timeout exceeds the execution time.
  static double effective_speedup(double mean_exec_s, double timeout_s, double speedup);

  // Sprinted seconds per job for the same scenario.
  static double sprint_seconds_per_job(double mean_exec_s, double timeout_s,
                                       double speedup);

  // Long-run sustainability: jobs of the sprinting classes arrive at
  // `sprint_jobs_per_s` and each sprints `sprint_seconds_per_job`; the
  // budget drains at extra_power while sprinting and replenishes at
  // replenish_watts continuously. Sustainable iff the average drain does
  // not exceed the replenish rate (an infinite budget is always
  // sustainable).
  static bool sustainable(const cluster::SprintConfig& config, double sprint_jobs_per_s,
                          double sprint_seconds_per_job);

  // Smallest timeout from `timeout_grid` (ascending) that is sustainable
  // for the given class workload; +infinity when none is.
  static double min_sustainable_timeout(const cluster::SprintConfig& config,
                                        double arrival_rate, double mean_exec_s,
                                        const std::vector<double>& timeout_grid);
};

}  // namespace dias::core
