// Offline workload profiler: turns real engine runs into model inputs.
//
// The paper parameterizes its stochastic models "via simple linear
// regressions" from profiling runs: per-stage task execution times, plus
// the job overhead measured at theta = 0 and theta = 0.9 (Section 4.3).
// This module does the same against the mini MapReduce engine: it inspects
// the engine's stage log after profiling runs and produces
//   (a) a model::JobClassProfile for the deflator / response-time model,
//   (b) fitted PH wave distributions for the wave-level model.
#pragma once

#include <functional>
#include <vector>

#include "engine/engine.hpp"
#include "model/phase_type.hpp"
#include "model/response_time_model.hpp"
#include "model/wave_level_model.hpp"

namespace dias::core {

// Aggregated measurements of one profiling run (one job execution).
struct StageProfile {
  engine::EngineStageKind kind = engine::EngineStageKind::kMap;
  std::size_t tasks = 0;        // executed tasks
  double mean_task_time_s = 0;  // average task duration
  double task_scv = 1.0;        // squared coefficient of variation
  double stage_wall_time_s = 0; // barrier-to-barrier wall time
};

struct JobProfile {
  std::vector<StageProfile> stages;
  double total_wall_time_s = 0.0;

  // Totals across map-like (droppable) and reduce stages.
  double mean_map_task_time_s() const;
  double mean_reduce_task_time_s() const;
  double map_task_scv() const;
  std::size_t map_tasks() const;
  std::size_t reduce_tasks() const;
};

class Profiler {
 public:
  // A job body runs the analysis through `eng` at the given drop ratio
  // (e.g. a word_count or triangle_count closure).
  using JobBody = std::function<void(engine::Engine& eng, double theta)>;

  explicit Profiler(engine::Engine& eng) : eng_(&eng) {}

  // Runs the body once at `theta` and extracts per-stage measurements from
  // the engine's stage log.
  JobProfile profile_once(const JobBody& body, double theta);

  // Full paper-style profiling: runs at theta = 0 and theta = 0.9,
  // averaging `repetitions` runs each, and assembles a JobClassProfile
  // whose overhead endpoints come from the measured non-task wall time.
  // `arrival_rate` and `slots` parameterize the queueing side.
  model::JobClassProfile build_class_profile(const JobBody& body, double arrival_rate,
                                             int slots, int repetitions = 3);

  // Fits a PH wave-execution-time distribution (two-moment fit over the
  // per-wave makespans implied by `slots`) for the wave-level model.
  model::PhaseType fit_wave_distribution(const JobProfile& profile, int slots) const;

 private:
  engine::Engine* eng_;
};

}  // namespace dias::core
