#include "core/controller.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dias::core {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kPreemptive:
      return "P";
    case Policy::kNonPreemptive:
      return "NP";
    case Policy::kDifferentialApprox:
      return "DA";
    case Policy::kNonPreemptiveSprint:
      return "NPS";
    case Policy::kDias:
      return "DiAS";
  }
  return "?";
}

bool policy_uses_sprinting(Policy policy) {
  return policy == Policy::kNonPreemptiveSprint || policy == Policy::kDias;
}

bool policy_uses_dropping(Policy policy) {
  return policy == Policy::kDifferentialApprox || policy == Policy::kDias;
}

cluster::SimResult run_experiment(const ExperimentConfig& config,
                                  std::vector<cluster::TraceEntry> trace) {
  cluster::ClusterSimulator::Config sim_config;
  sim_config.slots = config.slots;
  sim_config.scheduler.preemptive = config.policy == Policy::kPreemptive;
  sim_config.scheduler.eviction = config.eviction;
  sim_config.stragglers = config.stragglers;
  sim_config.slot_speed_factors = config.slot_speed_factors;
  if (policy_uses_dropping(config.policy)) {
    sim_config.scheduler.theta = config.theta;
  }
  sim_config.sprint = config.sprint;
  sim_config.sprint.enabled = policy_uses_sprinting(config.policy);
  if (!sim_config.sprint.enabled) {
    // Keep the power model for energy accounting but never fire a sprint.
    sim_config.sprint.timeout_s.clear();
  }
  sim_config.task_time_family = config.task_time_family;
  sim_config.idle_power_w = config.idle_power_w;
  sim_config.warmup_jobs = config.warmup_jobs;
  sim_config.seed = config.seed;
  sim_config.metrics = config.metrics;
  sim_config.tracer = config.tracer;
  return cluster::simulate(sim_config, std::move(trace));
}

LatencyDelta relative_difference(const cluster::ClassMetrics& baseline,
                                 const cluster::ClassMetrics& other) {
  DIAS_EXPECTS(baseline.response.count() > 0 && other.response.count() > 0,
               "relative difference needs samples on both sides");
  LatencyDelta delta;
  delta.mean_percent =
      100.0 * (other.response.mean() - baseline.response.mean()) / baseline.response.mean();
  delta.tail_percent = 100.0 * (other.tail_response() - baseline.tail_response()) /
                       baseline.tail_response();
  return delta;
}

}  // namespace dias::core
