// Offline accuracy-loss profile: relative error as a function of the task
// drop ratio (paper Figure 6). Profiled once per analysis type and consulted
// by the deflator to translate per-class accuracy tolerances into maximum
// admissible drop ratios.
#pragma once

#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace dias::core {

class AccuracyProfile {
 public:
  // Points are (theta, error_percent), theta strictly increasing, starting
  // at theta = 0 (error 0 for exact runs is typical but not required).
  explicit AccuracyProfile(std::vector<std::pair<double, double>> points);

  // Piecewise-linear interpolation; clamps outside the profiled range.
  double error_at(double theta) const;

  // Largest profiled theta whose interpolated error stays within
  // `tolerance_percent` (0 when even theta = 0 violates it).
  double max_theta_for_error(double tolerance_percent) const;

  const std::vector<std::pair<double, double>>& points() const { return points_; }

  // The paper's profiled word-count curve (Figure 6): sub-linear error,
  // ~8.5% at theta=0.1, ~15% at 0.2, ~32% at 0.4.
  static AccuracyProfile paper_word_count();

  // Offline profiling (the paper's Figure 6 procedure): evaluates
  // `error_percent_at(theta)` over the ascending grid -- typically by
  // running the real analysis on the engine at each drop ratio -- and
  // builds the piecewise-linear profile. A theta = 0 anchor with zero
  // error is prepended when the grid does not start at 0.
  static AccuracyProfile measure(const std::function<double(double)>& error_percent_at,
                                 std::span<const double> theta_grid);

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace dias::core
