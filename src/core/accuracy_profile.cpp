#include "core/accuracy_profile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dias::core {

AccuracyProfile::AccuracyProfile(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  DIAS_EXPECTS(points_.size() >= 2, "accuracy profile needs at least two points");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    DIAS_EXPECTS(points_[i].first >= 0.0 && points_[i].first <= 1.0,
                 "profile theta out of range");
    DIAS_EXPECTS(points_[i].second >= 0.0, "profile error must be non-negative");
    if (i > 0) {
      DIAS_EXPECTS(points_[i].first > points_[i - 1].first,
                   "profile thetas must be strictly increasing");
    }
  }
}

double AccuracyProfile::error_at(double theta) const {
  DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "theta must be in [0,1]");
  if (theta <= points_.front().first) return points_.front().second;
  if (theta >= points_.back().first) return points_.back().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (theta <= points_[i].first) {
      const auto& [t0, e0] = points_[i - 1];
      const auto& [t1, e1] = points_[i];
      const double w = (theta - t0) / (t1 - t0);
      return e0 * (1.0 - w) + e1 * w;
    }
  }
  return points_.back().second;
}

double AccuracyProfile::max_theta_for_error(double tolerance_percent) const {
  DIAS_EXPECTS(tolerance_percent >= 0.0, "tolerance must be non-negative");
  // The profiled error is monotone in practice, but be safe: scan a fine
  // grid and keep the largest theta whose error is within tolerance.
  double best = 0.0;
  const double t_max = points_.back().first;
  constexpr int kSteps = 200;
  for (int i = 0; i <= kSteps; ++i) {
    const double theta = t_max * static_cast<double>(i) / kSteps;
    if (error_at(theta) <= tolerance_percent + 1e-12) best = theta;
  }
  return best;
}

AccuracyProfile AccuracyProfile::measure(
    const std::function<double(double)>& error_percent_at,
    std::span<const double> theta_grid) {
  DIAS_EXPECTS(static_cast<bool>(error_percent_at), "error function must be non-empty");
  DIAS_EXPECTS(!theta_grid.empty(), "theta grid must be non-empty");
  std::vector<std::pair<double, double>> points;
  if (theta_grid.front() > 0.0) points.emplace_back(0.0, 0.0);
  for (double theta : theta_grid) {
    points.emplace_back(theta, std::max(0.0, error_percent_at(theta)));
  }
  return AccuracyProfile(std::move(points));
}

AccuracyProfile AccuracyProfile::paper_word_count() {
  return AccuracyProfile({{0.0, 0.0},
                          {0.1, 8.5},
                          {0.2, 15.0},
                          {0.3, 24.0},
                          {0.4, 32.0},
                          {0.5, 39.0},
                          {0.6, 46.0},
                          {0.7, 54.0},
                          {0.8, 63.0}});
}

}  // namespace dias::core
