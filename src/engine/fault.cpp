#include "engine/fault.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "chaos/chaos.hpp"

namespace dias::engine {

void interruptible_sleep_ms(double ms, const std::atomic<bool>& done,
                            const CancellationToken* cancel) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  while (!done.load(std::memory_order_acquire) &&
         !(cancel != nullptr && cancel->cancelled()) && clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

namespace {

// The decision core lives in the chaos plane now (ISSUE 10 subsumed the
// injector's plumbing): splitmix64 over the coordinate tuple, top 53 bits
// to [0, 1). Salts keep the injector's historical draws — and therefore
// every seeded experiment — bit-identical to PR 1.
using chaos::detail::uniform_draw;

constexpr std::uint64_t kFailSalt = 0xFA11;
constexpr std::uint64_t kStragglerSalt = 0x51F0;
constexpr std::uint64_t kBackoffSalt = 0xB0FF;

}  // namespace

double backoff_delay_ms(const FaultToleranceOptions& ft, std::uint64_t stage_seq,
                        std::size_t partition, int attempt) {
  const double base = ft.retry_backoff_ms;
  if (base <= 0.0 || attempt < 1) return 0.0;
  if (ft.backoff == BackoffPolicy::kLinear) {
    return base * static_cast<double>(attempt);
  }
  // Decorrelated jitter, recomputed iteratively from attempt 1 so the
  // function stays stateless: each step draws its own hashed uniform, so
  // the whole curve is a pure function of (seed, stage, partition).
  const double cap = std::max(ft.retry_backoff_cap_ms, base);
  double delay = std::min(base, cap);
  for (int k = 2; k <= attempt; ++k) {
    const double u = uniform_draw(ft.injection.seed, stage_seq, partition,
                                  static_cast<std::uint64_t>(k), kBackoffSalt);
    delay = std::min(cap, base + u * (3.0 * delay - base));
  }
  return delay;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {
  DIAS_EXPECTS(config_.fail_prob >= 0.0 && config_.fail_prob <= 1.0,
               "fault fail_prob must be in [0,1]");
  DIAS_EXPECTS(config_.straggler_prob >= 0.0 && config_.straggler_prob <= 1.0,
               "fault straggler_prob must be in [0,1]");
  DIAS_EXPECTS(config_.straggler_delay_ms >= 0.0, "straggler delay must be >= 0");
}

bool FaultInjector::should_fail(std::uint64_t stage_seq, std::size_t partition,
                                int attempt) const {
  if (config_.fail_prob <= 0.0) return false;
  return uniform_draw(config_.seed, stage_seq, partition,
                      static_cast<std::uint64_t>(attempt), kFailSalt) < config_.fail_prob;
}

double FaultInjector::straggler_delay_ms(std::uint64_t stage_seq,
                                         std::size_t partition) const {
  if (config_.straggler_prob <= 0.0 || config_.straggler_delay_ms <= 0.0) return 0.0;
  const double u = uniform_draw(config_.seed, stage_seq, partition, 0, kStragglerSalt);
  return u < config_.straggler_prob ? config_.straggler_delay_ms : 0.0;
}

TaskFailedError::TaskFailedError(std::string stage, std::size_t partition, int attempts,
                                 const std::string& detail)
    : error("task failed for good: stage '" + stage + "', partition " +
            std::to_string(partition) + ", " + std::to_string(attempts) + " attempt(s)" +
            (detail.empty() ? "" : ": " + detail)),
      stage_(std::move(stage)),
      partition_(partition),
      attempts_(attempts) {}

}  // namespace dias::engine
