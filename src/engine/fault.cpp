#include "engine/fault.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace dias::engine {

void interruptible_sleep_ms(double ms, const std::atomic<bool>& done,
                            const CancellationToken* cancel) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double, std::milli>(ms));
  while (!done.load(std::memory_order_acquire) &&
         !(cancel != nullptr && cancel->cancelled()) && clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

namespace {

// splitmix64 finalizer: a strong 64-bit mixer, also used to seed the
// engine Rng. Applied over a running hash of the decision coordinates it
// gives an independent uniform draw per (seed, stage, partition, attempt,
// salt) tuple without any shared state.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double uniform_draw(std::uint64_t seed, std::uint64_t stage_seq, std::uint64_t partition,
                    std::uint64_t attempt, std::uint64_t salt) {
  std::uint64_t h = mix(seed + salt);
  h = mix(h ^ stage_seq);
  h = mix(h ^ partition);
  h = mix(h ^ attempt);
  // Top 53 bits -> [0, 1), the same conversion the Rng uses.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kFailSalt = 0xFA11;
constexpr std::uint64_t kStragglerSalt = 0x51F0;

}  // namespace

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {
  DIAS_EXPECTS(config_.fail_prob >= 0.0 && config_.fail_prob <= 1.0,
               "fault fail_prob must be in [0,1]");
  DIAS_EXPECTS(config_.straggler_prob >= 0.0 && config_.straggler_prob <= 1.0,
               "fault straggler_prob must be in [0,1]");
  DIAS_EXPECTS(config_.straggler_delay_ms >= 0.0, "straggler delay must be >= 0");
}

bool FaultInjector::should_fail(std::uint64_t stage_seq, std::size_t partition,
                                int attempt) const {
  if (config_.fail_prob <= 0.0) return false;
  return uniform_draw(config_.seed, stage_seq, partition,
                      static_cast<std::uint64_t>(attempt), kFailSalt) < config_.fail_prob;
}

double FaultInjector::straggler_delay_ms(std::uint64_t stage_seq,
                                         std::size_t partition) const {
  if (config_.straggler_prob <= 0.0 || config_.straggler_delay_ms <= 0.0) return 0.0;
  const double u = uniform_draw(config_.seed, stage_seq, partition, 0, kStragglerSalt);
  return u < config_.straggler_prob ? config_.straggler_delay_ms : 0.0;
}

TaskFailedError::TaskFailedError(std::string stage, std::size_t partition, int attempts,
                                 const std::string& detail)
    : error("task failed for good: stage '" + stage + "', partition " +
            std::to_string(partition) + ", " + std::to_string(attempts) + " attempt(s)" +
            (detail.empty() ? "" : ": " + detail)),
      stage_(std::move(stage)),
      partition_(partition),
      attempts_(attempts) {}

}  // namespace dias::engine
