// Spill substrate for the memory-elastic shuffle (ISSUE 6).
//
// The two-phase shuffle keeps every segment resident between the write
// and merge phases, so dataset size — not theta — bounds what the engine
// can process. This header defines the engine-side half of the fix:
//
//   * SpillBackend — where encoded segments go when the shuffle's
//     estimated resident footprint crosses ShuffleOptions::
//     memory_budget_bytes. The interface is deliberately opaque (write
//     bytes -> handle, open handle -> chunk stream) so the engine never
//     learns about storage; the BlockStore-backed implementation lives in
//     src/storage/spill_store.hpp, respecting the dias_storage ->
//     dias_engine dependency direction.
//   * SpillCodec — a binary serde for the key/aggregate types the engine
//     actually shuffles (arithmetic types, strings, pairs, vectors).
//     Types without a codec still compile and shuffle in memory; asking
//     them to spill is a config_error at shuffle entry.
//   * encode/decode_spill_segment — the segment wire format: a 4-byte
//     magic, a 64-bit entry count, the entries back to back, then a
//     trailing 64-bit FNV-1a checksum over everything before it. The
//     decoder streams entries out of bounded chunks (never materializing
//     the segment) and treats any mismatch — bad magic, truncation,
//     trailing bytes, an entry-count lie, a checksum miss — as a corrupt
//     segment. The checksum is what turns a flipped payload byte (which
//     framing alone can decode into plausible-but-wrong entries) into a
//     detected fault; the chaos plane's corrupt-on-write shape is the
//     regression test for exactly that.
//
// Spilling never changes *what* segments exist, only *where* they live:
// segment boundaries stay a pure function of the input and
// target_buffer_bytes, and the merge phase visits spilled and resident
// segments in the same (src, seq) order. That is the invariant that keeps
// results bitwise identical with or without spill (see DESIGN.md §13).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace dias::engine {

// Sequential chunk stream over one spilled segment. Chunk sizing is the
// backend's choice (the block-store backend yields one block per call);
// callers only assume chunks arrive in order and concatenate to the
// written bytes.
class SpillReader {
 public:
  virtual ~SpillReader() = default;
  // Replaces `chunk` with the next run of bytes; false at end of segment.
  virtual bool next(std::string& chunk) = 0;
};

struct SpillStats {
  std::uint64_t segments_written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t segments_read = 0;
  std::uint64_t bytes_read = 0;
};

// Destination for spilled shuffle segments. Implementations must be
// thread-safe: shuffle write tasks spill concurrently from every worker
// slot, and merge tasks stream segments back concurrently per bucket.
class SpillBackend {
 public:
  virtual ~SpillBackend() = default;
  // Persists one encoded segment; the returned handle is opaque to the
  // engine and unique within this backend.
  virtual std::uint64_t write(const std::string& bytes) = 0;
  // Opens a previously written segment for streaming. Throws dias::error
  // when the segment is missing or unreadable.
  virtual std::unique_ptr<SpillReader> open(std::uint64_t handle) = 0;
  // Frees the segment's storage; called once per consumed segment and for
  // leftovers when the shuffle is torn down. Must tolerate a handle whose
  // storage already vanished.
  virtual void release(std::uint64_t handle) = 0;
  virtual SpillStats stats() const = 0;
};

namespace detail {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv1a_update(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

// Pull cursor over a SpillReader: bounds-checked reads across chunk
// boundaries, so decoders never hold more than one backend chunk. Keeps a
// running FNV-1a over every byte it hands out, so the segment decoder can
// verify the trailing checksum without a second pass.
class SpillCursor {
 public:
  explicit SpillCursor(std::unique_ptr<SpillReader> reader)
      : reader_(std::move(reader)) {}

  // Copies exactly `n` bytes into `dst`; truncation is corruption.
  void read(void* dst, std::size_t n) {
    auto* out = static_cast<char*>(dst);
    while (n > 0) {
      if (pos_ == chunk_.size() && !refill()) {
        throw error("corrupt spill segment: truncated");
      }
      const std::size_t take = std::min(n, chunk_.size() - pos_);
      std::memcpy(out, chunk_.data() + pos_, take);
      hash_ = fnv1a_update(hash_, chunk_.data() + pos_, take);
      pos_ += take;
      out += take;
      n -= take;
    }
  }

  // Appends exactly `n` bytes to `dst`, chunk by chunk — a corrupt length
  // prefix can only make this allocate as many bytes as the segment
  // actually holds before the truncation check fires.
  void read_append(std::string& dst, std::size_t n) {
    while (n > 0) {
      if (pos_ == chunk_.size() && !refill()) {
        throw error("corrupt spill segment: truncated");
      }
      const std::size_t take = std::min(n, chunk_.size() - pos_);
      dst.append(chunk_.data() + pos_, take);
      hash_ = fnv1a_update(hash_, chunk_.data() + pos_, take);
      pos_ += take;
      n -= take;
    }
  }

  // FNV-1a over all bytes consumed so far. Snapshot *before* reading a
  // stored checksum so the checksum bytes themselves stay out of the hash.
  std::uint64_t hash() const { return hash_; }

  // True when no bytes remain (pulls the next chunk to find out).
  bool exhausted() {
    while (pos_ == chunk_.size()) {
      if (!refill()) return true;
    }
    return false;
  }

  // Bytes pulled from the backend so far (consumed or buffered).
  std::size_t bytes_streamed() const { return bytes_streamed_; }

 private:
  bool refill() {
    chunk_.clear();
    pos_ = 0;
    while (reader_ != nullptr && reader_->next(chunk_)) {
      if (!chunk_.empty()) {
        bytes_streamed_ += chunk_.size();
        return true;
      }
    }
    reader_.reset();
    return false;
  }

  std::unique_ptr<SpillReader> reader_;
  std::string chunk_;
  std::size_t pos_ = 0;
  std::size_t bytes_streamed_ = 0;
  std::uint64_t hash_ = kFnvOffset;
};

// Binary serde for spillable types. The primary template is left
// undefined: a type is spillable exactly when a specialization below (or
// a user-provided one) applies, which is_spillable<T> detects.
template <typename T, typename Enable = void>
struct SpillCodec;

template <typename T, typename = void>
struct is_spillable : std::false_type {};
template <typename T>
struct is_spillable<T, std::void_t<decltype(SpillCodec<std::remove_cv_t<T>>::encode(
                           std::declval<const std::remove_cv_t<T>&>(),
                           std::declval<std::string&>()))>> : std::true_type {};

// Fixed-width little-endian-as-stored encoding for arithmetic types. The
// spill file never outlives the process, so native byte order is fine.
template <typename T>
struct SpillCodec<T, std::enable_if_t<std::is_arithmetic_v<T>>> {
  static void encode(const T& v, std::string& out) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  static T decode(SpillCursor& in) {
    T v;
    in.read(&v, sizeof(T));
    return v;
  }
};

template <>
struct SpillCodec<std::string, void> {
  static void encode(const std::string& v, std::string& out) {
    const std::uint64_t len = v.size();
    out.append(reinterpret_cast<const char*>(&len), sizeof(len));
    out.append(v);
  }
  static std::string decode(SpillCursor& in) {
    std::uint64_t len = 0;
    in.read(&len, sizeof(len));
    std::string v;
    in.read_append(v, static_cast<std::size_t>(len));
    return v;
  }
};

template <typename A, typename B>
struct SpillCodec<std::pair<A, B>,
                  std::enable_if_t<is_spillable<A>::value && is_spillable<B>::value>> {
  static void encode(const std::pair<A, B>& v, std::string& out) {
    SpillCodec<std::remove_cv_t<A>>::encode(v.first, out);
    SpillCodec<std::remove_cv_t<B>>::encode(v.second, out);
  }
  static std::pair<A, B> decode(SpillCursor& in) {
    auto first = SpillCodec<std::remove_cv_t<A>>::decode(in);
    auto second = SpillCodec<std::remove_cv_t<B>>::decode(in);
    return {std::move(first), std::move(second)};
  }
};

template <typename T>
struct SpillCodec<std::vector<T>, std::enable_if_t<is_spillable<T>::value>> {
  static void encode(const std::vector<T>& v, std::string& out) {
    const std::uint64_t len = v.size();
    out.append(reinterpret_cast<const char*>(&len), sizeof(len));
    for (const auto& x : v) SpillCodec<std::remove_cv_t<T>>::encode(x, out);
  }
  static std::vector<T> decode(SpillCursor& in) {
    std::uint64_t len = 0;
    in.read(&len, sizeof(len));
    std::vector<T> v;
    // No blind reserve: a corrupt length must hit the truncation check,
    // not bulk-allocate.
    for (std::uint64_t i = 0; i < len; ++i) {
      v.push_back(SpillCodec<std::remove_cv_t<T>>::decode(in));
    }
    return v;
  }
};

inline constexpr std::uint32_t kSpillMagic = 0x44535032;  // "DSP2": checksummed

// Accepts any contiguous Entry container (std::vector with any allocator —
// arena-backed segment vectors encode the same bytes as heap ones).
template <typename EntryVec>
std::string encode_spill_segment(const EntryVec& entries) {
  using Entry = typename EntryVec::value_type;
  std::string out;
  out.append(reinterpret_cast<const char*>(&kSpillMagic), sizeof(kSpillMagic));
  const std::uint64_t count = entries.size();
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& e : entries) SpillCodec<Entry>::encode(e, out);
  const std::uint64_t checksum = fnv1a_update(kFnvOffset, out.data(), out.size());
  out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  return out;
}

// Streams the segment's entries into `fn(Entry&&)` in stored order and
// returns the entry count. Every framing or checksum violation throws
// dias::error. The decoder is single-pass, so `fn` may see entries from a
// segment whose checksum later fails; callers must discard the attempt's
// partial state on throw — the shuffle merge does (a failed merge attempt
// drops its accumulator, and resident segments are copied, not consumed,
// whenever a backend is attached).
template <typename Entry, typename Fn>
std::size_t decode_spill_segment(SpillCursor& in, Fn&& fn) {
  std::uint32_t magic = 0;
  in.read(&magic, sizeof(magic));
  if (magic != kSpillMagic) {
    char msg[80];
    std::snprintf(msg, sizeof(msg),
                  "corrupt spill segment: bad magic 0x%08x (expected 0x%08x)",
                  magic, kSpillMagic);
    throw error(msg);
  }
  std::uint64_t count = 0;
  in.read(&count, sizeof(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    fn(SpillCodec<Entry>::decode(in));
  }
  const std::uint64_t computed = in.hash();
  std::uint64_t stored = 0;
  in.read(&stored, sizeof(stored));
  if (stored != computed) {
    throw error("corrupt spill segment: checksum mismatch");
  }
  if (!in.exhausted()) {
    throw error("corrupt spill segment: trailing bytes");
  }
  return static_cast<std::size_t>(count);
}

}  // namespace detail
}  // namespace dias::engine
