// Partitioned in-memory dataset -- the engine's RDD analogue.
//
// A Dataset<T> is an immutable list of partitions; the number of partitions
// bounds the parallelism of any stage that consumes it, exactly like RDD
// partitions in Spark. Dropped tasks leave empty partitions behind, so
// partition indices stay stable across stages.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace dias::engine {

template <typename T>
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::vector<T>> partitions)
      : partitions_(std::move(partitions)) {}

  std::size_t partitions() const { return partitions_.size(); }

  const std::vector<T>& partition(std::size_t i) const {
    DIAS_EXPECTS(i < partitions_.size(), "partition index out of range");
    return partitions_[i];
  }

  std::size_t total_size() const {
    std::size_t n = 0;
    for (const auto& p : partitions_) n += p.size();
    return n;
  }

  std::vector<T> collect() const {
    std::vector<T> out;
    out.reserve(total_size());
    for (const auto& p : partitions_) out.insert(out.end(), p.begin(), p.end());
    return out;
  }

 private:
  std::vector<std::vector<T>> partitions_;
};

}  // namespace dias::engine
