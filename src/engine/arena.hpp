// Per-worker-slot bump arenas backing shuffle segment storage (ISSUE 9).
//
// The shuffle write path used to allocate one heap vector per (flush,
// bucket) segment — on a wide machine that is out_partitions × flushes
// malloc/free pairs per input partition, all contending on the global
// allocator. A SegmentArena replaces them with bump-pointer allocation
// from chunks owned by one worker slot: allocation is a pointer add,
// deallocation is a no-op, and the chunks are recycled wholesale at the
// stage epoch boundary (Engine resets every slot arena after the merge
// phase consumed the sink).
//
// Determinism: the arena is a pure relocation of segment bytes. It never
// changes what a segment contains, how segments are bounded, or the
// (src, seq) merge order — only which allocator hands out the backing
// memory. The scale determinism battery sweeps arena on/off to prove it.
//
// Threading contract (asserted by the engine's use, exercised by
// arena_test):
//   - allocate() is single-owner: only the owning slot's worker thread
//     allocates, and only during the shuffle write phase.
//   - deallocate() may race with itself from other threads (merge tasks
//     release segments from many workers); it only touches atomics and
//     per-allocation ASan shadow, never the bump state.
//   - reset() is exclusive: the engine calls it from the driver thread
//     after the stage barrier, when no segment from the previous epoch is
//     alive. A container that outlives its epoch is a lifetime bug; under
//     AddressSanitizer recycled chunk memory is poisoned, so use-after-
//     recycle faults loudly instead of silently reading stale bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#if defined(__SANITIZE_ADDRESS__)
#define DIAS_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DIAS_ARENA_ASAN 1
#endif
#endif
#ifdef DIAS_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

#include "chaos/chaos.hpp"

namespace dias::engine::detail {

inline void arena_poison(const void* p, std::size_t n) {
#ifdef DIAS_ARENA_ASAN
  __asan_poison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

inline void arena_unpoison(const void* p, std::size_t n) {
#ifdef DIAS_ARENA_ASAN
  __asan_unpoison_memory_region(p, n);
#else
  (void)p;
  (void)n;
#endif
}

class SegmentArena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{256} << 10;  // 256 KiB
  // Offsets are kept 8-byte aligned so no two live allocations ever share
  // an ASan shadow granule — concurrent deallocate() poisoning from merge
  // tasks must never write the same shadow byte.
  static constexpr std::size_t kMinAlign = 8;

  explicit SegmentArena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 1024 ? 1024 : chunk_bytes) {}

  ~SegmentArena() {
    // ASan requires user-poisoned regions to be clean before the backing
    // allocation is returned to the real allocator.
    for (auto& chunk : chunks_) arena_unpoison(chunk.data.get(), chunk.size);
  }

  SegmentArena(const SegmentArena&) = delete;
  SegmentArena& operator=(const SegmentArena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    // engine.arena.alloc chaos point. Allocations have no scheduling-
    // independent identity, so the coordinate is a per-point op counter;
    // a kThrow here surfaces as a task failure the engine's FT path
    // absorbs (chaos arming forces that path). Disarmed cost: one
    // relaxed load behind the static-init guard.
    static chaos::InjectionPoint& chaos_alloc =
        chaos::ChaosPlane::instance().point(chaos::points::kArenaAlloc);
    if (chaos_alloc.armed()) chaos_alloc.inject(chaos_alloc.next_op(), bytes);
    if (align < kMinAlign) align = kMinAlign;
    while (active_ < chunks_.size()) {
      Chunk& chunk = chunks_[active_];
      const auto base = reinterpret_cast<std::uintptr_t>(chunk.data.get());
      const std::size_t offset =
          static_cast<std::size_t>(((base + chunk.used + align - 1) & ~(std::uintptr_t{align} - 1)) -
                                   base);
      if (offset + bytes <= chunk.size) {
        chunk.used = offset + bytes;
        if (chunk.used > chunk.high_water) chunk.high_water = chunk.used;
        std::byte* p = chunk.data.get() + offset;
        arena_unpoison(p, bytes);
        return p;
      }
      // Leave the remainder dead until the next epoch; the whole chunk is
      // recycled by reset() regardless of how full it got.
      ++active_;
    }
    const std::size_t size = bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
    if (size > chunk_bytes_) oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size, 0, 0});
    Chunk& chunk = chunks_.back();
    arena_poison(chunk.data.get(), chunk.size);
    return allocate(bytes, align);  // recurse once into the fresh chunk
  }

  // No-op release: bump memory is reclaimed only by reset(). Poisons the
  // region under ASan so any later read through a stale pointer (an
  // entry vector outliving its segment) faults immediately. Safe to call
  // concurrently from many threads for distinct allocations.
  void deallocate(const void* p, std::size_t bytes) noexcept {
    arena_poison(p, bytes);
    freed_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  // Starts a new epoch: every chunk is recycled (bump offset back to 0)
  // and all chunk memory is poisoned/scribbled dead until re-allocated.
  // Exclusive: no allocation from any epoch may be live.
  void reset() {
    for (auto& chunk : chunks_) {
      if (chunk.used != 0) ++recycled_chunks_;
      // Unpoison before the debug scribble (parts are already poisoned by
      // deallocate), then re-poison the whole capacity for the new epoch.
      arena_unpoison(chunk.data.get(), chunk.size);
#ifndef NDEBUG
      // Deterministic garbage: a container that survives reset() and is
      // read without ASan still sees obviously-wrong bytes, not stale
      // previous-epoch values that happen to look correct.
      if (chunk.high_water != 0) std::memset(chunk.data.get(), 0xAB, chunk.high_water);
#endif
      arena_poison(chunk.data.get(), chunk.size);
      chunk.used = 0;
      chunk.high_water = 0;
    }
    active_ = 0;
    ++epoch_;
  }

  std::uint64_t epoch() const { return epoch_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t reserved_bytes() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.size;
    return total;
  }
  // Bytes bumped out this epoch (high-water across chunks, not netted
  // against deallocate — bump memory is not reusable within an epoch).
  std::size_t used_bytes() const {
    std::size_t total = 0;
    for (const auto& chunk : chunks_) total += chunk.high_water;
    return total;
  }
  std::uint64_t recycled_chunks() const { return recycled_chunks_; }
  std::uint64_t oversize_allocs() const {
    return oversize_allocs_.load(std::memory_order_relaxed);
  }
  std::uint64_t freed_bytes() const {
    return freed_bytes_.load(std::memory_order_relaxed);
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;        // bump offset, this epoch
    std::size_t high_water = 0;  // max bump offset, this epoch
  };

  const std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // index of the chunk currently being bumped
  std::uint64_t epoch_ = 0;
  std::uint64_t recycled_chunks_ = 0;
  std::atomic<std::uint64_t> oversize_allocs_{0};
  std::atomic<std::uint64_t> freed_bytes_{0};  // deallocate() may race
};

// Minimal allocator adapter: null arena -> global operator new/delete
// (default-constructed segments, the overflow lane, tests), non-null ->
// bump allocation with no-op deallocate. Equality compares the arena
// pointer, so containers only swap/steal buffers between equal arenas;
// propagation on move/swap keeps the allocator with its buffer.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(SegmentArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  SegmentArena* arena() const noexcept { return arena_; }

 private:
  SegmentArena* arena_ = nullptr;
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return a.arena() == b.arena();
}
template <typename T, typename U>
bool operator!=(const ArenaAllocator<T>& a, const ArenaAllocator<U>& b) noexcept {
  return a.arena() != b.arena();
}

// The vector type shuffle segments store their entries in; a default-
// constructed one is heap-backed and behaves exactly like std::vector.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace dias::engine::detail
