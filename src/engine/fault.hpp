// Fault injection and fault-tolerance policy for the mini MapReduce engine.
//
// Production data-parallel engines treat task failure and slowdown as the
// common case; the paper's GRASS-style argument (Section 3.3, citation
// [11]) is that on a *droppable* stage a task that cannot be completed is
// cheaper to drop than to re-execute: the loss is bounded accuracy instead
// of unbounded latency. This header provides
//
//   * FaultInjector  - deterministic, seedable injection of per-attempt
//     task failures and per-task straggler slowdowns. Decisions are pure
//     hash functions of (seed, stage sequence number, partition, attempt),
//     so they are reproducible independent of thread scheduling and never
//     consume state from the engine's sequential Rng stream.
//   * FaultToleranceOptions - the engine-side policy: bounded per-task
//     retries with linear backoff, Spark-style speculative re-execution of
//     stage-tail stragglers, and approximation-aware degradation (a task
//     that exhausts its retries on a droppable stage becomes a dropped
//     partition, folded into the stage's effective drop ratio).
//   * TaskFailedError - typed error carrying stage name, partition id and
//     attempt count, thrown when a task dies for good on a stage that is
//     NOT allowed to degrade.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/cancellation.hpp"
#include "common/error.hpp"

namespace dias::engine {

// Sleeps roughly `ms`, returning early once `done` becomes true or the
// optional cancellation token fires. Used for injected straggler delays
// and retry backoff, so neither a speculative win nor a deadline cancel is
// held back by a sleeping loser — the retry/speculation paths are
// cancellation points, not blind waits.
void interruptible_sleep_ms(double ms, const std::atomic<bool>& done,
                            const CancellationToken* cancel = nullptr);

// What the injector should break. All probabilities are per decision:
// `fail_prob` is evaluated once per task *attempt* (so retries of a task
// re-roll), `straggler_prob` once per task (a straggler stays a straggler
// across its retries, like a task stuck on a sick node).
struct FaultConfig {
  double fail_prob = 0.0;          // P[injected failure] per attempt
  double straggler_prob = 0.0;     // P[task is a straggler]
  double straggler_delay_ms = 0.0; // extra latency injected per straggling attempt
  std::uint64_t seed = 0;          // independent of the engine seed
  // Restrict injection to droppable stages. Models experiments on the
  // degradation path specifically: critical (non-droppable) stages stay
  // healthy while approximate work absorbs the failures.
  bool droppable_only = false;
};

// Deterministic fault source. Thread-safe: all queries are const and pure.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config);

  // True when the injector can actually perturb execution.
  bool enabled() const {
    return config_.fail_prob > 0.0 ||
           (config_.straggler_prob > 0.0 && config_.straggler_delay_ms > 0.0);
  }

  const FaultConfig& config() const { return config_; }

  // Should attempt `attempt` (1-based) of `partition` in the stage with
  // sequence number `stage_seq` fail before doing any work?
  bool should_fail(std::uint64_t stage_seq, std::size_t partition, int attempt) const;

  // Extra delay injected into every primary attempt of this task; 0 for
  // non-stragglers. Speculative copies model re-execution on a healthy
  // node and are never delayed.
  double straggler_delay_ms(std::uint64_t stage_seq, std::size_t partition) const;

 private:
  FaultConfig config_;
};

// How retry delays grow with the attempt number (ISSUE 10 satellite a).
enum class BackoffPolicy {
  // PR 1's reference curve: sleep attempt * retry_backoff_ms, uncapped.
  // Kept reachable for the legacy determinism reference.
  kLinear,
  // Capped decorrelated jitter (the AWS "decorrelated" variant, made
  // stateless): d_1 = base, d_k = min(cap, base + u_k * (3 d_{k-1} - base))
  // with u_k an independent uniform drawn from the injection seed and the
  // (stage, partition, attempt) coordinates — deterministic under a fixed
  // seed, de-synchronized across tasks so retry storms never stampede the
  // same instant.
  kDecorrelatedJitter,
};

// Engine-wide fault-tolerance policy. The default configuration (one
// attempt, no injection, no speculation) makes the engine bypass the
// fault-tolerant execution path entirely, keeping the zero-fault hot path
// byte-identical to an engine without this subsystem.
struct FaultToleranceOptions {
  FaultConfig injection;
  // Attempts per task before it is declared dead (>= 1; 1 = no retry).
  int max_attempts = 1;
  // Base backoff between attempts; how it scales with the attempt number
  // is the BackoffPolicy's choice. 0 = no backoff under either policy.
  double retry_backoff_ms = 0.0;
  BackoffPolicy backoff = BackoffPolicy::kDecorrelatedJitter;
  // Ceiling for kDecorrelatedJitter delays (kLinear stays the exact
  // uncapped PR 1 curve).
  double retry_backoff_cap_ms = 250.0;
  // Spark-style speculation: once `speculation_quantile` of a stage's
  // tasks succeeded, re-submit a copy of every still-running task; the
  // first copy to complete the partition wins, the loser is discarded.
  bool speculation = false;
  double speculation_quantile = 0.75;

  // --- stall watchdog (ISSUE 10 tentpole, hardening 2) --------------------
  // Watch running tasks for stalls and speculate a copy of any task whose
  // current attempt exceeds the stall threshold — immediately, without
  // waiting for the speculation quantile. The threshold is
  //   max(stall_threshold_ms, stall_p95_multiplier * live task-time p95)
  // with the live p95 read from the attached obs histogram (engine.task_
  // time_s); detached or cold histograms contribute 0, leaving the
  // absolute floor. Speculation is content-preserving (exactly-once body
  // completion), so the timing-dependent launch decision never changes
  // result bytes — only when a healthy copy starts.
  bool stall_watchdog = false;
  double stall_threshold_ms = 0.0;      // absolute floor; 0 = p95 term only
  double stall_p95_multiplier = 4.0;

  // True when run_stage must take the fault-tolerant path at all.
  bool active() const {
    return max_attempts > 1 || speculation || stall_watchdog ||
           FaultInjector(injection).enabled();
  }
};

// Delay to sleep after failed attempt `attempt` (1-based), per the
// policy's curve. Pure: deterministic for fixed (options, coordinates).
double backoff_delay_ms(const FaultToleranceOptions& ft, std::uint64_t stage_seq,
                        std::size_t partition, int attempt);

// A task exhausted its retry budget on a stage that may not degrade.
// `detail`, when non-empty, carries the underlying cause (e.g. a spill
// backend I/O error) into the message.
class TaskFailedError : public error {
 public:
  TaskFailedError(std::string stage, std::size_t partition, int attempts,
                  const std::string& detail = {});

  const std::string& stage() const { return stage_; }
  std::size_t partition() const { return partition_; }
  int attempts() const { return attempts_; }

 private:
  std::string stage_;
  std::size_t partition_;
  int attempts_;
};

}  // namespace dias::engine
