// Two-phase shuffle internals for the mini MapReduce engine.
//
// The old shuffle pushed every record through a per-bucket std::mutex,
// which serializes the whole write side as soon as keys are skewed (every
// hot key hashes to the same lock). The two-phase design removes locks
// from the write path entirely:
//
//   Phase 1 (shuffle write, one task per input partition): each task
//     appends hash-partitioned Segments into buffers owned by its worker
//     slot (ThreadPool::current_slot()), so no two threads ever write the
//     same vector. With ShuffleOptions::combine the task first folds its
//     records through an open-addressing FlatMap (the map-side combiner),
//     flushing to segments whenever the scratch exceeds
//     target_buffer_bytes — Spark's spill, except the spill stays in
//     memory.
//
//   Phase 2 (merge, one task per output bucket): each task walks that
//     bucket's segments in (src partition, flush seq) order and merges
//     them into an insertion-ordered FlatMap. Because the visit order is a
//     pure function of the input (never of thread scheduling), the merged
//     output — including floating-point accumulation order and the final
//     entry order — is deterministic for a fixed engine seed.
//
// The stage barrier between the phases (futures joined in run_stage)
// provides the happens-before edge that lets merge tasks read every
// slot's buffers without synchronization.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace dias::engine {

// Tuning knobs for the shuffle in reduce_by_key / group_by_key /
// combine_by_key. The defaults are right for almost every workload;
// combine = false is mainly useful for benchmarking the raw shuffle.
struct ShuffleOptions {
  // Run the map-side combiner: fold records into a per-task
  // open-addressing hash map before they cross the shuffle, so each
  // distinct key ships once per flush instead of once per record.
  bool combine = true;
  // Soft budget for the combiner scratch map. When its estimated footprint
  // exceeds this the task flushes the map into its shuffle buffers and
  // starts over. The estimate counts entry and slot storage only (heap
  // payload of K/V is invisible to sizeof), so treat it as a knob, not a
  // hard memory bound.
  std::size_t target_buffer_bytes = std::size_t{1} << 20;
};

namespace detail {

// Mutex acquisitions taken by shuffle write paths since process start.
// The hot path is lock-free by construction; only a writer with no worker
// slot (a thread foreign to the engine's pool) falls back to the locked
// overflow lane, and each such fall-back increments this counter. Tests
// reset it and assert it stays 0 across full shuffles.
std::atomic<std::uint64_t>& shuffle_fallback_locks();

// Open-addressing (linear probing) hash map with insertion-ordered,
// movable entry storage. No erase, power-of-two slot table, indices into a
// dense entries vector — the shape used by both the map-side combiner and
// the merge accumulator, where iteration order must be deterministic and
// the entries are handed off wholesale at the end.
template <typename K, typename A, typename Hash = std::hash<K>>
class FlatMap {
 public:
  using Entry = std::pair<K, A>;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

  // Estimated footprint of entry + slot storage (heap payload excluded).
  std::size_t approx_bytes() const {
    return entries_.capacity() * sizeof(Entry) + slots_.capacity() * sizeof(std::uint32_t);
  }

  // Returns the aggregate for `key`; `make()` is invoked to create it only
  // when the key is new, and `*created` reports which case happened.
  template <typename Make>
  A& find_or_emplace(const K& key, Make make, bool* created) {
    if ((entries_.size() + 1) * 8 > slots_.size() * 5) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    for (;;) {
      const std::uint32_t s = slots_[i];
      if (s == kEmpty) {
        DIAS_EXPECTS(entries_.size() < kEmpty, "FlatMap entry count overflow");
        entries_.emplace_back(key, make());
        slots_[i] = static_cast<std::uint32_t>(entries_.size() - 1);
        *created = true;
        return entries_.back().second;
      }
      if (entries_[s].first == key) {
        *created = false;
        return entries_[s].second;
      }
      i = (i + 1) & mask;
    }
  }

  // Drops the entries but keeps the slot capacity, so a combiner reuses
  // its table across flushes.
  void clear() {
    entries_.clear();
    std::fill(slots_.begin(), slots_.end(), kEmpty);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  void grow() {
    const std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    slots_.assign(capacity, kEmpty);
    const std::size_t mask = capacity - 1;
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      std::size_t i = Hash{}(entries_[e].first) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = static_cast<std::uint32_t>(e);
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> slots_;
};

// One batch of (key, aggregate) entries produced by a single shuffle-write
// task (or one combiner flush of it) for a single output bucket. `src` is
// the input partition and `seq` the flush index within that task; together
// they give the merge phase its deterministic visit order.
template <typename K, typename A>
struct ShuffleSegment {
  std::size_t src = 0;
  std::size_t seq = 0;
  std::vector<std::pair<K, A>> entries;
};

// Collection point between the two phases. Writers append segments to
// per-(slot, bucket) vectors without synchronization; a writer without a
// slot takes the counted overflow mutex instead (never hit when stage
// bodies run on the engine's own pool). Readers may only call
// bucket_segments() after every writer finished (the stage barrier).
template <typename K, typename A>
class ShuffleSink {
 public:
  using Segment = ShuffleSegment<K, A>;

  ShuffleSink(std::size_t slots, std::size_t buckets)
      : per_slot_(slots, std::vector<std::vector<Segment>>(buckets)),
        overflow_(buckets) {}

  std::size_t buckets() const { return overflow_.size(); }

  void push(std::size_t slot, std::size_t bucket, Segment&& segment) {
    DIAS_EXPECTS(bucket < overflow_.size(), "shuffle bucket out of range");
    if (slot < per_slot_.size()) {
      per_slot_[slot][bucket].push_back(std::move(segment));
      return;
    }
    shuffle_fallback_locks().fetch_add(1, std::memory_order_relaxed);
    std::lock_guard guard(overflow_mu_);
    overflow_[bucket].push_back(std::move(segment));
  }

  // Every segment destined for `bucket`, sorted by (src, seq). Pointers
  // stay valid until the sink is destroyed; the caller may move from the
  // segments it receives.
  std::vector<Segment*> bucket_segments(std::size_t bucket) {
    DIAS_EXPECTS(bucket < overflow_.size(), "shuffle bucket out of range");
    std::vector<Segment*> out;
    for (auto& slot : per_slot_) {
      for (auto& segment : slot[bucket]) out.push_back(&segment);
    }
    for (auto& segment : overflow_[bucket]) out.push_back(&segment);
    std::sort(out.begin(), out.end(), [](const Segment* a, const Segment* b) {
      if (a->src != b->src) return a->src < b->src;
      return a->seq < b->seq;
    });
    return out;
  }

 private:
  std::vector<std::vector<std::vector<Segment>>> per_slot_;  // [slot][bucket]
  std::mutex overflow_mu_;
  std::vector<std::vector<Segment>> overflow_;  // [bucket], under overflow_mu_
};

}  // namespace detail
}  // namespace dias::engine
