// Two-phase shuffle internals for the mini MapReduce engine.
//
// The old shuffle pushed every record through a per-bucket std::mutex,
// which serializes the whole write side as soon as keys are skewed (every
// hot key hashes to the same lock). The two-phase design removes locks
// from the write path entirely:
//
//   Phase 1 (shuffle write, one task per input partition): each task
//     appends hash-partitioned Segments into buffers owned by its worker
//     slot (ThreadPool::current_slot()), so no two threads ever write the
//     same vector. With ShuffleOptions::combine the task first folds its
//     records through an open-addressing FlatMap (the map-side combiner),
//     flushing to segments whenever the scratch exceeds
//     target_buffer_bytes.
//
//   Phase 2 (merge, one task per output bucket): each task walks that
//     bucket's segments in (src partition, flush seq) order and merges
//     them into an insertion-ordered FlatMap. Because the visit order is a
//     pure function of the input (never of thread scheduling), the merged
//     output — including floating-point accumulation order and the final
//     entry order — is deterministic for a fixed engine seed.
//
// Memory elasticity: with a finite ShuffleOptions::memory_budget_bytes
// and a SpillBackend attached, the sink tracks the estimated resident
// footprint of all segments (plus combiner scratch, reported by the write
// tasks through adjust_scratch) and, when it crosses the budget, encodes
// the spilling slot's resident segments and hands them to the backend.
// The merge phase streams spilled segments back through consume() in the
// same (src, seq) position they would have occupied resident. With a
// backend attached consume() is non-destructive and the merge body frees
// its bucket through commit_bucket() only after the whole body succeeded,
// so a spill I/O error (or user functor throw) mid-bucket leaves every
// segment intact for the fault-tolerant retry — merge bodies really are
// idempotent, not just assumed to be.
//
// The determinism contract: spilling is content-preserving. It never
// changes segment boundaries, entry order within a segment, or the merge
// visit order — only where the bytes live between the phases. Segment
// boundaries are a pure function of the input and target_buffer_bytes
// (never of the budget, the worker count, or runtime state), which is why
// outputs stay bitwise identical with or without spill at any worker
// count. The spill *trigger* may race across slots — that is fine,
// because triggering only relocates bytes. See DESIGN.md §13.
//
// The stage barrier between the phases (futures joined in run_stage)
// provides the happens-before edge that lets merge tasks read every
// slot's buffers without synchronization.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "engine/arena.hpp"
#include "engine/breaker.hpp"
#include "engine/spill.hpp"
#include "obs/metrics.hpp"

namespace dias::engine {

namespace detail {
// Budget resolved from DIAS_SHUFFLE_BUDGET_BYTES if set (parsed once),
// else 0 (unbounded). The env hook is how CI's low-memory leg forces
// every `-L spill` test through the spill path without per-test
// plumbing.
std::size_t default_shuffle_budget();
}  // namespace detail

// Tuning knobs for the shuffle in reduce_by_key / group_by_key /
// combine_by_key. The defaults are right for almost every workload;
// combine = false is mainly useful for benchmarking the raw shuffle.
struct ShuffleOptions {
  // Run the map-side combiner: fold records into a per-task
  // open-addressing hash map before they cross the shuffle, so each
  // distinct key ships once per flush instead of once per record.
  bool combine = true;
  // Soft budget for the combiner scratch map — and, symmetrically, the
  // chunk size for raw (combine = false) ships. When the scratch footprint
  // exceeds this the task flushes the map into its shuffle buffers and
  // starts over. The estimate counts entry and slot storage only (heap
  // payload of K/V is invisible to sizeof), so treat it as a knob, not a
  // hard memory bound. Segment boundaries — and therefore shuffle output
  // — depend on this value, never on memory_budget_bytes.
  std::size_t target_buffer_bytes = std::size_t{1} << 20;
  // Sentinel for memory_budget_bytes: resolve the budget from
  // DIAS_SHUFFLE_BUDGET_BYTES at shuffle entry (unbounded when unset).
  static constexpr std::size_t kBudgetFromEnv = static_cast<std::size_t>(-1);
  // Hard budget for resident shuffle state (segments awaiting merge plus
  // combiner scratch, estimated as entry storage). 0 means unbounded.
  // An *explicit* finite budget requires a spill backend (here or on the
  // Engine) and spillable key/aggregate types, and must be at least the
  // size of one shuffled record; violations are config_error at shuffle
  // entry. The kBudgetFromEnv default is lenient instead: a process-wide
  // env budget applies only to shuffles that can actually spill and is
  // silently ignored otherwise, so exporting the variable never breaks
  // programs that never opted into spilling.
  std::size_t memory_budget_bytes = kBudgetFromEnv;
  // Per-shuffle spill destination; when null the Engine's attached
  // backend (Engine::set_spill_backend) is used.
  SpillBackend* spill = nullptr;
};

namespace detail {

// Mutex acquisitions taken by shuffle write paths since process start.
// The hot path is lock-free by construction; only a writer with no worker
// slot (a thread foreign to the engine's pool) falls back to the locked
// overflow lane, and each such fall-back increments this counter. Tests
// reset it and assert it stays 0 across full shuffles.
std::atomic<std::uint64_t>& shuffle_fallback_locks();

// Open-addressing (linear probing) hash map with insertion-ordered,
// movable entry storage. No erase, power-of-two slot table, indices into a
// dense entries vector — the shape used by both the map-side combiner and
// the merge accumulator, where iteration order must be deterministic and
// the entries are handed off wholesale at the end.
template <typename K, typename A, typename Hash = std::hash<K>>
class FlatMap {
 public:
  using Entry = std::pair<K, A>;

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

  // Estimated footprint of entry + slot storage (heap payload excluded).
  std::size_t approx_bytes() const {
    return entries_.capacity() * sizeof(Entry) + slots_.capacity() * sizeof(std::uint32_t);
  }

  // Returns the aggregate for `key`; `make()` is invoked to create it only
  // when the key is new, and `*created` reports which case happened.
  template <typename Make>
  A& find_or_emplace(const K& key, Make make, bool* created) {
    if ((entries_.size() + 1) * 8 > slots_.size() * 5) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key) & mask;
    for (;;) {
      const std::uint32_t s = slots_[i];
      if (s == kEmpty) {
        DIAS_EXPECTS(entries_.size() < kEmpty, "FlatMap entry count overflow");
        entries_.emplace_back(key, make());
        slots_[i] = static_cast<std::uint32_t>(entries_.size() - 1);
        *created = true;
        return entries_.back().second;
      }
      if (entries_[s].first == key) {
        *created = false;
        return entries_[s].second;
      }
      i = (i + 1) & mask;
    }
  }

  // Drops the entries but keeps the slot capacity, so a combiner reuses
  // its table across flushes.
  void clear() {
    entries_.clear();
    std::fill(slots_.begin(), slots_.end(), kEmpty);
  }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  void grow() {
    const std::size_t capacity = slots_.empty() ? 16 : slots_.size() * 2;
    slots_.assign(capacity, kEmpty);
    const std::size_t mask = capacity - 1;
    for (std::size_t e = 0; e < entries_.size(); ++e) {
      std::size_t i = Hash{}(entries_[e].first) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = static_cast<std::uint32_t>(e);
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> slots_;
};

// One batch of (key, aggregate) entries produced by a single shuffle-write
// task (or one combiner flush of it) for a single output bucket. `src` is
// the input partition and `seq` the flush index within that task; together
// they give the merge phase its deterministic visit order. A segment that
// was pushed over budget has `spilled` set: its entries live in the spill
// backend under `spill_id` (encoded as `spill_bytes` bytes holding
// `spill_entries` entries) and `entries` stays empty while spilled.
// `consumed` marks a segment whose entries are gone for good (moved out by
// a destructive consume() or freed by commit_bucket()); consuming it again
// is a loud error, never a silent zero-entry merge.
template <typename K, typename A>
struct ShuffleSegment {
  using EntryVec = ArenaVector<std::pair<K, A>>;

  std::size_t src = 0;
  std::size_t seq = 0;
  // Arena-backed when the write task ran on a slot with a SegmentArena
  // (heap-backed otherwise — default construction, the overflow lane);
  // either way the bytes, boundaries and order are identical.
  EntryVec entries;
  std::uint64_t spill_id = 0;
  std::size_t spill_entries = 0;
  std::size_t spill_bytes = 0;
  bool spilled = false;
  bool consumed = false;
};

// Reusable scratch for radix_split: one bucket id per entry plus a bucket
// histogram. Owned per write task, reused across its combiner flushes so
// the pass-1 buffers are allocated once per stage, not once per flush.
struct RadixScratch {
  std::vector<std::uint32_t> bucket_of;
  std::vector<std::size_t> counts;
};

// Radix-style two-pass hash partitioner for the shuffle write path
// (ISSUE 9 tentpole d). Pass 1 is a tight hash-only loop that writes each
// entry's bucket id into flat scratch and builds the per-bucket histogram
// (no data movement, SIMD/prefetch friendly); pass 2 reserves each bucket
// segment at its exact final size — from `arena` when one is supplied —
// and scatters entries in input order. The scatter is stable, and the
// bucket assignment is the same `hasher(key) % buckets` the old push_back
// loop used, so every emitted segment is byte-for-byte what the one-pass
// code produced; only allocation traffic changes (one exact-sized
// allocation per non-empty bucket instead of geometric growth).
// `emit(bucket, ArenaVector<Entry>&&)` is called in ascending bucket order
// for non-empty buckets only.
template <typename Entry, typename Hasher, typename Emit>
void radix_split(std::vector<Entry>&& entries, std::size_t buckets, const Hasher& hasher,
                 RadixScratch& scratch, SegmentArena* arena, Emit&& emit) {
  const std::size_t n = entries.size();
  scratch.bucket_of.resize(n);
  scratch.counts.assign(buckets, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = static_cast<std::uint32_t>(hasher(entries[i].first) % buckets);
    scratch.bucket_of[i] = b;
    ++scratch.counts[b];
  }
  std::vector<ArenaVector<Entry>> split;
  split.reserve(buckets);
  for (std::size_t b = 0; b < buckets; ++b) {
    split.emplace_back(ArenaAllocator<Entry>(arena));
    if (scratch.counts[b] != 0) split.back().reserve(scratch.counts[b]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    split[scratch.bucket_of[i]].push_back(std::move(entries[i]));
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    if (!split[b].empty()) emit(b, std::move(split[b]));
  }
}

// Sink configuration resolved by the Engine for one shuffle: the
// effective budget, the backend to spill through, and the registry
// counter behind the overflow lane. Default-constructed means unbounded /
// never spill / no counter.
struct SpillPolicy {
  std::size_t budget_bytes = 0;  // 0 = unbounded
  SpillBackend* backend = nullptr;
  // Registry export for shuffle_fallback_locks() bumps, scoped to this
  // sink so no engine ever pushes through another registry's (or a
  // destroyed registry's) counter. The owning registry must outlive the
  // shuffle — the same lifetime every other engine counter already has.
  obs::Counter* fallback_counter = nullptr;
  // Circuit breaker governing spill WRITES (ISSUE 10). With a breaker
  // attached, a failed or breaker-denied write keeps the segment resident
  // (spilling is pure relocation, so in-memory is always a sound
  // fallback) and feeds the breaker; reads are never denied but their
  // failures feed it too. Null (the default, and every directly
  // constructed test sink) keeps the PR 6 semantics: write failures
  // propagate out of push() like any spill I/O error.
  SpillBreaker* breaker = nullptr;
};

// Collection point between the two phases. Writers append segments to
// per-(slot, bucket) vectors without synchronization; a writer without a
// slot takes the counted overflow mutex instead (never hit when stage
// bodies run on the engine's own pool). Readers may only call
// bucket_segments() / consume() after every writer finished (the stage
// barrier).
//
// With a finite SpillPolicy, each push updates a global resident-bytes
// estimate; when it crosses the budget, the pushing slot encodes and
// spills every resident segment it owns. Only the pushing slot's segments
// are touched — no cross-slot access, so the write path stays
// synchronization-free. The overflow lane is never accounted or spilled:
// only foreign threads reach it, and the budget governs the engine's own
// worker slots.
template <typename K, typename A>
class ShuffleSink {
 public:
  using Segment = ShuffleSegment<K, A>;
  using Entry = std::pair<K, A>;
  static constexpr bool kSpillable = is_spillable<Entry>::value;

  ShuffleSink(std::size_t slots, std::size_t buckets, SpillPolicy policy = {})
      : policy_(policy), slots_(slots, SlotState(buckets)), overflow_(buckets) {}

  ~ShuffleSink() {
    // Segments the merge phase never consumed (dropped buckets, aborted
    // stages) would otherwise leak backend storage.
    if (policy_.backend == nullptr) return;
    for (auto& state : slots_) {
      for (auto& bucket : state.buckets) {
        for (auto& segment : bucket) {
          if (!segment.spilled) continue;
          try {
            policy_.backend->release(segment.spill_id);
          } catch (...) {  // NOLINT(bugprone-empty-catch): teardown best effort
          }
        }
      }
    }
  }

  ShuffleSink(const ShuffleSink&) = delete;
  ShuffleSink& operator=(const ShuffleSink&) = delete;

  std::size_t buckets() const { return overflow_.size(); }

  void push(std::size_t slot, std::size_t bucket, Segment&& segment) {
    DIAS_EXPECTS(bucket < overflow_.size(), "shuffle bucket out of range");
    if (slot < slots_.size()) {
      const std::size_t bytes = segment.entries.size() * sizeof(Entry);
      auto& state = slots_[slot];
      state.buckets[bucket].push_back(std::move(segment));
      state.resident_bytes += bytes;
      resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      if (policy_.budget_bytes != 0) maybe_spill(slot);
      return;
    }
    shuffle_fallback_locks().fetch_add(1, std::memory_order_relaxed);
    if (policy_.fallback_counter != nullptr) policy_.fallback_counter->add();
    std::lock_guard guard(overflow_mu_);
    overflow_[bucket].push_back(std::move(segment));
  }

  // Write tasks report combiner-scratch growth/shrink here so scratch
  // counts against the budget. A positive delta may trigger the slot's
  // resident segments to spill; the scratch itself never spills (it flushes
  // through push() at target_buffer_bytes like always), so scratch bytes
  // influence *when* segments relocate but never *what* they contain.
  void adjust_scratch(std::size_t slot, std::ptrdiff_t delta) {
    if (slot >= slots_.size() || delta == 0) return;
    resident_bytes_.fetch_add(static_cast<std::size_t>(delta), std::memory_order_relaxed);
    if (delta > 0 && policy_.budget_bytes != 0) maybe_spill(slot);
  }

  // Every segment destined for `bucket`, sorted by (src, seq). Pointers
  // stay valid until the sink is destroyed; the caller may move from the
  // segments it receives. A retried write task can leave duplicate
  // (src, seq) segments behind — complete and identical by the
  // determinism contract, since segment boundaries are a pure function of
  // the input — so equal positions collapse to one copy (preferring a
  // resident one) instead of double-counting records.
  std::vector<Segment*> bucket_segments(std::size_t bucket) {
    DIAS_EXPECTS(bucket < overflow_.size(), "shuffle bucket out of range");
    std::vector<Segment*> out;
    for (auto& state : slots_) {
      for (auto& segment : state.buckets[bucket]) out.push_back(&segment);
    }
    for (auto& segment : overflow_[bucket]) out.push_back(&segment);
    std::sort(out.begin(), out.end(), [](const Segment* a, const Segment* b) {
      if (a->src != b->src) return a->src < b->src;
      if (a->seq != b->seq) return a->seq < b->seq;
      return a->spilled < b->spilled;
    });
    out.erase(std::unique(out.begin(), out.end(),
                          [](const Segment* a, const Segment* b) {
                            return a->src == b->src && a->seq == b->seq;
                          }),
              out.end());
    return out;
  }

  // Feeds the segment's entries to `fn(Entry&&)` in stored order — straight
  // from memory for resident segments, streamed back from the backend for
  // spilled ones — and returns the entry count.
  //
  // With a spill backend attached, consume() is NON-destructive so the
  // merge body stays idempotent for the retry path: resident entries are
  // fed as copies and spilled segments keep their backend storage. The
  // body frees the bucket with commit_bucket() after it fully succeeded;
  // a failed attempt (spill I/O error, user functor throw) leaves every
  // segment intact for the next attempt. Without a backend nothing inside
  // consume() can throw mid-bucket except the user functor, so the legacy
  // destructive fast path stands — guarded by `consumed` so a re-entered
  // body fails loudly instead of merging silently empty segments.
  template <typename Fn>
  std::size_t consume(Segment& segment, Fn&& fn) {
    if (segment.consumed) {
      throw error(
          "shuffle merge re-entered a consumed segment (non-idempotent retry "
          "after a mid-bucket failure); its entries are gone");
    }
    if (!segment.spilled) {
      // Move-only entry types are never spillable, so they never see an
      // attached backend; compiling the copy lane out keeps them building.
      if constexpr (std::is_copy_constructible_v<Entry>) {
        if (policy_.backend != nullptr) {
          for (auto& entry : segment.entries) fn(Entry(entry));
          return segment.entries.size();
        }
      }
      segment.consumed = true;
      const std::size_t count = segment.entries.size();
      for (auto& entry : segment.entries) fn(std::move(entry));
      release_entries(segment);
      return count;
    }
    if constexpr (kSpillable) {
      // Stream-back feeds the breaker: reads are never denied (the data
      // lives only on the backend), but their failures count — a disk
      // that cannot be read should stop taking writes. A user-functor
      // throw mid-stream is indistinguishable here and counts too; that
      // only makes the breaker trip conservatively, and it gates nothing
      // but writes.
      std::size_t count = 0;
      try {
        SpillCursor cursor(policy_.backend->open(segment.spill_id));
        count = decode_spill_segment<Entry>(cursor, fn);
        if (count != segment.spill_entries) {
          throw error("corrupt spill segment: entry count mismatch");
        }
      } catch (const error&) {
        if (policy_.breaker != nullptr) policy_.breaker->record_failure();
        throw;
      }
      if (policy_.breaker != nullptr) policy_.breaker->record_success();
      restored_segments_.fetch_add(1, std::memory_order_relaxed);
      return count;
    } else {
      // A segment can only be marked spilled through spill paths that are
      // compiled out for non-spillable entries.
      throw error("spilled segment of non-spillable entry type");
    }
  }

  // Post-body step of the merge phase: after a bucket's body completed,
  // frees its resident entries and releases its spilled segments' backend
  // storage. Runs at most once per bucket (the stage layer guarantees a
  // body never *completes* twice) and never throws — release failures are
  // swallowed like the destructor's, so a completed bucket can never be
  // retried into a half-freed state. Skipped buckets (dropped merge
  // tasks) keep their storage until the destructor.
  void commit_bucket(std::size_t bucket) {
    if (policy_.backend == nullptr) return;  // destructive consume already freed
    DIAS_EXPECTS(bucket < overflow_.size(), "shuffle bucket out of range");
    auto commit = [this](Segment& segment) {
      if (segment.spilled) {
        try {
          policy_.backend->release(segment.spill_id);
        } catch (...) {  // NOLINT(bugprone-empty-catch): best effort, like teardown
        }
        segment.spilled = false;
      }
      release_entries(segment);
      segment.consumed = true;
    };
    for (auto& state : slots_) {
      for (auto& segment : state.buckets[bucket]) commit(segment);
    }
    for (auto& segment : overflow_[bucket]) commit(segment);
  }

  std::size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t spilled_segments() const {
    return spilled_segments_.load(std::memory_order_relaxed);
  }
  std::uint64_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t restored_segments() const {
    return restored_segments_.load(std::memory_order_relaxed);
  }
  // Segments that stayed resident because the breaker denied the write or
  // the backend failed it ("degraded to in-memory", vs "retried clean").
  std::uint64_t fallback_segments() const {
    return fallback_segments_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_failures() const {
    return write_failures_.load(std::memory_order_relaxed);
  }

 private:
  // Frees a segment's entry storage through ITS OWN allocator: swapping in
  // a plain std::vector would be UB once entries are arena-backed (unequal
  // allocators), and for arena memory "free" is a no-op anyway — the bytes
  // come back at the engine's epoch reset.
  static void release_entries(Segment& segment) {
    typename Segment::EntryVec(segment.entries.get_allocator()).swap(segment.entries);
  }

  // Cache-line aligned: each slot's state is written only by its owning
  // worker during the write phase; without the padding, neighboring slots'
  // push bookkeeping would false-share one line.
  struct alignas(obs::kCacheLineBytes) SlotState {
    explicit SlotState(std::size_t buckets) : buckets(buckets) {}
    std::vector<std::vector<Segment>> buckets;
    // Bytes of this slot's resident segment entries — lets maybe_spill
    // skip the O(buckets) sweep when this slot has nothing left to spill
    // (e.g. scratch growth alone keeps re-crossing the budget).
    std::size_t resident_bytes = 0;
  };

  void maybe_spill(std::size_t slot) {
    if constexpr (kSpillable) {
      if (resident_bytes_.load(std::memory_order_relaxed) <= policy_.budget_bytes) return;
      auto& state = slots_[slot];
      if (state.resident_bytes == 0) return;
      for (auto& bucket : state.buckets) {
        for (auto& segment : bucket) {
          if (!segment.spilled && !segment.entries.empty()) spill_segment(state, segment);
        }
      }
    }
  }

  void spill_segment(SlotState& state, Segment& segment) {
    if constexpr (kSpillable) {
      // Breaker-governed write: an open breaker keeps the segment resident
      // without touching the dead backend; a failed write does the same
      // and records the failure. Either way the shuffle degrades to the
      // in-memory path it already supports bit-for-bit — the budget is
      // overshot, the bytes are intact.
      if (policy_.breaker != nullptr && !policy_.breaker->allow()) {
        fallback_segments_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const std::size_t bytes = segment.entries.size() * sizeof(Entry);
      const std::string encoded = encode_spill_segment(segment.entries);
      std::uint64_t id = 0;
      if (policy_.breaker != nullptr) {
        try {
          id = policy_.backend->write(encoded);
        } catch (const error&) {
          policy_.breaker->record_failure();
          write_failures_.fetch_add(1, std::memory_order_relaxed);
          fallback_segments_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        policy_.breaker->record_success();
      } else {
        id = policy_.backend->write(encoded);
      }
      segment.spill_id = id;
      segment.spill_entries = segment.entries.size();
      segment.spill_bytes = encoded.size();
      segment.spilled = true;
      release_entries(segment);
      state.resident_bytes -= bytes;
      resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      spilled_segments_.fetch_add(1, std::memory_order_relaxed);
      spilled_bytes_.fetch_add(segment.spill_bytes, std::memory_order_relaxed);
    }
  }

  SpillPolicy policy_;
  std::vector<SlotState> slots_;
  std::mutex overflow_mu_;
  std::vector<std::vector<Segment>> overflow_;  // [bucket], under overflow_mu_
  // Estimated resident footprint: segment entry storage across all slots
  // plus reported combiner scratch. Relaxed is fine — the value only
  // decides when to relocate bytes, never what they are. Every slot's
  // budgeted push RMWs this word, so it gets its own cache line away from
  // the colder spill counters (and the members above).
  alignas(obs::kCacheLineBytes) std::atomic<std::size_t> resident_bytes_{0};
  alignas(obs::kCacheLineBytes) std::atomic<std::uint64_t> spilled_segments_{0};
  std::atomic<std::uint64_t> spilled_bytes_{0};
  std::atomic<std::uint64_t> restored_segments_{0};
  std::atomic<std::uint64_t> fallback_segments_{0};
  std::atomic<std::uint64_t> write_failures_{0};
};

}  // namespace detail
}  // namespace dias::engine
