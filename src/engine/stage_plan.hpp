// Per-stage execution strategy plans (ISSUE 8 tentpole).
//
// A StagePlan is the unit of self-tuning: a small value object describing
// how one stage should deviate from its static configuration. Plans are
// *produced* above the engine (runtime::AdaptivePlanner reads the obs
// registry at stage boundaries and decides) and *applied* inside it
// (StageOptions carries an optional plan; Engine::combine_by_key and
// run_stage consult it). Keeping the plan type here — not in runtime —
// lets analytics jobs accept a planner through the abstract PlanSource
// without depending on the runtime layer.
//
// The determinism contract (see DESIGN.md §15): every knob a plan may set
// must be content-preserving for the stage it is applied to. Relocating
// work (partition counts, the single-thread route, spill budgets,
// speculation) is always safe — per-key merge order is (src, seq), a pure
// function of the *input* partitioning, so resizing the *output* side or
// moving bytes through the spill backend cannot change a single result
// bit. Reordering work (combiner on/off, combiner buffer size) changes
// per-key accumulation order and is only bit-safe for order-insensitive
// aggregations (integral sums and the like); planners must gate those two
// knobs on StageTraits::order_insensitive, and the plan-determinism test
// battery enforces the whole table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace dias::engine {

// One stage's adaptive overrides. Every field defaults to "keep the
// static configuration", so a default-constructed plan is the identity.
struct StagePlan {
  // Map-side combiner on/off (ShuffleOptions::combine). Only bit-safe
  // when the aggregation is order-insensitive.
  std::optional<bool> combine;
  // Replacement for the caller's out_partitions; 0 keeps the default.
  // Ignored (and unsafe to apply) on droppable merge stages running with
  // theta > 0, where the bucket count is part of the drop semantics —
  // Engine::combine_by_key skips it there.
  std::size_t partitions = 0;
  // Route the whole shuffle through a single output bucket: one merge
  // task, no parallel merge machinery. Wins for shuffles far below the
  // per-bucket overhead crossover. Takes precedence over `partitions`.
  bool single_thread = false;
  // Per-stage speculation toggle (overrides FaultToleranceOptions::
  // speculation for this stage only). Exactly-once body completion makes
  // this content-preserving by construction.
  std::optional<bool> speculate;
  // Combiner scratch / raw-chunk budget (ShuffleOptions::
  // target_buffer_bytes). Changes segment boundaries, hence per-key
  // partial-aggregate structure: order-insensitive aggregations only.
  std::optional<std::size_t> target_buffer_bytes;
  // Spill budget hint (ShuffleOptions::memory_budget_bytes). Applied only
  // when a spill backend is reachable (per-shuffle or engine-wide), so a
  // hint can never turn into a config_error on an engine that cannot
  // spill. Spilling is content-preserving (DESIGN.md §13).
  std::optional<std::size_t> spill_budget_bytes;
  // Monotonic decision sequence number stamped by the planner; purely
  // informational (traces, tests).
  std::uint64_t decision_seq = 0;

  bool is_identity() const {
    return !combine.has_value() && partitions == 0 && !single_thread &&
           !speculate.has_value() && !target_buffer_bytes.has_value() &&
           !spill_budget_bytes.has_value();
  }

  // Compact human-readable form for traces and CLI output, e.g.
  // "combine=on parts=16 st=0 spec=off buf=- spill=-".
  std::string summary() const;
};

// What a planner is allowed to adapt on a given stage, plus sizing hints.
// Callers (analytics jobs, user pipelines) describe each plannable stage
// once; the planner masks its knobs accordingly.
struct StageTraits {
  std::string name = "stage";
  // The statically configured shuffle width the plan would override.
  std::size_t default_partitions = 0;
  // True only when the stage's aggregation is bitwise order-insensitive
  // (integral sums, max/min, set union...). Gates the combiner toggle and
  // buffer resize; floating-point reductions must leave this false.
  bool order_insensitive = false;
  bool allow_repartition = true;
  bool allow_single_thread = true;
  bool allow_speculation = true;
  bool allow_spill_hint = true;
  // Optional hint: number of input partitions feeding the stage.
  std::size_t input_partitions = 0;
};

// Strategy provider consulted at stage boundaries. Implemented by
// runtime::AdaptivePlanner; tests use scripted sources. plan_for() must be
// cheap (it runs between stages, never inside one) and deterministic for a
// fixed observation history.
class PlanSource {
 public:
  virtual ~PlanSource() = default;
  virtual StagePlan plan_for(const StageTraits& traits) = 0;
};

}  // namespace dias::engine
