#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

#include "chaos/chaos.hpp"
#include "common/error.hpp"

namespace dias::engine {
namespace {

// Which pool (if any) owns the current thread, and under which slot. A
// worker thread belongs to exactly one pool for its whole lifetime, so a
// plain thread_local pair is enough to answer current_slot() for any pool.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t slot = ThreadPool::kNoSlot;
};
thread_local WorkerIdentity tl_worker;

}  // namespace

// One stage wave: the single queue entry behind a batched run_indexed.
// `next` is the only word every lane hammers, so it gets its own cache
// line away from the mutex-guarded bookkeeping. Lane bookkeeping
// (entered/exited/executed/retired) is guarded by the POOL's mutex_ —
// lanes enter only while the wave sits un-retired at the queue front, and
// retirement pops it in the same critical section, so `entered` is frozen
// once `retired` is set and the last lane out (exited == entered after
// retirement) owns completion.
struct ThreadPool::Wave {
  Wave(const std::function<void(std::size_t)>& body_in, std::size_t count_in,
       const CancellationToken* cancel_in, std::uint64_t seq_in)
      : body(body_in), count(count_in), cancel(cancel_in), seq(seq_in) {}

  // Borrowed from the caller's frame: run_indexed blocks on the latch
  // until every lane is done using it.
  const std::function<void(std::size_t)>& body;
  const std::size_t count;
  const CancellationToken* const cancel;
  // Monotonic per-pool wave id: the scheduling-independent coordinate the
  // pool.wave chaos point hashes together with the stolen index.
  const std::uint64_t seq;

  // Hot: one fetch_add per index, from every lane concurrently.
  alignas(obs::kCacheLineBytes) std::atomic<std::size_t> next{0};

  // Cold bookkeeping, guarded by ThreadPool::mutex_.
  alignas(obs::kCacheLineBytes) std::size_t entered = 0;
  std::size_t exited = 0;
  std::size_t executed = 0;  // bodies actually run (< count under cancel)
  bool retired = false;      // removed from the queue; no new lanes

  std::mutex error_mu;
  std::exception_ptr first_error;

  // Completion latch the caller blocks on.
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool done = false;
};

ThreadPool::ThreadPool(std::size_t workers, std::size_t reserve, bool batched_waves)
    : base_(workers), active_limit_(workers), batched_waves_(batched_waves),
      executed_(workers + reserve + 1) {
  DIAS_EXPECTS(workers >= 1, "thread pool needs at least one worker");
  const std::size_t total = workers + reserve;
  threads_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

std::size_t ThreadPool::current_slot() const {
  return tl_worker.pool == this ? tl_worker.slot : kNoSlot;
}

std::size_t ThreadPool::calling_thread_slot() { return tl_worker.slot; }

std::size_t ThreadPool::active_workers() {
  std::lock_guard lock(mutex_);
  return active_limit_;
}

std::size_t ThreadPool::lease_extra_workers(std::size_t extra) {
  std::size_t granted;
  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    granted = std::min(extra, threads_.size() - active_limit_);
    active_limit_ += granted;
    active = active_limit_;
  }
  // Freshly activated slots sleep on the same cv as everyone else; wake the
  // whole pool so they re-check the gate and start pulling queued work —
  // including a wave already in flight at the queue front.
  if (granted > 0) cv_.notify_all();
  std::lock_guard m(metrics_mu_);
  if (active_workers_gauge_ != nullptr) {
    active_workers_gauge_->set(static_cast<double>(active));
  }
  return granted;
}

void ThreadPool::release_extra_workers(std::size_t count) {
  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(count <= active_limit_ - base_,
                 "releasing more worker slots than are leased");
    active_limit_ -= count;
    active = active_limit_;
  }
  // A submit() that read the gate as fully-active and issued notify_one can
  // race this release: its single wakeup may land on a slot this call just
  // gated, which re-checks the predicate and goes back to sleep, stranding
  // the queued task with every base worker still asleep. Waking the pool
  // after lowering the gate closes that window — any active worker re-checks
  // the queue here.
  if (count > 0) cv_.notify_all();
  std::lock_guard m(metrics_mu_);
  if (active_workers_gauge_ != nullptr) {
    active_workers_gauge_->set(static_cast<double>(active));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // The accounting epilogue runs *before* the future is fulfilled: callers
  // may detach metrics and destroy the registry as soon as their futures
  // resolve, so no registry handle may be touched after the promise is set
  // (publication is ordered before it).
  std::packaged_task<void()> packaged([this, fn = std::move(task)] {
    busy_count_.fetch_add(1, std::memory_order_relaxed);
    publish_metrics();  // busy gauge reflects the task while it runs
    const std::size_t slot = current_slot();
    auto epilogue = [this, slot] {
      note_executed(slot, 1);
      busy_count_.fetch_sub(1, std::memory_order_relaxed);
      publish_metrics();
    };
    try {
      fn();
    } catch (...) {
      epilogue();
      throw;
    }
    epilogue();
  });
  auto future = packaged.get_future();
  bool gated;
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(!stopping_, "submit on a stopping thread pool");
    // Count before the task becomes runnable, so a mid-storm snapshot can
    // never observe completed > submitted.
    submitted_total_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(Item{std::move(packaged), nullptr});
    queue_size_.store(queue_.size(), std::memory_order_relaxed);
    gated = active_limit_ < threads_.size();
  }
  // With dormant slots, notify_one could land on a gated worker that goes
  // straight back to sleep and the task would be stranded; wake everyone so
  // an active worker is guaranteed to see the queue.
  if (gated) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
  publish_metrics();
  return future;
}

void ThreadPool::publish_metrics() {
  std::lock_guard lock(metrics_mu_);
  publish_metrics_locked();
}

void ThreadPool::publish_metrics_locked() {
  if (tasks_submitted_ == nullptr) return;
  const std::uint64_t submitted = submitted_total_.load(std::memory_order_relaxed);
  const std::uint64_t completed = executed_.value();
  const std::uint64_t waves = waves_total_.load(std::memory_order_relaxed);
  tasks_submitted_->add(submitted - published_submitted_);
  tasks_completed_->add(completed - published_completed_);
  waves_counter_->add(waves - published_waves_);
  published_submitted_ = submitted;
  published_completed_ = completed;
  published_waves_ = waves;
  queue_depth_->set(static_cast<double>(queue_size_.load(std::memory_order_relaxed)));
  busy_workers_->set(static_cast<double>(busy_count_.load(std::memory_order_relaxed)));
}

void ThreadPool::attach_metrics(obs::Registry& registry, const std::string& prefix) {
  auto& workers_gauge = registry.gauge(prefix + ".workers");
  auto& active_gauge = registry.gauge(prefix + ".active_workers");
  auto& submitted = registry.counter(prefix + ".tasks_submitted");
  auto& completed = registry.counter(prefix + ".tasks_completed");
  auto& waves = registry.counter(prefix + ".waves");
  auto& depth_gauge = registry.gauge(prefix + ".queue_depth");
  auto& busy_gauge = registry.gauge(prefix + ".busy_workers");
  const double active_now = static_cast<double>(active_workers());
  std::lock_guard lock(metrics_mu_);
  tasks_submitted_ = &submitted;
  tasks_completed_ = &completed;
  waves_counter_ = &waves;
  queue_depth_ = &depth_gauge;
  busy_workers_ = &busy_gauge;
  active_workers_gauge_ = &active_gauge;
  workers_gauge.set(static_cast<double>(workers()));
  active_gauge.set(active_now);
  // Re-base against the counters' current values: a fresh registry gets
  // the pool's full history, re-attaching the same registry adds only the
  // delta — never a double count, whatever ran before attach.
  published_submitted_ = submitted.value();
  published_completed_ = completed.value();
  published_waves_ = waves.value();
  publish_metrics_locked();
}

void ThreadPool::detach_metrics() {
  std::lock_guard lock(metrics_mu_);
  tasks_submitted_ = nullptr;
  tasks_completed_ = nullptr;
  waves_counter_ = nullptr;
  queue_depth_ = nullptr;
  busy_workers_ = nullptr;
  active_workers_gauge_ = nullptr;
}

void ThreadPool::run_indexed(std::size_t count, const std::function<void(std::size_t)>& task,
                             const CancellationToken* cancel) {
  if (count == 0) return;
  if (!batched_waves_) {
    run_indexed_legacy(count, task, cancel);
    return;
  }
  auto wave = std::make_shared<Wave>(task, count, cancel,
                                     wave_seq_.fetch_add(1, std::memory_order_relaxed));
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(!stopping_, "run_indexed on a stopping thread pool");
    // Count before the wave becomes joinable, so a mid-storm snapshot can
    // never observe completed > submitted.
    submitted_total_.fetch_add(count, std::memory_order_relaxed);
    waves_total_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(Item{{}, wave});
    queue_size_.store(queue_.size(), std::memory_order_relaxed);
  }
  // Waves want every active worker, dormant-slot race included.
  cv_.notify_all();
  publish_metrics();
  // A worker of this pool calling run_indexed lends its own slot as a lane
  // (nested stages can never deadlock a small pool); foreign callers just
  // wait — bodies must only run on slotted workers.
  if (tl_worker.pool == this) {
    bool entered = false;
    {
      std::lock_guard lock(mutex_);
      if (!wave->retired) {
        ++wave->entered;
        entered = true;
      }
    }
    if (entered) run_wave_lane(wave, tl_worker.slot);
  }
  if (cancel == nullptr) {
    std::unique_lock lock(wave->done_mu);
    wave->done_cv.wait(lock, [&] { return wave->done; });
  } else {
    // Hardened latch (ISSUE 10): the wait ticks instead of blocking
    // unconditionally, and once the job's token fires the waiter retires
    // the wave itself — no new lanes can join, and if no lane ever entered
    // the waiter trips the latch directly instead of hoping one will.
    // Lanes already inside re-check the token per index and injected
    // stalls are bounded (chaos::kMaxStallMs), so the in-flight remainder
    // drains and the lane-side last-out publication fires; the borrowed
    // body reference stays valid until then by construction.
    bool early_retired = false;
    for (;;) {
      {
        std::unique_lock lock(wave->done_mu);
        if (wave->done_cv.wait_for(lock, std::chrono::milliseconds(10),
                                   [&] { return wave->done; })) {
          break;
        }
      }
      if (early_retired || !cancel->cancelled()) continue;
      early_retired = true;
      bool complete = false;
      {
        std::lock_guard lock(mutex_);
        if (!wave->retired) {
          wave->retired = true;
          // Same pop-if-front rule as lane-side retirement: a nested wave
          // that never reached the front is discarded by worker_loop.
          if (!queue_.empty() && queue_.front().wave.get() == wave.get()) {
            queue_.pop_front();
            queue_size_.store(queue_.size(), std::memory_order_relaxed);
          }
        }
        complete = wave->exited == wave->entered;
      }
      if (complete) {
        {
          std::lock_guard lock(wave->done_mu);
          wave->done = true;
        }
        wave->done_cv.notify_all();
      }
    }
  }
  if (wave->first_error) std::rethrow_exception(wave->first_error);
}

void ThreadPool::run_indexed_legacy(std::size_t count,
                                    const std::function<void(std::size_t)>& task,
                                    const CancellationToken* cancel) {
  // One index-stealing lane per worker *slot*, each a full packaged task:
  // the pre-wave submission path, kept as the determinism battery's
  // reference and for pools constructed with batched_waves = false.
  const std::size_t lanes = std::min(count, workers());
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&next, &task, &error_mutex, &first_error, count, cancel] {
      for (;;) {
        if (cancel != nullptr && cancel->cancelled()) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          task(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::run_wave_lane(const std::shared_ptr<Wave>& wave, std::size_t slot) {
  // pool.wave chaos point: per stolen index, before the body. kStall holds
  // the lane (bounded by chaos::kMaxStallMs, waking early on the wave's
  // token) — the shape the latch hardening and the stall watchdog are
  // tested against. kThrow lands in the wave's error slot like a body
  // failure would.
  static chaos::InjectionPoint& chaos_wave =
      chaos::ChaosPlane::instance().point(chaos::points::kPoolWave);
  busy_count_.fetch_add(1, std::memory_order_relaxed);
  publish_metrics();  // busy gauge reflects the lane while it runs
  std::size_t executed = 0;
  for (;;) {
    if (wave->cancel != nullptr && wave->cancel->cancelled()) break;
    const std::size_t i = wave->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= wave->count) break;
    try {
      if (chaos_wave.armed()) chaos_wave.inject(wave->seq, i, 0, wave->cancel);
      wave->body(i);
    } catch (...) {
      std::lock_guard lock(wave->error_mu);
      if (!wave->first_error) wave->first_error = std::current_exception();
    }
    ++executed;
  }
  note_executed(slot, executed);
  busy_count_.fetch_sub(1, std::memory_order_relaxed);
  bool complete = false;
  {
    std::lock_guard lock(mutex_);
    if (!wave->retired) {
      wave->retired = true;
      // An un-retired wave is always the queue front: plain tasks behind
      // it stay queued until the wave's range is drained, and retirement
      // pops it in this same critical section so no lane can enter late.
      if (!queue_.empty() && queue_.front().wave.get() == wave.get()) {
        queue_.pop_front();
        queue_size_.store(queue_.size(), std::memory_order_relaxed);
      }
    }
    wave->executed += executed;
    ++wave->exited;
    complete = wave->retired && wave->exited == wave->entered;
  }
  if (complete) {
    // Publish before tripping the latch: the caller may tear down the
    // registry as soon as run_indexed returns.
    publish_metrics();
    {
      std::lock_guard lock(wave->done_mu);
      wave->done = true;
    }
    wave->done_cv.notify_all();
  }
}

std::size_t ThreadPool::pending() {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop(std::size_t slot) {
  tl_worker = WorkerIdentity{this, slot};
  for (;;) {
    std::packaged_task<void()> task;
    std::shared_ptr<Wave> wave;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this, slot] {
        return stopping_ || (slot < active_limit_ && !queue_.empty());
      });
      if (queue_.empty() || slot >= active_limit_) {
        // Only reachable when stopping: active workers drain the queue
        // (plain tasks and waves alike), gated workers leave whatever is
        // queued to the active ones.
        return;
      }
      Item& front = queue_.front();
      if (front.wave != nullptr) {
        if (front.wave->retired) {
          // Already drained — possible when a nested wave was enqueued
          // behind its outer wave and finished (caller lane) before ever
          // reaching the front. Retirement only pops a wave that IS the
          // front, so the leftover descriptor is discarded here; entering
          // it would break the entered-freezes-after-retire invariant.
          queue_.pop_front();
          queue_size_.store(queue_.size(), std::memory_order_relaxed);
          continue;
        }
        // Join the wave in place: it stays at the front so every active
        // worker (and any slot a lease activates mid-wave) can enter.
        wave = front.wave;
        ++wave->entered;
      } else {
        task = std::move(front.task);
        queue_.pop_front();
        queue_size_.store(queue_.size(), std::memory_order_relaxed);
      }
    }
    if (wave != nullptr) {
      run_wave_lane(wave, slot);
    } else {
      task();
    }
  }
}

}  // namespace dias::engine
