#include "engine/thread_pool.hpp"

#include <exception>
#include <utility>

#include "common/error.hpp"

namespace dias::engine {

ThreadPool::ThreadPool(std::size_t workers) {
  DIAS_EXPECTS(workers >= 1, "thread pool needs at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(!stopping_, "submit on a stopping thread pool");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::run_indexed(std::size_t count, const std::function<void(std::size_t)>& task) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&task, i] { task(i); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace dias::engine
