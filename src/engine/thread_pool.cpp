#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "common/error.hpp"

namespace dias::engine {
namespace {

// Which pool (if any) owns the current thread, and under which slot. A
// worker thread belongs to exactly one pool for its whole lifetime, so a
// plain thread_local pair is enough to answer current_slot() for any pool.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t slot = ThreadPool::kNoSlot;
};
thread_local WorkerIdentity tl_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers, std::size_t reserve)
    : base_(workers), active_limit_(workers) {
  DIAS_EXPECTS(workers >= 1, "thread pool needs at least one worker");
  const std::size_t total = workers + reserve;
  threads_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

std::size_t ThreadPool::current_slot() const {
  return tl_worker.pool == this ? tl_worker.slot : kNoSlot;
}

std::size_t ThreadPool::calling_thread_slot() { return tl_worker.slot; }

std::size_t ThreadPool::active_workers() {
  std::lock_guard lock(mutex_);
  return active_limit_;
}

std::size_t ThreadPool::lease_extra_workers(std::size_t extra) {
  std::size_t granted;
  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    granted = std::min(extra, threads_.size() - active_limit_);
    active_limit_ += granted;
    active = active_limit_;
  }
  // Freshly activated slots sleep on the same cv as everyone else; wake the
  // whole pool so they re-check the gate and start pulling queued work.
  if (granted > 0) cv_.notify_all();
  if (auto* g = active_workers_gauge_.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(active));
  }
  return granted;
}

void ThreadPool::release_extra_workers(std::size_t count) {
  std::size_t active;
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(count <= active_limit_ - base_,
                 "releasing more worker slots than are leased");
    active_limit_ -= count;
    active = active_limit_;
  }
  if (auto* g = active_workers_gauge_.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(active));
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // Busy/completed metrics are updated inside the wrapper, *before* the
  // future is fulfilled: callers may detach metrics and destroy the
  // registry as soon as their futures resolve, so no metric pointer may be
  // touched after the promise is set (the worker loop's epilogue would
  // race that teardown).
  std::packaged_task<void()> packaged([this, fn = std::move(task)] {
    auto* busy = busy_workers_.load(std::memory_order_relaxed);
    if (busy) busy->add(1.0);
    try {
      fn();
    } catch (...) {
      if (busy) busy->add(-1.0);
      if (auto* c = tasks_completed_.load(std::memory_order_relaxed)) c->add();
      throw;
    }
    if (busy) busy->add(-1.0);
    if (auto* c = tasks_completed_.load(std::memory_order_relaxed)) c->add();
  });
  auto future = packaged.get_future();
  std::size_t depth;
  bool gated;
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(!stopping_, "submit on a stopping thread pool");
    queue_.push(std::move(packaged));
    depth = queue_.size();
    gated = active_limit_ < threads_.size();
  }
  // With dormant slots, notify_one could land on a gated worker that goes
  // straight back to sleep and the task would be stranded; wake everyone so
  // an active worker is guaranteed to see the queue.
  if (gated) {
    cv_.notify_all();
  } else {
    cv_.notify_one();
  }
  if (auto* c = tasks_submitted_.load(std::memory_order_relaxed)) c->add();
  if (auto* g = queue_depth_.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(depth));
  }
  return future;
}

void ThreadPool::attach_metrics(obs::Registry& registry, const std::string& prefix) {
  registry.gauge(prefix + ".workers").set(static_cast<double>(workers()));
  auto& active = registry.gauge(prefix + ".active_workers");
  active.set(static_cast<double>(active_workers()));
  tasks_submitted_.store(&registry.counter(prefix + ".tasks_submitted"),
                         std::memory_order_relaxed);
  tasks_completed_.store(&registry.counter(prefix + ".tasks_completed"),
                         std::memory_order_relaxed);
  queue_depth_.store(&registry.gauge(prefix + ".queue_depth"),
                     std::memory_order_relaxed);
  busy_workers_.store(&registry.gauge(prefix + ".busy_workers"),
                      std::memory_order_relaxed);
  active_workers_gauge_.store(&active, std::memory_order_relaxed);
}

void ThreadPool::run_indexed(std::size_t count, const std::function<void(std::size_t)>& task,
                             const CancellationToken* cancel) {
  if (count == 0) return;
  // One index-stealing lane per worker *slot*: each lane pulls the next
  // index off a shared atomic counter until the range is exhausted (or the
  // cancellation token fires). Every started index runs even when some
  // throw; the first observed error is rethrown at the end. Lanes beyond
  // the active limit wait in the queue — if a lease activates more slots
  // mid-stage they start stealing immediately, and at stage tail they find
  // the range exhausted and return.
  const std::size_t lanes = std::min(count, workers());
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&next, &task, &error_mutex, &first_error, count, cancel] {
      for (;;) {
        if (cancel != nullptr && cancel->cancelled()) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          task(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::pending() {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop(std::size_t slot) {
  tl_worker = WorkerIdentity{this, slot};
  for (;;) {
    std::packaged_task<void()> task;
    std::size_t depth;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this, slot] {
        return stopping_ || (slot < active_limit_ && !queue_.empty());
      });
      if (queue_.empty() || slot >= active_limit_) {
        // Only reachable when stopping: active workers drain the queue,
        // gated workers leave whatever is queued to the active ones.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    if (auto* g = queue_depth_.load(std::memory_order_relaxed)) {
      g->set(static_cast<double>(depth));
    }
    task();
  }
}

}  // namespace dias::engine
