#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "common/error.hpp"

namespace dias::engine {

ThreadPool::ThreadPool(std::size_t workers) {
  DIAS_EXPECTS(workers >= 1, "thread pool needs at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(!stopping_, "submit on a stopping thread pool");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::run_indexed(std::size_t count, const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  // One index-stealing lane per worker: each lane pulls the next index off
  // a shared atomic counter until the range is exhausted. Every index runs
  // even when some throw; the first observed error is rethrown at the end.
  const std::size_t lanes = std::min(count, workers());
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&next, &task, &error_mutex, &first_error, count] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          task(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::pending() {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace dias::engine
