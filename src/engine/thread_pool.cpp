#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "common/error.hpp"

namespace dias::engine {
namespace {

// Which pool (if any) owns the current thread, and under which slot. A
// worker thread belongs to exactly one pool for its whole lifetime, so a
// plain thread_local pair is enough to answer current_slot() for any pool.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t slot = ThreadPool::kNoSlot;
};
thread_local WorkerIdentity tl_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  DIAS_EXPECTS(workers >= 1, "thread pool needs at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

std::size_t ThreadPool::current_slot() const {
  return tl_worker.pool == this ? tl_worker.slot : kNoSlot;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  std::size_t depth;
  {
    std::lock_guard lock(mutex_);
    DIAS_EXPECTS(!stopping_, "submit on a stopping thread pool");
    queue_.push(std::move(packaged));
    depth = queue_.size();
  }
  cv_.notify_one();
  if (auto* c = tasks_submitted_.load(std::memory_order_relaxed)) c->add();
  if (auto* g = queue_depth_.load(std::memory_order_relaxed)) {
    g->set(static_cast<double>(depth));
  }
  return future;
}

void ThreadPool::attach_metrics(obs::Registry& registry, const std::string& prefix) {
  registry.gauge(prefix + ".workers").set(static_cast<double>(workers()));
  tasks_submitted_.store(&registry.counter(prefix + ".tasks_submitted"),
                         std::memory_order_relaxed);
  tasks_completed_.store(&registry.counter(prefix + ".tasks_completed"),
                         std::memory_order_relaxed);
  queue_depth_.store(&registry.gauge(prefix + ".queue_depth"),
                     std::memory_order_relaxed);
  busy_workers_.store(&registry.gauge(prefix + ".busy_workers"),
                      std::memory_order_relaxed);
}

void ThreadPool::run_indexed(std::size_t count, const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  // One index-stealing lane per worker: each lane pulls the next index off
  // a shared atomic counter until the range is exhausted. Every index runs
  // even when some throw; the first observed error is rethrown at the end.
  const std::size_t lanes = std::min(count, workers());
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([&next, &task, &error_mutex, &first_error, count] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        try {
          task(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::pending() {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void ThreadPool::worker_loop(std::size_t slot) {
  tl_worker = WorkerIdentity{this, slot};
  for (;;) {
    std::packaged_task<void()> task;
    std::size_t depth;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    if (auto* g = queue_depth_.load(std::memory_order_relaxed)) {
      g->set(static_cast<double>(depth));
    }
    auto* busy = busy_workers_.load(std::memory_order_relaxed);
    if (busy) busy->add(1.0);
    task();
    if (busy) busy->add(-1.0);
    if (auto* c = tasks_completed_.load(std::memory_order_relaxed)) c->add();
  }
}

}  // namespace dias::engine
