#include "engine/engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dias::engine {

std::vector<std::size_t> find_missing_partitions(std::size_t n, double theta, Rng& rng) {
  DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratio must be in [0,1]");
  const auto keep = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) * (1.0 - theta) - 1e-12));
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: choose `keep` partitions uniformly at random.
  for (std::size_t i = 0; i < keep && i + 1 < n; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_int(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(keep);
  std::sort(idx.begin(), idx.end());
  return idx;
}

void Engine::run_stage(std::size_t n, const StageOptions& opts, EngineStageKind kind,
                       const std::function<void(std::size_t)>& body) {
  StageInfo info;
  info.name = opts.name;
  info.kind = kind;
  info.total_partitions = n;

  const double theta = opts.droppable
                           ? (opts.drop_ratio_override >= 0.0 ? opts.drop_ratio_override
                                                              : options_.drop_ratio)
                           : 0.0;
  info.applied_drop_ratio = theta;

  std::vector<std::size_t> selected;
  if (theta > 0.0) {
    selected = find_missing_partitions(n, theta, rng_);
  } else {
    selected.resize(n);
    std::iota(selected.begin(), selected.end(), std::size_t{0});
  }
  info.executed_partitions = selected.size();
  info.task_times_s.assign(selected.size(), 0.0);

  const auto stage_start = std::chrono::steady_clock::now();
  pool_.run_indexed(selected.size(), [&](std::size_t i) {
    const auto task_start = std::chrono::steady_clock::now();
    body(selected[i]);
    const auto task_end = std::chrono::steady_clock::now();
    info.task_times_s[i] = std::chrono::duration<double>(task_end - task_start).count();
  });
  const auto stage_end = std::chrono::steady_clock::now();
  info.duration_s = std::chrono::duration<double>(stage_end - stage_start).count();
  stage_log_.push_back(std::move(info));
}

}  // namespace dias::engine
