#include "engine/engine.hpp"

#include <algorithm>

#include "chaos/chaos.hpp"
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <numeric>
#include <optional>
#include <thread>

namespace dias::engine {

namespace detail {

std::atomic<std::uint64_t>& shuffle_fallback_locks() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

std::size_t default_shuffle_budget() {
  static const std::size_t budget = [] {
    const char* env = std::getenv("DIAS_SHUFFLE_BUDGET_BYTES");
    if (env == nullptr || *env == '\0') return std::size_t{0};
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end == env || (end != nullptr && *end != '\0')) return std::size_t{0};
    return static_cast<std::size_t>(parsed);
  }();
  return budget;
}

}  // namespace detail

std::string StagePlan::summary() const {
  auto tri = [](const std::optional<bool>& v) {
    return !v.has_value() ? std::string("-") : (*v ? std::string("on") : std::string("off"));
  };
  auto num = [](const std::optional<std::size_t>& v) {
    return v.has_value() ? std::to_string(*v) : std::string("-");
  };
  return "combine=" + tri(combine) +
         " parts=" + (partitions > 0 ? std::to_string(partitions) : std::string("-")) +
         " st=" + std::string(single_thread ? "1" : "0") + " spec=" + tri(speculate) +
         " buf=" + num(target_buffer_bytes) + " spill=" + num(spill_budget_bytes);
}

const char* to_string(EngineStageKind kind) {
  switch (kind) {
    case EngineStageKind::kMap:
      return "map";
    case EngineStageKind::kShuffleMap:
      return "shuffle-map";
    case EngineStageKind::kShuffleWrite:
      return "shuffle-write";
    case EngineStageKind::kReduce:
      return "reduce";
    case EngineStageKind::kResult:
      return "result";
  }
  return "?";
}

void Engine::attach_observability(obs::Registry* metrics, obs::Tracer* tracer) {
  obs_ = ObsHooks{};
  obs_.tracer = tracer;
  if (metrics != nullptr) {
    obs_.stages = &metrics->counter("engine.stages");
    obs_.tasks_executed = &metrics->counter("engine.tasks_executed");
    obs_.tasks_dropped = &metrics->counter("engine.tasks_dropped");
    obs_.tasks_degraded = &metrics->counter("engine.tasks_degraded");
    obs_.tasks_cancelled = &metrics->counter("engine.tasks_cancelled");
    obs_.attempts = &metrics->counter("engine.task_attempts");
    obs_.retries = &metrics->counter("engine.task_retries");
    obs_.speculative_launched = &metrics->counter("engine.speculative_launched");
    obs_.speculative_wins = &metrics->counter("engine.speculative_wins");
    obs_.task_time_s = &metrics->histogram("engine.task_time_s", 0.0, 10.0, 200);
    obs_.stage_time_s = &metrics->histogram("engine.stage_time_s", 0.0, 120.0, 240);
    obs_.shuffle_records_in = &metrics->counter("engine.shuffle.records_in");
    obs_.shuffle_records_out = &metrics->counter("engine.shuffle.records_out");
    obs_.shuffle_bytes = &metrics->counter("engine.shuffle.bytes");
    obs_.shuffle_flushes = &metrics->counter("engine.shuffle.flushes");
    obs_.shuffle_combine_ratio =
        &metrics->histogram("engine.shuffle.combine_ratio", 0.0, 1.0, 50);
    obs_.shuffle_spill_segments = &metrics->counter("engine.shuffle.spill_segments");
    obs_.shuffle_spill_bytes = &metrics->counter("engine.shuffle.spill_bytes");
    obs_.shuffle_restored_segments =
        &metrics->counter("engine.shuffle.spill_restored_segments");
    obs_.shuffle_restored_bytes = &metrics->counter("engine.shuffle.spill_restored_bytes");
    obs_.shuffle_merge_stream_s =
        &metrics->histogram("engine.shuffle.merge_stream_s", 0.0, 10.0, 200);
    obs_.shuffle_merge_skew = &metrics->gauge("engine.shuffle.merge_skew");
    // Handed to each shuffle's sink through its SpillPolicy, so the
    // overflow lane bumps this engine's counter and no other; the raw
    // shuffle_fallback_locks() atomic keeps counting regardless.
    obs_.shuffle_fallback_locks = &metrics->counter("engine.shuffle.fallback_locks");
    obs_.spill_breaker_state = &metrics->gauge("engine.spill.breaker_state");
    obs_.spill_breaker_trips = &metrics->counter("engine.spill.breaker_trips");
    obs_.spill_write_failures = &metrics->counter("engine.spill.write_failures");
    obs_.spill_fallback_segments = &metrics->counter("engine.spill.fallback_segments");
    // Re-base like the arena counter: re-attaching the same registry adds
    // only deltas, a fresh registry gets full history at the next publish.
    published_breaker_trips_ = obs_.spill_breaker_trips->value();
    obs_.spill_breaker_state->set(SpillBreaker::state_value(spill_breaker_.state()));
    obs_.arena_chunks = &metrics->gauge("engine.shuffle.arena_chunks");
    obs_.arena_reserved_bytes = &metrics->gauge("engine.shuffle.arena_reserved_bytes");
    obs_.arena_recycled_chunks = &metrics->counter("engine.shuffle.arena_recycled_chunks");
    // Re-base like the pool does: a re-attach to the same registry must add
    // only future deltas, a fresh registry gets full history at next reset.
    published_arena_recycled_ = obs_.arena_recycled_chunks->value();
    pool_.attach_metrics(*metrics, "engine.pool");
  } else {
    pool_.detach_metrics();
  }
}

void Engine::reset_arenas() {
  if (arenas_.empty()) return;
  double chunks = 0.0;
  double reserved = 0.0;
  std::uint64_t recycled = 0;
  for (auto& arena : arenas_) {
    arena->reset();
    chunks += static_cast<double>(arena->chunk_count());
    reserved += static_cast<double>(arena->reserved_bytes());
    recycled += arena->recycled_chunks();
  }
  if (obs_.arena_chunks != nullptr) {
    obs_.arena_chunks->set(chunks);
    obs_.arena_reserved_bytes->set(reserved);
    if (recycled > published_arena_recycled_) {
      obs_.arena_recycled_chunks->add(recycled - published_arena_recycled_);
    }
    published_arena_recycled_ = recycled;
  }
}

void Engine::note_shuffle_write(std::size_t records_in, std::size_t records_out,
                                std::size_t bytes, std::size_t flushes, bool combine,
                                std::uint64_t spill_segments, std::uint64_t spill_bytes,
                                std::uint64_t fallback_segments,
                                std::uint64_t write_failures) {
  DIAS_EXPECTS(!stage_log_.empty(), "shuffle accounting needs a logged stage");
  StageInfo& info = stage_log_.back();
  info.shuffle_records_in = records_in;
  info.shuffle_records_out = records_out;
  info.shuffle_bytes = bytes;
  info.shuffle_flushes = flushes;
  info.shuffle_spill_segments = static_cast<std::size_t>(spill_segments);
  info.shuffle_spill_bytes = static_cast<std::size_t>(spill_bytes);
  info.shuffle_spill_fallback_segments = static_cast<std::size_t>(fallback_segments);
  info.shuffle_spill_write_failures = static_cast<std::size_t>(write_failures);
  info.spill_breaker_open = spill_breaker_.open();
  // No records in means nothing was combined away; report a neutral 1.0.
  const double ratio =
      records_in == 0
          ? 1.0
          : static_cast<double>(records_out) / static_cast<double>(records_in);
  if (obs_.shuffle_records_in != nullptr) {
    obs_.shuffle_records_in->add(records_in);
    obs_.shuffle_records_out->add(records_out);
    obs_.shuffle_bytes->add(bytes);
    obs_.shuffle_flushes->add(flushes);
    obs_.shuffle_combine_ratio->observe(ratio);
    obs_.shuffle_spill_segments->add(spill_segments);
    obs_.shuffle_spill_bytes->add(spill_bytes);
    obs_.spill_fallback_segments->add(fallback_segments);
    obs_.spill_write_failures->add(write_failures);
    obs_.spill_breaker_state->set(SpillBreaker::state_value(spill_breaker_.state()));
    const std::uint64_t trips = spill_breaker_.trips();
    if (trips > published_breaker_trips_) {
      obs_.spill_breaker_trips->add(trips - published_breaker_trips_);
      published_breaker_trips_ = trips;
    }
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->event("engine.shuffle.write",
                       {{"stage", info.name},
                        {"records_in", std::uint64_t{records_in}},
                        {"records_out", std::uint64_t{records_out}},
                        {"bytes", std::uint64_t{bytes}},
                        {"flushes", std::uint64_t{flushes}},
                        {"combine", combine},
                        {"combine_ratio", ratio},
                        {"spill_segments", spill_segments},
                        {"spill_bytes", spill_bytes},
                        {"spill_fallback_segments", fallback_segments},
                        {"spill_write_failures", write_failures},
                        {"breaker_open", info.spill_breaker_open}});
  }
}

void Engine::note_shuffle_merge(std::size_t records, std::uint64_t restored_segments,
                                std::uint64_t restored_bytes,
                                const std::vector<double>& stream_s,
                                const std::vector<std::size_t>& bucket_records) {
  DIAS_EXPECTS(!stage_log_.empty(), "shuffle accounting needs a logged stage");
  StageInfo& info = stage_log_.back();
  info.shuffle_records_in = records;
  info.shuffle_restored_segments = static_cast<std::size_t>(restored_segments);
  info.shuffle_restored_bytes = static_cast<std::size_t>(restored_bytes);
  // Merge load imbalance: max bucket record count over the mean. 1.0 for
  // empty or perfectly even merges; >= 1.0 otherwise.
  double skew = 1.0;
  if (!bucket_records.empty()) {
    std::size_t total = 0;
    std::size_t heaviest = 0;
    for (const std::size_t r : bucket_records) {
      total += r;
      heaviest = std::max(heaviest, r);
    }
    if (total > 0) {
      skew = static_cast<double>(heaviest) *
             static_cast<double>(bucket_records.size()) / static_cast<double>(total);
    }
  }
  info.shuffle_merge_skew = skew;
  if (obs_.shuffle_restored_segments != nullptr) {
    obs_.shuffle_restored_segments->add(restored_segments);
    obs_.shuffle_restored_bytes->add(restored_bytes);
    obs_.shuffle_merge_skew->set(skew);
    for (const double s : stream_s) {
      if (s > 0.0) obs_.shuffle_merge_stream_s->observe(s);
    }
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->event("engine.shuffle.merge",
                       {{"stage", info.name},
                        {"records", std::uint64_t{records}},
                        {"executed_buckets", std::uint64_t{info.executed_partitions}},
                        {"total_buckets", std::uint64_t{info.total_partitions}},
                        {"restored_segments", restored_segments},
                        {"restored_bytes", restored_bytes},
                        {"merge_skew", skew}});
  }
}

void Engine::apply_stage_plan(const StagePlan& plan, ShuffleOptions& shuffle,
                              std::size_t& out_partitions, double merge_theta,
                              bool entry_spillable, std::size_t entry_bytes) {
  if (plan.combine.has_value()) shuffle.combine = *plan.combine;
  if (plan.target_buffer_bytes.has_value()) {
    // Keep a sane floor so a degenerate plan cannot force per-record ships.
    shuffle.target_buffer_bytes = std::max<std::size_t>(*plan.target_buffer_bytes, 64);
  }
  if (merge_theta <= 0.0) {
    if (plan.single_thread) {
      out_partitions = 1;
    } else if (plan.partitions > 0) {
      out_partitions = plan.partitions;
    }
  }
  if (plan.spill_budget_bytes.has_value()) {
    const std::size_t budget = *plan.spill_budget_bytes;
    if (budget == 0) {
      // Explicit "stay resident" hint.
      shuffle.memory_budget_bytes = 0;
    } else if (entry_spillable &&
               (shuffle.spill != nullptr || spill_ != nullptr)) {
      // Advisory: clamp to one record so the hint passes budget validation.
      shuffle.memory_budget_bytes = std::max(budget, entry_bytes);
    }
    // Unspillable entries or no backend: leave the static budget alone —
    // a hint must never become a config_error.
  }
}

std::vector<std::size_t> find_missing_partitions(std::size_t n, double theta, Rng& rng) {
  DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratio must be in [0,1]");
  const auto keep = static_cast<std::size_t>(
      std::ceil(static_cast<double>(n) * (1.0 - theta) - 1e-12));
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: choose `keep` partitions uniformly at random.
  for (std::size_t i = 0; i < keep && i + 1 < n; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.uniform_int(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(keep);
  std::sort(idx.begin(), idx.end());
  return idx;
}

void Engine::run_stage(std::size_t n, const StageOptions& opts, EngineStageKind kind,
                       const std::function<void(std::size_t)>& body) {
  // A job cancelled between stages never starts the next one (and logs no
  // stage entry for it — nothing ran).
  if (const CancellationToken* cancel = cancel_token(); cancel != nullptr) {
    cancel->throw_if_cancelled("stage '" + opts.name + "' entry");
  }
  StageInfo info;
  info.name = opts.name;
  info.kind = kind;
  info.total_partitions = n;
  const std::uint64_t stage_seq = stage_seq_++;

  const double theta = opts.droppable
                           ? (opts.drop_ratio_override >= 0.0 ? opts.drop_ratio_override
                                                              : options_.drop_ratio)
                           : 0.0;
  info.applied_drop_ratio = theta;

  std::vector<std::size_t> selected;
  if (theta > 0.0) {
    selected = find_missing_partitions(n, theta, rng_);
  } else {
    selected.resize(n);
    std::iota(selected.begin(), selected.end(), std::size_t{0});
  }
  const std::size_t dropped_upfront = n - selected.size();

  obs::Tracer::SpanId span = 0;
  if (obs_.tracer != nullptr) {
    std::vector<obs::Field> fields{{"stage", opts.name},
                                   {"kind", to_string(kind)},
                                   {"seq", stage_seq},
                                   {"total_partitions", n},
                                   {"theta", theta},
                                   {"droppable", opts.droppable}};
    if (opts.plan && !opts.plan->is_identity()) {
      fields.push_back({"plan", opts.plan->summary()});
    }
    span = obs_.tracer->begin_span("engine.stage", std::move(fields));
  }

  // Stage-effective fault policy: a StagePlan may toggle speculation for
  // this stage only. Exactly-once body completion keeps the toggle
  // content-preserving, so plans may flip it freely.
  FaultToleranceOptions eff_fault = options_.fault;
  if (opts.plan && opts.plan->speculate.has_value()) {
    eff_fault.speculation = *opts.plan->speculate;
  }

  const CancellationToken* cancel = cancel_token();
  // An armed chaos plane may fail or stall any task body, so the run needs
  // the fault-tolerant path's absorption machinery even when the policy
  // itself is inert. Disarmed cost: one relaxed load.
  const bool chaos_armed = chaos::ChaosPlane::instance().armed();
  const auto stage_start = std::chrono::steady_clock::now();
  if (!eff_fault.active() && !chaos_armed) {
    if (cancel == nullptr) {
      // Legacy zero-overhead path: no retry bookkeeping, no per-task state.
      info.executed_partitions = selected.size();
      info.attempts = selected.size();
      info.task_times_s.assign(selected.size(), 0.0);
      pool_.run_indexed(selected.size(), [&](std::size_t i) {
        const auto task_start = std::chrono::steady_clock::now();
        body(selected[i]);
        const auto task_end = std::chrono::steady_clock::now();
        info.task_times_s[i] = std::chrono::duration<double>(task_end - task_start).count();
      });
      info.executed_partition_ids = std::move(selected);
    } else {
      // Cancellable variant: each index is executed by exactly one lane, so
      // the per-index completion flags need no synchronization beyond the
      // pool join. Abandoned indices are neither executed nor failed.
      std::vector<char> done(selected.size(), 0);
      std::vector<double> times(selected.size(), 0.0);
      pool_.run_indexed(
          selected.size(),
          [&](std::size_t i) {
            const auto task_start = std::chrono::steady_clock::now();
            body(selected[i]);
            const auto task_end = std::chrono::steady_clock::now();
            times[i] = std::chrono::duration<double>(task_end - task_start).count();
            done[i] = 1;
          },
          cancel);
      for (std::size_t i = 0; i < selected.size(); ++i) {
        if (done[i] != 0) {
          info.executed_partition_ids.push_back(selected[i]);
          info.task_times_s.push_back(times[i]);
        } else {
          ++info.cancelled_partitions;
        }
      }
      info.executed_partitions = info.executed_partition_ids.size();
      info.attempts = info.executed_partitions;
    }
  } else {
    run_stage_fault_tolerant(selected, opts, info, stage_seq, eff_fault, body);
  }
  const auto stage_end = std::chrono::steady_clock::now();
  info.duration_s = std::chrono::duration<double>(stage_end - stage_start).count();
  // An empty stage (n == 0) effectively dropped nothing; see StageInfo.
  info.effective_drop_ratio =
      n == 0 ? 0.0
             : 1.0 - static_cast<double>(info.executed_partitions) / static_cast<double>(n);
  info.cancelled = cancel != nullptr && cancel->cancelled();

  if (obs_.stages != nullptr) {
    obs_.stages->add();
    obs_.tasks_executed->add(info.executed_partitions);
    obs_.tasks_dropped->add(dropped_upfront);
    obs_.tasks_degraded->add(info.failed_partition_ids.size());
    obs_.tasks_cancelled->add(info.cancelled_partitions);
    obs_.attempts->add(info.attempts);
    obs_.retries->add(info.retries);
    obs_.speculative_launched->add(info.speculative_launched);
    obs_.speculative_wins->add(info.speculative_wins);
    for (const double t : info.task_times_s) obs_.task_time_s->observe(t);
    obs_.stage_time_s->observe(info.duration_s);
  }
  if (obs_.tracer != nullptr) {
    obs_.tracer->end_span(span, {{"executed", info.executed_partitions},
                                 {"dropped", dropped_upfront},
                                 {"degraded", info.failed_partition_ids.size()},
                                 {"cancelled", info.cancelled_partitions},
                                 {"attempts", info.attempts},
                                 {"retries", info.retries},
                                 {"speculative_launched", info.speculative_launched},
                                 {"speculative_wins", info.speculative_wins},
                                 {"effective_theta", info.effective_drop_ratio},
                                 {"duration_s", info.duration_s}});
  }

  // A fired token outranks task failure: the whole job is being abandoned,
  // so log the stage (for post-mortems) and surface the cancellation. On a
  // non-droppable stage a dead task is otherwise fatal: log, then raise
  // the typed task error.
  const bool was_cancelled = info.cancelled;
  std::optional<TaskFailedError> fatal;
  if (!was_cancelled && !opts.droppable && !info.failed_partition_ids.empty()) {
    const std::size_t part = info.failed_partition_ids.front();
    fatal.emplace(opts.name, part, options_.fault.max_attempts);
  }
  stage_log_.push_back(std::move(info));
  if (was_cancelled) throw JobCancelledError("stage '" + opts.name + "'");
  if (fatal) throw *fatal;
}

void Engine::run_stage_fault_tolerant(const std::vector<std::size_t>& selected,
                                      const StageOptions& opts, StageInfo& info,
                                      std::uint64_t stage_seq,
                                      const FaultToleranceOptions& ft,
                                      const std::function<void(std::size_t)>& body) {
  const std::size_t n_sel = selected.size();
  const CancellationToken* cancel = cancel_token();
  // Injection may be scoped to droppable stages; retry/speculation still
  // guard against genuine (user-code) failures on immune stages.
  const bool inject = !(ft.injection.droppable_only && !opts.droppable);
  // Chaos engine.task point: fires per attempt alongside the injector,
  // with the same scheduling-independent coordinates.
  static chaos::InjectionPoint& chaos_task =
      chaos::ChaosPlane::instance().point(chaos::points::kEngineTask);
  const auto cancel_requested = [cancel] {
    return cancel != nullptr && cancel->cancelled();
  };

  // Per-task shared state between the primary attempt loop and an optional
  // speculative copy. `exec_mu` serializes body execution so a partition's
  // body can never complete twice: the first copy through wins, the loser
  // observes `done` and backs off.
  struct TaskState {
    std::mutex exec_mu;
    std::atomic<bool> done{false};              // body completed successfully
    std::atomic<bool> primary_finished{false};  // primary loop returned
    std::atomic<int> attempts{0};               // all copies
    std::atomic<int> primary_attempts{0};
    std::atomic<bool> spec_launched{false};
    std::atomic<bool> spec_won{false};
    std::atomic<bool> failed{false};            // primary exhausted its budget
    // steady_clock ns of the current primary attempt's start; -1 before the
    // first attempt. The stall watchdog measures elapsed time against it.
    std::atomic<std::int64_t> attempt_start_ns{-1};
    double task_time_s = 0.0;                   // winner's time, under exec_mu
  };
  std::vector<TaskState> tasks(n_sel);

  std::mutex progress_mu;
  std::condition_variable progress_cv;
  std::size_t primaries_done = 0;
  std::size_t succeeded = 0;

  // Runs the body for task `idx` unless another copy already completed it.
  // Throws whatever the body throws; the caller accounts a failed attempt.
  auto execute_body = [&](std::size_t idx, bool speculative) {
    TaskState& st = tasks[idx];
    std::lock_guard guard(st.exec_mu);
    if (st.done.load(std::memory_order_acquire)) return;
    const auto t0 = std::chrono::steady_clock::now();
    body(selected[idx]);
    const auto t1 = std::chrono::steady_clock::now();
    st.task_time_s = std::chrono::duration<double>(t1 - t0).count();
    if (speculative) st.spec_won.store(true, std::memory_order_relaxed);
    st.done.store(true, std::memory_order_release);
    {
      std::lock_guard plock(progress_mu);
      ++succeeded;
    }
    progress_cv.notify_all();
  };

  auto primary = [&](std::size_t idx) {
    TaskState& st = tasks[idx];
    const std::size_t part = selected[idx];
    const double delay_ms = inject ? injector_.straggler_delay_ms(stage_seq, part) : 0.0;
    for (int attempt = 1; attempt <= ft.max_attempts; ++attempt) {
      if (st.done.load(std::memory_order_acquire)) break;  // speculation won
      // Cancellation point between attempts: an abandoned task is neither
      // done nor failed, and is classified as cancelled after the join.
      if (cancel_requested()) break;
      st.attempts.fetch_add(1, std::memory_order_relaxed);
      st.primary_attempts.fetch_add(1, std::memory_order_relaxed);
      st.attempt_start_ns.store(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count(),
          std::memory_order_relaxed);
      if (delay_ms > 0.0) interruptible_sleep_ms(delay_ms, st.done, cancel);
      if (st.done.load(std::memory_order_acquire) || cancel_requested()) break;
      bool attempt_failed = inject && injector_.should_fail(stage_seq, part, attempt);
      if (!attempt_failed && chaos_task.armed()) {
        try {
          // kThrow is absorbed here like an injected fault; kStall sleeps
          // (bounded, cancel-aware) and leaves the attempt healthy, so the
          // watchdog — not the retry budget — is what rescues a stalled task.
          chaos_task.inject(stage_seq, part, static_cast<std::uint64_t>(attempt),
                            cancel);
        } catch (const chaos::ChaosError&) {
          attempt_failed = true;
        }
      }
      if (!attempt_failed) {
        try {
          execute_body(idx, /*speculative=*/false);
          break;  // the partition is complete (by us or a faster copy)
        } catch (...) {
          // User-code failure: retried exactly like an injected fault. The
          // body must be idempotent (see run_stage contract).
          attempt_failed = true;
        }
      }
      if (attempt == ft.max_attempts) {
        st.failed.store(true, std::memory_order_release);
      } else {
        const double backoff = backoff_delay_ms(ft, stage_seq, part, attempt);
        if (backoff > 0.0) interruptible_sleep_ms(backoff, st.done, cancel);
      }
    }
    st.primary_finished.store(true, std::memory_order_release);
    {
      std::lock_guard plock(progress_mu);
      ++primaries_done;
    }
    progress_cv.notify_all();
  };

  // A speculative copy models re-execution on a healthy node: no injected
  // fault, no straggler delay, single attempt.
  auto speculative = [&](std::size_t idx) {
    TaskState& st = tasks[idx];
    if (st.done.load(std::memory_order_acquire) || cancel_requested()) return;
    st.attempts.fetch_add(1, std::memory_order_relaxed);
    try {
      execute_body(idx, /*speculative=*/true);
    } catch (...) {
      // Copy died on user code; the primary keeps retrying (or already
      // declared the task dead).
    }
  };

  std::vector<std::future<void>> futures;
  futures.reserve(n_sel);
  for (std::size_t i = 0; i < n_sel; ++i) {
    futures.push_back(pool_.submit([&primary, i] { primary(i); }));
  }

  if ((ft.speculation || ft.stall_watchdog) && n_sel > 0) {
    // Monitor loop: quantile speculation (Spark-style tail copies once the
    // quantile of tasks succeeded) and the stall watchdog (an immediate
    // copy for any task whose current attempt exceeds the stall threshold)
    // share one ticker. Exactly-once body completion makes both launches
    // content-preserving, so their timing never changes result bytes.
    const auto threshold = std::min(
        n_sel, static_cast<std::size_t>(std::ceil(
                   ft.speculation_quantile * static_cast<double>(n_sel) - 1e-12)));
    const auto now_ns = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
    // At most one copy per task, launched only while its primary is still
    // in flight — the same rule the one-shot quantile pass always applied.
    auto launch_copy = [&](std::size_t i) {
      TaskState& st = tasks[i];
      if (st.done.load(std::memory_order_acquire) ||
          st.primary_finished.load(std::memory_order_acquire) ||
          st.spec_launched.load(std::memory_order_relaxed)) {
        return;
      }
      st.spec_launched.store(true, std::memory_order_relaxed);
      futures.push_back(pool_.submit([&speculative, i] { speculative(i); }));
    };
    bool quantile_fired = !ft.speculation;
    while (true) {
      std::size_t done_now = 0;
      std::size_t succ_now = 0;
      {
        std::unique_lock lock(progress_mu);
        progress_cv.wait_for(lock, std::chrono::milliseconds(5), [&] {
          return primaries_done == n_sel ||
                 (!quantile_fired && succeeded >= threshold);
        });
        done_now = primaries_done;
        succ_now = succeeded;
      }
      if (!quantile_fired && succ_now >= threshold) {
        quantile_fired = true;
        for (std::size_t i = 0; i < n_sel; ++i) launch_copy(i);
      }
      if (ft.stall_watchdog) {
        // Live threshold: the larger of the absolute floor and a multiple
        // of the observed task-time p95 (cold or detached histograms
        // contribute nothing, leaving the floor). A slow-but-uniform stage
        // raises its own bar; a wedged outlier trips it.
        double stall_ms = ft.stall_threshold_ms;
        if (obs_.task_time_s != nullptr && ft.stall_p95_multiplier > 0.0) {
          const auto hstats = obs_.task_time_s->stats();
          if (hstats.count > 0) {
            stall_ms = std::max(stall_ms, ft.stall_p95_multiplier * hstats.p95 * 1e3);
          }
        }
        if (stall_ms > 0.0) {
          const std::int64_t now = now_ns();
          for (std::size_t i = 0; i < n_sel; ++i) {
            const std::int64_t t0 =
                tasks[i].attempt_start_ns.load(std::memory_order_relaxed);
            if (t0 < 0) continue;
            if (static_cast<double>(now - t0) * 1e-6 >= stall_ms) launch_copy(i);
          }
        }
      }
      if (done_now == n_sel) break;
      // Without the watchdog there is nothing left to monitor after the
      // quantile pass fired — preserve the one-shot behaviour exactly.
      if (quantile_fired && !ft.stall_watchdog) break;
    }
  }
  // Task-level errors were consumed by the attempt loops; anything escaping
  // here is an engine bug and propagates.
  for (auto& f : futures) f.get();

  info.executed_partition_ids.reserve(n_sel);
  info.task_times_s.reserve(n_sel);
  for (std::size_t i = 0; i < n_sel; ++i) {
    TaskState& st = tasks[i];
    info.attempts += static_cast<std::size_t>(st.attempts.load(std::memory_order_relaxed));
    const int primary_attempts = st.primary_attempts.load(std::memory_order_relaxed);
    if (primary_attempts > 1) info.retries += static_cast<std::size_t>(primary_attempts - 1);
    if (st.spec_launched.load(std::memory_order_relaxed)) ++info.speculative_launched;
    if (st.spec_won.load(std::memory_order_relaxed)) ++info.speculative_wins;
    if (st.done.load(std::memory_order_acquire)) {
      // `selected` is sorted, so the executed ids come out sorted too.
      info.executed_partition_ids.push_back(selected[i]);
      info.task_times_s.push_back(st.task_time_s);
    } else if (st.failed.load(std::memory_order_acquire)) {
      info.failed_partition_ids.push_back(selected[i]);
    } else {
      // Neither completed nor out of budget: the cancellation token fired
      // and the attempt loop abandoned the task.
      ++info.cancelled_partitions;
    }
  }
  info.executed_partitions = info.executed_partition_ids.size();
}

}  // namespace dias::engine
