// Circuit breaker for the spill backend (ISSUE 10 tentpole, hardening 1).
//
// Before this, a permanently failing spill disk was retried forever: every
// push over budget re-attempted the write, every failure surfaced as a
// task failure, and the task retry budget burned down per segment. But a
// spill *write* is a pure relocation — the entries are still resident —
// so a failed write can legitimately be absorbed: the segment simply stays
// in memory and the shuffle degrades to the unbounded-budget path it
// already supports bit-for-bit. The breaker makes that absorption cheap
// and bounded:
//
//   closed    — writes flow; each failure increments a consecutive-failure
//               count, any success resets it. At `failure_threshold`
//               consecutive failures the breaker trips open.
//   open      — writes are denied without touching the backend (the dead
//               disk stops being hammered). Every `probe_interval`-th
//               denied operation is let through as a half-open probe.
//   half-open — one probe in flight: success closes the breaker, failure
//               re-opens it and restarts the denial count.
//
// Read-side failures also feed the breaker (a disk that cannot be read
// will not take writes either), but reads are never denied: spilled data
// lives only on the backend, so the merge must keep trying within its
// task retry budget regardless of breaker state.
//
// Thread-safety: one mutex. The breaker sits on the spill path, which is
// already the cold lane of the shuffle (encode + backend I/O dominate).
#pragma once

#include <cstdint>
#include <mutex>

#include "common/error.hpp"

namespace dias::engine {

class SpillBreaker {
 public:
  struct Options {
    // Consecutive failures that trip closed -> open (>= 1).
    int failure_threshold = 3;
    // Every Nth denied operation while open becomes a half-open probe
    // (>= 1; 1 = probe every time, i.e. no denial).
    int probe_interval = 16;
  };

  enum class State { kClosed, kOpen, kHalfOpen };

  SpillBreaker() = default;
  explicit SpillBreaker(Options options) : options_(options) {
    DIAS_EXPECTS(options_.failure_threshold >= 1,
                 "breaker failure_threshold must be >= 1");
    DIAS_EXPECTS(options_.probe_interval >= 1, "breaker probe_interval must be >= 1");
  }

  // May this write attempt touch the backend? Denials are counted; every
  // probe_interval-th denial converts into a half-open probe instead.
  bool allow() {
    std::lock_guard lock(mu_);
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kHalfOpen:
        // One probe outstanding; everyone else stays in memory until it
        // resolves.
        return false;
      case State::kOpen: {
        ++denied_;
        if (denied_ % options_.probe_interval == 0) {
          state_ = State::kHalfOpen;
          return true;
        }
        return false;
      }
    }
    return true;
  }

  void record_success() {
    std::lock_guard lock(mu_);
    consecutive_failures_ = 0;
    if (state_ == State::kHalfOpen) {
      state_ = State::kClosed;
      denied_ = 0;
    }
  }

  void record_failure() {
    std::lock_guard lock(mu_);
    ++failures_;
    if (state_ == State::kHalfOpen) {
      state_ = State::kOpen;
      return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= options_.failure_threshold) {
      state_ = State::kOpen;
      consecutive_failures_ = 0;
      ++trips_;
    }
  }

  State state() const {
    std::lock_guard lock(mu_);
    return state_;
  }
  bool open() const {
    std::lock_guard lock(mu_);
    return state_ != State::kClosed;
  }

  std::uint64_t trips() const {
    std::lock_guard lock(mu_);
    return trips_;
  }
  std::uint64_t denied() const {
    std::lock_guard lock(mu_);
    return denied_;
  }
  std::uint64_t failures() const {
    std::lock_guard lock(mu_);
    return failures_;
  }

  // Back to closed with zeroed streak/denial state (per-job reset); the
  // cumulative trip/failure totals survive for accounting.
  void reset() {
    std::lock_guard lock(mu_);
    state_ = State::kClosed;
    consecutive_failures_ = 0;
    denied_ = 0;
  }

  // Gauge encoding for obs export.
  static double state_value(State s) {
    switch (s) {
      case State::kClosed:
        return 0.0;
      case State::kHalfOpen:
        return 1.0;
      case State::kOpen:
        return 2.0;
    }
    return 0.0;
  }

 private:
  Options options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  std::uint64_t denied_ = 0;
  std::uint64_t trips_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace dias::engine
