// Fixed-size worker pool used by the mini MapReduce engine to execute the
// tasks of a stage concurrently, mirroring Spark executors running one task
// per core.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace dias::engine {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  // Stable worker-slot id of the calling thread within *this* pool:
  // 0..workers()-1 when called from one of the pool's worker threads,
  // kNoSlot otherwise (including workers of a different pool). Slots are
  // assigned at construction and never change, so stages can keep
  // per-thread state (e.g. shuffle write buffers) in a plain vector
  // indexed without synchronization.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t current_slot() const;

  // Enqueues a task; the future resolves when it ran (or rethrows).
  std::future<void> submit(std::function<void()> task);

  // Runs `count` indexed tasks and waits for all of them; the first
  // observed exception (if any) is rethrown after every task finished.
  // Internally submits one index-stealing loop per worker instead of one
  // queue entry per task, so per-task overhead stays O(1) allocations per
  // *stage* rather than per task.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& task);

  // Tasks enqueued but not yet picked up by a worker (diagnostic; the
  // value is stale as soon as it is returned).
  std::size_t pending();

  // Attaches pool metrics under `prefix` (e.g. "engine.pool"): submitted /
  // completed task counters, a queue-depth gauge, a busy-workers gauge and
  // a static worker-count gauge. Handles are atomic pointers, so updates
  // cost one relaxed load plus one atomic op when attached and a single
  // branch when not; attach before submitting work for coherent numbers.
  void attach_metrics(obs::Registry& registry, const std::string& prefix);

 private:
  void worker_loop(std::size_t slot);

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  std::atomic<obs::Counter*> tasks_submitted_{nullptr};
  std::atomic<obs::Counter*> tasks_completed_{nullptr};
  std::atomic<obs::Gauge*> queue_depth_{nullptr};
  std::atomic<obs::Gauge*> busy_workers_{nullptr};
};

}  // namespace dias::engine
