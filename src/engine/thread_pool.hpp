// Elastic worker pool used by the mini MapReduce engine to execute the
// tasks of a stage concurrently, mirroring Spark executors running one task
// per core.
//
// Elasticity (the runtime sprinting substrate): the pool is constructed
// with `workers` base slots plus `reserve` extra slots. All base+reserve
// threads exist from construction with stable slot ids, but only the first
// `active_workers()` of them pull tasks; the rest sleep. A sprint lease
// (lease_extra_workers / SlotLease) raises the active limit so a running
// stage's parallelism grows mid-flight — run_indexed() submits one
// index-stealing lane per *slot*, so lanes queued beyond the active limit
// start executing the moment a lease activates their worker. Revocation is
// non-preemptive: a deactivated worker finishes its current task, then goes
// back to sleep. Slot ids never change across lease changes, which is what
// keeps per-slot state (shuffle write buffers) safe: containers sized by
// workers() cover every slot that can ever run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "obs/metrics.hpp"

namespace dias::engine {

class ThreadPool {
 public:
  // `workers` base slots are always active; `reserve` additional slots
  // start dormant and activate only through a lease.
  explicit ThreadPool(std::size_t workers, std::size_t reserve = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total slots (base + reserve). Per-slot containers must use this size:
  // any of these slots can run tasks once leased.
  std::size_t workers() const { return threads_.size(); }
  // Base slots: the floor the active limit can never drop below.
  std::size_t base_workers() const { return base_; }
  // Slots currently allowed to pull tasks (base <= active <= workers()).
  std::size_t active_workers();

  // --- slot-lease protocol (see SlotLease for the RAII form) --------------
  // Activates up to `extra` reserve slots; returns how many were actually
  // granted (less when the reserve is partly leased out already). Takes
  // effect immediately: sleeping workers wake and start pulling queued
  // work, including lanes of a stage already in flight.
  std::size_t lease_extra_workers(std::size_t extra);
  // Returns `count` previously leased slots. Non-preemptive: a worker past
  // the new limit finishes its current task before going dormant. It is a
  // precondition error to release more than is currently leased.
  void release_extra_workers(std::size_t count);

  // Stable worker-slot id of the calling thread within *this* pool:
  // 0..workers()-1 when called from one of the pool's worker threads,
  // kNoSlot otherwise (including workers of a different pool). Slots are
  // assigned at construction and never change, so stages can keep
  // per-thread state (e.g. shuffle write buffers) in a plain vector
  // indexed without synchronization.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t current_slot() const;
  // Slot id of the calling thread in whatever pool owns it (kNoSlot for
  // threads no pool owns). Lets pool-agnostic code — e.g. the sharded
  // dispatcher's lane selection — reuse the stable per-worker identity
  // without holding a pool reference.
  static std::size_t calling_thread_slot();

  // Enqueues a task; the future resolves when it ran (or rethrows).
  std::future<void> submit(std::function<void()> task);

  // Runs `count` indexed tasks and waits for all of them; the first
  // observed exception (if any) is rethrown after every task finished.
  // Internally submits one index-stealing loop per worker slot instead of
  // one queue entry per task, so per-task overhead stays O(1) allocations
  // per *stage* rather than per task, and a mid-stage lease immediately
  // widens the stage (the extra lanes are already queued).
  //
  // With a non-null `cancel`, every lane re-checks the token before
  // stealing its next index and bails once cancellation was requested —
  // in-flight task bodies finish (cooperative contract), the remaining
  // indices are abandoned, and the workers come free for the next job.
  // Abandoned indices do NOT count as errors; the caller decides what a
  // partially executed range means (the engine raises JobCancelledError).
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& task,
                   const CancellationToken* cancel = nullptr);

  // Tasks enqueued but not yet picked up by a worker (diagnostic; the
  // value is stale as soon as it is returned).
  std::size_t pending();

  // Attaches pool metrics under `prefix` (e.g. "engine.pool"): submitted /
  // completed task counters, a queue-depth gauge, a busy-workers gauge, a
  // static worker-count gauge and an active-workers gauge tracking lease
  // changes. Handles are atomic pointers, so updates cost one relaxed load
  // plus one atomic op when attached and a single branch when not; attach
  // before submitting work for coherent numbers.
  void attach_metrics(obs::Registry& registry, const std::string& prefix);

 private:
  void worker_loop(std::size_t slot);

  std::vector<std::thread> threads_;
  std::size_t base_ = 0;
  std::size_t active_limit_ = 0;  // guarded by mutex_
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  std::atomic<obs::Counter*> tasks_submitted_{nullptr};
  std::atomic<obs::Counter*> tasks_completed_{nullptr};
  std::atomic<obs::Gauge*> queue_depth_{nullptr};
  std::atomic<obs::Gauge*> busy_workers_{nullptr};
  std::atomic<obs::Gauge*> active_workers_gauge_{nullptr};
};

// RAII slot lease: grants up to `extra` reserve slots on construction and
// returns whatever was granted on destruction. Move-only.
class SlotLease {
 public:
  SlotLease() = default;
  SlotLease(ThreadPool& pool, std::size_t extra)
      : pool_(&pool), granted_(pool.lease_extra_workers(extra)) {}
  SlotLease(SlotLease&& other) noexcept
      : pool_(other.pool_), granted_(other.granted_) {
    other.pool_ = nullptr;
    other.granted_ = 0;
  }
  SlotLease& operator=(SlotLease&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      granted_ = other.granted_;
      other.pool_ = nullptr;
      other.granted_ = 0;
    }
    return *this;
  }
  ~SlotLease() { reset(); }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  std::size_t granted() const { return granted_; }
  void reset() {
    if (pool_ != nullptr && granted_ > 0) pool_->release_extra_workers(granted_);
    pool_ = nullptr;
    granted_ = 0;
  }

 private:
  ThreadPool* pool_ = nullptr;
  std::size_t granted_ = 0;
};

}  // namespace dias::engine
