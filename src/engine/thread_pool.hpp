// Elastic worker pool used by the mini MapReduce engine to execute the
// tasks of a stage concurrently, mirroring Spark executors running one task
// per core.
//
// Elasticity (the runtime sprinting substrate): the pool is constructed
// with `workers` base slots plus `reserve` extra slots. All base+reserve
// threads exist from construction with stable slot ids, but only the first
// `active_workers()` of them pull tasks; the rest sleep. A sprint lease
// (lease_extra_workers / SlotLease) raises the active limit so a running
// stage's parallelism grows mid-flight. Revocation is non-preemptive: a
// deactivated worker finishes its current task (or index-stealing lane),
// then goes back to sleep. Slot ids never change across lease changes,
// which is what keeps per-slot state (shuffle write buffers, segment
// arenas) safe: containers sized by workers() cover every slot that can
// ever run.
//
// Wave submission (ISSUE 9): run_indexed() enqueues ONE wave descriptor
// per stage instead of one packaged lane per slot. Active workers join the
// wave in place (the descriptor stays at the queue front until its index
// range is exhausted), steal indices off a shared atomic, and the last
// lane to leave signals a completion latch the caller blocks on. That is
// one queue operation, one allocation, and one notify per *stage* — the
// per-task promise/future machinery is gone from the stage hot path. A
// mid-wave lease still widens the stage: freshly activated slots find the
// wave at the front and join it. Constructing with batched_waves = false
// keeps the legacy one-submit-per-lane path (the scale determinism battery
// sweeps both and the outputs are byte-identical).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "obs/metrics.hpp"

namespace dias::engine {

class ThreadPool {
 public:
  // `workers` base slots are always active; `reserve` additional slots
  // start dormant and activate only through a lease. `batched_waves`
  // selects wave-descriptor submission for run_indexed (the default);
  // false keeps the legacy one-packaged-lane-per-slot path.
  explicit ThreadPool(std::size_t workers, std::size_t reserve = 0,
                      bool batched_waves = true);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total slots (base + reserve). Per-slot containers must use this size:
  // any of these slots can run tasks once leased.
  std::size_t workers() const { return threads_.size(); }
  // Base slots: the floor the active limit can never drop below.
  std::size_t base_workers() const { return base_; }
  // Slots currently allowed to pull tasks (base <= active <= workers()).
  std::size_t active_workers();

  // --- slot-lease protocol (see SlotLease for the RAII form) --------------
  // Activates up to `extra` reserve slots; returns how many were actually
  // granted (less when the reserve is partly leased out already). Takes
  // effect immediately: sleeping workers wake and start pulling queued
  // work, including joining a wave already in flight.
  std::size_t lease_extra_workers(std::size_t extra);
  // Returns `count` previously leased slots. Non-preemptive: a worker past
  // the new limit finishes its current task or lane before going dormant.
  // It is a precondition error to release more than is currently leased.
  void release_extra_workers(std::size_t count);

  // Stable worker-slot id of the calling thread within *this* pool:
  // 0..workers()-1 when called from one of the pool's worker threads,
  // kNoSlot otherwise (including workers of a different pool). Slots are
  // assigned at construction and never change, so stages can keep
  // per-thread state (e.g. shuffle write buffers) in a plain vector
  // indexed without synchronization.
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);
  std::size_t current_slot() const;
  // Slot id of the calling thread in whatever pool owns it (kNoSlot for
  // threads no pool owns). Lets pool-agnostic code — e.g. the sharded
  // dispatcher's lane selection — reuse the stable per-worker identity
  // without holding a pool reference.
  static std::size_t calling_thread_slot();

  // Enqueues a task; the future resolves when it ran (or rethrows).
  std::future<void> submit(std::function<void()> task);

  // Runs `count` indexed tasks and waits for all of them; the first
  // observed exception (if any) is rethrown after every started task
  // finished. With batched waves this is one queue push: workers join the
  // wave at the queue front and steal indices until the range is
  // exhausted; the last lane out trips the completion latch. When the
  // calling thread is itself a worker of this pool it lends its own slot
  // as a lane (so a nested run_indexed can never deadlock a small pool);
  // foreign callers never execute bodies — stage bodies only ever run on
  // slotted workers, which is what keeps the shuffle write path off the
  // locked overflow lane.
  //
  // With a non-null `cancel`, every lane re-checks the token before
  // stealing its next index and bails once cancellation was requested —
  // in-flight task bodies finish (cooperative contract), the remaining
  // indices are abandoned, and the workers come free for the next job.
  // Abandoned indices do NOT count as errors; the caller decides what a
  // partially executed range means (the engine raises JobCancelledError).
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& task,
                   const CancellationToken* cancel = nullptr);

  // Queue entries not yet retired: each plain task counts 1 and each
  // unfinished wave counts 1, however many indices it still holds
  // (diagnostic; the value is stale as soon as it is returned).
  std::size_t pending();

  // Total task bodies executed since construction (plain tasks + wave
  // indices), folded from the cache-line-padded per-slot cells.
  std::uint64_t tasks_executed() const { return executed_.value(); }

  // Attaches pool metrics under `prefix` (e.g. "engine.pool"): submitted /
  // completed task counters, a waves counter, a queue-depth gauge, a
  // busy-workers gauge, a static worker-count gauge and an active-workers
  // gauge tracking lease changes.
  //
  // Attachment is race-safe at any time, including mid-storm: workers
  // record into internal padded per-slot cells and plain atomics, and the
  // registry handles are only touched under a metrics mutex at cold
  // publication points (submit, wave enqueue, lane entry, task/wave
  // completion, lease changes, attach itself). attach_metrics re-bases
  // against the counters' current values and immediately publishes the
  // full internal totals, so counts taken after quiesce are exact no
  // matter when the registry was attached — the old "attach before
  // submitting work" footgun is gone. tasks_submitted counts plain
  // submits plus wave index ranges; tasks_completed counts executed
  // bodies (under cancellation the abandoned remainder never completes,
  // so the two need not converge).
  void attach_metrics(obs::Registry& registry, const std::string& prefix);
  // Drops the registry handles; safe while tasks run. After detach the
  // pool never touches the registry again (internal totals keep
  // accumulating and a later attach publishes them).
  void detach_metrics();

 private:
  struct Wave;
  struct Item {
    std::packaged_task<void()> task;
    std::shared_ptr<Wave> wave;  // non-null: a wave descriptor, not a task
  };

  void worker_loop(std::size_t slot);
  void run_wave_lane(const std::shared_ptr<Wave>& wave, std::size_t slot);
  void run_indexed_legacy(std::size_t count, const std::function<void(std::size_t)>& task,
                          const CancellationToken* cancel);
  // Publishes internal totals to the attached registry handles (no-op when
  // detached). Requires metrics_mu_; must never be called with mutex_ held
  // (lock order: mutex_ and metrics_mu_ are never nested).
  void publish_metrics_locked();
  void publish_metrics();
  void note_executed(std::size_t slot, std::uint64_t n) {
    executed_.add(slot == kNoSlot ? executed_.shards() - 1 : slot, n);
  }

  std::vector<std::thread> threads_;
  std::size_t base_ = 0;
  std::size_t active_limit_ = 0;  // guarded by mutex_
  const bool batched_waves_;
  std::deque<Item> queue_;  // guarded by mutex_
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // --- internal accounting (always on; registry-independent) -------------
  // Per-slot executed-body cells, one cache line each (+1 shard for
  // slotless callers, which exist only in tests poking submit wrappers).
  obs::ShardedCounter executed_;
  std::atomic<std::uint64_t> wave_seq_{0};  // chaos coordinate for pool.wave
  std::atomic<std::uint64_t> submitted_total_{0};
  std::atomic<std::uint64_t> waves_total_{0};
  std::atomic<std::int64_t> busy_count_{0};
  std::atomic<std::size_t> queue_size_{0};  // mirrors queue_.size()

  // --- registry export (guarded by metrics_mu_) ---------------------------
  std::mutex metrics_mu_;
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Counter* tasks_completed_ = nullptr;
  obs::Counter* waves_counter_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* busy_workers_ = nullptr;
  obs::Gauge* active_workers_gauge_ = nullptr;
  std::uint64_t published_submitted_ = 0;
  std::uint64_t published_completed_ = 0;
  std::uint64_t published_waves_ = 0;
};

// RAII slot lease: grants up to `extra` reserve slots on construction and
// returns whatever was granted on destruction. Move-only.
class SlotLease {
 public:
  SlotLease() = default;
  SlotLease(ThreadPool& pool, std::size_t extra)
      : pool_(&pool), granted_(pool.lease_extra_workers(extra)) {}
  SlotLease(SlotLease&& other) noexcept
      : pool_(other.pool_), granted_(other.granted_) {
    other.pool_ = nullptr;
    other.granted_ = 0;
  }
  SlotLease& operator=(SlotLease&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      granted_ = other.granted_;
      other.pool_ = nullptr;
      other.granted_ = 0;
    }
    return *this;
  }
  ~SlotLease() { reset(); }
  SlotLease(const SlotLease&) = delete;
  SlotLease& operator=(const SlotLease&) = delete;

  std::size_t granted() const { return granted_; }
  void reset() {
    if (pool_ != nullptr && granted_ > 0) pool_->release_extra_workers(granted_);
    pool_ = nullptr;
    granted_ = 0;
  }

 private:
  ThreadPool* pool_ = nullptr;
  std::size_t granted_ = 0;
};

}  // namespace dias::engine
