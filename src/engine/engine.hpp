// Mini MapReduce engine with task dropping (paper Section 3.3).
//
// Executes DAGs of map / shuffle-map / reduce stages over partitioned
// datasets on a thread pool. Approximation works exactly like the paper's
// Spark patch: before a droppable stage runs, find_missing_partitions()
// returns only ceil(n (1 - theta)) of its n partitions; the rest are
// dropped before execution and contribute no data. The engine records a
// per-stage log (partition counts, wall time, per-task times) used both
// for accuracy experiments and to parameterize the stochastic models.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/cancellation.hpp"
#include "common/rng.hpp"
#include "engine/dataset.hpp"
#include "engine/fault.hpp"
#include "engine/shuffle.hpp"
#include "engine/stage_plan.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::engine {

enum class EngineStageKind { kMap, kShuffleMap, kShuffleWrite, kReduce, kResult };

const char* to_string(EngineStageKind kind);

struct StageInfo {
  std::string name;
  EngineStageKind kind = EngineStageKind::kMap;
  std::size_t total_partitions = 0;
  std::size_t executed_partitions = 0;   // successfully executed tasks
  double applied_drop_ratio = 0.0;       // the configured theta
  double duration_s = 0.0;             // wall time of the whole stage
  std::vector<double> task_times_s;    // per executed task

  // --- fault-tolerance accounting -----------------------------------------
  // Partitions whose task completed successfully, sorted ascending.
  std::vector<std::size_t> executed_partition_ids;
  // Partitions whose task exhausted its retry budget. On a droppable stage
  // these were degraded into drops; on a non-droppable stage the first one
  // was raised as TaskFailedError (after this entry was logged).
  std::vector<std::size_t> failed_partition_ids;
  std::size_t attempts = 0;             // total attempts incl. retries + speculative copies
  std::size_t retries = 0;              // primary attempts beyond the first, summed over tasks
  std::size_t speculative_launched = 0; // speculative copies submitted
  std::size_t speculative_wins = 0;     // copies that beat the primary
  // The drop ratio the stage *effectively* ran with: dropped-before-launch
  // plus failed-then-dropped tasks over total. Equals the share of
  // partitions that contributed no data, so the accuracy profile evaluated
  // at this ratio still bounds the result error. For total_partitions > 0
  // this is >= applied_drop_ratio; an *empty* stage (total_partitions == 0)
  // records 0 — no partition contributed no data, vacuously, so the
  // accuracy bound at ratio 0 (exact) applies regardless of the configured
  // theta.
  double effective_drop_ratio = 0.0;

  // --- cancellation accounting --------------------------------------------
  // True when the job's CancellationToken fired while this stage ran: the
  // partitions below were abandoned before their body completed and
  // run_stage raised JobCancelledError right after logging this entry, so
  // the stage's output must be considered garbage (unlike degradation,
  // cancellation makes no accuracy claim).
  bool cancelled = false;
  std::size_t cancelled_partitions = 0;  // selected but abandoned mid-stage

  // --- shuffle accounting -------------------------------------------------
  // Populated on the two stages of a combine_by_key-style shuffle. On the
  // shuffle-write stage: records entering the write path, entries shipped
  // after map-side combining, their estimated byte footprint, and how many
  // combiner flushes the byte budget forced. On the merge stage:
  // shuffle_records_in counts the entries merged (equals the write side's
  // shuffle_records_out unless merge tasks were dropped).
  std::size_t shuffle_records_in = 0;
  std::size_t shuffle_records_out = 0;
  std::size_t shuffle_bytes = 0;
  std::size_t shuffle_flushes = 0;
  // Spill accounting under a finite ShuffleOptions::memory_budget_bytes.
  // On the shuffle-write stage: segments/bytes handed to the spill backend.
  // On the merge stage: spilled segments/bytes streamed back in. Always 0
  // with an unbounded budget.
  std::size_t shuffle_spill_segments = 0;
  std::size_t shuffle_spill_bytes = 0;
  std::size_t shuffle_restored_segments = 0;
  std::size_t shuffle_restored_bytes = 0;
  // Spill-breaker accounting (ISSUE 10 satellite b): segments that stayed
  // resident because the breaker denied the write or the backend failed
  // it, the raw write failures behind them, and whether the engine's
  // breaker was tripped (open/half-open) when the stage finished. Lets
  // callers distinguish "degraded to in-memory under a sick disk" from
  // "retried clean": fallback > 0 means the budget was overshot on
  // purpose, while results stay byte-identical either way.
  std::size_t shuffle_spill_fallback_segments = 0;
  std::size_t shuffle_spill_write_failures = 0;
  bool spill_breaker_open = false;
  // Merge-stage load imbalance: max bucket record count over the mean
  // (1.0 = perfectly even; only meaningful on the merge stage). The
  // adaptive planner reads the exported gauge to resize partition counts.
  double shuffle_merge_skew = 1.0;
};

struct StageOptions {
  std::string name = "stage";
  // Whether the engine may drop this stage's tasks.
  bool droppable = true;
  // Overrides the engine-wide drop ratio when >= 0.
  double drop_ratio_override = -1.0;
  // Adaptive execution overrides (ISSUE 8): when set, run_stage applies
  // the plan's speculation toggle and the shuffle entry points apply its
  // combiner / partition / single-thread / buffer / spill knobs. Absent
  // (the default), every path is byte-identical to the pre-plan engine.
  std::optional<StagePlan> plan;
};

// The paper's modified Spark hook: which of the n partitions still need to
// be computed under drop ratio theta in [0, 1]. Returns a sorted random
// subset of size ceil(n (1 - theta)); theta == 1 keeps nothing (a fully
// degraded stage) and n == 0 returns empty for any theta.
std::vector<std::size_t> find_missing_partitions(std::size_t n, double theta, Rng& rng);

namespace detail {

// Wraps one spill I/O operation inside a stage body. Backend failures
// (any dias::error) become TaskFailedError for this stage/partition, so
// the fault-tolerant path retries them like any task failure and the
// legacy path surfaces them as a failed task — while cancellation and
// already-classified task failures pass through untouched. Inactive
// (shuffle without a backend) it is a transparent call, keeping the
// legacy shuffle exception-for-exception identical.
template <typename Fn>
decltype(auto) guard_spill_io(bool active, const std::string& stage, std::size_t partition,
                              Fn&& fn) {
  if (!active) return fn();
  try {
    return fn();
  } catch (const JobCancelledError&) {
    throw;
  } catch (const TaskFailedError&) {
    throw;
  } catch (const error& e) {
    throw TaskFailedError(stage, partition, 1, e.what());
  }
}

}  // namespace detail

class Engine {
 public:
  struct Options {
    std::size_t workers = 4;
    // Dormant reserve slots for sprinting: a SprintGovernor (or any caller
    // of pool().lease_extra_workers) can activate them mid-job to widen a
    // running stage. 0 keeps the pool fixed-size.
    std::size_t reserve_workers = 0;
    std::uint64_t seed = 1;
    // Engine-wide drop ratio in [0, 1] applied to droppable stages.
    // theta == 1 drops every task of a droppable stage — the fully
    // degraded extreme that failed-task degradation can also reach.
    double drop_ratio = 0.0;
    // Fault injection + retry/speculation/degradation policy. The default
    // (no injection, 1 attempt, no speculation) keeps run_stage on the
    // legacy zero-overhead path.
    FaultToleranceOptions fault;
    // --- hot-path scaling knobs (ISSUE 9) ---------------------------------
    // Both default on; outputs are byte-identical either way (the scale
    // determinism battery sweeps the off settings), so the only reason to
    // disable them is A/B measurement.
    // Batched wave submission: run_indexed enqueues one wave descriptor
    // per stage instead of one packaged lane per worker slot.
    bool batched_waves = true;
    // Per-worker-slot bump arenas backing shuffle segment storage,
    // recycled at each shuffle's epoch boundary. A pure relocation: same
    // bytes, same (src, seq) order, no malloc churn.
    bool shuffle_arena = true;
    // --- spill circuit breaker (ISSUE 10) ---------------------------------
    // Governs every spill write of this engine (see SpillBreaker): after
    // `spill_breaker.failure_threshold` consecutive backend failures the
    // shuffle trips to the in-memory fallback instead of burning task
    // attempts on a dead disk. `spill_breaker_enabled = false` restores
    // the PR 6 semantics (write failures surface as TaskFailedError).
    bool spill_breaker_enabled = true;
    SpillBreaker::Options spill_breaker;
  };

  explicit Engine(Options options)
      : options_(options),
        pool_(options.workers, options.reserve_workers, options.batched_waves),
        rng_(options.seed), injector_(options.fault.injection),
        spill_breaker_(options.spill_breaker) {
    DIAS_EXPECTS(options.drop_ratio >= 0.0 && options.drop_ratio <= 1.0,
                 "drop ratio must be in [0,1]");
    DIAS_EXPECTS(options.fault.max_attempts >= 1, "need at least one attempt per task");
    DIAS_EXPECTS(options.fault.retry_backoff_ms >= 0.0, "retry backoff must be >= 0");
    DIAS_EXPECTS(options.fault.speculation_quantile > 0.0 &&
                     options.fault.speculation_quantile <= 1.0,
                 "speculation quantile must be in (0,1]");
    DIAS_EXPECTS(options.fault.retry_backoff_cap_ms >= 0.0 &&
                     options.fault.stall_threshold_ms >= 0.0 &&
                     options.fault.stall_p95_multiplier >= 0.0,
                 "backoff cap and stall thresholds must be >= 0");
    if (options.shuffle_arena) {
      arenas_.reserve(pool_.workers());
      for (std::size_t i = 0; i < pool_.workers(); ++i) {
        arenas_.push_back(std::make_unique<detail::SegmentArena>());
      }
    }
  }

  const Options& options() const { return options_; }
  // The elastic worker pool. Exposed so the sprint governor can lease the
  // reserve slots; per-slot shuffle state is sized by pool().workers()
  // (base + reserve), so leases are safe while stages run.
  ThreadPool& pool() { return pool_; }
  void set_drop_ratio(double theta) {
    DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratio must be in [0,1]");
    options_.drop_ratio = theta;
  }
  // Replaces the fault-tolerance policy (rebuilds the injector). Takes
  // effect from the next stage; the stage sequence counter keeps running so
  // injection stays deterministic for a fixed call sequence.
  void set_fault_options(const FaultToleranceOptions& fault) {
    DIAS_EXPECTS(fault.max_attempts >= 1, "need at least one attempt per task");
    DIAS_EXPECTS(fault.retry_backoff_ms >= 0.0, "retry backoff must be >= 0");
    DIAS_EXPECTS(fault.speculation_quantile > 0.0 && fault.speculation_quantile <= 1.0,
                 "speculation quantile must be in (0,1]");
    DIAS_EXPECTS(fault.retry_backoff_cap_ms >= 0.0 && fault.stall_threshold_ms >= 0.0 &&
                     fault.stall_p95_multiplier >= 0.0,
                 "backoff cap and stall thresholds must be >= 0");
    options_.fault = fault;
    injector_ = FaultInjector(fault.injection);
  }
  const FaultInjector& fault_injector() const { return injector_; }

  // --- cooperative cancellation -------------------------------------------
  // Installs the token subsequent stages poll: checked once on stage entry
  // and then between partitions (every lane re-checks before stealing its
  // next index; the fault-tolerant path also checks between attempts and
  // inside backoff/straggler sleeps). Once the token fires, the in-flight
  // task bodies finish, the rest of the stage is abandoned, the stage is
  // logged with `cancelled` accounting, and run_stage raises
  // JobCancelledError — releasing the pool for the next job. Detached (the
  // default) the stage paths are byte-identical to before this feature.
  // Not thread-safe against a concurrently running stage: the dispatcher
  // installs the job's token before invoking the job body.
  void set_cancellation(CancellationToken token) { cancel_ = std::move(token); }
  void clear_cancellation() { cancel_.reset(); }

  // --- spill backend -------------------------------------------------------
  // Attaches the engine-wide spill destination used by shuffles whose
  // ShuffleOptions carry a finite memory_budget_bytes but no per-shuffle
  // backend (null detaches). The engine does not own the backend; it must
  // outlive every shuffle that spills through it. Not thread-safe against
  // a concurrently running stage.
  void set_spill_backend(SpillBackend* backend) { spill_ = backend; }
  SpillBackend* spill_backend() const { return spill_; }
  // The engine's spill circuit breaker. State persists across shuffles —
  // a disk that died in stage 3 stays tripped in stage 4 — until the
  // caller resets it (e.g. per job, or after replacing the backend).
  SpillBreaker& spill_breaker() { return spill_breaker_; }
  const SpillBreaker& spill_breaker() const { return spill_breaker_; }

  // --- observability ------------------------------------------------------
  // Attaches metric/trace sinks (either may be null; null detaches). With a
  // registry attached every stage updates cached counter handles (stages,
  // tasks executed/dropped/degraded, attempts, retries, speculation) and
  // task/stage wall-time histograms, and the thread pool reports queue
  // depth and worker utilization. With a tracer attached every stage emits
  // a begin/end span carrying name, kind, sequence, theta and the fault
  // counters. Detached (the default) the engine pays one branch per stage.
  // Not thread-safe against a concurrently running stage.
  void attach_observability(obs::Registry* metrics, obs::Tracer* tracer);

  // --- dataset creation ---------------------------------------------------
  template <typename T>
  Dataset<T> parallelize(std::vector<T> data, std::size_t num_partitions) {
    DIAS_EXPECTS(num_partitions >= 1, "need at least one partition");
    std::vector<std::vector<T>> parts(num_partitions);
    const std::size_t n = data.size();
    for (std::size_t p = 0; p < num_partitions; ++p) {
      const std::size_t lo = n * p / num_partitions;
      const std::size_t hi = n * (p + 1) / num_partitions;
      parts[p].assign(std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(lo)),
                      std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(hi)));
    }
    return Dataset<T>(std::move(parts));
  }

  // --- transformations ----------------------------------------------------
  // Partition-wise map: f(const std::vector<T>&) -> std::vector<U>.
  template <typename T, typename F>
  auto map_partitions(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<typename std::invoke_result_t<F, const std::vector<T>&>::value_type> {
    using U = typename std::invoke_result_t<F, const std::vector<T>&>::value_type;
    std::vector<std::vector<U>> out(in.partitions());
    run_stage(in.partitions(), opts, EngineStageKind::kMap,
              [&](std::size_t p) { out[p] = f(in.partition(p)); });
    return Dataset<U>(std::move(out));
  }

  // Index-aware partition map: f(std::size_t partition, const std::vector<T>&)
  // -> std::vector<U>. Dropped partitions never invoke f.
  template <typename T, typename F>
  auto map_partitions_indexed(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<typename std::invoke_result_t<F, std::size_t,
                                               const std::vector<T>&>::value_type> {
    using U =
        typename std::invoke_result_t<F, std::size_t, const std::vector<T>&>::value_type;
    std::vector<std::vector<U>> out(in.partitions());
    run_stage(in.partitions(), opts, EngineStageKind::kMap,
              [&](std::size_t p) { out[p] = f(p, in.partition(p)); });
    return Dataset<U>(std::move(out));
  }

  // Element-wise map: f(const T&) -> U.
  template <typename T, typename F>
  auto map(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    return map_partitions(
        in,
        [&f](const std::vector<T>& part) {
          std::vector<U> out;
          out.reserve(part.size());
          for (const auto& x : part) out.push_back(f(x));
          return out;
        },
        std::move(opts));
  }

  // Element-wise flat map: f(const T&) -> std::vector<U>.
  template <typename T, typename F>
  auto flat_map(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<typename std::invoke_result_t<F, const T&>::value_type> {
    using U = typename std::invoke_result_t<F, const T&>::value_type;
    return map_partitions(
        in,
        [&f](const std::vector<T>& part) {
          std::vector<U> out;
          for (const auto& x : part) {
            auto ys = f(x);
            out.insert(out.end(), std::make_move_iterator(ys.begin()),
                       std::make_move_iterator(ys.end()));
          }
          return out;
        },
        std::move(opts));
  }

  template <typename T, typename F>
  Dataset<T> filter(const Dataset<T>& in, F pred, StageOptions opts = {}) {
    return map_partitions(
        in,
        [&pred](const std::vector<T>& part) {
          std::vector<T> out;
          for (const auto& x : part) {
            if (pred(x)) out.push_back(x);
          }
          return out;
        },
        std::move(opts));
  }

  // Data-level sampling (ApproxHadoop's second knob: instead of dropping
  // whole tasks, keep each *record* with probability `fraction`). Runs as a
  // non-droppable stage; combine with task dropping for two-stage sampling.
  template <typename T>
  Dataset<T> sample(const Dataset<T>& in, double fraction, StageOptions opts = {}) {
    DIAS_EXPECTS(fraction >= 0.0 && fraction <= 1.0, "sample fraction must be in [0,1]");
    // Derive per-partition seeds up front: stage bodies run concurrently.
    std::vector<std::uint64_t> seeds(in.partitions());
    for (auto& s : seeds) s = rng_();
    opts.droppable = false;
    std::vector<std::vector<T>> out(in.partitions());
    run_stage(in.partitions(), opts, EngineStageKind::kMap, [&](std::size_t p) {
      Rng local(seeds[p]);
      for (const auto& x : in.partition(p)) {
        if (local.bernoulli(fraction)) out[p].push_back(x);
      }
    });
    return Dataset<T>(std::move(out));
  }

  // Per-partition deduplication followed by a parallel per-bucket merge.
  // Both phases use the lock-free shuffle buffers (see shuffle.hpp); the
  // output is deterministic: bucket b lists its distinct elements in first-
  // appearance order over (input partition, record) position. The
  // per-partition dedup map flushes at target_buffer_bytes (duplicates
  // across flushes are re-deduplicated by the merge), so with a finite
  // memory_budget_bytes the flushed segments can spill like any shuffle —
  // first-appearance order survives both, because an element's earliest
  // flush window and its within-window position are pure functions of the
  // input.
  template <typename T>
  Dataset<T> distinct(const Dataset<T>& in, std::size_t out_partitions,
                      StageOptions opts = {}, ShuffleOptions shuffle = {}) {
    DIAS_EXPECTS(out_partitions >= 1, "need at least one output partition");
    using Entry = std::pair<T, char>;
    if (opts.plan && !opts.plan->is_identity()) {
      // distinct's merge is never droppable, so repartitioning is always
      // content-preserving here (first-appearance order is per element).
      apply_stage_plan(*opts.plan, shuffle, out_partitions, /*merge_theta=*/0.0,
                       detail::is_spillable<Entry>::value, sizeof(Entry));
    }
    const detail::SpillPolicy spill_policy = make_spill_policy<Entry>(shuffle);
    const bool spill_active = spill_policy.backend != nullptr;
    // Declared before the sink: destroyed after it, so the arenas are
    // recycled only once no segment from this shuffle is alive.
    ArenaEpochGuard arena_guard(*this);
    detail::ShuffleSink<T, char> sink(pool_.workers(), out_partitions, spill_policy);
    std::atomic<std::size_t> records_in{0};
    std::atomic<std::size_t> records_out{0};
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> flushes{0};
    opts.droppable = false;
    run_stage(in.partitions(), opts, EngineStageKind::kShuffleWrite, [&](std::size_t p) {
      const std::size_t slot = pool_.current_slot();
      std::hash<T> hasher;
      detail::FlatMap<T, char> seen;
      detail::RadixScratch radix;
      std::size_t seq = 0;
      std::size_t shipped = 0;
      std::size_t accounted_scratch = 0;
      records_in.fetch_add(in.partition(p).size(), std::memory_order_relaxed);
      auto ship = [&](std::vector<Entry>&& entries) {
        detail::radix_split(
            std::move(entries), out_partitions, hasher, radix, slot_arena(slot),
            [&](std::size_t b, detail::ArenaVector<Entry>&& seg) {
              shipped += seg.size();
              detail::guard_spill_io(spill_active, opts.name, p,
                                     [&] { sink.push(slot, b, {p, seq, std::move(seg)}); });
            });
        ++seq;
      };
      for (const auto& x : in.partition(p)) {
        bool created = false;
        seen.find_or_emplace(x, [] { return char{0}; }, &created);
        if (spill_active && seen.approx_bytes() != accounted_scratch) {
          const auto delta = static_cast<std::ptrdiff_t>(seen.approx_bytes()) -
                             static_cast<std::ptrdiff_t>(accounted_scratch);
          accounted_scratch = seen.approx_bytes();
          detail::guard_spill_io(spill_active, opts.name, p,
                                 [&] { sink.adjust_scratch(slot, delta); });
        }
        if (seen.approx_bytes() > shuffle.target_buffer_bytes) {
          auto full = std::move(seen.entries());
          seen.clear();
          ship(std::move(full));
          flushes.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!seen.empty()) {
        auto full = std::move(seen.entries());
        seen.clear();
        ship(std::move(full));
      }
      if (spill_active && accounted_scratch != 0) {
        sink.adjust_scratch(slot, -static_cast<std::ptrdiff_t>(accounted_scratch));
      }
      records_out.fetch_add(shipped, std::memory_order_relaxed);
      bytes.fetch_add(shipped * sizeof(Entry), std::memory_order_relaxed);
    });
    note_shuffle_write(records_in.load(), records_out.load(), bytes.load(),
                       flushes.load(), /*combine=*/true, sink.spilled_segments(),
                       sink.spilled_bytes(), sink.fallback_segments(),
                       sink.write_failures());
    std::vector<std::vector<T>> out(out_partitions);
    std::atomic<std::size_t> merged{0};
    std::atomic<std::uint64_t> restored_segments{0};
    std::atomic<std::uint64_t> restored_bytes{0};
    std::vector<double> stream_s(out_partitions, 0.0);
    std::vector<std::size_t> bucket_records(out_partitions, 0);
    StageOptions merge_opts;
    merge_opts.name = opts.name + "/merge";
    merge_opts.droppable = false;
    merge_opts.plan = opts.plan;  // per-stage speculation rides along
    run_stage(out_partitions, merge_opts, EngineStageKind::kReduce, [&](std::size_t b) {
      detail::FlatMap<T, char> unique;
      std::size_t records = 0;
      for (auto* segment : sink.bucket_segments(b)) {
        const bool was_spilled = segment->spilled;
        const auto t0 = was_spilled ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
        records += detail::guard_spill_io(spill_active, merge_opts.name, b, [&] {
          return sink.consume(*segment, [&](Entry&& entry) {
            bool created = false;
            unique.find_or_emplace(entry.first, [] { return char{0}; }, &created);
          });
        });
        if (was_spilled) {
          stream_s[b] += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                             .count();
          restored_segments.fetch_add(1, std::memory_order_relaxed);
          restored_bytes.fetch_add(segment->spill_bytes, std::memory_order_relaxed);
        }
      }
      // Every segment consumed: free the bucket (spilled storage included).
      // Never throws, so the completed body cannot be retried half-freed.
      sink.commit_bucket(b);
      bucket_records[b] = records;
      merged.fetch_add(records, std::memory_order_relaxed);
      out[b].reserve(unique.size());
      for (auto& entry : unique.entries()) out[b].push_back(std::move(entry.first));
    });
    note_shuffle_merge(merged.load(), restored_segments.load(), restored_bytes.load(),
                       stream_s, bucket_records);
    return Dataset<T>(std::move(out));
  }

  // Concatenates the partitions of two datasets (Spark's union).
  template <typename T>
  Dataset<T> union_datasets(const Dataset<T>& a, const Dataset<T>& b) {
    std::vector<std::vector<T>> parts;
    parts.reserve(a.partitions() + b.partitions());
    for (std::size_t p = 0; p < a.partitions(); ++p) parts.push_back(a.partition(p));
    for (std::size_t p = 0; p < b.partitions(); ++p) parts.push_back(b.partition(p));
    return Dataset<T>(std::move(parts));
  }

  // Groups values per key, like Spark's groupByKey — a thin wrapper over
  // the combining shuffle whose aggregate *is* the value vector. Unlike the
  // old lift-to-vector implementation this allocates one vector per
  // distinct key per combiner flush (not one per record), and the values
  // of each key come out in deterministic (input partition, record) order.
  template <typename K, typename V>
  Dataset<std::pair<K, std::vector<V>>> group_by_key(const Dataset<std::pair<K, V>>& in,
                                                     std::size_t out_partitions,
                                                     StageOptions opts = {},
                                                     ShuffleOptions shuffle = {}) {
    return combine_by_key(
        in, [](const V& v) { return std::vector<V>{v}; },
        [](std::vector<V>& a, const V& v) { a.push_back(v); },
        [](std::vector<V>& a, std::vector<V>&& b) {
          a.insert(a.end(), std::make_move_iterator(b.begin()),
                   std::make_move_iterator(b.end()));
        },
        out_partitions, std::move(opts), shuffle);
  }

  // Shuffle + reduce: groups (K, V) pairs by key hash into `out_partitions`
  // buckets, then reduces per key with `reduce` (V, V) -> V. The reduce
  // side is a separate (optionally droppable) stage. `reduce` must be
  // associative; with map-side combining (the default) it runs both before
  // and after the shuffle, exactly like a Spark combiner.
  template <typename K, typename V, typename R>
  Dataset<std::pair<K, V>> reduce_by_key(const Dataset<std::pair<K, V>>& in, R reduce,
                                         std::size_t out_partitions, StageOptions opts = {},
                                         ShuffleOptions shuffle = {}) {
    return combine_by_key(
        in, [](const V& v) { return v; },
        [&reduce](V& a, const V& v) { a = reduce(a, v); },
        [&reduce](V& a, V&& b) { a = reduce(a, b); }, out_partitions, std::move(opts),
        shuffle);
  }

  // Generalized two-phase shuffle (Spark's combineByKey). Hash-partitions
  // (K, V) pairs into `out_partitions` buckets and aggregates the values of
  // each key through a user aggregator:
  //
  //   create(const V&) -> A   lift the first value seen for a key
  //   fold(A&, const V&)      absorb one more value on the map side
  //   merge(A&, A&&)          combine two partial aggregates
  //
  // Phase 1 ("<name>/shuffle", kShuffleWrite, non-droppable) runs one task
  // per input partition. Each task writes hash-partitioned segments into
  // buffers owned by its worker slot — no locks on the write path (see
  // shuffle.hpp) — optionally pre-combining through a per-task
  // open-addressing map bounded by ShuffleOptions::target_buffer_bytes.
  // Phase 2 ("<name>/reduce", kReduce, droppable per `opts`) runs one task
  // per bucket, merging that bucket's segments in deterministic
  // (input partition, flush) order; dropped merge tasks leave empty output
  // partitions exactly like the old implementation. The map side was
  // already subject to dropping when it produced `in`, so drop semantics
  // are unchanged end to end.
  //
  // Both phases tolerate the fault-tolerant retry path: a write task that
  // dies mid-partition leaves complete, deterministic segments behind and
  // the merge collapses duplicate (src, seq) positions to one copy; a
  // merge task that dies mid-bucket (spill I/O error, user functor throw)
  // leaves its segments intact because consume() defers all destructive
  // effects to the post-body commit_bucket() whenever a spill backend is
  // attached — and without one, a re-entered bucket whose segments were
  // already moved out fails loudly instead of merging them as empty.
  template <typename K, typename V, typename Create, typename Fold, typename Merge>
  auto combine_by_key(const Dataset<std::pair<K, V>>& in, Create create, Fold fold,
                      Merge merge, std::size_t out_partitions, StageOptions opts = {},
                      ShuffleOptions shuffle = {})
      -> Dataset<std::pair<K, std::invoke_result_t<Create, const V&>>> {
    using A = std::invoke_result_t<Create, const V&>;
    using Entry = std::pair<K, A>;
    DIAS_EXPECTS(out_partitions >= 1, "need at least one output partition");

    if (opts.plan && !opts.plan->is_identity()) {
      // Repartitioning a droppable merge stage running with theta > 0
      // would change which buckets drop; apply_stage_plan skips the
      // partition knobs there (the others stay content-preserving).
      const double merge_theta =
          opts.droppable ? (opts.drop_ratio_override >= 0.0 ? opts.drop_ratio_override
                                                            : options_.drop_ratio)
                         : 0.0;
      apply_stage_plan(*opts.plan, shuffle, out_partitions, merge_theta,
                       detail::is_spillable<Entry>::value, sizeof(Entry));
    }
    const detail::SpillPolicy spill_policy = make_spill_policy<Entry>(shuffle);
    const bool spill_active = spill_policy.backend != nullptr;
    // Declared before the sink: destroyed after it, so the arenas are
    // recycled only once no segment from this shuffle is alive (merge
    // outputs are heap-backed, so nothing escapes the epoch).
    ArenaEpochGuard arena_guard(*this);
    detail::ShuffleSink<K, A> sink(pool_.workers(), out_partitions, spill_policy);
    std::atomic<std::size_t> records_in{0};
    std::atomic<std::size_t> records_out{0};
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::size_t> flushes{0};

    StageOptions write_opts;
    write_opts.name = opts.name + "/shuffle";
    write_opts.droppable = false;
    write_opts.plan = opts.plan;  // per-stage speculation rides along
    run_stage(in.partitions(), write_opts, EngineStageKind::kShuffleWrite,
              [&](std::size_t p) {
                const std::size_t slot = pool_.current_slot();
                std::hash<K> hasher;
                const auto& part = in.partition(p);
                records_in.fetch_add(part.size(), std::memory_order_relaxed);
                std::size_t shipped = 0;
                std::size_t seq = 0;
                detail::RadixScratch radix;
                // Splits a finished combiner scratch (or raw batch) into
                // per-bucket segments and hands them to the sink. The radix
                // split computes the same hasher(key) % buckets assignment
                // and preserves input order per bucket, so segments are
                // byte-identical to the old push-one-at-a-time loop.
                auto ship = [&](std::vector<Entry>&& entries) {
                  detail::radix_split(
                      std::move(entries), out_partitions, hasher, radix, slot_arena(slot),
                      [&](std::size_t b, detail::ArenaVector<Entry>&& seg) {
                        shipped += seg.size();
                        detail::guard_spill_io(spill_active, write_opts.name, p, [&] {
                          sink.push(slot, b, {p, seq, std::move(seg)});
                        });
                      });
                  ++seq;
                };
                if (shuffle.combine) {
                  detail::FlatMap<K, A> scratch;
                  // Scratch bytes reported to the sink so far; the delta
                  // reporting keeps the combiner map inside the budget's
                  // accounting without ever spilling the map itself.
                  std::size_t accounted_scratch = 0;
                  auto account_scratch = [&] {
                    if (!spill_active || scratch.approx_bytes() == accounted_scratch) return;
                    const auto delta = static_cast<std::ptrdiff_t>(scratch.approx_bytes()) -
                                       static_cast<std::ptrdiff_t>(accounted_scratch);
                    accounted_scratch = scratch.approx_bytes();
                    detail::guard_spill_io(spill_active, write_opts.name, p,
                                           [&] { sink.adjust_scratch(slot, delta); });
                  };
                  for (const auto& kv : part) {
                    bool created = false;
                    A& acc = scratch.find_or_emplace(
                        kv.first, [&] { return create(kv.second); }, &created);
                    if (!created) fold(acc, kv.second);
                    account_scratch();
                    if (scratch.approx_bytes() > shuffle.target_buffer_bytes) {
                      auto full = std::move(scratch.entries());
                      scratch.clear();
                      ship(std::move(full));
                      flushes.fetch_add(1, std::memory_order_relaxed);
                    }
                  }
                  if (!scratch.empty()) ship(std::move(scratch.entries()));
                  if (spill_active && accounted_scratch != 0) {
                    sink.adjust_scratch(slot, -static_cast<std::ptrdiff_t>(accounted_scratch));
                  }
                } else {
                  // Raw ships chunk at target_buffer_bytes too, so segment
                  // boundaries stay budget-independent on this path as well.
                  const std::size_t chunk_records =
                      std::max<std::size_t>(1, shuffle.target_buffer_bytes / sizeof(Entry));
                  std::vector<Entry> raw;
                  raw.reserve(std::min(part.size(), chunk_records));
                  for (const auto& kv : part) {
                    raw.emplace_back(kv.first, create(kv.second));
                    if (raw.size() >= chunk_records) {
                      ship(std::move(raw));
                      raw.clear();
                    }
                  }
                  if (!raw.empty()) ship(std::move(raw));
                }
                records_out.fetch_add(shipped, std::memory_order_relaxed);
                bytes.fetch_add(shipped * sizeof(Entry), std::memory_order_relaxed);
              });
    note_shuffle_write(records_in.load(), records_out.load(), bytes.load(),
                       flushes.load(), shuffle.combine, sink.spilled_segments(),
                       sink.spilled_bytes(), sink.fallback_segments(),
                       sink.write_failures());

    std::vector<std::vector<Entry>> out(out_partitions);
    std::atomic<std::size_t> merged{0};
    std::atomic<std::uint64_t> restored_segments{0};
    std::atomic<std::uint64_t> restored_bytes{0};
    // Per-bucket seconds spent streaming spilled segments back; one merge
    // task per bucket, so no synchronization needed.
    std::vector<double> stream_s(out_partitions, 0.0);
    std::vector<std::size_t> bucket_records(out_partitions, 0);
    StageOptions merge_opts = opts;
    merge_opts.name = opts.name + "/reduce";
    run_stage(out_partitions, merge_opts, EngineStageKind::kReduce, [&](std::size_t b) {
      detail::FlatMap<K, A> acc;
      std::size_t records = 0;
      auto fold_entry = [&](Entry&& entry) {
        bool created = false;
        A& dst = acc.find_or_emplace(
            entry.first, [&] { return std::move(entry.second); }, &created);
        if (!created) merge(dst, std::move(entry.second));
      };
      for (auto* segment : sink.bucket_segments(b)) {
        const bool was_spilled = segment->spilled;
        const auto t0 = was_spilled ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
        records += detail::guard_spill_io(spill_active, merge_opts.name, b,
                                          [&] { return sink.consume(*segment, fold_entry); });
        if (was_spilled) {
          stream_s[b] += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                             .count();
          restored_segments.fetch_add(1, std::memory_order_relaxed);
          restored_bytes.fetch_add(segment->spill_bytes, std::memory_order_relaxed);
        }
      }
      // Every segment consumed: free the bucket (spilled storage included).
      // Never throws, so the completed body cannot be retried half-freed.
      sink.commit_bucket(b);
      bucket_records[b] = records;
      merged.fetch_add(records, std::memory_order_relaxed);
      out[b] = std::move(acc.entries());
    });
    note_shuffle_merge(merged.load(), restored_segments.load(), restored_bytes.load(),
                       stream_s, bucket_records);
    return Dataset<std::pair<K, A>>(std::move(out));
  }

  // --- actions -------------------------------------------------------------
  template <typename T, typename F>
  T aggregate(const Dataset<T>& in, T init, F combine, StageOptions opts = {}) {
    std::vector<T> partials(in.partitions(), init);
    run_stage(in.partitions(), opts, EngineStageKind::kResult, [&](std::size_t p) {
      T acc = init;
      for (const auto& x : in.partition(p)) acc = combine(acc, x);
      partials[p] = acc;
    });
    T total = init;
    for (const auto& x : partials) total = combine(total, x);
    return total;
  }

  template <typename T>
  std::size_t count(const Dataset<T>& in) {
    std::size_t n = 0;
    for (std::size_t p = 0; p < in.partitions(); ++p) n += in.partition(p).size();
    return n;
  }

  // --- stage log ------------------------------------------------------------
  const std::vector<StageInfo>& stage_log() const { return stage_log_; }
  void clear_stage_log() { stage_log_.clear(); }
  // Total wall time across logged stages.
  double logged_duration() const {
    double acc = 0.0;
    for (const auto& s : stage_log_) acc += s.duration_s;
    return acc;
  }

 private:
  // Runs one stage over `n` partitions, applying dropping when allowed.
  //
  // Stage bodies must be idempotent per partition: under retry or
  // speculation a body may be invoked again for the same partition after a
  // failed or superseded attempt (successful executions remain
  // exactly-once — a partition's body never *completes* twice).
  void run_stage(std::size_t n, const StageOptions& opts, EngineStageKind kind,
                 const std::function<void(std::size_t)>& body);

  // The fault-tolerant execution loop (retry + speculation + degradation).
  // `ft` is the stage-effective policy: options_.fault with any StagePlan
  // speculation override already applied.
  void run_stage_fault_tolerant(const std::vector<std::size_t>& selected,
                                const StageOptions& opts, StageInfo& info,
                                std::uint64_t stage_seq,
                                const FaultToleranceOptions& ft,
                                const std::function<void(std::size_t)>& body);

  // Applies an adaptive plan to a shuffle's effective knobs in place.
  // `merge_theta` > 0 suppresses the partition knobs (bucket count is part
  // of drop semantics there); the spill hint is applied only when
  // `entry_spillable` and a backend is reachable, clamped to one record of
  // `entry_bytes`, so a plan can never turn into a config_error.
  void apply_stage_plan(const StagePlan& plan, ShuffleOptions& shuffle,
                        std::size_t& out_partitions, double merge_theta,
                        bool entry_spillable, std::size_t entry_bytes);

  // The installed cancellation token, or null when detached.
  const CancellationToken* cancel_token() const {
    return cancel_.has_value() ? &*cancel_ : nullptr;
  }

  // --- shuffle segment arenas (ISSUE 9) -----------------------------------
  // One bump-pointer arena per worker slot; shuffle write tasks allocate
  // their segment entry storage from their own slot's arena (single-owner,
  // no lock), and the chunks are recycled once per shuffle via
  // ArenaEpochGuard. Empty when Options::shuffle_arena is false — every
  // segment then falls back to the heap through the null-arena allocator.
  detail::SegmentArena* slot_arena(std::size_t slot) {
    if (slot >= arenas_.size()) return nullptr;  // covers kNoSlot + arena-off
    return arenas_[slot].get();
  }

  // Recycles every slot arena (epoch bump) and publishes arena stats.
  // Callers must guarantee no arena-backed segment is still alive — in
  // practice: the ShuffleSink of the finished shuffle has been destroyed.
  void reset_arenas();

  // Scoped epoch: declared before a shuffle's sink so its destructor runs
  // after the sink's, recycling the arenas exactly when the last segment
  // of that shuffle is gone. run_stage joins all task futures before
  // returning (including on the fault-tolerant path), so no write task can
  // still be allocating when the guard fires.
  class ArenaEpochGuard {
   public:
    explicit ArenaEpochGuard(Engine& engine) : engine_(engine) {}
    ~ArenaEpochGuard() { engine_.reset_arenas(); }
    ArenaEpochGuard(const ArenaEpochGuard&) = delete;
    ArenaEpochGuard& operator=(const ArenaEpochGuard&) = delete;

   private:
    Engine& engine_;
  };

  // Resolves ShuffleOptions into the sink's spill policy for a shuffle
  // whose segment entries have type `Entry`. Unbounded budgets resolve to
  // the inert default policy; an explicit finite budget demands a backend
  // (the per-shuffle override or the engine-wide one), spillable entries,
  // and room for at least one record. A budget inherited from
  // DIAS_SHUFFLE_BUDGET_BYTES (ShuffleOptions::kBudgetFromEnv) is instead
  // ignored on shuffles it cannot apply to — a process-wide env var must
  // not break programs that never opted into spilling.
  template <typename Entry>
  detail::SpillPolicy make_spill_policy(const ShuffleOptions& shuffle) {
    detail::SpillPolicy policy;
    policy.fallback_counter = obs_.shuffle_fallback_locks;
    const bool from_env = shuffle.memory_budget_bytes == ShuffleOptions::kBudgetFromEnv;
    const std::size_t budget =
        from_env ? detail::default_shuffle_budget() : shuffle.memory_budget_bytes;
    if (budget == 0) return policy;
    if constexpr (!detail::is_spillable<Entry>::value) {
      if (from_env) return policy;
      throw config_error(
          "shuffle memory_budget_bytes set but the key/aggregate types have no "
          "spill codec");
    } else {
      SpillBackend* backend = shuffle.spill != nullptr ? shuffle.spill : spill_;
      if (backend == nullptr) {
        if (from_env) return policy;
        throw config_error(
            "shuffle memory_budget_bytes set but no spill backend attached "
            "(Engine::set_spill_backend or ShuffleOptions::spill)");
      }
      if (budget < sizeof(Entry)) {
        if (from_env) return policy;
        throw config_error(
            "shuffle memory_budget_bytes (" + std::to_string(budget) +
            ") is smaller than a single record (" + std::to_string(sizeof(Entry)) +
            " bytes)");
      }
      policy.budget_bytes = budget;
      policy.backend = backend;
      if (options_.spill_breaker_enabled) policy.breaker = &spill_breaker_;
      return policy;
    }
  }

  // Shuffle accounting: annotate the just-logged shuffle-write / merge
  // stage (stage_log_.back()) and publish metrics + a tracer event.
  void note_shuffle_write(std::size_t records_in, std::size_t records_out,
                          std::size_t bytes, std::size_t flushes, bool combine,
                          std::uint64_t spill_segments, std::uint64_t spill_bytes,
                          std::uint64_t fallback_segments = 0,
                          std::uint64_t write_failures = 0);
  void note_shuffle_merge(std::size_t records, std::uint64_t restored_segments,
                          std::uint64_t restored_bytes,
                          const std::vector<double>& stream_s,
                          const std::vector<std::size_t>& bucket_records);

  // Metric handles cached at attach time; all null when detached.
  struct ObsHooks {
    obs::Tracer* tracer = nullptr;
    obs::Counter* stages = nullptr;
    obs::Counter* tasks_executed = nullptr;
    obs::Counter* tasks_dropped = nullptr;   // dropped before launch (theta)
    obs::Counter* tasks_degraded = nullptr;  // failed -> dropped / fatal
    obs::Counter* tasks_cancelled = nullptr; // abandoned by a fired token
    obs::Counter* attempts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* speculative_launched = nullptr;
    obs::Counter* speculative_wins = nullptr;
    obs::HistogramMetric* task_time_s = nullptr;
    obs::HistogramMetric* stage_time_s = nullptr;
    obs::Counter* shuffle_records_in = nullptr;
    obs::Counter* shuffle_records_out = nullptr;
    obs::Counter* shuffle_bytes = nullptr;
    obs::Counter* shuffle_flushes = nullptr;
    obs::HistogramMetric* shuffle_combine_ratio = nullptr;
    obs::Counter* shuffle_spill_segments = nullptr;
    obs::Counter* shuffle_spill_bytes = nullptr;
    obs::Counter* shuffle_restored_segments = nullptr;
    obs::Counter* shuffle_restored_bytes = nullptr;
    obs::HistogramMetric* shuffle_merge_stream_s = nullptr;
    // Last merge's max/mean bucket load ratio; the planner's skew input.
    obs::Gauge* shuffle_merge_skew = nullptr;
    // Bumped by the sink's overflow lane; scoped per engine via SpillPolicy.
    obs::Counter* shuffle_fallback_locks = nullptr;
    // Segment-arena telemetry, refreshed at each epoch reset.
    obs::Gauge* arena_chunks = nullptr;
    obs::Gauge* arena_reserved_bytes = nullptr;
    obs::Counter* arena_recycled_chunks = nullptr;
    // Spill-breaker telemetry (ISSUE 10): state gauge (0 closed,
    // 1 half-open, 2 open), cumulative trips, and the shuffle-write
    // fallback accounting.
    obs::Gauge* spill_breaker_state = nullptr;
    obs::Counter* spill_breaker_trips = nullptr;
    obs::Counter* spill_write_failures = nullptr;
    obs::Counter* spill_fallback_segments = nullptr;
  };

  Options options_;
  ThreadPool pool_;
  Rng rng_;
  FaultInjector injector_;
  SpillBackend* spill_ = nullptr;  // engine-wide spill destination, not owned
  std::optional<CancellationToken> cancel_;  // null = cancellation detached
  std::uint64_t stage_seq_ = 0;  // stages run since construction; injector key
  std::vector<StageInfo> stage_log_;
  // Per-slot segment arenas (see slot_arena); indexed by stable slot id,
  // empty when shuffle_arena is off.
  std::vector<std::unique_ptr<detail::SegmentArena>> arenas_;
  // recycled_chunks total already published to obs (counters are deltas).
  std::uint64_t published_arena_recycled_ = 0;
  SpillBreaker spill_breaker_;
  // Breaker trip total already published to obs (counters are deltas).
  std::uint64_t published_breaker_trips_ = 0;
  ObsHooks obs_;
};

}  // namespace dias::engine
