// Mini MapReduce engine with task dropping (paper Section 3.3).
//
// Executes DAGs of map / shuffle-map / reduce stages over partitioned
// datasets on a thread pool. Approximation works exactly like the paper's
// Spark patch: before a droppable stage runs, find_missing_partitions()
// returns only ceil(n (1 - theta)) of its n partitions; the rest are
// dropped before execution and contribute no data. The engine records a
// per-stage log (partition counts, wall time, per-task times) used both
// for accuracy experiments and to parameterize the stochastic models.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "engine/dataset.hpp"
#include "engine/fault.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::engine {

enum class EngineStageKind { kMap, kShuffleMap, kShuffleWrite, kReduce, kResult };

const char* to_string(EngineStageKind kind);

struct StageInfo {
  std::string name;
  EngineStageKind kind = EngineStageKind::kMap;
  std::size_t total_partitions = 0;
  std::size_t executed_partitions = 0;   // successfully executed tasks
  double applied_drop_ratio = 0.0;       // the configured theta
  double duration_s = 0.0;             // wall time of the whole stage
  std::vector<double> task_times_s;    // per executed task

  // --- fault-tolerance accounting -----------------------------------------
  // Partitions whose task completed successfully, sorted ascending.
  std::vector<std::size_t> executed_partition_ids;
  // Partitions whose task exhausted its retry budget. On a droppable stage
  // these were degraded into drops; on a non-droppable stage the first one
  // was raised as TaskFailedError (after this entry was logged).
  std::vector<std::size_t> failed_partition_ids;
  std::size_t attempts = 0;             // total attempts incl. retries + speculative copies
  std::size_t retries = 0;              // primary attempts beyond the first, summed over tasks
  std::size_t speculative_launched = 0; // speculative copies submitted
  std::size_t speculative_wins = 0;     // copies that beat the primary
  // The drop ratio the stage *effectively* ran with: dropped-before-launch
  // plus failed-then-dropped tasks over total. Equals the share of
  // partitions that contributed no data, so the accuracy profile evaluated
  // at this ratio still bounds the result error. For total_partitions > 0
  // this is >= applied_drop_ratio; an *empty* stage (total_partitions == 0)
  // records 0 — no partition contributed no data, vacuously, so the
  // accuracy bound at ratio 0 (exact) applies regardless of the configured
  // theta.
  double effective_drop_ratio = 0.0;
};

struct StageOptions {
  std::string name = "stage";
  // Whether the engine may drop this stage's tasks.
  bool droppable = true;
  // Overrides the engine-wide drop ratio when >= 0.
  double drop_ratio_override = -1.0;
};

// The paper's modified Spark hook: which of the n partitions still need to
// be computed under drop ratio theta in [0, 1]. Returns a sorted random
// subset of size ceil(n (1 - theta)); theta == 1 keeps nothing (a fully
// degraded stage) and n == 0 returns empty for any theta.
std::vector<std::size_t> find_missing_partitions(std::size_t n, double theta, Rng& rng);

class Engine {
 public:
  struct Options {
    std::size_t workers = 4;
    std::uint64_t seed = 1;
    // Engine-wide drop ratio in [0, 1] applied to droppable stages.
    // theta == 1 drops every task of a droppable stage — the fully
    // degraded extreme that failed-task degradation can also reach.
    double drop_ratio = 0.0;
    // Fault injection + retry/speculation/degradation policy. The default
    // (no injection, 1 attempt, no speculation) keeps run_stage on the
    // legacy zero-overhead path.
    FaultToleranceOptions fault;
  };

  explicit Engine(Options options)
      : options_(options), pool_(options.workers), rng_(options.seed),
        injector_(options.fault.injection) {
    DIAS_EXPECTS(options.drop_ratio >= 0.0 && options.drop_ratio <= 1.0,
                 "drop ratio must be in [0,1]");
    DIAS_EXPECTS(options.fault.max_attempts >= 1, "need at least one attempt per task");
    DIAS_EXPECTS(options.fault.retry_backoff_ms >= 0.0, "retry backoff must be >= 0");
    DIAS_EXPECTS(options.fault.speculation_quantile > 0.0 &&
                     options.fault.speculation_quantile <= 1.0,
                 "speculation quantile must be in (0,1]");
  }

  const Options& options() const { return options_; }
  void set_drop_ratio(double theta) {
    DIAS_EXPECTS(theta >= 0.0 && theta <= 1.0, "drop ratio must be in [0,1]");
    options_.drop_ratio = theta;
  }
  // Replaces the fault-tolerance policy (rebuilds the injector). Takes
  // effect from the next stage; the stage sequence counter keeps running so
  // injection stays deterministic for a fixed call sequence.
  void set_fault_options(const FaultToleranceOptions& fault) {
    DIAS_EXPECTS(fault.max_attempts >= 1, "need at least one attempt per task");
    DIAS_EXPECTS(fault.retry_backoff_ms >= 0.0, "retry backoff must be >= 0");
    DIAS_EXPECTS(fault.speculation_quantile > 0.0 && fault.speculation_quantile <= 1.0,
                 "speculation quantile must be in (0,1]");
    options_.fault = fault;
    injector_ = FaultInjector(fault.injection);
  }
  const FaultInjector& fault_injector() const { return injector_; }

  // --- observability ------------------------------------------------------
  // Attaches metric/trace sinks (either may be null; null detaches). With a
  // registry attached every stage updates cached counter handles (stages,
  // tasks executed/dropped/degraded, attempts, retries, speculation) and
  // task/stage wall-time histograms, and the thread pool reports queue
  // depth and worker utilization. With a tracer attached every stage emits
  // a begin/end span carrying name, kind, sequence, theta and the fault
  // counters. Detached (the default) the engine pays one branch per stage.
  // Not thread-safe against a concurrently running stage.
  void attach_observability(obs::Registry* metrics, obs::Tracer* tracer);

  // --- dataset creation ---------------------------------------------------
  template <typename T>
  Dataset<T> parallelize(std::vector<T> data, std::size_t num_partitions) {
    DIAS_EXPECTS(num_partitions >= 1, "need at least one partition");
    std::vector<std::vector<T>> parts(num_partitions);
    const std::size_t n = data.size();
    for (std::size_t p = 0; p < num_partitions; ++p) {
      const std::size_t lo = n * p / num_partitions;
      const std::size_t hi = n * (p + 1) / num_partitions;
      parts[p].assign(std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(lo)),
                      std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(hi)));
    }
    return Dataset<T>(std::move(parts));
  }

  // --- transformations ----------------------------------------------------
  // Partition-wise map: f(const std::vector<T>&) -> std::vector<U>.
  template <typename T, typename F>
  auto map_partitions(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<typename std::invoke_result_t<F, const std::vector<T>&>::value_type> {
    using U = typename std::invoke_result_t<F, const std::vector<T>&>::value_type;
    std::vector<std::vector<U>> out(in.partitions());
    run_stage(in.partitions(), opts, EngineStageKind::kMap,
              [&](std::size_t p) { out[p] = f(in.partition(p)); });
    return Dataset<U>(std::move(out));
  }

  // Index-aware partition map: f(std::size_t partition, const std::vector<T>&)
  // -> std::vector<U>. Dropped partitions never invoke f.
  template <typename T, typename F>
  auto map_partitions_indexed(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<typename std::invoke_result_t<F, std::size_t,
                                               const std::vector<T>&>::value_type> {
    using U =
        typename std::invoke_result_t<F, std::size_t, const std::vector<T>&>::value_type;
    std::vector<std::vector<U>> out(in.partitions());
    run_stage(in.partitions(), opts, EngineStageKind::kMap,
              [&](std::size_t p) { out[p] = f(p, in.partition(p)); });
    return Dataset<U>(std::move(out));
  }

  // Element-wise map: f(const T&) -> U.
  template <typename T, typename F>
  auto map(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    return map_partitions(
        in,
        [&f](const std::vector<T>& part) {
          std::vector<U> out;
          out.reserve(part.size());
          for (const auto& x : part) out.push_back(f(x));
          return out;
        },
        std::move(opts));
  }

  // Element-wise flat map: f(const T&) -> std::vector<U>.
  template <typename T, typename F>
  auto flat_map(const Dataset<T>& in, F f, StageOptions opts = {})
      -> Dataset<typename std::invoke_result_t<F, const T&>::value_type> {
    using U = typename std::invoke_result_t<F, const T&>::value_type;
    return map_partitions(
        in,
        [&f](const std::vector<T>& part) {
          std::vector<U> out;
          for (const auto& x : part) {
            auto ys = f(x);
            out.insert(out.end(), std::make_move_iterator(ys.begin()),
                       std::make_move_iterator(ys.end()));
          }
          return out;
        },
        std::move(opts));
  }

  template <typename T, typename F>
  Dataset<T> filter(const Dataset<T>& in, F pred, StageOptions opts = {}) {
    return map_partitions(
        in,
        [&pred](const std::vector<T>& part) {
          std::vector<T> out;
          for (const auto& x : part) {
            if (pred(x)) out.push_back(x);
          }
          return out;
        },
        std::move(opts));
  }

  // Data-level sampling (ApproxHadoop's second knob: instead of dropping
  // whole tasks, keep each *record* with probability `fraction`). Runs as a
  // non-droppable stage; combine with task dropping for two-stage sampling.
  template <typename T>
  Dataset<T> sample(const Dataset<T>& in, double fraction, StageOptions opts = {}) {
    DIAS_EXPECTS(fraction >= 0.0 && fraction <= 1.0, "sample fraction must be in [0,1]");
    // Derive per-partition seeds up front: stage bodies run concurrently.
    std::vector<std::uint64_t> seeds(in.partitions());
    for (auto& s : seeds) s = rng_();
    opts.droppable = false;
    std::vector<std::vector<T>> out(in.partitions());
    run_stage(in.partitions(), opts, EngineStageKind::kMap, [&](std::size_t p) {
      Rng local(seeds[p]);
      for (const auto& x : in.partition(p)) {
        if (local.bernoulli(fraction)) out[p].push_back(x);
      }
    });
    return Dataset<T>(std::move(out));
  }

  // Per-partition deduplication followed by a global merge partition-wise by
  // hash, so equal elements collapse across partitions.
  template <typename T>
  Dataset<T> distinct(const Dataset<T>& in, std::size_t out_partitions,
                      StageOptions opts = {}) {
    DIAS_EXPECTS(out_partitions >= 1, "need at least one output partition");
    std::vector<std::unordered_set<T>> buckets(out_partitions);
    std::vector<std::mutex> locks(out_partitions);
    opts.droppable = false;
    run_stage(in.partitions(), opts, EngineStageKind::kShuffleWrite, [&](std::size_t p) {
      std::hash<T> hasher;
      for (const auto& x : in.partition(p)) {
        const std::size_t b = hasher(x) % out_partitions;
        std::lock_guard guard(locks[b]);
        buckets[b].insert(x);
      }
    });
    std::vector<std::vector<T>> out(out_partitions);
    for (std::size_t b = 0; b < out_partitions; ++b) {
      out[b].assign(buckets[b].begin(), buckets[b].end());
    }
    return Dataset<T>(std::move(out));
  }

  // Concatenates the partitions of two datasets (Spark's union).
  template <typename T>
  Dataset<T> union_datasets(const Dataset<T>& a, const Dataset<T>& b) {
    std::vector<std::vector<T>> parts;
    parts.reserve(a.partitions() + b.partitions());
    for (std::size_t p = 0; p < a.partitions(); ++p) parts.push_back(a.partition(p));
    for (std::size_t p = 0; p < b.partitions(); ++p) parts.push_back(b.partition(p));
    return Dataset<T>(std::move(parts));
  }

  // Groups values per key (shuffle + gather), like Spark's groupByKey.
  template <typename K, typename V>
  Dataset<std::pair<K, std::vector<V>>> group_by_key(const Dataset<std::pair<K, V>>& in,
                                                     std::size_t out_partitions,
                                                     StageOptions opts = {}) {
    auto as_vectors = map(
        in,
        [](const std::pair<K, V>& kv) {
          return std::make_pair(kv.first, std::vector<V>{kv.second});
        },
        [&] {
          StageOptions o = opts;
          o.name = opts.name + "/lift";
          o.droppable = false;
          return o;
        }());
    return reduce_by_key(
        as_vectors,
        [](std::vector<V> a, const std::vector<V>& b) {
          a.insert(a.end(), b.begin(), b.end());
          return a;
        },
        out_partitions, std::move(opts));
  }

  // Shuffle + reduce: groups (K, V) pairs by key hash into `out_partitions`
  // buckets, then reduces per key with `reduce` (V, V) -> V. The reduce
  // side is a separate (optionally droppable) stage.
  template <typename K, typename V, typename R>
  Dataset<std::pair<K, V>> reduce_by_key(const Dataset<std::pair<K, V>>& in, R reduce,
                                         std::size_t out_partitions, StageOptions opts = {}) {
    DIAS_EXPECTS(out_partitions >= 1, "need at least one output partition");
    // Shuffle (hash partitioning). Runs on the full input; the map side was
    // already subject to dropping when it produced `in`.
    std::vector<std::vector<std::pair<K, V>>> buckets(out_partitions);
    {
      std::vector<std::mutex> locks(out_partitions);
      StageOptions shuffle_opts;
      shuffle_opts.name = opts.name + "/shuffle";
      shuffle_opts.droppable = false;
      run_stage(in.partitions(), shuffle_opts, EngineStageKind::kShuffleWrite,
                [&](std::size_t p) {
                  std::hash<K> hasher;
                  for (const auto& kv : in.partition(p)) {
                    const std::size_t b = hasher(kv.first) % out_partitions;
                    std::lock_guard guard(locks[b]);
                    buckets[b].push_back(kv);
                  }
                });
    }
    // Reduce.
    std::vector<std::vector<std::pair<K, V>>> out(out_partitions);
    StageOptions reduce_opts = opts;
    reduce_opts.name = opts.name + "/reduce";
    run_stage(out_partitions, reduce_opts, EngineStageKind::kReduce, [&](std::size_t b) {
      std::unordered_map<K, V> acc;
      for (auto& kv : buckets[b]) {
        auto [it, inserted] = acc.try_emplace(kv.first, kv.second);
        if (!inserted) it->second = reduce(it->second, kv.second);
      }
      out[b].reserve(acc.size());
      for (auto& kv : acc) out[b].emplace_back(kv.first, kv.second);
    });
    return Dataset<std::pair<K, V>>(std::move(out));
  }

  // --- actions -------------------------------------------------------------
  template <typename T, typename F>
  T aggregate(const Dataset<T>& in, T init, F combine, StageOptions opts = {}) {
    std::vector<T> partials(in.partitions(), init);
    run_stage(in.partitions(), opts, EngineStageKind::kResult, [&](std::size_t p) {
      T acc = init;
      for (const auto& x : in.partition(p)) acc = combine(acc, x);
      partials[p] = acc;
    });
    T total = init;
    for (const auto& x : partials) total = combine(total, x);
    return total;
  }

  template <typename T>
  std::size_t count(const Dataset<T>& in) {
    std::size_t n = 0;
    for (std::size_t p = 0; p < in.partitions(); ++p) n += in.partition(p).size();
    return n;
  }

  // --- stage log ------------------------------------------------------------
  const std::vector<StageInfo>& stage_log() const { return stage_log_; }
  void clear_stage_log() { stage_log_.clear(); }
  // Total wall time across logged stages.
  double logged_duration() const {
    double acc = 0.0;
    for (const auto& s : stage_log_) acc += s.duration_s;
    return acc;
  }

 private:
  // Runs one stage over `n` partitions, applying dropping when allowed.
  //
  // Stage bodies must be idempotent per partition: under retry or
  // speculation a body may be invoked again for the same partition after a
  // failed or superseded attempt (successful executions remain
  // exactly-once — a partition's body never *completes* twice).
  void run_stage(std::size_t n, const StageOptions& opts, EngineStageKind kind,
                 const std::function<void(std::size_t)>& body);

  // The fault-tolerant execution loop (retry + speculation + degradation).
  void run_stage_fault_tolerant(const std::vector<std::size_t>& selected,
                                const StageOptions& opts, StageInfo& info,
                                std::uint64_t stage_seq,
                                const std::function<void(std::size_t)>& body);

  // Metric handles cached at attach time; all null when detached.
  struct ObsHooks {
    obs::Tracer* tracer = nullptr;
    obs::Counter* stages = nullptr;
    obs::Counter* tasks_executed = nullptr;
    obs::Counter* tasks_dropped = nullptr;   // dropped before launch (theta)
    obs::Counter* tasks_degraded = nullptr;  // failed -> dropped / fatal
    obs::Counter* attempts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* speculative_launched = nullptr;
    obs::Counter* speculative_wins = nullptr;
    obs::HistogramMetric* task_time_s = nullptr;
    obs::HistogramMetric* stage_time_s = nullptr;
  };

  Options options_;
  ThreadPool pool_;
  Rng rng_;
  FaultInjector injector_;
  std::uint64_t stage_seq_ = 0;  // stages run since construction; injector key
  std::vector<StageInfo> stage_log_;
  ObsHooks obs_;
};

}  // namespace dias::engine
