#include "cluster/cluster_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/error.hpp"
#include "model/task_level_model.hpp"  // effective_tasks

namespace dias::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

struct ClusterSimulator::Impl {
  // --- static configuration ----------------------------------------------
  Config config;
  std::vector<TraceEntry> trace;

  // --- runtime state ------------------------------------------------------
  sim::Simulator sim;
  Rng rng;

  struct RuntimeJob {
    std::size_t id = 0;
    JobSpec spec;
    double arrival = 0.0;
    // Sampled base-speed durations of the *effective* (post-drop) tasks,
    // per stage. Fixed at arrival so re-executions repeat identical work.
    std::vector<std::vector<double>> task_times;

    // Durations not yet started in the current attempt, per stage. Restart
    // eviction refills this from task_times; resume eviction only returns
    // the in-flight tasks.
    std::vector<std::deque<double>> pending;

    std::size_t stage = 0;
    double attempt_start = 0.0;
    double engine_time = 0.0;  // cumulative time holding the engine
    double wasted = 0.0;       // machine time lost to evictions
    std::size_t evictions = 0;

    void reset_pending() {
      pending.clear();
      pending.reserve(task_times.size());
      for (const auto& ts : task_times) pending.emplace_back(ts.begin(), ts.end());
      stage = 0;
    }
  };

  struct RunningTask {
    double remaining_work;  // base-speed seconds left as of last_touch
    double work_total;      // original sampled duration
    double last_touch;
    std::uint64_t group;    // logical task id; speculative copies share it
    std::size_t slot;       // executor slot running this task
    sim::EventId completion;
  };

  // Observability handles, cached from Config::metrics at construction so
  // the simulation loop never does name lookups; all empty/null when the
  // sinks are not attached.
  struct ObsHooks {
    obs::Tracer* tracer = nullptr;
    std::vector<obs::Counter*> completed;         // per class
    std::vector<obs::Counter*> evictions;         // per class, at evict time
    std::vector<obs::HistogramMetric*> response;  // per class sojourn
    std::vector<obs::HistogramMetric*> queueing;  // per class wait
    std::vector<obs::Gauge*> queue_len;           // per class backlog
    obs::Counter* sprints = nullptr;
    bool metrics_on() const { return sprints != nullptr; }
  };
  ObsHooks obs;

  std::vector<std::deque<std::unique_ptr<RuntimeJob>>> buffers;  // per class
  std::unique_ptr<RuntimeJob> active;        // job in the engine (if any)
  std::vector<RunningTask> running;          // its in-flight tasks
  std::uint64_t next_group = 1;              // logical task ids
  std::vector<std::size_t> free_slots;       // idle executor slots
  double speed = 1.0;                        // 1.0 or sprint speedup
  sim::EventId sprint_timer{};               // pending sprint-start
  sim::EventId sprint_end_timer{};           // pending budget depletion
  bool job_sprinting = false;
  SprintBudget budget;

  // --- accounting ---------------------------------------------------------
  double segment_start = 0.0;  // start of the current busy/idle power segment
  double busy_base = 0.0;
  double busy_sprint = 0.0;
  std::size_t completions = 0;
  SimResult result;

  Impl(Config cfg, std::vector<TraceEntry> tr)
      : config(std::move(cfg)),
        trace(std::move(tr)),
        rng(config.seed),
        budget(config.sprint, 0.0) {
    DIAS_EXPECTS(config.slots >= 1, "cluster needs at least one slot");
    DIAS_EXPECTS(config.slot_speed_factors.empty() ||
                     config.slot_speed_factors.size() ==
                         static_cast<std::size_t>(config.slots),
                 "one speed factor per slot required");
    for (double f : config.slot_speed_factors) {
      DIAS_EXPECTS(f > 0.0, "slot speed factors must be positive");
    }
    reset_free_slots();
    std::size_t classes = 1;
    for (const auto& e : trace) classes = std::max(classes, e.spec.priority + 1);
    buffers.resize(classes);
    result.per_class.resize(classes);
    obs.tracer = config.tracer;
    if (config.metrics != nullptr) {
      auto& reg = *config.metrics;
      for (std::size_t k = 0; k < classes; ++k) {
        const std::string p = "cluster.class" + std::to_string(k);
        obs.completed.push_back(&reg.counter(p + ".completed"));
        obs.evictions.push_back(&reg.counter(p + ".evictions"));
        obs.response.push_back(&reg.histogram(p + ".response_s", 0.0, 3600.0, 360));
        obs.queueing.push_back(&reg.histogram(p + ".queueing_s", 0.0, 3600.0, 360));
        obs.queue_len.push_back(&reg.gauge(p + ".queue_length"));
      }
      obs.sprints = &reg.counter("cluster.sprints");
      budget.attach_gauges(&reg.gauge("cluster.sprint.budget_j"),
                           &reg.gauge("cluster.sprint.consumed_j"));
    }
  }

  void publish_queue_len(std::size_t k) {
    if (!obs.queue_len.empty()) {
      obs.queue_len[k]->set(static_cast<double>(buffers[k].size()));
    }
  }

  double slot_factor(std::size_t slot) const {
    return config.slot_speed_factors.empty() ? 1.0 : config.slot_speed_factors[slot];
  }

  void reset_free_slots() {
    free_slots.clear();
    for (int i = 0; i < config.slots; ++i) {
      free_slots.push_back(static_cast<std::size_t>(i));
    }
  }

  // Claims the fastest idle slot (greedy assignment on heterogeneous
  // clusters). Precondition: a slot is free.
  std::size_t claim_slot() {
    DIAS_EXPECTS(!free_slots.empty(), "no free slot to claim");
    std::size_t best = 0;
    for (std::size_t i = 1; i < free_slots.size(); ++i) {
      if (slot_factor(free_slots[i]) > slot_factor(free_slots[best])) best = i;
    }
    const std::size_t slot = free_slots[best];
    free_slots.erase(free_slots.begin() + static_cast<std::ptrdiff_t>(best));
    return slot;
  }

  // Splits elapsed busy time into base/sprint buckets.
  void account(double now) {
    if (active) {
      const double dt = now - segment_start;
      if (job_sprinting) {
        busy_sprint += dt;
      } else {
        busy_base += dt;
      }
    }
    segment_start = now;
  }

  double sample_task_time(double mean, double scv) {
    DIAS_EXPECTS(mean > 0.0, "task time mean must be positive");
    double duration = mean;
    switch (config.task_time_family) {
      case TaskTimeFamily::kDeterministic:
        break;
      case TaskTimeFamily::kExponential:
        duration = rng.exponential(1.0 / mean);
        break;
      case TaskTimeFamily::kLogNormal: {
        if (scv <= 0.0) break;
        const double sigma2 = std::log(1.0 + scv);
        const double mu = std::log(mean) - 0.5 * sigma2;
        duration = rng.lognormal(mu, std::sqrt(sigma2));
        break;
      }
    }
    if (config.stragglers.probability > 0.0 &&
        rng.bernoulli(config.stragglers.probability)) {
      duration *= config.stragglers.slowdown;
      ++result.straggler_tasks;
    }
    return duration;
  }

  // Samples the post-drop work of a job once, at arrival.
  std::unique_ptr<RuntimeJob> materialize(std::size_t id, const JobSpec& spec, double arrival) {
    auto job = std::make_unique<RuntimeJob>();
    job->id = id;
    job->spec = spec;
    job->arrival = arrival;
    const double theta = config.scheduler.theta_for_class(spec.priority);
    job->task_times.reserve(spec.stages.size());
    for (const auto& stage : spec.stages) {
      const int eff = is_droppable(stage.kind)
                          ? model::effective_tasks(stage.tasks, theta)
                          : stage.tasks;
      // Non-droppable overhead stages shrink with theta per their profiled
      // factor (linear between theta = 0 and theta = 0.9, clamped beyond).
      double mean = stage.mean_task_time;
      if (!is_droppable(stage.kind) && stage.time_factor_at_theta90 != 1.0 && theta > 0.0) {
        const double w = std::min(theta / 0.9, 1.0);
        mean *= 1.0 + (stage.time_factor_at_theta90 - 1.0) * w;
      }
      std::vector<double> times;
      times.reserve(static_cast<std::size_t>(eff));
      for (int t = 0; t < eff; ++t) {
        times.push_back(sample_task_time(mean, stage.task_time_scv));
      }
      job->task_times.push_back(std::move(times));
    }
    job->reset_pending();
    return job;
  }

  // --- engine mechanics ----------------------------------------------------

  // Recomputes remaining work of in-flight tasks before a speed change or
  // before cancelling their completion events.
  void touch_running(double now) {
    for (auto& t : running) {
      t.remaining_work -= (now - t.last_touch) * speed * slot_factor(t.slot);
      t.remaining_work = std::max(0.0, t.remaining_work);
      t.last_touch = now;
    }
  }

  void schedule_completion(RunningTask& task, double now) {
    task.completion =
        sim.schedule_at(now + task.remaining_work / (speed * slot_factor(task.slot)),
                        [this] { on_task_complete(); });
  }

  void reschedule_all(double now) {
    for (auto& t : running) {
      sim.cancel(t.completion);
      schedule_completion(t, now);
    }
  }

  // GRASS-style tail dropping: abandon the last in-flight tasks of a
  // droppable stage once at most ceil(ratio * effective_tasks) remain.
  bool maybe_drop_tail() {
    const auto& cfg = config.stragglers;
    if (cfg.mitigation != StragglerConfig::Mitigation::kDropTail) return false;
    RuntimeJob& job = *active;
    if (running.empty() || !job.pending[job.stage].empty()) return false;
    if (job.stage >= job.spec.stages.size() ||
        !is_droppable(job.spec.stages[job.stage].kind)) {
      return false;
    }
    const auto effective = static_cast<double>(job.task_times[job.stage].size());
    const auto threshold =
        static_cast<std::size_t>(std::ceil(cfg.tail_drop_ratio * effective - 1e-12));
    if (running.size() > threshold) return false;
    for (auto& t : running) {
      sim.cancel(t.completion);
      free_slots.push_back(t.slot);
    }
    result.tail_dropped_tasks += running.size();
    running.clear();
    ++job.stage;
    return true;
  }

  // Spark-style speculation: idle slots at a stage tail run backup copies.
  void maybe_speculate(double now) {
    const auto& cfg = config.stragglers;
    if (cfg.mitigation != StragglerConfig::Mitigation::kSpeculate) return;
    RuntimeJob& job = *active;
    if (running.empty() || !job.pending[job.stage].empty()) return;
    if (job.stage >= job.spec.stages.size()) return;
    const auto& stage_spec = job.spec.stages[job.stage];
    // Duplicate the slowest un-copied tasks first.
    std::vector<std::size_t> order(running.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return running[a].remaining_work > running[b].remaining_work;
    });
    for (std::size_t i : order) {
      if (free_slots.empty()) break;
      const std::uint64_t group = running[i].group;
      bool has_copy = false;
      for (const auto& t : running) {
        if (t.group == group && &t != &running[i]) has_copy = true;
      }
      if (has_copy) continue;
      const double work = sample_task_time(stage_spec.mean_task_time,
                                           stage_spec.task_time_scv);
      RunningTask copy{work, work, now, group, claim_slot(), {}};
      schedule_completion(copy, now);
      running.push_back(copy);
      ++result.speculative_copies;
    }
  }

  // Starts tasks of the current stage until slots are exhausted. Advances
  // through empty stages. Returns false when the job has finished.
  bool fill_slots(double now) {
    RuntimeJob& job = *active;
    for (;;) {
      if (job.stage >= job.pending.size()) {
        return !running.empty();  // finished only when nothing is in flight
      }
      auto& stage_pending = job.pending[job.stage];
      while (!stage_pending.empty() && !free_slots.empty()) {
        const double work = stage_pending.front();
        stage_pending.pop_front();
        RunningTask t{work, work, now, next_group++, claim_slot(), {}};
        schedule_completion(t, now);
        running.push_back(t);
      }
      if (!running.empty()) {
        if (maybe_drop_tail()) continue;  // stage tail abandoned: next stage
        maybe_speculate(now);
        return true;
      }
      // Stage had no tasks left (possibly zero after dropping): advance.
      if (stage_pending.empty()) {
        ++job.stage;
        continue;
      }
      return true;
    }
  }

  void on_task_complete() {
    const double now = sim.now();
    touch_running(now);
    // Remove the finished task (remaining work ~ 0 and event fired == the
    // one with the smallest remaining work).
    std::size_t idx = 0;
    for (std::size_t i = 1; i < running.size(); ++i) {
      if (running[i].remaining_work < running[idx].remaining_work) idx = i;
    }
    DIAS_EXPECTS(!running.empty(), "task completion with no running tasks");
    const std::uint64_t group = running[idx].group;
    free_slots.push_back(running[idx].slot);
    running.erase(running.begin() + static_cast<std::ptrdiff_t>(idx));
    // Cancel speculative siblings of the finished task.
    for (std::size_t i = running.size(); i-- > 0;) {
      if (running[i].group == group) {
        sim.cancel(running[i].completion);
        free_slots.push_back(running[i].slot);
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }

    RuntimeJob& job = *active;
    if (job.pending[job.stage].empty() && running.empty()) {
      // Stage barrier reached: move to the next stage.
      ++job.stage;
    }
    if (!fill_slots(now)) {
      complete_active(now);
    }
  }

  void start_sprint(double now) {
    if (!budget.has_budget(now) || job_sprinting) return;
    account(now);
    touch_running(now);
    const double deplete_at = budget.begin_sprint(now);
    job_sprinting = true;
    speed = config.sprint.speedup;
    reschedule_all(now);
    if (obs.metrics_on()) obs.sprints->add();
    if (obs.tracer != nullptr) {
      obs.tracer->event("cluster.sprint.start",
                        {{"sim_t", now},
                         {"job", active ? active->id : std::size_t{0}},
                         {"budget_j", budget.level(now)}});
    }
    if (std::isfinite(deplete_at)) {
      sprint_end_timer = sim.schedule_at(deplete_at, [this] { stop_sprint_depleted(); });
    }
  }

  void stop_sprint_depleted() {
    const double now = sim.now();
    account(now);
    touch_running(now);
    budget.end_sprint(now);
    job_sprinting = false;
    speed = 1.0;
    reschedule_all(now);
    if (obs.tracer != nullptr) {
      obs.tracer->event("cluster.sprint.stop",
                        {{"sim_t", now}, {"reason", "budget-depleted"}});
    }
  }

  // Ends any active sprint state when the job leaves the engine.
  void clear_sprint(double now) {
    sim.cancel(sprint_timer);
    sim.cancel(sprint_end_timer);
    if (job_sprinting) {
      budget.end_sprint(now);
      job_sprinting = false;
      speed = 1.0;
    }
  }

  // Stride scheduling state for weighted fair sharing. A class that joins
  // the backlog re-enters at the global virtual time, so idle classes do
  // not bank (or owe) service credit (Waldspurger's stride scheduling).
  std::vector<double> fair_pass;
  double fair_vtime = 0.0;

  void fair_on_enqueue(std::size_t k, bool was_empty) {
    if (config.scheduler.queue_policy != QueuePolicy::kWeightedFair) return;
    if (fair_pass.size() < buffers.size()) fair_pass.resize(buffers.size(), 0.0);
    if (was_empty) fair_pass[k] = std::max(fair_pass[k], fair_vtime);
  }

  // Picks the next class to serve; SIZE_MAX when every buffer is empty.
  std::size_t pick_class() {
    if (config.scheduler.queue_policy == QueuePolicy::kStrictPriority) {
      for (std::size_t k = buffers.size(); k-- > 0;) {
        if (!buffers[k].empty()) return k;
      }
      return static_cast<std::size_t>(-1);
    }
    // Weighted fair: serve the non-empty class with the smallest pass
    // value, then advance it by its stride (1 / weight).
    if (fair_pass.size() < buffers.size()) fair_pass.resize(buffers.size(), 0.0);
    std::size_t best = static_cast<std::size_t>(-1);
    for (std::size_t k = 0; k < buffers.size(); ++k) {
      if (buffers[k].empty()) continue;
      if (best == static_cast<std::size_t>(-1) || fair_pass[k] < fair_pass[best]) best = k;
    }
    if (best != static_cast<std::size_t>(-1)) {
      fair_vtime = fair_pass[best];
      fair_pass[best] += 1.0 / config.scheduler.weight_for_class(best);
    }
    return best;
  }

  void dispatch_next(double now) {
    DIAS_EXPECTS(!active, "dispatch with engine busy");
    account(now);  // close the idle power segment before going busy
    const std::size_t k = pick_class();
    if (k != static_cast<std::size_t>(-1)) {
      active = std::move(buffers[k].front());
      buffers[k].pop_front();
      publish_queue_len(k);
    }
    if (!active) return;
    RuntimeJob& job = *active;
    job.attempt_start = now;  // pending/stage carry over for resumed jobs
    running.clear();
    reset_free_slots();
    const double timeout = config.sprint.timeout_for_class(job.spec.priority);
    if (std::isfinite(timeout)) {
      if (timeout <= 0.0) {
        start_sprint(now);
      } else {
        sprint_timer = sim.schedule_after(timeout, [this] { start_sprint(sim.now()); });
      }
    }
    if (!fill_slots(now)) {
      complete_active(now);
    }
  }

  void complete_active(double now) {
    account(now);
    clear_sprint(now);
    RuntimeJob& job = *active;
    job.engine_time += now - job.attempt_start;
    // Useful processing time: engine occupancy minus re-executed work.
    const double execution = job.engine_time - job.wasted;
    const double response = now - job.arrival;
    ++completions;
    if (completions > config.warmup_jobs) {
      auto& m = result.per_class[job.spec.priority];
      m.response.add(response);
      m.execution.add(execution);
      m.queueing.add(response - execution);
      ++m.completed;
      m.evictions += job.evictions;
      result.total_evictions += job.evictions;
      result.wasted_time += job.wasted;
      if (obs.metrics_on()) {
        const std::size_t k = job.spec.priority;
        obs.completed[k]->add();
        obs.response[k]->observe(response);
        obs.queueing[k]->observe(response - execution);
      }
      if (obs.tracer != nullptr) {
        obs.tracer->event("cluster.job", {{"sim_t", now},
                                          {"job", job.id},
                                          {"class", job.spec.priority},
                                          {"response_s", response},
                                          {"queueing_s", response - execution},
                                          {"execution_s", execution},
                                          {"evictions", job.evictions},
                                          {"wasted_s", job.wasted}});
      }
    }
    active.reset();
    running.clear();
    dispatch_next(now);
  }

  void evict_active(double now) {
    account(now);
    touch_running(now);  // before clear_sprint: progress accrues at sprint speed
    clear_sprint(now);
    RuntimeJob& job = *active;
    job.engine_time += now - job.attempt_start;
    ++job.evictions;
    if (obs.metrics_on()) obs.evictions[job.spec.priority]->add();
    if (config.scheduler.eviction == EvictionMode::kRestart) {
      // Everything done this attempt (and in previous resumed progress) is
      // re-executed from scratch.
      job.wasted += now - job.attempt_start;
      for (auto& t : running) sim.cancel(t.completion);
      running.clear();
      job.reset_pending();
    } else {
      // Task-level checkpointing: only the partial work of in-flight tasks
      // is lost; they return to the head of the stage's pending queue. The
      // wall-clock cost of redoing them is the longest partial progress
      // (they re-run in parallel), keeping the unit consistent with the
      // restart mode's wall-time waste.
      double lost_wall = 0.0;
      std::unordered_set<std::uint64_t> seen_groups;
      for (auto& t : running) {
        sim.cancel(t.completion);
        lost_wall = std::max(lost_wall, t.work_total - t.remaining_work);
        // Speculative copies share a group: requeue each logical task once.
        if (seen_groups.insert(t.group).second) {
          job.pending[job.stage].push_front(t.work_total);
        }
      }
      job.wasted += lost_wall;
      running.clear();
    }
    const std::size_t k = job.spec.priority;
    buffers[k].push_front(std::move(active));
    publish_queue_len(k);
  }

  void on_arrival(std::size_t id, const JobSpec& spec) {
    const double now = sim.now();
    auto job = materialize(id, spec, now);
    const std::size_t k = spec.priority;
    fair_on_enqueue(k, buffers[k].empty());
    if (!active) {
      buffers[k].push_back(std::move(job));
      publish_queue_len(k);
      dispatch_next(now);
      return;
    }
    if (config.scheduler.preemptive && k > active->spec.priority) {
      buffers[k].push_front(std::move(job));
      publish_queue_len(k);
      evict_active(now);
      dispatch_next(now);
      return;
    }
    buffers[k].push_back(std::move(job));
    publish_queue_len(k);
    // Drain-pressure sprinting: accelerate the running job to clear the way
    // for the higher-priority arrival it is now blocking.
    if (config.sprint.enabled && config.sprint.policy == SprintPolicy::kDrainPressure &&
        k > active->spec.priority) {
      start_sprint(now);
    }
  }

  SimResult run() {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto& entry = trace[i];
      DIAS_EXPECTS(entry.arrival_time >= 0.0, "arrival times must be non-negative");
      sim.schedule_at(entry.arrival_time,
                      [this, i] { on_arrival(i, trace[i].spec); });
    }
    sim.run();
    const double horizon = sim.now();
    account(horizon);
    result.horizon = horizon;
    result.busy_time = busy_base + busy_sprint;
    result.sprint_time = busy_sprint;
    result.energy_joules = config.sprint.base_power_w * busy_base +
                           config.sprint.sprint_power_w * busy_sprint +
                           config.idle_power_w * (horizon - result.busy_time);
    return result;
  }
};

ClusterSimulator::ClusterSimulator(Config config, std::vector<TraceEntry> trace)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(trace))) {}

ClusterSimulator::~ClusterSimulator() = default;

SimResult ClusterSimulator::run() { return impl_->run(); }

SimResult simulate(const ClusterSimulator::Config& config, std::vector<TraceEntry> trace) {
  ClusterSimulator sim(config, std::move(trace));
  return sim.run();
}

}  // namespace dias::cluster
