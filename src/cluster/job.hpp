// Job and stage descriptions for the simulated cluster.
//
// A job is a sequence of stages executed by the engine that currently holds
// all C computing slots (the paper's single-engine model, Section 4). Map /
// ShuffleMap stages are droppable: DiAS executes only ceil(n (1 - theta))
// of their n tasks. Setup, shuffle, and result stages are not droppable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dias::cluster {

enum class StageKind {
  kSetup,       // job overhead (scheduling, data fetch); single pseudo-task
  kMap,         // droppable parallel tasks
  kShuffle,     // synchronization barrier; single pseudo-task
  kShuffleMap,  // droppable parallel tasks in iterative jobs (graphx-style)
  kReduce,      // parallel tasks; droppable when theta_reduce is used
  kResult,      // final aggregation; not droppable
};

// Whether DiAS may drop tasks of this stage kind.
bool is_droppable(StageKind kind);
const char* to_string(StageKind kind);

struct StageSpec {
  StageKind kind = StageKind::kMap;
  int tasks = 1;
  double mean_task_time = 1.0;  // seconds at base frequency
  double task_time_scv = 0.25;  // squared coefficient of variation

  // Overhead shrink under approximation: the stage's mean task time scales
  // linearly from 1x at theta = 0 to this factor at theta = 0.9, mirroring
  // the paper's profiled overhead reduction (Section 4.3). 1.0 = no effect.
  // Applied to non-droppable stages (setup/shuffle); droppable stages are
  // deflated by dropping tasks instead.
  double time_factor_at_theta90 = 1.0;
};

struct JobSpec {
  std::size_t priority = 0;  // class index; larger = higher priority
  std::vector<StageSpec> stages;
  double size_mb = 0.0;  // informational (drives generators / reports)
  std::string label;     // e.g. dataset name; informational

  // Total serial work at base speed: sum over stages of tasks * mean time.
  double total_work() const;
  int total_tasks() const;
};

}  // namespace dias::cluster
