// Computational sprinter: DVFS budget accounting (paper Sections 2.3, 3.2).
//
// The sprinter owns an energy budget (Joules). While a job sprints, the
// budget drains at the *extra* power drawn by the high frequency
// (sprint_power - base_power); while idle it replenishes at a configured
// rate up to a cap (e.g. "6 sprinting minutes per hour"). A job sprints
// from its class timeout Tk until it completes or the budget depletes.
//
// The accounting itself lives in runtime::EnergyBudget — one policy shared
// with the real-engine SprintGovernor — and SprintBudget is the simulation
// host: it keeps the sim-facing API and feeds simulation time through.
#pragma once

#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/energy_budget.hpp"
#include "sim/simulator.hpp"

namespace dias::cluster {

// When does a job start sprinting?
enum class SprintPolicy {
  // Classic time-based policy (the paper's): a class-k job sprints once its
  // timeout Tk elapses after dispatch.
  kTimeout,
  // Drain-pressure extension: additionally, the *running* job sprints as
  // soon as a strictly-higher-priority job is waiting behind it -- spending
  // the budget to drain the blocker is what non-preemptive DiAS needs most.
  // Class timeouts still apply on top.
  kDrainPressure,
};

struct SprintConfig {
  bool enabled = false;
  SprintPolicy policy = SprintPolicy::kTimeout;
  // Execution speedup while sprinting (rates multiply by this); the paper
  // observes up to 60% execution-time reduction, i.e. a 2.5x speedup.
  double speedup = 2.5;
  double base_power_w = 180.0;
  double sprint_power_w = 270.0;
  // Initial/total budget in Joules; infinity = unlimited sprinting.
  double budget_joules = std::numeric_limits<double>::infinity();
  // Replenish rate (Watts) and cap for the budget.
  double replenish_watts = 0.0;
  double budget_cap_joules = std::numeric_limits<double>::infinity();
  // Per-class sprint timeout Tk in seconds since dispatch; infinity = the
  // class never sprints; 0 = sprint immediately ("unlimited" scenarios).
  std::vector<double> timeout_s;

  double timeout_for_class(std::size_t priority) const {
    if (!enabled || priority >= timeout_s.size()) {
      return std::numeric_limits<double>::infinity();
    }
    return timeout_s[priority];
  }
  double extra_power() const { return sprint_power_w - base_power_w; }

  // The budget-relevant slice of this config, in the shared policy's terms.
  runtime::EnergyBudgetConfig energy_config() const {
    runtime::EnergyBudgetConfig e;
    e.base_power_w = base_power_w;
    e.sprint_power_w = sprint_power_w;
    e.budget_joules = budget_joules;
    e.replenish_watts = replenish_watts;
    e.budget_cap_joules = budget_cap_joules;
    return e;
  }
};

// Simulation-time facade over the shared runtime::EnergyBudget policy; see
// that class for the accounting semantics.
class SprintBudget {
 public:
  SprintBudget(const SprintConfig& config, sim::Time now);

  // Current budget level at simulation time `now`.
  double level(sim::Time now) const { return budget_.level(now); }
  bool has_budget(sim::Time now) const { return budget_.has_budget(now); }

  // Marks the start of a sprint at `now`. Returns the time at which the
  // budget will deplete if the sprint never ends (infinity when the
  // replenish rate covers the drain or the budget is unlimited).
  sim::Time begin_sprint(sim::Time now) { return budget_.begin_sprint(now); }
  // Marks the end of the sprint at `now`.
  void end_sprint(sim::Time now) { budget_.end_sprint(now); }

  bool sprinting() const { return budget_.sprinting(); }
  // Total Joules drained by sprints so far (extra power integrated).
  double consumed(sim::Time now) const { return budget_.consumed(now); }

  // Mirrors the budget level (Joules) and cumulative consumption into
  // gauges on every state change (null detaches). Levels are as of the
  // begin/end sprint events — lazy advancement means intermediate decay is
  // not published.
  void attach_gauges(obs::Gauge* level, obs::Gauge* consumed) {
    budget_.attach_gauges(level, consumed);
  }

 private:
  runtime::EnergyBudget budget_;
};

}  // namespace dias::cluster
