#include "cluster/sprinter.hpp"

#include "common/error.hpp"

namespace dias::cluster {

SprintBudget::SprintBudget(const SprintConfig& config, sim::Time now)
    : budget_(config.energy_config(), now) {
  // Power/replenish/budget bounds are validated by the shared policy; the
  // speedup is simulator-only, so it is checked here.
  DIAS_EXPECTS(config.speedup >= 1.0, "sprint speedup must be >= 1");
}

}  // namespace dias::cluster
