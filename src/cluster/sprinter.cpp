#include "cluster/sprinter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dias::cluster {

SprintBudget::SprintBudget(const SprintConfig& config, sim::Time now)
    : config_(config), level_(config.budget_joules), last_update_(now) {
  DIAS_EXPECTS(config_.speedup >= 1.0, "sprint speedup must be >= 1");
  DIAS_EXPECTS(config_.sprint_power_w >= config_.base_power_w,
               "sprint power must be >= base power");
  DIAS_EXPECTS(config_.replenish_watts >= 0.0, "replenish rate must be non-negative");
  DIAS_EXPECTS(config_.budget_joules >= 0.0, "budget must be non-negative");
}

void SprintBudget::advance(sim::Time now) {
  DIAS_EXPECTS(now >= last_update_, "sprint budget cannot move backwards in time");
  const double dt = now - last_update_;
  if (dt > 0.0) {
    if (sprinting_) {
      const double net = config_.extra_power() - config_.replenish_watts;
      level_ = std::max(0.0, level_ - net * dt);
      consumed_ += config_.extra_power() * dt;
    } else {
      level_ = std::min(config_.budget_cap_joules, level_ + config_.replenish_watts * dt);
    }
  }
  last_update_ = now;
}

double SprintBudget::level(sim::Time now) const {
  SprintBudget copy = *this;
  copy.advance(now);
  return copy.level_;
}

double SprintBudget::consumed(sim::Time now) const {
  SprintBudget copy = *this;
  copy.advance(now);
  return copy.consumed_;
}

sim::Time SprintBudget::begin_sprint(sim::Time now) {
  advance(now);
  DIAS_EXPECTS(!sprinting_, "sprint already active");
  sprinting_ = true;
  publish();
  const double net = config_.extra_power() - config_.replenish_watts;
  if (!std::isfinite(level_) || net <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return now + level_ / net;
}

void SprintBudget::end_sprint(sim::Time now) {
  advance(now);
  DIAS_EXPECTS(sprinting_, "no sprint active");
  sprinting_ = false;
  publish();
}

void SprintBudget::attach_gauges(obs::Gauge* level, obs::Gauge* consumed) {
  level_gauge_ = level;
  consumed_gauge_ = consumed;
  publish();
}

void SprintBudget::publish() const {
  if (level_gauge_ != nullptr) level_gauge_->set(level_);
  if (consumed_gauge_ != nullptr) consumed_gauge_->set(consumed_);
}

}  // namespace dias::cluster
