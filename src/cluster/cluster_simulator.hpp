// Discrete-event simulation of a priority big-data cluster (paper Fig. 1/3).
//
// The engine holds all C computing slots and executes one job at a time
// (the paper's single-server view, Section 4). Jobs wait in per-priority
// FCFS buffers; the dispatcher always serves the head of the highest
// non-empty buffer. Two disciplines:
//   * non-preemptive - the running job always finishes (NP / DA / DiAS);
//   * preemptive     - a higher-priority arrival evicts the running job,
//                      which returns to the *head* of its buffer and later
//                      re-executes from scratch (repeat-identical), wasting
//                      the work done so far (the production baseline P).
// Differential approximation applies the per-class drop ratio theta_k to
// droppable stages at dispatch; sprinting accelerates a job after its class
// timeout Tk, subject to the energy budget (see SprintBudget). An energy
// meter integrates base/sprint/idle power over the run.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cluster/job.hpp"
#include "cluster/metrics.hpp"
#include "cluster/sprinter.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace dias::cluster {

// How task durations are sampled from (mean, scv).
enum class TaskTimeFamily {
  kDeterministic,  // always the mean (scv ignored)
  kExponential,    // exponential with the given mean (scv ignored)
  kLogNormal,      // lognormal matching mean and scv
};

// What happens to the work of an evicted job.
enum class EvictionMode {
  // The production baseline the paper measures: the evicted job restarts
  // from scratch, wasting every completed task (repeat-identical).
  kRestart,
  // Natjam-style task-level checkpointing: completed tasks are kept; only
  // the partial work of in-flight tasks is lost.
  kResumeTasks,
};

// How the dispatcher chooses among non-empty class buffers.
enum class QueuePolicy {
  // Strict priority: always the highest non-empty class (the paper's P/NP).
  kStrictPriority,
  // Weighted fair sharing (Hadoop Fair Scheduler's soft priority, paper
  // Section 6): deterministic stride scheduling over class weights.
  kWeightedFair,
};

struct SchedulerConfig {
  bool preemptive = false;
  EvictionMode eviction = EvictionMode::kRestart;
  QueuePolicy queue_policy = QueuePolicy::kStrictPriority;
  // Per-class weights for kWeightedFair; classes beyond the vector get 1.
  std::vector<double> fair_weights;
  // Per-class task-drop ratio applied to droppable stages at dispatch;
  // classes beyond the vector default to 0 (no dropping).
  std::vector<double> theta;

  double theta_for_class(std::size_t priority) const {
    return priority < theta.size() ? theta[priority] : 0.0;
  }
  double weight_for_class(std::size_t priority) const {
    const double w = priority < fair_weights.size() ? fair_weights[priority] : 1.0;
    return w > 0.0 ? w : 1.0;
  }
};

struct TraceEntry {
  double arrival_time = 0.0;
  JobSpec spec;
};

// Straggler injection and mitigation (GRASS, the paper's citation [11]:
// approximation engines can *drop* stragglers instead of waiting).
struct StragglerConfig {
  // Each task independently becomes a straggler with this probability...
  double probability = 0.0;
  // ...and runs `slowdown` times longer.
  double slowdown = 5.0;

  enum class Mitigation {
    kNone,
    // Spark-style speculation: when slots idle at a stage tail, launch
    // fresh copies of in-flight tasks; the first copy to finish wins.
    kSpeculate,
    // GRASS-style: droppable stages abandon their last in-flight tasks
    // once at most ceil(tail_drop_ratio * stage_tasks) remain (extra
    // approximation instead of waiting for stragglers).
    kDropTail,
  };
  Mitigation mitigation = Mitigation::kNone;
  double tail_drop_ratio = 0.0;  // used by kDropTail
};

class ClusterSimulator {
 public:
  struct Config {
    int slots = 20;
    // Optional per-slot speed factors (heterogeneous executors): slot i
    // runs tasks at speed slot_speed_factors[i]; empty = all 1.0. Size
    // must equal `slots` when non-empty.
    std::vector<double> slot_speed_factors;
    SchedulerConfig scheduler;
    SprintConfig sprint;
    StragglerConfig stragglers;
    TaskTimeFamily task_time_family = TaskTimeFamily::kLogNormal;
    double idle_power_w = 0.0;
    // Completions to discard (transient removal) before recording metrics.
    std::size_t warmup_jobs = 0;
    std::uint64_t seed = 1;
    // Optional observability sinks (not owned; may be null). With a
    // registry the simulator keeps per-class sojourn/wait histograms,
    // completion/eviction counters, queue-length and sprint-budget gauges;
    // with a tracer it emits one "cluster.job" event per completion and
    // sprint start/stop events, all stamped with *simulation* time fields
    // (wall-clock span timestamps are meaningless in a DES). Warmup jobs
    // are excluded, mirroring SimResult.
    obs::Registry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  ClusterSimulator(Config config, std::vector<TraceEntry> trace);
  ~ClusterSimulator();
  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  // Runs the whole trace to completion and returns the collected metrics.
  SimResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience: simulate a trace under a scheduler/sprint configuration.
SimResult simulate(const ClusterSimulator::Config& config, std::vector<TraceEntry> trace);

}  // namespace dias::cluster
