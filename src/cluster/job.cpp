#include "cluster/job.hpp"

namespace dias::cluster {

bool is_droppable(StageKind kind) {
  switch (kind) {
    case StageKind::kMap:
    case StageKind::kShuffleMap:
    case StageKind::kReduce:
      return true;
    case StageKind::kSetup:
    case StageKind::kShuffle:
    case StageKind::kResult:
      return false;
  }
  return false;
}

const char* to_string(StageKind kind) {
  switch (kind) {
    case StageKind::kSetup:
      return "setup";
    case StageKind::kMap:
      return "map";
    case StageKind::kShuffle:
      return "shuffle";
    case StageKind::kShuffleMap:
      return "shuffle-map";
    case StageKind::kReduce:
      return "reduce";
    case StageKind::kResult:
      return "result";
  }
  return "?";
}

double JobSpec::total_work() const {
  double acc = 0.0;
  for (const auto& s : stages) acc += static_cast<double>(s.tasks) * s.mean_task_time;
  return acc;
}

int JobSpec::total_tasks() const {
  int acc = 0;
  for (const auto& s : stages) acc += s.tasks;
  return acc;
}

}  // namespace dias::cluster
