// Per-class and system-wide metrics collected by the cluster simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"

namespace dias::cluster {

struct ClassMetrics {
  SampleSet response;   // arrival -> completion (the paper's latency)
  SampleSet queueing;   // response minus final execution
  SampleSet execution;  // duration of the successful (final) attempt
  std::size_t completed = 0;
  std::size_t evictions = 0;

  double mean_response() const { return response.mean(); }
  double tail_response(double q = 0.95) const { return response.quantile(q); }
};

struct SimResult {
  std::vector<ClassMetrics> per_class;

  double horizon = 0.0;            // total simulated time
  double busy_time = 0.0;          // engine-occupied time (all attempts)
  double wasted_time = 0.0;        // time spent on attempts that were evicted
  double sprint_time = 0.0;        // time executed at sprint frequency
  double energy_joules = 0.0;      // integrated power over the horizon
  std::size_t total_evictions = 0;
  std::size_t straggler_tasks = 0;     // tasks inflated by straggler injection
  std::size_t speculative_copies = 0;  // backup copies launched
  std::size_t tail_dropped_tasks = 0;  // in-flight tasks abandoned (GRASS)

  // Fraction of processing (busy) time spent re-processing evicted work --
  // the paper's "resource waste".
  double resource_waste() const {
    return busy_time > 0.0 ? wasted_time / busy_time : 0.0;
  }
  double utilization() const { return horizon > 0.0 ? busy_time / horizon : 0.0; }
};

}  // namespace dias::cluster
