#include "sim/simulator.hpp"

#include <utility>

#include "common/error.hpp"

namespace dias::sim {

EventId Simulator::schedule_at(Time at, std::function<void()> fn) {
  DIAS_EXPECTS(at >= now_, "cannot schedule an event in the past");
  DIAS_EXPECTS(static_cast<bool>(fn), "event callable must be non-empty");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return EventId{id};
}

EventId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  DIAS_EXPECTS(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) { return live_.erase(id.value) > 0; }

bool Simulator::is_pending(EventId id) const { return live_.count(id.value) > 0; }

bool Simulator::step() {
  while (!queue_.empty()) {
    // const_cast to move the callable out: the entry is popped immediately.
    Entry& top = const_cast<Entry&>(queue_.top());
    const Entry entry{top.at, top.seq, top.id, std::move(top.fn)};
    queue_.pop();
    if (live_.erase(entry.id) == 0) continue;  // cancelled tombstone
    now_ = entry.at;
    entry.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

void Simulator::run_until(Time until) {
  DIAS_EXPECTS(until >= now_, "run_until target is in the past");
  while (!queue_.empty() && queue_.top().at <= until) {
    if (!step()) break;
  }
  now_ = until;
}

}  // namespace dias::sim
