// Discrete-event simulation core.
//
// A Simulator owns a time-ordered event queue. Events are arbitrary
// callables scheduled at absolute times; ties are broken FIFO by insertion
// order so models behave deterministically. Events can be cancelled, which
// is how the cluster model implements preemptive eviction (cancelling a
// pending job-completion event) and sprint timeouts.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace dias::sim {

using Time = double;

// Opaque handle for a scheduled event; valid until the event fires or is
// cancelled.
struct EventId {
  std::uint64_t value = 0;
  friend bool operator==(EventId, EventId) = default;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= now()).
  EventId schedule_at(Time at, std::function<void()> fn);
  // Schedules `fn` to run `delay` (>= 0) after the current time.
  EventId schedule_after(Time delay, std::function<void()> fn);

  // Cancels a pending event. Returns false if the event already fired or
  // was cancelled (cancelling twice is harmless).
  bool cancel(EventId id);
  bool is_pending(EventId id) const;

  // Runs a single event; returns false when the queue is empty.
  bool step();
  // Runs until the queue drains.
  void run();
  // Runs events with time <= until, then sets now() = until.
  void run_until(Time until);

  std::size_t pending_events() const { return live_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace dias::sim
