#include "workload/graph_gen.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dias::workload {

std::vector<Edge> generate_rmat_graph(const GraphParams& params) {
  DIAS_EXPECTS(params.scale >= 1 && params.scale <= 28, "R-MAT scale out of range");
  DIAS_EXPECTS(params.edges >= 1, "graph needs at least one edge");
  const double d = 1.0 - params.a - params.b - params.c;
  DIAS_EXPECTS(params.a > 0 && params.b >= 0 && params.c >= 0 && d >= 0,
               "R-MAT probabilities must form a distribution");

  Rng rng(params.seed);
  std::vector<Edge> edges;
  edges.reserve(params.edges);
  for (std::size_t e = 0; e < params.edges; ++e) {
    std::uint32_t u = 0, v = 0;
    for (int bit = 0; bit < params.scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left: no bits set
      } else if (r < params.a + params.b) {
        v |= 1;
      } else if (r < params.a + params.b + params.c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;  // drop self loops
    if (u > v) std::swap(u, v);
    edges.emplace_back(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::uint64_t exact_triangle_count(const std::vector<Edge>& edges) {
  // Build sorted adjacency of "forward" neighbours (v > u) and count, for
  // each edge (u, v), the intersection |N+(u) & N+(v)|.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> adj;
  for (const auto& [u, v] : edges) {
    DIAS_EXPECTS(u < v, "edges must be canonical (u < v)");
    adj[u].push_back(v);
  }
  for (auto& [u, nbrs] : adj) std::sort(nbrs.begin(), nbrs.end());

  std::uint64_t triangles = 0;
  const std::vector<std::uint32_t> empty;
  for (const auto& [u, v] : edges) {
    const auto iu = adj.find(u);
    const auto iv = adj.find(v);
    const auto& nu = iu != adj.end() ? iu->second : empty;
    const auto& nv = iv != adj.end() ? iv->second : empty;
    // Sorted intersection.
    auto a = nu.begin();
    auto b = nv.begin();
    while (a != nu.end() && b != nv.end()) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        ++triangles;
        ++a;
        ++b;
      }
    }
  }
  return triangles;
}

}  // namespace dias::workload
