// Synthetic StackExchange-like corpus generator.
//
// The paper analyses XML data dumps of 164 StackExchange sites ("find the
// popularity of different words in different topics"). We lack the dumps,
// so this generator synthesizes per-site post collections whose word
// frequencies follow a Zipf law over a shared vocabulary, with per-site
// (topic) skew: each site boosts a random subset of topic words. Posts are
// wrapped in the same XML-ish row format the real dumps use, so the word
// count job exercises parsing + tokenization like the paper's text jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dias::workload {

struct TextCorpusParams {
  std::size_t posts = 2000;            // rows in the dump
  std::size_t mean_words_per_post = 40;
  std::size_t vocabulary = 5000;       // distinct words
  double zipf_exponent = 1.05;         // word popularity skew
  std::size_t topic_words = 50;        // words boosted for this site/topic
  double topic_boost = 8.0;            // relative frequency multiplier

  // Topic drift: the dump is split into this many segments, each boosting
  // a different topic-word subset (real dumps are chronological and drift).
  // Drift makes partitions heterogeneous, so dropped tasks bias even
  // rescaled estimates. 1 = homogeneous corpus.
  std::size_t drift_segments = 1;

  std::uint64_t seed = 1;
};

struct TextCorpus {
  std::string site;
  std::vector<std::string> rows;  // XML-ish <row .../> lines

  // Approximate size of the dump in bytes.
  std::size_t bytes() const;
};

// Generates one site's dump. `site` names the topic (e.g. "anime").
TextCorpus generate_text_corpus(const std::string& site, const TextCorpusParams& params);

// Extracts the post body from a <row ... Body="..."/> line; returns an
// empty string for malformed rows.
std::string extract_post_body(const std::string& row);

// Lower-cases and splits a body into words.
std::vector<std::string> tokenize(const std::string& body);

}  // namespace dias::workload
