// Multi-priority job trace generation (paper Section 5.1).
//
// Builds arrival traces for the cluster simulator from per-class workload
// profiles: Poisson arrivals with configurable class mix, lognormal job
// sizes, and the text-analytics (setup/map/shuffle/reduce) or graph-
// analytics (setup + k ShuffleMap + result) stage shapes. Also converts
// profiles into the stochastic model's JobClassProfile so the deflator can
// predict latencies for the same workload it generates.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/cluster_simulator.hpp"
#include "model/mmap.hpp"
#include "model/response_time_model.hpp"

namespace dias::workload {

// One priority class of text-analytics jobs (word-count-like: one map stage
// over the dataset partitions, a shuffle, and one reduce stage).
struct ClassWorkloadParams {
  double arrival_rate = 0.01;  // jobs per second (Poisson)

  double mean_size_mb = 473.0;  // dataset size; drives work and overhead
  double size_scv = 0.15;       // lognormal size variability across jobs

  int map_tasks = 50;    // RDD partitions (the paper splits datasets in 50)
  int reduce_tasks = 20;

  // Serial work per MB: total map work for a size-s job is
  // s * map_seconds_per_mb, split evenly over map tasks.
  double map_seconds_per_mb = 0.2;
  double reduce_seconds_per_mb = 0.05;

  // Mean setup (overhead) time for a mean-size job at theta = 0 and at the
  // profiled theta = 0.9 endpoint; scales linearly with job size.
  double setup_time_s = 8.0;
  double setup_time_theta90_s = 4.0;
  double shuffle_time_s = 3.0;

  double task_scv = 0.08;  // within-job task-time variability

  std::string label;
};

// One priority class of graph-analytics jobs (triangle-count-like: setup,
// `shuffle_map_stages` droppable ShuffleMap stages, and a result stage).
struct GraphClassParams {
  double arrival_rate = 0.005;

  double mean_size_mb = 800.0;
  double size_scv = 0.10;

  int stage_tasks = 50;        // tasks per ShuffleMap stage
  int shuffle_map_stages = 6;  // graphx triangle count: 6 ShuffleMap stages
  double stage_seconds_per_mb = 0.03;  // serial work per MB per stage

  double setup_time_s = 10.0;
  double result_time_s = 5.0;

  double task_scv = 0.08;
  std::string label;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(std::uint64_t seed) : rng_(seed) {}

  // Generates `jobs` arrivals. Class index within `classes` is the priority
  // (larger index = higher priority), matching the paper's convention.
  std::vector<cluster::TraceEntry> text_trace(std::span<const ClassWorkloadParams> classes,
                                              std::size_t jobs);
  std::vector<cluster::TraceEntry> graph_trace(std::span<const GraphClassParams> classes,
                                               std::size_t jobs);

  // Bursty variant: arrivals come from a symmetric 2-state MMPP whose mean
  // per-class rates equal the configured ones. `peak_to_mean` in [1, 2)
  // scales the high state's rate (1 = Poisson); `switch_rate` is the state
  // flip rate (smaller = longer bursts).
  std::vector<cluster::TraceEntry> text_trace_bursty(
      std::span<const ClassWorkloadParams> classes, std::size_t jobs,
      double peak_to_mean, double switch_rate);

  // The MMPP used by text_trace_bursty for the same parameters (e.g. to
  // feed the analytic MAP/PH/1 model).
  static model::Mmap bursty_mmap(std::span<const ClassWorkloadParams> classes,
                                 double peak_to_mean, double switch_rate);

 private:
  template <typename Params, typename SpecFn>
  std::vector<cluster::TraceEntry> merged_poisson(std::span<const Params> classes,
                                                  std::size_t jobs, SpecFn make_spec);

  Rng rng_;
};

// Stage-shape factories (shared with tests/benches).
cluster::JobSpec make_text_job(const ClassWorkloadParams& params, std::size_t priority,
                               double size_mb);
cluster::JobSpec make_graph_job(const GraphClassParams& params, std::size_t priority,
                                double size_mb);

// Converts a class profile into the stochastic model's input (mean-size
// job; point-mass task counts; exponential-rate parameters).
model::JobClassProfile to_model_profile(const ClassWorkloadParams& params, int slots);
model::JobClassProfile to_model_profile(const GraphClassParams& params, int slots);

// Offered load sum_k lambda_k E[S_k(theta_k)] predicted by the model.
double offered_load(std::span<const model::JobClassProfile> profiles,
                    std::span<const double> theta);

// Scales every class arrival rate by a common factor so the offered load
// (at theta = 0) hits `target_utilization`, using the *model's* mean
// processing time (exact for exponential tasks). Returns the factor.
double scale_rates_to_load(std::span<ClassWorkloadParams> classes, int slots,
                           double target_utilization);
double scale_rates_to_load(std::span<GraphClassParams> classes, int slots,
                           double target_utilization);

// Pilot-based calibration: measures each class's isolated mean execution
// time by simulating single jobs far apart (the paper's offline profiling)
// under the given task-time family, then scales the arrival rates to hit
// `target_utilization` while preserving the mix. Use this for
// non-exponential families, where the model-based calibration is biased.
double calibrate_rates_by_pilot(std::vector<ClassWorkloadParams>& classes, int slots,
                                double target_utilization,
                                cluster::TaskTimeFamily family);
double calibrate_rates_by_pilot(std::vector<GraphClassParams>& classes, int slots,
                                double target_utilization,
                                cluster::TaskTimeFamily family);

}  // namespace dias::workload
