#include "workload/trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dias::workload {
namespace {

// Samples a lognormal job size with the given mean and scv.
double sample_size(Rng& rng, double mean, double scv) {
  if (scv <= 0.0) return mean;
  const double sigma2 = std::log(1.0 + scv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return rng.lognormal(mu, std::sqrt(sigma2));
}

std::vector<double> point_pmf(int tasks) {
  DIAS_EXPECTS(tasks >= 1, "task count must be >= 1");
  std::vector<double> pmf(static_cast<std::size_t>(tasks), 0.0);
  pmf.back() = 1.0;
  return pmf;
}

}  // namespace

cluster::JobSpec make_text_job(const ClassWorkloadParams& params, std::size_t priority,
                               double size_mb) {
  DIAS_EXPECTS(size_mb > 0.0, "job size must be positive");
  const double scale = size_mb / params.mean_size_mb;
  cluster::JobSpec spec;
  spec.priority = priority;
  spec.size_mb = size_mb;
  spec.label = params.label;
  const double setup_factor = params.setup_time_theta90_s / params.setup_time_s;
  spec.stages = {
      {cluster::StageKind::kSetup, 1, params.setup_time_s * scale, 0.05, setup_factor},
      {cluster::StageKind::kMap, params.map_tasks,
       size_mb * params.map_seconds_per_mb / params.map_tasks, params.task_scv, 1.0},
      {cluster::StageKind::kShuffle, 1, params.shuffle_time_s, 0.05, 1.0},
      {cluster::StageKind::kReduce, params.reduce_tasks,
       size_mb * params.reduce_seconds_per_mb / params.reduce_tasks, params.task_scv, 1.0},
  };
  return spec;
}

cluster::JobSpec make_graph_job(const GraphClassParams& params, std::size_t priority,
                                double size_mb) {
  DIAS_EXPECTS(size_mb > 0.0, "job size must be positive");
  const double scale = size_mb / params.mean_size_mb;
  cluster::JobSpec spec;
  spec.priority = priority;
  spec.size_mb = size_mb;
  spec.label = params.label;
  spec.stages.push_back({cluster::StageKind::kSetup, 1, params.setup_time_s * scale, 0.05});
  for (int s = 0; s < params.shuffle_map_stages; ++s) {
    spec.stages.push_back({cluster::StageKind::kShuffleMap, params.stage_tasks,
                           size_mb * params.stage_seconds_per_mb / params.stage_tasks,
                           params.task_scv});
  }
  spec.stages.push_back({cluster::StageKind::kResult, 1, params.result_time_s * scale, 0.05});
  return spec;
}

template <typename Params, typename SpecFn>
std::vector<cluster::TraceEntry> TraceGenerator::merged_poisson(
    std::span<const Params> classes, std::size_t jobs, SpecFn make_spec) {
  DIAS_EXPECTS(!classes.empty(), "trace needs at least one class");
  DIAS_EXPECTS(jobs >= 1, "trace needs at least one job");
  double total_rate = 0.0;
  std::vector<double> weights;
  weights.reserve(classes.size());
  for (const auto& c : classes) {
    DIAS_EXPECTS(c.arrival_rate >= 0.0, "arrival rates must be non-negative");
    total_rate += c.arrival_rate;
    weights.push_back(c.arrival_rate);
  }
  DIAS_EXPECTS(total_rate > 0.0, "total arrival rate must be positive");

  std::vector<cluster::TraceEntry> trace;
  trace.reserve(jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    t += rng_.exponential(total_rate);
    const std::size_t k = rng_.discrete(weights);
    const auto& params = classes[k];
    const double size = sample_size(rng_, params.mean_size_mb, params.size_scv);
    trace.push_back({t, make_spec(params, k, size)});
  }
  return trace;
}

std::vector<cluster::TraceEntry> TraceGenerator::text_trace(
    std::span<const ClassWorkloadParams> classes, std::size_t jobs) {
  return merged_poisson(classes, jobs,
                        [](const ClassWorkloadParams& p, std::size_t k, double size) {
                          return make_text_job(p, k, size);
                        });
}

std::vector<cluster::TraceEntry> TraceGenerator::graph_trace(
    std::span<const GraphClassParams> classes, std::size_t jobs) {
  return merged_poisson(classes, jobs,
                        [](const GraphClassParams& p, std::size_t k, double size) {
                          return make_graph_job(p, k, size);
                        });
}

model::Mmap TraceGenerator::bursty_mmap(std::span<const ClassWorkloadParams> classes,
                                        double peak_to_mean, double switch_rate) {
  DIAS_EXPECTS(!classes.empty(), "trace needs at least one class");
  DIAS_EXPECTS(peak_to_mean >= 1.0 && peak_to_mean < 2.0,
               "peak-to-mean must be in [1, 2) for the symmetric MMPP");
  DIAS_EXPECTS(switch_rate > 0.0, "switch rate must be positive");
  std::vector<std::vector<double>> rates(2);
  for (const auto& c : classes) {
    rates[0].push_back(c.arrival_rate * peak_to_mean);
    rates[1].push_back(c.arrival_rate * (2.0 - peak_to_mean));
  }
  return model::Mmap::mmpp2(rates, switch_rate, switch_rate);
}

std::vector<cluster::TraceEntry> TraceGenerator::text_trace_bursty(
    std::span<const ClassWorkloadParams> classes, std::size_t jobs, double peak_to_mean,
    double switch_rate) {
  DIAS_EXPECTS(jobs >= 1, "trace needs at least one job");
  const auto mmap = bursty_mmap(classes, peak_to_mean, switch_rate);
  auto sampler = mmap.sampler(rng_.split());
  std::vector<cluster::TraceEntry> trace;
  trace.reserve(jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < jobs; ++i) {
    const auto arrival = sampler.next();
    t += arrival.inter_arrival;
    const auto& params = classes[arrival.job_class - 1];
    const double size = sample_size(rng_, params.mean_size_mb, params.size_scv);
    trace.push_back({t, make_text_job(params, arrival.job_class - 1, size)});
  }
  return trace;
}

model::JobClassProfile to_model_profile(const ClassWorkloadParams& params, int slots) {
  model::JobClassProfile profile;
  profile.arrival_rate = params.arrival_rate;
  profile.slots = slots;
  profile.map_task_pmf = point_pmf(params.map_tasks);
  profile.reduce_task_pmf = point_pmf(params.reduce_tasks);
  const double map_task_mean =
      params.mean_size_mb * params.map_seconds_per_mb / params.map_tasks;
  const double reduce_task_mean =
      params.mean_size_mb * params.reduce_seconds_per_mb / params.reduce_tasks;
  profile.map_rate = 1.0 / map_task_mean;
  profile.reduce_rate = 1.0 / reduce_task_mean;
  profile.shuffle_rate = 1.0 / params.shuffle_time_s;
  profile.mean_overhead_theta0 = params.setup_time_s;
  profile.mean_overhead_theta90 = params.setup_time_theta90_s;
  profile.task_scv = std::max(params.task_scv, 1e-3);
  return profile;
}

model::JobClassProfile to_model_profile(const GraphClassParams& params, int slots) {
  // The task-level model has one map + one reduce stage; represent the k
  // ShuffleMap stages as a single map stage with k x tasks (same serial
  // work and wave structure) and fold the result stage into the shuffle.
  model::JobClassProfile profile;
  profile.arrival_rate = params.arrival_rate;
  profile.slots = slots;
  const int total_tasks = params.stage_tasks * params.shuffle_map_stages;
  profile.map_task_pmf = point_pmf(total_tasks);
  profile.reduce_task_pmf = point_pmf(1);
  const double task_mean =
      params.mean_size_mb * params.stage_seconds_per_mb / params.stage_tasks;
  profile.map_rate = 1.0 / task_mean;
  profile.reduce_rate = 1.0 / params.result_time_s;
  profile.shuffle_rate = 1000.0;  // negligible barrier
  profile.mean_overhead_theta0 = params.setup_time_s;
  profile.mean_overhead_theta90 = params.setup_time_s;
  profile.task_scv = std::max(params.task_scv, 1e-3);
  return profile;
}

double offered_load(std::span<const model::JobClassProfile> profiles,
                    std::span<const double> theta) {
  DIAS_EXPECTS(profiles.size() == theta.size(), "one theta per profile required");
  double load = 0.0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    load += profiles[i].arrival_rate *
            model::ResponseTimeModel::processing_time(profiles[i], theta[i]).mean();
  }
  return load;
}

namespace {

template <typename Params>
double scale_impl(std::span<Params> classes, int slots, double target) {
  DIAS_EXPECTS(target > 0.0 && target < 1.0, "target utilization must be in (0,1)");
  std::vector<model::JobClassProfile> profiles;
  std::vector<double> theta(classes.size(), 0.0);
  profiles.reserve(classes.size());
  for (const auto& c : classes) profiles.push_back(to_model_profile(c, slots));
  const double load = offered_load(profiles, theta);
  DIAS_EXPECTS(load > 0.0, "offered load must be positive");
  const double factor = target / load;
  for (auto& c : classes) c.arrival_rate *= factor;
  return factor;
}

}  // namespace

double scale_rates_to_load(std::span<ClassWorkloadParams> classes, int slots,
                           double target_utilization) {
  return scale_impl(classes, slots, target_utilization);
}

double scale_rates_to_load(std::span<GraphClassParams> classes, int slots,
                           double target_utilization) {
  return scale_impl(classes, slots, target_utilization);
}

namespace {

template <typename Params, typename TraceFn>
double pilot_impl(std::vector<Params>& classes, int slots, double target,
                  cluster::TaskTimeFamily family, TraceFn make_trace) {
  DIAS_EXPECTS(!classes.empty(), "calibration needs at least one class");
  DIAS_EXPECTS(target > 0.0 && target < 1.0, "target utilization must be in (0,1)");
  std::vector<double> mean_exec(classes.size(), 0.0);
  for (std::size_t k = 0; k < classes.size(); ++k) {
    std::vector<Params> solo{classes[k]};
    solo[0].arrival_rate = 1.0;  // placeholder; arrivals are respaced below
    TraceGenerator gen(1000 + k);
    auto trace = make_trace(gen, solo, std::size_t{60});
    double t = 0.0;
    for (auto& e : trace) {
      e.arrival_time = t;
      t += 1e7;  // far apart: measures pure execution time
    }
    cluster::ClusterSimulator::Config config;
    config.slots = slots;
    config.task_time_family = family;
    config.warmup_jobs = 0;
    config.seed = 17 + k;
    mean_exec[k] = cluster::simulate(config, std::move(trace)).per_class[0].execution.mean();
  }
  double load = 0.0;
  for (std::size_t k = 0; k < classes.size(); ++k) {
    load += classes[k].arrival_rate * mean_exec[k];
  }
  DIAS_EXPECTS(load > 0.0, "offered load must be positive");
  const double factor = target / load;
  for (auto& c : classes) c.arrival_rate *= factor;
  return factor;
}

}  // namespace

double calibrate_rates_by_pilot(std::vector<ClassWorkloadParams>& classes, int slots,
                                double target_utilization,
                                cluster::TaskTimeFamily family) {
  return pilot_impl(classes, slots, target_utilization, family,
                    [](TraceGenerator& gen, const std::vector<ClassWorkloadParams>& cs,
                       std::size_t jobs) { return gen.text_trace(cs, jobs); });
}

double calibrate_rates_by_pilot(std::vector<GraphClassParams>& classes, int slots,
                                double target_utilization,
                                cluster::TaskTimeFamily family) {
  return pilot_impl(classes, slots, target_utilization, family,
                    [](TraceGenerator& gen, const std::vector<GraphClassParams>& cs,
                       std::size_t jobs) { return gen.graph_trace(cs, jobs); });
}

}  // namespace dias::workload
