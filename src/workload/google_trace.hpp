// Google-cluster-trace-style multi-priority workload synthesis.
//
// The paper motivates DiAS with the Google 2011 trace: 12 priority levels,
// but 2-3 classes account for ~89% of all tasks, the lowest priority is
// evicted repeatedly, and high priorities see almost no queueing. This
// module synthesizes a 12-priority class mix with those characteristics so
// experiments can exercise DiAS "beyond two and three priorities"
// (Section 5: "our proposed methodology can easily be extended").
#pragma once

#include <cstdint>
#include <vector>

#include "workload/trace_gen.hpp"

namespace dias::workload {

struct GoogleTraceParams {
  std::size_t priorities = 12;
  // Share of arrivals concentrated in the dominant classes (~89% in the
  // trace, split across priorities 0 (gratis), 4 (batch) and 9 (prod)).
  double dominant_share = 0.89;
  // Size skew: low-priority (batch/gratis) jobs are larger on average.
  double low_priority_size_mb = 1117.0;
  double high_priority_size_mb = 473.0;
  double base_arrival_rate = 0.01;  // total jobs/s before load scaling
  std::uint64_t seed = 1;
};

// Builds the per-class workload parameters (index = priority, larger =
// higher). Classes outside the dominant trio receive the residual share
// spread geometrically.
std::vector<ClassWorkloadParams> google_trace_classes(const GoogleTraceParams& params);

// Per-class drop ratios mirroring DiAS's differential policy on the
// 12-class mix: top `exact_classes` run exact; below that, theta grows
// linearly to `max_theta` at priority 0.
std::vector<double> differential_theta(std::size_t priorities, std::size_t exact_classes,
                                       double max_theta);

}  // namespace dias::workload
