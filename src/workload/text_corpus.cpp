#include "workload/text_corpus.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dias::workload {
namespace {

std::string word_for_rank(std::size_t rank) {
  // Deterministic pseudo-words: "w" + rank. Distinctness is all the word
  // count cares about; Zipf ranks carry the popularity structure.
  return "w" + std::to_string(rank);
}

}  // namespace

std::size_t TextCorpus::bytes() const {
  std::size_t n = 0;
  for (const auto& r : rows) n += r.size() + 1;
  return n;
}

TextCorpus generate_text_corpus(const std::string& site, const TextCorpusParams& params) {
  DIAS_EXPECTS(params.posts >= 1, "corpus needs at least one post");
  DIAS_EXPECTS(params.vocabulary >= 1, "vocabulary must be non-empty");
  DIAS_EXPECTS(params.mean_words_per_post >= 1, "posts need at least one word");
  DIAS_EXPECTS(params.topic_boost >= 1.0, "topic boost must be >= 1");

  Rng rng(params.seed);
  const ZipfDistribution zipf(params.vocabulary, params.zipf_exponent);

  // Pick per-segment topic-word subsets (ranks) to boost; segment 0 is the
  // site's base topic, later segments drift to other word windows.
  const std::size_t segments = std::max<std::size_t>(params.drift_segments, 1);
  const std::size_t topic_n = std::min(params.topic_words, params.vocabulary);
  std::vector<std::vector<std::size_t>> segment_topics(segments);
  for (auto& topic_ranks : segment_topics) {
    for (std::size_t i = 0; i < topic_n; ++i) {
      topic_ranks.push_back(1 + rng.uniform_int(params.vocabulary));
    }
  }
  // Probability that a word slot is re-drawn from the topic set.
  const double topic_share =
      params.topic_boost / (params.topic_boost + static_cast<double>(params.vocabulary) /
                                                     std::max<std::size_t>(topic_n, 1));

  TextCorpus corpus;
  corpus.site = site;
  corpus.rows.reserve(params.posts);
  for (std::size_t i = 0; i < params.posts; ++i) {
    const auto& topic_ranks = segment_topics[i * segments / params.posts];
    // Post lengths: geometric-ish spread around the mean.
    const auto len = std::max<std::size_t>(
        1, static_cast<std::size_t>(rng.exponential(1.0 / static_cast<double>(
                                                              params.mean_words_per_post)) +
                                    0.5));
    std::string body;
    body.reserve(len * 6);
    for (std::size_t w = 0; w < len; ++w) {
      std::size_t rank;
      if (!topic_ranks.empty() && rng.bernoulli(topic_share)) {
        rank = topic_ranks[rng.uniform_int(topic_ranks.size())];
      } else {
        rank = zipf(rng);
      }
      if (w > 0) body.push_back(' ');
      body += word_for_rank(rank);
    }
    corpus.rows.push_back("<row Id=\"" + std::to_string(i + 1) + "\" Site=\"" + site +
                          "\" Body=\"" + body + "\"/>");
  }
  return corpus;
}

std::string extract_post_body(const std::string& row) {
  const std::string key = "Body=\"";
  const auto start = row.find(key);
  if (start == std::string::npos) return {};
  const auto body_start = start + key.size();
  const auto end = row.find('"', body_start);
  if (end == std::string::npos) return {};
  return row.substr(body_start, end - body_start);
}

std::vector<std::string> tokenize(const std::string& body) {
  std::vector<std::string> words;
  std::string current;
  for (char c : body) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

}  // namespace dias::workload
