// Synthetic power-law graph generator (R-MAT).
//
// Stand-in for the Google web graph (875'713 nodes / 5'105'039 edges) used
// by the paper's triangle-count jobs: R-MAT with the classic skewed
// quadrant probabilities reproduces the heavy-tailed degree distribution
// that makes triangle counting sensitive to dropped partitions.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace dias::workload {

using Edge = std::pair<std::uint32_t, std::uint32_t>;

struct GraphParams {
  int scale = 14;                   // 2^scale vertices
  std::size_t edges = 8 * (1u << 14);  // edges before dedup
  double a = 0.57, b = 0.19, c = 0.19;  // R-MAT quadrant probabilities (d = 1-a-b-c)
  std::uint64_t seed = 7;
};

// Generates an undirected simple graph: no self loops, each edge stored
// once with u < v, sorted and deduplicated.
std::vector<Edge> generate_rmat_graph(const GraphParams& params);

// Exact triangle count via node-iterator with sorted adjacencies; reference
// for accuracy experiments. Edges must be simple and canonical (u < v).
std::uint64_t exact_triangle_count(const std::vector<Edge>& edges);

}  // namespace dias::workload
