#include "workload/google_trace.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace dias::workload {

std::vector<ClassWorkloadParams> google_trace_classes(const GoogleTraceParams& params) {
  DIAS_EXPECTS(params.priorities >= 3, "need at least three priorities");
  DIAS_EXPECTS(params.dominant_share > 0.0 && params.dominant_share < 1.0,
               "dominant share must be in (0,1)");
  const std::size_t k = params.priorities;

  // Arrival shares: the dominant trio (gratis 0, batch mid, production top)
  // gets `dominant_share`, weighted toward the low end as in the trace.
  std::vector<double> share(k, 0.0);
  const std::size_t mid = k / 3;
  const std::size_t top = k - 3;
  share[0] = params.dominant_share * 0.50;
  share[mid] = params.dominant_share * 0.35;
  share[top] = params.dominant_share * 0.15;
  // Residual spread geometrically over the remaining classes.
  double residual = 1.0 - params.dominant_share;
  std::vector<std::size_t> rest;
  for (std::size_t p = 0; p < k; ++p) {
    if (p != 0 && p != mid && p != top) rest.push_back(p);
  }
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < rest.size(); ++i) weight_sum += 1.0 / static_cast<double>(i + 1);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    share[rest[i]] = residual * (1.0 / static_cast<double>(i + 1)) / weight_sum;
  }

  std::vector<ClassWorkloadParams> classes(k);
  for (std::size_t p = 0; p < k; ++p) {
    auto& c = classes[p];
    c.arrival_rate = params.base_arrival_rate * share[p];
    // Sizes interpolate from big batch jobs at low priority to small
    // latency-sensitive jobs at the top.
    const double w = static_cast<double>(p) / static_cast<double>(k - 1);
    c.mean_size_mb = params.low_priority_size_mb * (1.0 - w) +
                     params.high_priority_size_mb * w;
    c.size_scv = 0.15;
    c.map_tasks = 50;
    c.reduce_tasks = 20;
    c.map_seconds_per_mb = 0.9;
    c.reduce_seconds_per_mb = 0.18;
    c.setup_time_s = 8.0;
    c.setup_time_theta90_s = 4.0;
    c.shuffle_time_s = 3.0;
    c.task_scv = 0.08;
    c.label = "prio" + std::to_string(p);
  }
  return classes;
}

std::vector<double> differential_theta(std::size_t priorities, std::size_t exact_classes,
                                       double max_theta) {
  DIAS_EXPECTS(priorities >= 1, "need at least one priority");
  DIAS_EXPECTS(exact_classes <= priorities, "exact classes exceed priority count");
  DIAS_EXPECTS(max_theta >= 0.0 && max_theta < 1.0, "max theta must be in [0,1)");
  std::vector<double> theta(priorities, 0.0);
  const std::size_t deflated = priorities - exact_classes;
  for (std::size_t p = 0; p < deflated; ++p) {
    // Priority 0 gets max_theta; the last deflated class gets the smallest
    // non-zero step.
    theta[p] = max_theta * static_cast<double>(deflated - p) /
               static_cast<double>(deflated);
  }
  return theta;
}

}  // namespace dias::workload
