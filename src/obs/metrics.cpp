#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace dias::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), bins_(bins) {
  DIAS_EXPECTS(bins > 0, "histogram needs at least one bin");
  DIAS_EXPECTS(hi > lo, "histogram range must be non-empty");
}

void HistogramMetric::observe(double x) {
  std::lock_guard lock(mu_);
  seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: write in flight
  // Writer-exclusive under mu_, so relaxed loads read our own last stores;
  // the math mirrors dias::Welford / dias::Histogram exactly so existing
  // stats() expectations are unchanged.
  const std::uint64_t n = count_.load(std::memory_order_relaxed) + 1;
  if (n == 1) {
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  } else {
    if (x < min_.load(std::memory_order_relaxed)) min_.store(x, std::memory_order_relaxed);
    if (x > max_.load(std::memory_order_relaxed)) max_.store(x, std::memory_order_relaxed);
  }
  double mean = mean_.load(std::memory_order_relaxed);
  const double delta = x - mean;
  mean += delta / static_cast<double>(n);
  mean_.store(mean, std::memory_order_relaxed);
  m2_.store(m2_.load(std::memory_order_relaxed) + delta * (x - mean),
            std::memory_order_relaxed);
  std::size_t idx = 0;
  if (x >= lo_) {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= bins_.size()) idx = bins_.size() - 1;
  }
  bins_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.store(n, std::memory_order_relaxed);
  seq_.fetch_add(1, std::memory_order_release);  // even: consistent again
}

void HistogramMetric::copy_raw(Raw& out) const {
  out.count = count_.load(std::memory_order_relaxed);
  out.mean = mean_.load(std::memory_order_relaxed);
  out.m2 = m2_.load(std::memory_order_relaxed);
  out.min = min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  out.bins.resize(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    out.bins[i] = bins_[i].load(std::memory_order_relaxed);
  }
}

double HistogramMetric::quantile(const Raw& raw, double q) const {
  std::uint64_t total = 0;
  for (const auto c : raw.bins) total += c;
  if (total == 0) return lo_;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < raw.bins.size(); ++i) {
    const std::uint64_t next = cum + raw.bins[i];
    if (static_cast<double>(next) >= target) {
      const double frac =
          raw.bins[i] == 0
              ? 0.0
              : (target - static_cast<double>(cum)) / static_cast<double>(raw.bins[i]);
      return lo_ + width_ * static_cast<double>(i) + frac * width_;
    }
    cum = next;
  }
  return lo_ + width_ * static_cast<double>(raw.bins.size());
}

HistogramMetric::Stats HistogramMetric::finalize(const Raw& raw) const {
  Stats s;
  s.count = static_cast<std::size_t>(raw.count);
  if (s.count == 0) return s;
  s.mean = raw.mean;
  s.stddev = std::sqrt(std::max(0.0, raw.m2 / static_cast<double>(raw.count)));
  s.min = raw.min;
  s.max = raw.max;
  s.p50 = quantile(raw, 0.50);
  s.p95 = quantile(raw, 0.95);
  s.p99 = quantile(raw, 0.99);
  return s;
}

HistogramMetric::Stats HistogramMetric::stats() const {
  Raw raw;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // write in flight, retry
    copy_raw(raw);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == s1) return finalize(raw);
  }
  // Write storm: fall back to excluding writers for one consistent copy.
  std::lock_guard lock(mu_);
  copy_raw(raw);
  return finalize(raw);
}

void Registry::check_kind(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.try_emplace(name, kind);
  DIAS_EXPECTS(inserted || it->second == kind,
               "metric name already registered as a different kind");
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& Registry::histogram(const std::string& name, double lo, double hi,
                                     std::size_t bins) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, bins);
  return *slot;
}

ShardedCounter& Registry::sharded_counter(const std::string& name, std::size_t shards) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kShardedCounter);
  auto& slot = sharded_[name];
  if (!slot) slot = std::make_unique<ShardedCounter>(shards);
  return *slot;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const HistogramMetric* Registry::find_histogram(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const ShardedCounter* Registry::find_sharded_counter(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = sharded_.find(name);
  return it == sharded_.end() ? nullptr : it->second.get();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size() + sharded_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  // Sharded counters export as one folded entry; re-sort so the combined
  // counter list stays name-ordered (JSON output is diffed in tests).
  for (const auto& [name, c] : sharded_) snap.counters.push_back({name, c->value()});
  std::sort(snap.counters.begin(), snap.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.push_back({name, h->stats()});
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : gauges) w.field(g.name, g.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(h.stats.count));
    w.field("mean", h.stats.mean);
    w.field("stddev", h.stats.stddev);
    w.field("min", h.stats.min);
    w.field("max", h.stats.max);
    w.field("p50", h.stats.p50);
    w.field("p95", h.stats.p95);
    w.field("p99", h.stats.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace dias::obs
