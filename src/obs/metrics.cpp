#include "obs/metrics.hpp"

#include "common/error.hpp"
#include "obs/json.hpp"

namespace dias::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : bins_(lo, hi, bins) {}

void HistogramMetric::observe(double x) {
  std::lock_guard lock(mu_);
  welford_.add(x);
  bins_.add(x);
}

HistogramMetric::Stats HistogramMetric::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.count = welford_.count();
  if (s.count == 0) return s;
  s.mean = welford_.mean();
  s.stddev = welford_.stddev();
  s.min = welford_.min();
  s.max = welford_.max();
  s.p50 = bins_.quantile(0.50);
  s.p95 = bins_.quantile(0.95);
  s.p99 = bins_.quantile(0.99);
  return s;
}

void Registry::check_kind(const std::string& name, Kind kind) {
  const auto [it, inserted] = kinds_.try_emplace(name, kind);
  DIAS_EXPECTS(inserted || it->second == kind,
               "metric name already registered as a different kind");
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kCounter);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kGauge);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& Registry::histogram(const std::string& name, double lo, double hi,
                                     std::size_t bins) {
  std::lock_guard lock(mu_);
  check_kind(name, Kind::kHistogram);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, bins);
  return *slot;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.push_back({name, h->stats()});
  return snap;
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& g : gauges) w.field(g.name, g.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : histograms) {
    w.key(h.name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(h.stats.count));
    w.field("mean", h.stats.mean);
    w.field("stddev", h.stats.stddev);
    w.field("min", h.stats.min);
    w.field("max", h.stats.max);
    w.field("p50", h.stats.p50);
    w.field("p95", h.stats.p95);
    w.field("p99", h.stats.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace dias::obs
