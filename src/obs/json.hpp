// Minimal streaming JSON writer used by the observability layer to emit
// metric snapshots and trace events.
//
// Deliberately tiny: no DOM, no parsing, no allocation beyond the output
// string. The writer enforces well-formedness mechanically (commas,
// matching begin/end) so every exporter in dias::obs produces parseable
// JSON by construction. Non-finite doubles serialize as null, since JSON
// has no representation for inf/NaN.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dias::obs {

// `s` with JSON string escaping applied (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

// Appends JSON tokens to an internal buffer. Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.key("name"); w.value("stage");
//   w.key("tasks"); w.value(std::uint64_t{50});
//   w.end_object();
//   std::string out = std::move(w).str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double x);  // non-finite -> null
  void value(std::uint64_t x);
  void value(std::int64_t x);
  void value(bool b);
  void value_null();

  // Convenience: key + value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  // One entry per open object/array: whether a value was already written at
  // this nesting level (so the next one needs a comma).
  std::vector<bool> wrote_value_{false};
  bool pending_key_ = false;
};

}  // namespace dias::obs
