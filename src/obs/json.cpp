#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace dias::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already wrote its comma
  }
  if (wrote_value_.back()) out_ += ',';
  wrote_value_.back() = true;
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  wrote_value_.push_back(false);
}

void JsonWriter::end_object() {
  DIAS_EXPECTS(wrote_value_.size() > 1, "end_object without begin_object");
  wrote_value_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  wrote_value_.push_back(false);
}

void JsonWriter::end_array() {
  DIAS_EXPECTS(wrote_value_.size() > 1, "end_array without begin_array");
  wrote_value_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view name) {
  DIAS_EXPECTS(!pending_key_, "two keys in a row");
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
}

void JsonWriter::value(double x) {
  if (!std::isfinite(x)) {
    value_null();
    return;
  }
  comma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", x);
  out_ += buf;
}

void JsonWriter::value(std::uint64_t x) {
  comma();
  out_ += std::to_string(x);
}

void JsonWriter::value(std::int64_t x) {
  comma();
  out_ += std::to_string(x);
}

void JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
}

void JsonWriter::value_null() {
  comma();
  out_ += "null";
}

}  // namespace dias::obs
