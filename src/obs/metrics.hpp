// Thread-safe metrics registry for the DiAS runtime (engine, thread pool,
// cluster simulator, deflator).
//
// Design goals, in order:
//   1. The *disabled* path must be free: every instrumented component holds
//      plain (possibly null) handle pointers and skips a single branch when
//      observability is not attached.
//   2. The *enabled* hot path must be cheap: Counter/Gauge updates are
//      single relaxed atomic operations on handles cached at attach time;
//      name lookup happens once, at registration, never per update.
//   3. Snapshots are safe while recording: readers take the registry mutex
//      only to walk the (append-only) name tables; individual metric reads
//      are atomic loads or a seqlock-validated optimistic copy.
//
// Histograms reproduce the math of dias::Welford (exact streaming
// mean/stddev/min/max) plus dias::Histogram (fixed bins, approximate
// quantiles), restated over atomics so snapshots cannot tear.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dias::obs {

// Monotonically increasing event count. add() is lock-free.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-written instantaneous value (queue depth, budget level, chosen
// theta). set() and add() are lock-free.
class Gauge {
 public:
  void set(double x) { value_.store(x, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Cache-line size used to pad per-shard / per-worker-slot hot counters.
// 64 bytes covers x86-64 and most AArch64 parts; over-padding wastes a few
// bytes, under-padding would silently reintroduce false sharing.
inline constexpr std::size_t kCacheLineBytes = 64;

// Cache-line-padded sharded counter for per-worker hot paths: each shard
// lives on its own cache line, so writers that stick to their own shard
// (worker slot id) never bounce a line between cores the way a single
// Counter's fetch_add does. value() folds the shards; reads are relaxed,
// so a concurrent fold is a consistent-enough snapshot for export, not a
// linearizable total. Out-of-range shard ids wrap instead of faulting —
// a foreign thread with no slot can always use `shards() - 1`.
class ShardedCounter {
 public:
  explicit ShardedCounter(std::size_t shards) : cells_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return cells_.size(); }

  void add(std::size_t shard, std::uint64_t n = 1) {
    cells_[shard % cells_.size()].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t shard_value(std::size_t shard) const {
    return cells_[shard % cells_.size()].v.load(std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::vector<Cell> cells_;
};

// Distribution metric: exact moments (Welford recurrence) + binned
// quantiles (fixed bins over [lo, hi), clamped like dias::Histogram).
//
// Writers serialize on a per-metric mutex and publish through a seqlock
// (`seq_` is odd while an observe() is mutating); every mutated field is a
// relaxed atomic. stats() is therefore an optimistic, non-blocking read:
// it copies a candidate state without taking the mutex and retries when
// the sequence number shows a concurrent write — so a snapshot can never
// observe a torn (count, mean, m2) tuple, and snapshotting never blocks
// recording. After a bounded number of collisions the reader falls back
// to the writer mutex, guaranteeing progress under a write storm.
// Callers on genuinely hot paths should still batch observations (the
// engine records task times once per stage, not once per task).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double x);

  struct Stats {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;  // approximate (bin interpolation)
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Stats stats() const;

 private:
  // Raw state copied out by one (possibly torn — the seq check decides)
  // read attempt, finalized into Stats only once proven consistent.
  struct Raw {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> bins;
  };
  void copy_raw(Raw& out) const;
  Stats finalize(const Raw& raw) const;
  double quantile(const Raw& raw, double q) const;

  mutable std::mutex mu_;  // serializes writers (and the reader fallback)
  std::atomic<std::uint64_t> seq_{0};  // odd while a write is in flight
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> mean_{0.0};
  std::atomic<double> m2_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  const double lo_;
  const double width_;
  std::vector<std::atomic<std::uint64_t>> bins_;
};

// Point-in-time copy of every registered metric, detached from the
// registry (safe to serialize while recording continues).
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    HistogramMetric::Stats stats;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  std::string to_json() const;
};

// Owns the metrics. Registration (name lookup) is mutex-protected and
// returns a stable reference; updates through that reference never touch
// the registry again. Registering an existing name returns the same
// metric; registering a name as two different kinds throws
// precondition_error. A histogram's [lo, hi)/bins are fixed by its first
// registration.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins);
  // A sharded counter's shard count is fixed by its first registration
  // (later calls return the same metric regardless of `shards`). Snapshots
  // fold a sharded counter into a single counter entry under its name.
  ShardedCounter& sharded_counter(const std::string& name, std::size_t shards);

  // Non-registering lookups: nullptr when the name is absent or is a
  // different kind. Lets a sampler (the overload controller reading the
  // engine's busy-worker gauge, the adaptive planner reading stage-time
  // histograms) observe a metric without creating it.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const HistogramMetric* find_histogram(const std::string& name) const;
  const ShardedCounter* find_sharded_counter(const std::string& name) const;

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kShardedCounter };
  void check_kind(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Kind> kinds_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
  std::map<std::string, std::unique_ptr<ShardedCounter>> sharded_;
};

}  // namespace dias::obs
