// Span-style structured tracer for the DiAS runtime.
//
// Components emit begin/end span pairs (stages, dispatched jobs) and
// instantaneous events (deflator decisions, simulator completions), each
// carrying typed key/value fields — job/stage/task ids, priority class,
// drop ratio, retry and speculation counters. Events buffer in memory
// under a mutex (recording never does I/O) and serialize on demand:
//
//   * write_jsonl()   - one JSON object per line, in recording order:
//       {"type":"begin","span":3,"name":"stage","t_s":0.0123,
//        "fields":{"stage":"wordcount/map","theta":0.2,...}}
//   * summary_json()  - per-span-name duration statistics plus event
//       counts, for diffing two runs without replaying the full stream.
//
// Timestamps are wall-clock seconds since the tracer's construction
// (steady clock). Discrete-event components (the cluster simulator) attach
// their own sim-time fields instead of relying on wall time.
#pragma once

#include <cstdint>
#include <chrono>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace dias::obs {

// One typed key/value attached to a trace event.
struct Field {
  Field(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  Field(std::string k, const char* v) : key(std::move(k)), value(std::string(v)) {}
  Field(std::string k, double v) : key(std::move(k)), value(v) {}
  Field(std::string k, bool v) : key(std::move(k)), value(v) {}
  Field(std::string k, std::uint64_t v) : key(std::move(k)), value(v) {}
  Field(std::string k, std::int64_t v) : key(std::move(k)), value(v) {}
  Field(std::string k, unsigned v) : key(std::move(k)), value(std::uint64_t{v}) {}
  Field(std::string k, int v) : key(std::move(k)), value(std::int64_t{v}) {}

  std::string key;
  std::variant<std::string, double, bool, std::uint64_t, std::int64_t> value;
};

class Tracer {
 public:
  using SpanId = std::uint64_t;

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  // Opens a span and returns its id (never 0). Thread-safe.
  SpanId begin_span(std::string name, std::vector<Field> fields = {});
  // Closes `span`; end-time fields typically carry the outcome counters.
  // Ending an unknown/already-ended span is a precondition error.
  void end_span(SpanId span, std::vector<Field> fields = {});
  // Instantaneous event (no duration).
  void event(std::string name, std::vector<Field> fields = {});

  std::size_t event_count() const;

  // Serializes every buffered event as JSONL, in recording order.
  void write_jsonl(std::ostream& os) const;
  // {"spans":{name:{count,mean_s,min_s,max_s}},"open_spans":n,"events":n}
  std::string summary_json() const;

  void clear();

 private:
  struct Event {
    enum class Kind { kBegin, kEnd, kInstant };
    Kind kind = Kind::kInstant;
    SpanId span = 0;  // 0 for instant events
    std::string name;
    double t_s = 0.0;
    std::vector<Field> fields;
  };

  double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  SpanId next_span_ = 1;
  std::unordered_map<SpanId, std::string> open_;  // id -> name, for end_span
  std::vector<Event> events_;
};

}  // namespace dias::obs
