#include "obs/trace.hpp"

#include <map>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "obs/json.hpp"

namespace dias::obs {
namespace {

void write_fields(JsonWriter& w, const std::vector<Field>& fields) {
  w.key("fields");
  w.begin_object();
  for (const auto& f : fields) {
    w.key(f.key);
    std::visit([&w](const auto& v) { w.value(v); }, f.value);
  }
  w.end_object();
}

}  // namespace

Tracer::SpanId Tracer::begin_span(std::string name, std::vector<Field> fields) {
  std::lock_guard lock(mu_);
  const SpanId id = next_span_++;
  open_.emplace(id, name);
  events_.push_back(
      {Event::Kind::kBegin, id, std::move(name), now_s(), std::move(fields)});
  return id;
}

void Tracer::end_span(SpanId span, std::vector<Field> fields) {
  std::lock_guard lock(mu_);
  const auto it = open_.find(span);
  DIAS_EXPECTS(it != open_.end(), "end_span on an unknown or already-ended span");
  events_.push_back(
      {Event::Kind::kEnd, span, std::move(it->second), now_s(), std::move(fields)});
  open_.erase(it);
}

void Tracer::event(std::string name, std::vector<Field> fields) {
  std::lock_guard lock(mu_);
  events_.push_back(
      {Event::Kind::kInstant, 0, std::move(name), now_s(), std::move(fields)});
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void Tracer::write_jsonl(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& e : events_) {
    JsonWriter w;
    w.begin_object();
    switch (e.kind) {
      case Event::Kind::kBegin:
        w.field("type", "begin");
        break;
      case Event::Kind::kEnd:
        w.field("type", "end");
        break;
      case Event::Kind::kInstant:
        w.field("type", "event");
        break;
    }
    if (e.span != 0) w.field("span", e.span);
    w.field("name", e.name);
    w.field("t_s", e.t_s);
    write_fields(w, e.fields);
    w.end_object();
    os << w.str() << '\n';
  }
}

std::string Tracer::summary_json() const {
  std::lock_guard lock(mu_);
  // Pair begin/end events per span id to accumulate per-name durations.
  std::unordered_map<SpanId, double> begin_t;
  std::map<std::string, Welford> durations;
  std::size_t instants = 0;
  for (const auto& e : events_) {
    switch (e.kind) {
      case Event::Kind::kBegin:
        begin_t.emplace(e.span, e.t_s);
        break;
      case Event::Kind::kEnd: {
        const auto it = begin_t.find(e.span);
        if (it != begin_t.end()) {
          durations[e.name].add(e.t_s - it->second);
          begin_t.erase(it);
        }
        break;
      }
      case Event::Kind::kInstant:
        ++instants;
        break;
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("spans");
  w.begin_object();
  for (const auto& [name, acc] : durations) {
    w.key(name);
    w.begin_object();
    w.field("count", static_cast<std::uint64_t>(acc.count()));
    w.field("mean_s", acc.mean());
    w.field("min_s", acc.min());
    w.field("max_s", acc.max());
    w.end_object();
  }
  w.end_object();
  w.field("open_spans", static_cast<std::uint64_t>(open_.size()));
  w.field("events", static_cast<std::uint64_t>(events_.size()));
  w.end_object();
  return std::move(w).str();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
  open_.clear();
}

}  // namespace dias::obs
