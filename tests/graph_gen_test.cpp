#include "workload/graph_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace dias::workload {
namespace {

TEST(GraphGenTest, EdgesAreCanonicalSimpleSorted) {
  GraphParams params;
  params.scale = 10;
  params.edges = 8192;
  params.seed = 1;
  const auto edges = generate_rmat_graph(params);
  EXPECT_FALSE(edges.empty());
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_LT(edges[i].first, edges[i].second);  // canonical, no self loop
    EXPECT_LT(edges[i].second, 1u << 10);
    if (i > 0) {
      EXPECT_NE(edges[i], edges[i - 1]);  // deduplicated
    }
  }
}

TEST(GraphGenTest, DeterministicPerSeed) {
  GraphParams params;
  params.scale = 9;
  params.edges = 2048;
  params.seed = 7;
  const auto a = generate_rmat_graph(params);
  const auto b = generate_rmat_graph(params);
  EXPECT_EQ(a, b);
  params.seed = 8;
  EXPECT_NE(generate_rmat_graph(params), a);
}

TEST(GraphGenTest, DegreeDistributionIsSkewed) {
  GraphParams params;
  params.scale = 12;
  params.edges = 1 << 16;
  params.seed = 3;
  const auto edges = generate_rmat_graph(params);
  std::map<std::uint32_t, int> degree;
  for (const auto& [u, v] : edges) {
    ++degree[u];
    ++degree[v];
  }
  int max_degree = 0;
  double total = 0.0;
  for (const auto& [node, d] : degree) {
    max_degree = std::max(max_degree, d);
    total += d;
  }
  const double mean_degree = total / static_cast<double>(degree.size());
  EXPECT_GT(max_degree, 10.0 * mean_degree) << "R-MAT should produce hubs";
}

TEST(GraphGenTest, Validation) {
  GraphParams params;
  params.scale = 0;
  EXPECT_THROW(generate_rmat_graph(params), dias::precondition_error);
  params = {};
  params.edges = 0;
  EXPECT_THROW(generate_rmat_graph(params), dias::precondition_error);
  params = {};
  params.a = 0.9;
  params.b = 0.2;  // a+b+c > 1
  EXPECT_THROW(generate_rmat_graph(params), dias::precondition_error);
}

TEST(ExactTriangleCountTest, KnownGraphs) {
  EXPECT_EQ(exact_triangle_count({{0, 1}, {0, 2}, {1, 2}}), 1u);  // K3
  EXPECT_EQ(exact_triangle_count({{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}), 4u);
  EXPECT_EQ(exact_triangle_count({{0, 1}, {0, 2}, {0, 3}}), 0u);  // star
  EXPECT_EQ(exact_triangle_count({}), 0u);
  // Two disjoint triangles.
  EXPECT_EQ(exact_triangle_count({{0, 1}, {0, 2}, {1, 2}, {3, 4}, {3, 5}, {4, 5}}), 2u);
}

TEST(ExactTriangleCountTest, RejectsNonCanonicalEdges) {
  EXPECT_THROW(exact_triangle_count({{1, 0}}), dias::precondition_error);
}

TEST(ExactTriangleCountTest, CompleteGraphFormula) {
  // K_n has C(n,3) triangles.
  std::vector<Edge> kn;
  const std::uint32_t n = 9;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) kn.push_back({u, v});
  }
  EXPECT_EQ(exact_triangle_count(kn), 84u);  // C(9,3)
}

}  // namespace
}  // namespace dias::workload
