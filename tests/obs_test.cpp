#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace dias::obs {
namespace {

// --- registry ---------------------------------------------------------------

TEST(RegistryTest, CounterGaugeHistogramBasics) {
  Registry reg;
  auto& c = reg.counter("c");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);

  auto& g = reg.gauge("g");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  auto& h = reg.histogram("h", 0.0, 10.0, 10);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(5.0);
  const auto s = h.stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_GE(s.p99, s.p95);
}

TEST(RegistryTest, SameNameReturnsSameMetric) {
  Registry reg;
  auto& a = reg.counter("x");
  auto& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // A histogram's shape is fixed by its first registration.
  auto& h1 = reg.histogram("hist", 0.0, 1.0, 4);
  auto& h2 = reg.histogram("hist", 0.0, 100.0, 64);
  EXPECT_EQ(&h1, &h2);
}

TEST(RegistryTest, KindConflictThrows) {
  Registry reg;
  reg.counter("metric");
  EXPECT_THROW(reg.gauge("metric"), dias::precondition_error);
  EXPECT_THROW(reg.histogram("metric", 0.0, 1.0, 2), dias::precondition_error);
  reg.gauge("other");
  EXPECT_THROW(reg.counter("other"), dias::precondition_error);
}

TEST(RegistryTest, ConcurrentCounterIncrementsAreExact) {
  Registry reg;
  auto& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, SnapshotWhileRecording) {
  Registry reg;
  auto& c = reg.counter("c");
  auto& h = reg.histogram("h", 0.0, 1.0, 8);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) {
      c.add();
      h.observe(0.5);
    }
  });
  // Concurrent registration + snapshots must be safe and monotone.
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    reg.gauge("g" + std::to_string(i % 10)).set(i);
    const auto snap = reg.snapshot();
    ASSERT_FALSE(snap.counters.empty());
    EXPECT_GE(snap.counters.front().value, last);
    last = snap.counters.front().value;
  }
  stop.store(true);
  writer.join();
  const auto final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counters.front().value, c.value());
  EXPECT_EQ(final_snap.histograms.front().stats.count, h.stats().count);
}

TEST(RegistryTest, SnapshotJsonShape) {
  Registry reg;
  reg.counter("runs").add(2);
  reg.gauge("level").set(7.25);
  reg.histogram("lat", 0.0, 1.0, 4).observe(0.25);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"level\":7.25"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// --- json writer ------------------------------------------------------------

TEST(JsonWriterTest, EscapesAndNesting) {
  JsonWriter w;
  w.begin_object();
  w.field("s", "a\"b\\c\n");
  w.key("arr");
  w.begin_array();
  w.value(std::uint64_t{1});
  w.value(2.5);
  w.value(true);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.field("x", std::int64_t{-3});
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[1,2.5,true],\"nested\":{\"x\":-3}}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.field("inf", std::numeric_limits<double>::infinity());
  w.field("nan", std::numeric_limits<double>::quiet_NaN());
  w.end_object();
  EXPECT_EQ(w.str(), "{\"inf\":null,\"nan\":null}");
}

// --- tracer -----------------------------------------------------------------

TEST(TracerTest, JsonlEventOrderingWithinSpan) {
  Tracer tracer;
  const auto outer = tracer.begin_span("outer", {{"stage", "map"}});
  tracer.event("tick", {{"i", std::uint64_t{1}}});
  const auto inner = tracer.begin_span("inner");
  tracer.end_span(inner);
  tracer.end_span(outer, {{"executed", std::uint64_t{7}}});
  EXPECT_EQ(tracer.event_count(), 5u);

  std::ostringstream os;
  tracer.write_jsonl(os);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream is(os.str());
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  // Recording order is preserved: begin(outer), tick, begin(inner),
  // end(inner), end(outer).
  EXPECT_NE(lines[0].find("\"type\":\"begin\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"stage\":\"map\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"event\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"type\":\"end\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"type\":\"end\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"executed\":7"), std::string::npos);
  // Every line is one JSON object.
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

TEST(TracerTest, EndingUnknownSpanThrows) {
  Tracer tracer;
  EXPECT_THROW(tracer.end_span(42), dias::precondition_error);
  const auto span = tracer.begin_span("s");
  tracer.end_span(span);
  EXPECT_THROW(tracer.end_span(span), dias::precondition_error);
}

TEST(TracerTest, SummaryAggregatesPerName) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    const auto s = tracer.begin_span("stage");
    tracer.end_span(s);
  }
  const auto open = tracer.begin_span("pending");
  (void)open;
  tracer.event("note");
  const std::string summary = tracer.summary_json();
  EXPECT_NE(summary.find("\"stage\""), std::string::npos);
  EXPECT_NE(summary.find("\"count\":3"), std::string::npos);
  EXPECT_NE(summary.find("\"open_spans\":1"), std::string::npos);
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, ConcurrentSpansRemainBalanced) {
  Tracer tracer;
  constexpr int kThreads = 6;
  constexpr int kSpans = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpans; ++i) {
        const auto s =
            tracer.begin_span("worker" + std::to_string(t), {{"i", std::uint64_t(i)}});
        tracer.end_span(s);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(), 2u * kThreads * kSpans);
  const std::string summary = tracer.summary_json();
  EXPECT_NE(summary.find("\"open_spans\":0"), std::string::npos);
}

// --- thread pool metrics ----------------------------------------------------

TEST(ObsIntegrationTest, ThreadPoolMetricsCountTasks) {
  Registry reg;
  engine::ThreadPool pool(3);
  pool.attach_metrics(reg, "pool");
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(reg.counter("pool.tasks_submitted").value(), 50u);
  EXPECT_EQ(reg.counter("pool.tasks_completed").value(), 50u);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.workers").value(), 3.0);
}

// --- sharded counter (ISSUE 9) ---------------------------------------------

TEST(ShardedCounterTest, FoldsAcrossShards) {
  ShardedCounter c(4);
  EXPECT_EQ(c.shards(), 4u);
  c.add(0, 5);
  c.add(1);
  c.add(3, 10);
  EXPECT_EQ(c.shard_value(0), 5u);
  EXPECT_EQ(c.shard_value(1), 1u);
  EXPECT_EQ(c.shard_value(2), 0u);
  EXPECT_EQ(c.value(), 16u);
}

TEST(ShardedCounterTest, OutOfRangeShardWrapsInsteadOfCorrupting) {
  ShardedCounter c(3);
  c.add(7, 2);  // 7 % 3 == 1
  EXPECT_EQ(c.shard_value(1), 2u);
  EXPECT_EQ(c.value(), 2u);
  ShardedCounter zero(0);  // degenerate: clamps to one shard
  zero.add(42);
  EXPECT_EQ(zero.value(), 1u);
}

TEST(ShardedCounterTest, ConcurrentAddsAreExact) {
  ShardedCounter c(8);
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < kAdds; ++i) c.add(static_cast<std::size_t>(t));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(RegistryTest, ShardedCounterFoldsIntoSnapshot) {
  Registry reg;
  ShardedCounter& c = reg.sharded_counter("pool.executed", 4);
  c.add(0, 7);
  c.add(2, 3);
  reg.counter("plain").add(1);
  EXPECT_EQ(reg.find_sharded_counter("pool.executed"), &c);
  EXPECT_EQ(reg.find_sharded_counter("missing"), nullptr);
  const auto snap = reg.snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "pool.executed") {
      found = true;
      EXPECT_EQ(value, 10u);
    }
  }
  EXPECT_TRUE(found);
  // Snapshot counters stay name-sorted with the folded entries merged in.
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LE(snap.counters[i - 1].name, snap.counters[i].name);
  }
  // Name collisions across kinds still throw.
  EXPECT_THROW(reg.counter("pool.executed"), dias::precondition_error);
  EXPECT_THROW(reg.sharded_counter("plain", 2), dias::precondition_error);
}

// Attaching the registry in the middle of a submit/wave storm must be
// race-safe AND exact-after-quiesce: the pool re-bases and publishes its
// full internal totals, so the old attach-before-submit footgun is gone.
TEST(ObsIntegrationTest, AttachMetricsMidStormIsExactAfterQuiesce) {
  Registry reg;
  engine::ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::atomic<bool> stop{false};
  std::thread submitter([&] {
    while (!stop.load()) {
      pool.submit([&ran] { ++ran; }).get();
    }
  });
  std::thread indexer([&] {
    while (!stop.load()) {
      pool.run_indexed(16, [&ran](std::size_t) { ++ran; });
    }
  });
  // Let the storm run un-attached, then attach mid-flight.
  while (ran.load() < 500) std::this_thread::yield();
  pool.attach_metrics(reg, "pool");
  while (ran.load() < 1500) std::this_thread::yield();
  stop = true;
  submitter.join();
  indexer.join();
  // Quiesced: every published count matches the pool's internal truth.
  EXPECT_EQ(reg.counter("pool.tasks_completed").value(),
            static_cast<std::uint64_t>(ran.load()));
  EXPECT_EQ(reg.counter("pool.tasks_completed").value(), pool.tasks_executed());
  EXPECT_EQ(reg.counter("pool.tasks_submitted").value(),
            reg.counter("pool.tasks_completed").value());
  EXPECT_GT(reg.counter("pool.waves").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.queue_depth").value(), 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.busy_workers").value(), 0.0);
  // Re-attaching must not double-count history.
  pool.attach_metrics(reg, "pool");
  EXPECT_EQ(reg.counter("pool.tasks_completed").value(), pool.tasks_executed());
}

// --- engine integration -----------------------------------------------------

engine::Engine::Options engine_opts(double drop = 0.0) {
  engine::Engine::Options o;
  o.workers = 4;
  o.seed = 42;
  o.drop_ratio = drop;
  return o;
}

std::vector<int> iota_vec(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = i;
  return v;
}

// Runs one droppable map stage and returns the registry + tracer contents.
struct EngineRun {
  std::uint64_t executed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t stages = 0;
  std::size_t events = 0;
};

EngineRun run_instrumented_engine(std::uint64_t seed, double theta) {
  Registry reg;
  Tracer tracer;
  auto opts = engine_opts(theta);
  opts.seed = seed;
  engine::Engine eng(opts);
  eng.attach_observability(&reg, &tracer);
  const auto ds = eng.parallelize(iota_vec(1000), 20);
  engine::StageOptions so;
  so.name = "obs-map";
  so.droppable = true;
  eng.map_partitions(
      ds, [](const std::vector<int>& part) { return std::vector<int>{(int)part.size()}; },
      so);
  EngineRun run;
  run.executed = reg.counter("engine.tasks_executed").value();
  run.dropped = reg.counter("engine.tasks_dropped").value();
  run.stages = reg.counter("engine.stages").value();
  run.events = tracer.event_count();
  return run;
}

TEST(ObsIntegrationTest, EngineMetricsMatchStageLog) {
  Registry reg;
  Tracer tracer;
  engine::Engine eng(engine_opts(0.25));
  eng.attach_observability(&reg, &tracer);
  const auto ds = eng.parallelize(iota_vec(1000), 20);
  engine::StageOptions so;
  so.name = "obs-map";
  so.droppable = true;
  eng.map_partitions(
      ds, [](const std::vector<int>& part) { return std::vector<int>{(int)part.size()}; },
      so);
  ASSERT_EQ(eng.stage_log().size(), 1u);
  const auto& info = eng.stage_log().front();
  EXPECT_EQ(reg.counter("engine.stages").value(), 1u);
  EXPECT_EQ(reg.counter("engine.tasks_executed").value(), info.executed_partitions);
  EXPECT_EQ(reg.counter("engine.tasks_dropped").value(),
            info.total_partitions - info.executed_partitions);
  const auto task_stats = reg.histogram("engine.task_time_s", 0.0, 10.0, 200).stats();
  EXPECT_EQ(task_stats.count, info.executed_partitions);
  // One begin + one end span for the stage.
  EXPECT_EQ(tracer.event_count(), 2u);
  std::ostringstream os;
  tracer.write_jsonl(os);
  const std::string jsonl = os.str();
  EXPECT_NE(jsonl.find("\"name\":\"engine.stage\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"stage\":\"obs-map\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"theta\":0.25"), std::string::npos);
  EXPECT_NE(jsonl.find("\"effective_theta\""), std::string::npos);
}

TEST(ObsIntegrationTest, EngineMetricsDeterministicUnderFixedSeed) {
  const auto a = run_instrumented_engine(7, 0.3);
  const auto b = run_instrumented_engine(7, 0.3);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.stages, b.stages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.executed + a.dropped, 20u);
  EXPECT_EQ(a.dropped, 6u);  // ceil(20 * 0.7) = 14 kept
}

// Seqlock regression (ISSUE 8): a histogram snapshot racing observe() used
// to be able to read a torn (count, mean, m2) tuple — e.g. the new count
// with the old sum — visible as impossible aggregate values. With the
// optimistic retry read, every snapshot must be internally consistent: we
// hammer one histogram from writer threads that only ever record values
// from {0, 10} while reader threads continuously snapshot and check the
// invariants any *consistent* prefix of that stream satisfies.
TEST(RegistryTest, ConcurrentHistogramSnapshotsAreConsistent) {
  Registry registry;
  auto& hist = registry.histogram("stress.h", 0.0, 10.0, 20);

  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&hist, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        hist.observe((i + static_cast<std::uint64_t>(w)) % 2 == 0 ? 0.0 : 10.0);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&hist, &stop, &torn] {
      std::size_t last_count = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto s = hist.stats();
        if (s.count == 0) continue;
        // Counts only grow.
        if (s.count < last_count) torn.fetch_add(1);
        last_count = s.count;
        // Every observation is 0 or 10, so any consistent prefix has
        // bounds inside {0, 10} and an integral sum (mean * count must be
        // a multiple of 10, the torn-pair smoking gun).
        if (!(s.min == 0.0 || s.min == 10.0)) torn.fetch_add(1);
        if (!(s.max == 0.0 || s.max == 10.0)) torn.fetch_add(1);
        const double sum = s.mean * static_cast<double>(s.count);
        const double remainder = std::fmod(sum + 0.5, 10.0);
        if (std::abs(remainder - 0.5) > 1e-6 * (1.0 + sum)) torn.fetch_add(1);
        if (s.mean < 0.0 || s.mean > 10.0) torn.fetch_add(1);
        if (s.p50 < 0.0 || s.p50 > 10.0) torn.fetch_add(1);
        if (s.p99 < 0.0 || s.p99 > 10.0) torn.fetch_add(1);
        // Registry-level snapshots exercise the same read path.
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);

  // Quiescent totals are exact: the seqlock write path loses nothing.
  const auto s = hist.stats();
  EXPECT_EQ(s.count, kWriters * kPerWriter);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 10.0);
  EXPECT_NEAR(s.mean, 5.0, 1e-9);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].stats.count, kWriters * kPerWriter);
}

TEST(ObsIntegrationTest, DetachedEngineRecordsNothing) {
  engine::Engine eng(engine_opts(0.0));
  // No attach_observability call: stages must run exactly as before.
  const auto ds = eng.parallelize(iota_vec(100), 4);
  eng.map_partitions(
      ds, [](const std::vector<int>& part) { return std::vector<int>{(int)part.size()}; });
  EXPECT_EQ(eng.stage_log().size(), 1u);
  EXPECT_EQ(eng.stage_log().front().executed_partitions, 4u);
}

}  // namespace
}  // namespace dias::obs
