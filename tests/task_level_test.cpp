#include "model/task_level_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace dias::model {
namespace {

std::vector<double> point_pmf(int tasks) {
  std::vector<double> pmf(static_cast<std::size_t>(tasks), 0.0);
  pmf.back() = 1.0;
  return pmf;
}

// Expected makespan of t iid Exp(mu) tasks on c slots in the Markovian
// death-chain model: sum over the departure sequence of 1/(min(k,c) mu).
double markov_stage_mean(int t, int c, double mu) {
  double acc = 0.0;
  for (int k = t; k >= 1; --k) acc += 1.0 / (std::min(k, c) * mu);
  return acc;
}

TEST(EffectiveTasksTest, CeilingArithmetic) {
  EXPECT_EQ(effective_tasks(10, 0.0), 10);
  EXPECT_EQ(effective_tasks(10, 0.1), 9);
  EXPECT_EQ(effective_tasks(10, 0.15), 9);   // ceil(8.5)
  EXPECT_EQ(effective_tasks(10, 0.2), 8);
  EXPECT_EQ(effective_tasks(50, 0.1), 45);
  EXPECT_EQ(effective_tasks(50, 0.01), 50);  // ceil(49.5)
  EXPECT_EQ(effective_tasks(1, 0.9), 1);     // ceil(0.1)
  EXPECT_EQ(effective_tasks(10, 1.0), 0);
  EXPECT_EQ(effective_tasks(0, 0.5), 0);
}

TEST(EffectiveTasksTest, Preconditions) {
  EXPECT_THROW(effective_tasks(-1, 0.0), dias::precondition_error);
  EXPECT_THROW(effective_tasks(1, -0.1), dias::precondition_error);
  EXPECT_THROW(effective_tasks(1, 1.1), dias::precondition_error);
}

TaskLevelParams base_params() {
  TaskLevelParams p;
  p.slots = 4;
  p.map_task_pmf = point_pmf(10);
  p.reduce_task_pmf = point_pmf(3);
  p.setup_rate = 0.5;    // mean 2s
  p.map_rate = 1.0;      // mean 1s per task
  p.shuffle_rate = 2.0;  // mean 0.5s
  p.reduce_rate = 0.5;   // mean 2s per task
  return p;
}

TEST(TaskLevelModelTest, MeanMatchesStageDecomposition) {
  const auto p = base_params();
  const TaskLevelModel model(p);
  const double expected = 1.0 / p.setup_rate + markov_stage_mean(10, 4, p.map_rate) +
                          1.0 / p.shuffle_rate + markov_stage_mean(3, 4, p.reduce_rate);
  EXPECT_NEAR(model.mean_processing_time(), expected, 1e-9);
}

TEST(TaskLevelModelTest, SingleTaskSingleSlot) {
  TaskLevelParams p;
  p.slots = 1;
  p.map_task_pmf = point_pmf(1);
  p.reduce_task_pmf = point_pmf(1);
  p.setup_rate = 1.0;
  p.map_rate = 2.0;
  p.shuffle_rate = 4.0;
  p.reduce_rate = 1.0;
  const TaskLevelModel model(p);
  EXPECT_NEAR(model.mean_processing_time(), 1.0 + 0.5 + 0.25 + 1.0, 1e-12);
}

TEST(TaskLevelModelTest, DropReducesTasksAndMean) {
  auto p = base_params();
  const TaskLevelModel exact(p);
  p.theta_map = 0.4;  // 10 -> 6 tasks
  const TaskLevelModel dropped(p);
  const double expected = 1.0 / p.setup_rate + markov_stage_mean(6, 4, p.map_rate) +
                          1.0 / p.shuffle_rate + markov_stage_mean(3, 4, p.reduce_rate);
  EXPECT_NEAR(dropped.mean_processing_time(), expected, 1e-9);
  EXPECT_LT(dropped.mean_processing_time(), exact.mean_processing_time());
}

TEST(TaskLevelModelTest, ReduceDropApplies) {
  auto p = base_params();
  p.reduce_task_pmf = point_pmf(10);
  p.theta_reduce = 0.5;  // 10 -> 5
  const TaskLevelModel model(p);
  const double expected = 1.0 / p.setup_rate + markov_stage_mean(10, 4, p.map_rate) +
                          1.0 / p.shuffle_rate + markov_stage_mean(5, 4, p.reduce_rate);
  EXPECT_NEAR(model.mean_processing_time(), expected, 1e-9);
}

TEST(TaskLevelModelTest, FullMapDropSkipsStage) {
  auto p = base_params();
  p.theta_map = 1.0;
  const TaskLevelModel model(p);
  const double expected = 1.0 / p.setup_rate + 1.0 / p.shuffle_rate +
                          markov_stage_mean(3, 4, p.reduce_rate);
  EXPECT_NEAR(model.mean_processing_time(), expected, 1e-9);
  EXPECT_NEAR(model.effective_map_pmf()[0], 1.0, 1e-12);
}

TEST(TaskLevelModelTest, RandomTaskCountMixes) {
  auto p = base_params();
  // 50/50 between 4 and 8 map tasks.
  p.map_task_pmf.assign(8, 0.0);
  p.map_task_pmf[3] = 0.5;
  p.map_task_pmf[7] = 0.5;
  const TaskLevelModel model(p);
  const double m4 = markov_stage_mean(4, 4, p.map_rate);
  const double m8 = markov_stage_mean(8, 4, p.map_rate);
  const double expected = 1.0 / p.setup_rate + 0.5 * (m4 + m8) + 1.0 / p.shuffle_rate +
                          markov_stage_mean(3, 4, p.reduce_rate);
  EXPECT_NEAR(model.mean_processing_time(), expected, 1e-9);
}

TEST(TaskLevelModelTest, SetupScaleInflatesOverhead) {
  auto p = base_params();
  const TaskLevelModel base(p);
  p.setup_scale = 2.0;
  const TaskLevelModel scaled(p);
  EXPECT_NEAR(scaled.mean_processing_time() - base.mean_processing_time(),
              1.0 / p.setup_rate, 1e-9);
}

TEST(TaskLevelModelTest, EffectivePmfAggregatesCeil) {
  auto p = base_params();
  // Tasks uniform over {1..4}, theta = 0.5 -> effective {1,1,2,2}.
  p.map_task_pmf = {0.25, 0.25, 0.25, 0.25};
  p.theta_map = 0.5;
  const TaskLevelModel model(p);
  const auto& eff = model.effective_map_pmf();
  ASSERT_EQ(eff.size(), 3u);  // indices 0..2
  EXPECT_NEAR(eff[0], 0.0, 1e-12);
  EXPECT_NEAR(eff[1], 0.5, 1e-12);
  EXPECT_NEAR(eff[2], 0.5, 1e-12);
}

TEST(TaskLevelModelTest, PmfValidation) {
  auto p = base_params();
  p.map_task_pmf = {0.5, 0.4};  // sums to 0.9
  EXPECT_THROW(TaskLevelModel{p}, dias::precondition_error);
  p = base_params();
  p.map_task_pmf.clear();
  EXPECT_THROW(TaskLevelModel{p}, dias::precondition_error);
  p = base_params();
  p.slots = 0;
  EXPECT_THROW(TaskLevelModel{p}, dias::precondition_error);
  p = base_params();
  p.map_rate = 0.0;
  EXPECT_THROW(TaskLevelModel{p}, dias::precondition_error);
}

class DropMonotonicityTest : public ::testing::TestWithParam<int> {};

TEST_P(DropMonotonicityTest, MeanNonIncreasingInTheta) {
  // Property: for random configurations, the mean processing time is
  // non-increasing in the drop ratio.
  dias::Rng rng(static_cast<std::uint64_t>(GetParam()));
  TaskLevelParams p;
  p.slots = 1 + static_cast<int>(rng.uniform_int(8));
  p.map_task_pmf = point_pmf(1 + static_cast<int>(rng.uniform_int(40)));
  p.reduce_task_pmf = point_pmf(1 + static_cast<int>(rng.uniform_int(10)));
  p.setup_rate = rng.uniform(0.2, 2.0);
  p.map_rate = rng.uniform(0.2, 2.0);
  p.shuffle_rate = rng.uniform(0.2, 2.0);
  p.reduce_rate = rng.uniform(0.2, 2.0);
  double prev = std::numeric_limits<double>::infinity();
  for (double theta : {0.0, 0.1, 0.2, 0.4, 0.6, 0.8}) {
    p.theta_map = theta;
    p.theta_reduce = theta;
    const double mean = TaskLevelModel(p).mean_processing_time();
    EXPECT_LE(mean, prev + 1e-9) << "theta=" << theta;
    prev = mean;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DropMonotonicityTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace dias::model
