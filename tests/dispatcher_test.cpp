#include "core/dispatcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::core {
namespace {

using namespace std::chrono_literals;

TEST(DispatcherTest, RunsSubmittedJobs) {
  DiasDispatcher dispatcher({0.2, 0.0});
  EXPECT_EQ(dispatcher.priorities(), 2u);
  std::atomic<int> runs{0};
  for (int i = 0; i < 10; ++i) {
    dispatcher.submit(static_cast<std::size_t>(i % 2), [&](double) { ++runs; });
  }
  const auto records = dispatcher.drain();
  EXPECT_EQ(runs.load(), 10);
  EXPECT_EQ(records.size(), 10u);
}

TEST(DispatcherTest, PassesClassTheta) {
  DiasDispatcher dispatcher({0.3, 0.0});
  std::mutex mutex;
  std::vector<std::pair<std::size_t, double>> seen;
  dispatcher.submit(0, [&](double theta) {
    std::lock_guard lock(mutex);
    seen.emplace_back(0, theta);
  });
  dispatcher.submit(1, [&](double theta) {
    std::lock_guard lock(mutex);
    seen.emplace_back(1, theta);
  });
  dispatcher.drain();
  ASSERT_EQ(seen.size(), 2u);
  for (const auto& [cls, theta] : seen) {
    EXPECT_DOUBLE_EQ(theta, cls == 0 ? 0.3 : 0.0);
  }
}

TEST(DispatcherTest, HighPriorityJumpsQueue) {
  DiasDispatcher dispatcher({0.0, 0.0});
  std::mutex mutex;
  std::vector<int> order;
  // A long job occupies the engine; then a low and a high job queue up.
  dispatcher.submit(0, [&](double) {
    std::this_thread::sleep_for(80ms);
    std::lock_guard lock(mutex);
    order.push_back(0);
  });
  std::this_thread::sleep_for(10ms);  // let the first job start
  dispatcher.submit(0, [&](double) {
    std::lock_guard lock(mutex);
    order.push_back(1);
  });
  dispatcher.submit(1, [&](double) {
    std::lock_guard lock(mutex);
    order.push_back(2);
  });
  dispatcher.drain();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2) << "high-priority job must run before the queued low one";
  EXPECT_EQ(order[2], 1);
}

TEST(DispatcherTest, FcfsWithinClass) {
  DiasDispatcher dispatcher({0.0});
  std::mutex mutex;
  std::vector<int> order;
  dispatcher.submit(0, [&](double) { std::this_thread::sleep_for(30ms); });
  std::this_thread::sleep_for(5ms);
  for (int i = 0; i < 5; ++i) {
    dispatcher.submit(0, [&, i](double) {
      std::lock_guard lock(mutex);
      order.push_back(i);
    });
  }
  dispatcher.drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DispatcherTest, RecordsTimestamps) {
  DiasDispatcher dispatcher({0.0});
  dispatcher.submit(0, [](double) { std::this_thread::sleep_for(20ms); });
  dispatcher.submit(0, [](double) { std::this_thread::sleep_for(5ms); });
  const auto records = dispatcher.drain();
  ASSERT_EQ(records.size(), 2u);
  for (const auto& r : records) {
    EXPECT_GE(r.start_s, r.arrival_s);
    EXPECT_GE(r.completion_s, r.start_s);
    EXPECT_NEAR(r.response_s(), r.queueing_s() + r.execution_s(), 1e-9);
  }
  // The second job queued behind the first.
  const auto& second = records[1].arrival_s > records[0].arrival_s ? records[1] : records[0];
  EXPECT_GT(second.queueing_s(), 0.0);
}

TEST(DispatcherTest, DrainIsReusable) {
  DiasDispatcher dispatcher({0.0});
  dispatcher.submit(0, [](double) {});
  EXPECT_EQ(dispatcher.drain().size(), 1u);
  dispatcher.submit(0, [](double) {});
  dispatcher.submit(0, [](double) {});
  EXPECT_EQ(dispatcher.drain().size(), 2u);
}

TEST(DispatcherTest, ObservabilityCountsPerClassCompletions) {
  obs::Registry reg;
  obs::Tracer tracer;
  DiasDispatcher dispatcher({0.2, 0.0});
  dispatcher.attach_observability(&reg, &tracer);
  for (int i = 0; i < 6; ++i) {
    dispatcher.submit(static_cast<std::size_t>(i % 2), [](double) {});
  }
  EXPECT_EQ(dispatcher.drain().size(), 6u);
  EXPECT_EQ(reg.counter("dispatcher.class0.completed").value(), 3u);
  EXPECT_EQ(reg.counter("dispatcher.class1.completed").value(), 3u);
  EXPECT_DOUBLE_EQ(reg.gauge("dispatcher.class0.theta").value(), 0.2);
  const auto resp = reg.histogram("dispatcher.response_s", 0.0, 600.0, 240).stats();
  EXPECT_EQ(resp.count, 6u);
  // One begin/end span per dispatched job.
  EXPECT_EQ(tracer.event_count(), 12u);
}

TEST(DispatcherTest, Validation) {
  EXPECT_THROW(DiasDispatcher({}), dias::precondition_error);
  EXPECT_THROW(DiasDispatcher({1.5}), dias::precondition_error);
  EXPECT_THROW(DiasDispatcher({-0.1}), dias::precondition_error);
  // theta == 1.0 (drop everything) is allowed, consistent with the engine.
  DiasDispatcher all_drop({1.0});
  DiasDispatcher dispatcher({0.0});
  EXPECT_THROW(dispatcher.submit(1, [](double) {}), dias::precondition_error);
  EXPECT_THROW(dispatcher.submit(0, DiasDispatcher::JobFn{}), dias::precondition_error);
}

}  // namespace
}  // namespace dias::core
