// Property tests for the two-phase shuffle (engine/shuffle.hpp +
// Engine::combine_by_key): for randomized, seeded key/value sets across
// skew levels, partition counts and combine on/off, the shuffle must be
// result-equivalent (as a sorted multiset) to a single-threaded reference
// reduce — including under fault injection and theta > 0 on the reduce
// side — must be bitwise deterministic run-to-run, and must never take a
// mutex on the write path while running on the engine's own pool.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dias::engine {
namespace {

using KV = std::pair<std::uint64_t, std::int64_t>;

// Seeded workload generator. `skew` = 0 draws keys uniformly from
// [0, key_space); higher skew concentrates mass on low keys (power-law),
// the distribution that serialized the old per-bucket-mutex shuffle.
std::vector<KV> make_records(std::uint64_t seed, std::size_t n, std::uint64_t key_space,
                             double skew) {
  Rng rng(seed);
  std::vector<KV> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    const auto key = static_cast<std::uint64_t>(
        static_cast<double>(key_space - 1) * std::pow(u, 1.0 + skew));
    out.emplace_back(key, static_cast<std::int64_t>(rng.uniform_int(1000)) - 500);
  }
  return out;
}

// Single-threaded reference reduce (sum), sorted by key.
std::vector<KV> reference_sums(const std::vector<KV>& records) {
  std::map<std::uint64_t, std::int64_t> acc;
  for (const auto& [k, v] : records) acc[k] += v;
  return {acc.begin(), acc.end()};
}

std::vector<KV> sorted_collect(const Dataset<KV>& ds) {
  auto all = ds.collect();
  std::sort(all.begin(), all.end());
  return all;
}

Engine::Options engine_opts(std::uint64_t seed, double drop = 0.0) {
  Engine::Options o;
  o.workers = 4;
  o.seed = seed;
  o.drop_ratio = drop;
  return o;
}

// The reduce stage of a shuffle is the last stage logged; its executed ids
// tell us which buckets survived theta on the reduce side.
std::set<std::size_t> executed_buckets(const Engine& eng) {
  const auto& stage = eng.stage_log().back();
  EXPECT_EQ(stage.kind, EngineStageKind::kReduce);
  return {stage.executed_partition_ids.begin(), stage.executed_partition_ids.end()};
}

TEST(ShufflePropertyTest, EquivalentToReferenceAcrossConfigurations) {
  const double skews[] = {0.0, 2.0, 6.0};
  const std::size_t in_parts[] = {1, 3, 8};
  const std::size_t out_parts[] = {1, 4, 9};
  std::uint64_t seed = 1000;
  for (const double skew : skews) {
    for (const std::size_t in_p : in_parts) {
      for (const std::size_t out_p : out_parts) {
        for (const bool combine : {true, false}) {
          SCOPED_TRACE(testing::Message() << "skew=" << skew << " in=" << in_p
                                          << " out=" << out_p << " combine=" << combine);
          const auto records = make_records(++seed, 4000, 257, skew);
          const auto expected = reference_sums(records);
          Engine eng(engine_opts(seed));
          const auto ds = eng.parallelize(records, in_p);
          ShuffleOptions shuffle;
          shuffle.combine = combine;
          const auto reduced = eng.reduce_by_key(
              ds, [](std::int64_t a, std::int64_t b) { return a + b; }, out_p, {},
              shuffle);
          EXPECT_EQ(sorted_collect(reduced), expected);
        }
      }
    }
  }
}

TEST(ShufflePropertyTest, TinyCombinerBudgetForcesFlushesAndStaysCorrect) {
  const auto records = make_records(7, 20000, 401, 1.5);
  const auto expected = reference_sums(records);
  Engine eng(engine_opts(7));
  const auto ds = eng.parallelize(records, 6);
  ShuffleOptions shuffle;
  shuffle.combine = true;
  shuffle.target_buffer_bytes = 256;  // absurdly small: flush constantly
  eng.clear_stage_log();
  const auto reduced = eng.reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 5, {}, shuffle);
  EXPECT_EQ(sorted_collect(reduced), expected);
  ASSERT_EQ(eng.stage_log().size(), 2u);
  const auto& write = eng.stage_log()[0];
  EXPECT_GT(write.shuffle_flushes, 0u);
  EXPECT_EQ(write.shuffle_records_in, 20000u);
}

TEST(ShufflePropertyTest, ThetaOnReduceSideDropsWholeBuckets) {
  for (const double theta : {0.3, 0.7, 1.0}) {
    for (const bool combine : {true, false}) {
      SCOPED_TRACE(testing::Message() << "theta=" << theta << " combine=" << combine);
      const auto records = make_records(42, 5000, 199, 1.0);
      Engine eng(engine_opts(42));
      const auto ds = eng.parallelize(records, 5);
      constexpr std::size_t kOut = 8;
      StageOptions opts;
      opts.droppable = true;
      opts.drop_ratio_override = theta;
      ShuffleOptions shuffle;
      shuffle.combine = combine;
      eng.clear_stage_log();
      const auto reduced = eng.reduce_by_key(
          ds, [](std::int64_t a, std::int64_t b) { return a + b; }, kOut, opts, shuffle);
      const auto survivors = executed_buckets(eng);
      // Dropped buckets contribute nothing; surviving buckets are exact.
      std::vector<KV> expected;
      for (const auto& kv : reference_sums(records)) {
        if (survivors.count(std::hash<std::uint64_t>{}(kv.first) % kOut) != 0) {
          expected.push_back(kv);
        }
      }
      EXPECT_EQ(sorted_collect(reduced), expected);
      const auto expected_buckets = static_cast<std::size_t>(
          std::ceil(static_cast<double>(kOut) * (1.0 - theta) - 1e-12));
      EXPECT_EQ(survivors.size(), expected_buckets);
    }
  }
}

TEST(ShufflePropertyTest, EquivalentUnderFaultInjection) {
  const auto records = make_records(11, 6000, 307, 2.0);
  const auto expected = reference_sums(records);
  for (const bool combine : {true, false}) {
    SCOPED_TRACE(testing::Message() << "combine=" << combine);
    Engine::Options o = engine_opts(11);
    o.fault.injection.fail_prob = 0.25;
    o.fault.injection.seed = 99;
    o.fault.max_attempts = 8;  // ample budget: exhaustion would be fatal here
    Engine eng(o);
    const auto ds = eng.parallelize(records, 7);
    ShuffleOptions shuffle;
    shuffle.combine = combine;
    eng.clear_stage_log();
    const auto reduced = eng.reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 6, {}, shuffle);
    EXPECT_EQ(sorted_collect(reduced), expected);
    // The injector really fired: retries happened on the shuffle stages.
    std::size_t retries = 0;
    for (const auto& s : eng.stage_log()) retries += s.retries;
    EXPECT_GT(retries, 0u);
  }
}

TEST(ShufflePropertyTest, GroupByKeyMatchesReferenceGrouping) {
  const auto records = make_records(23, 3000, 97, 1.0);
  std::map<std::uint64_t, std::vector<std::int64_t>> expected;
  for (const auto& [k, v] : records) expected[k].push_back(v);
  for (auto& [k, vs] : expected) std::sort(vs.begin(), vs.end());

  Engine eng(engine_opts(23));
  const auto ds = eng.parallelize(records, 5);
  const auto grouped = eng.group_by_key(ds, 4);
  std::map<std::uint64_t, std::vector<std::int64_t>> actual;
  for (auto& [k, vs] : grouped.collect()) {
    auto sorted = vs;
    std::sort(sorted.begin(), sorted.end());
    const bool inserted = actual.emplace(k, std::move(sorted)).second;
    EXPECT_TRUE(inserted) << "key " << k << " appears in two buckets";
  }
  EXPECT_EQ(actual, expected);
}

// The merge phase visits segments in (source partition, flush) order, so
// even floating-point reductions are bitwise reproducible for a fixed
// seed, regardless of thread scheduling.
TEST(ShufflePropertyTest, FloatingPointReductionIsBitwiseDeterministic) {
  const auto ints = make_records(31, 8000, 149, 3.0);
  std::vector<std::pair<std::uint64_t, double>> records;
  records.reserve(ints.size());
  for (const auto& [k, v] : ints) {
    records.emplace_back(k, static_cast<double>(v) * 1.0e-3 + 0.1);
  }
  auto run = [&](ShuffleOptions shuffle) {
    Engine eng(engine_opts(31));
    const auto ds = eng.parallelize(records, 6);
    const auto reduced =
        eng.reduce_by_key(ds, [](double a, double b) { return a + b; }, 5, {}, shuffle);
    std::vector<std::vector<std::pair<std::uint64_t, double>>> parts;
    for (std::size_t p = 0; p < reduced.partitions(); ++p) {
      parts.push_back(reduced.partition(p));
    }
    return parts;
  };
  for (const bool combine : {true, false}) {
    ShuffleOptions shuffle;
    shuffle.combine = combine;
    shuffle.target_buffer_bytes = 4096;  // several flushes per task
    const auto first = run(shuffle);
    const auto second = run(shuffle);
    // Exact equality, order included: the output is a pure function of the
    // input and the engine seed.
    EXPECT_EQ(first, second) << "combine=" << combine;
  }
}

TEST(ShufflePropertyTest, CombiningShrinksShuffledRecordsAndLogsStats) {
  // 40 distinct keys over 30k records: combining should collapse almost
  // everything on the map side.
  const auto records = make_records(57, 30000, 40, 0.0);
  Engine eng(engine_opts(57));
  obs::Registry registry;
  obs::Tracer tracer;
  eng.attach_observability(&registry, &tracer);
  const auto ds = eng.parallelize(records, 4);
  eng.clear_stage_log();
  eng.reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 4);
  ASSERT_EQ(eng.stage_log().size(), 2u);
  const auto& write = eng.stage_log()[0];
  const auto& merge = eng.stage_log()[1];
  EXPECT_EQ(write.shuffle_records_in, 30000u);
  EXPECT_LE(write.shuffle_records_out, 4u * 40u);  // <= keys x map tasks
  EXPECT_GT(write.shuffle_records_out, 0u);
  EXPECT_GT(write.shuffle_bytes, 0u);
  EXPECT_EQ(merge.shuffle_records_in, write.shuffle_records_out);
  // Metrics mirror the stage log; the tracer carries both sub-stage events.
  EXPECT_EQ(registry.counter("engine.shuffle.records_in").value(), 30000u);
  EXPECT_EQ(registry.counter("engine.shuffle.records_out").value(),
            write.shuffle_records_out);
  EXPECT_EQ(registry.histogram("engine.shuffle.combine_ratio", 0.0, 1.0, 50)
                .stats()
                .count,
            1u);
  std::ostringstream jsonl;
  tracer.write_jsonl(jsonl);
  const std::string events = jsonl.str();
  EXPECT_NE(events.find("engine.shuffle.write"), std::string::npos);
  EXPECT_NE(events.find("engine.shuffle.merge"), std::string::npos);
  eng.attach_observability(nullptr, nullptr);
}

// Regression for the per-element locking bug class: the shuffle write path
// must not acquire any mutex when stage bodies run on the engine's own
// pool (the only locked lane is the overflow fallback for foreign
// threads, and it counts every acquisition).
TEST(ShuffleWritePathTest, ZeroMutexAcquisitionsOnPoolThreads) {
  detail::shuffle_fallback_locks().store(0);
  const auto records = make_records(71, 10000, 123, 2.0);
  Engine eng(engine_opts(71));
  const auto ds = eng.parallelize(records, 8);
  for (const bool combine : {true, false}) {
    ShuffleOptions shuffle;
    shuffle.combine = combine;
    shuffle.target_buffer_bytes = 1024;
    eng.reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 7, {},
                      shuffle);
  }
  eng.group_by_key(ds, 5);
  std::vector<std::uint64_t> keys;
  for (const auto& [k, v] : records) keys.push_back(k % 64);
  eng.distinct(eng.parallelize(std::move(keys), 6), 4);
  EXPECT_EQ(detail::shuffle_fallback_locks().load(), 0u);
}

TEST(ShuffleSinkTest, ForeignThreadTakesCountedFallbackLock) {
  detail::ShuffleSink<int, int> sink(2, 3);
  const auto before = detail::shuffle_fallback_locks().load();
  // Slot-less writer (e.g. the driver thread): lands in the overflow lane.
  sink.push(ThreadPool::kNoSlot, 1, {0, 0, {{5, 1}}});
  EXPECT_EQ(detail::shuffle_fallback_locks().load(), before + 1);
  // Slotted writers stay lock-free.
  sink.push(0, 1, {2, 0, {{6, 1}}});
  sink.push(1, 1, {1, 0, {{7, 1}}});
  EXPECT_EQ(detail::shuffle_fallback_locks().load(), before + 1);
  // bucket_segments interleaves overflow and slot segments in src order.
  const auto segments = sink.bucket_segments(1);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0]->src, 0u);
  EXPECT_EQ(segments[1]->src, 1u);
  EXPECT_EQ(segments[2]->src, 2u);
  EXPECT_TRUE(sink.bucket_segments(0).empty());
}

TEST(FlatMapTest, InsertionOrderDedupAndGrowth) {
  detail::FlatMap<std::string, int> map;
  EXPECT_TRUE(map.empty());
  // Enough keys to force several growths.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 100; ++i) {
      bool created = false;
      int& v = map.find_or_emplace("key" + std::to_string(i), [] { return 0; }, &created);
      EXPECT_EQ(created, round == 0) << "i=" << i << " round=" << round;
      ++v;
    }
  }
  ASSERT_EQ(map.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    // Entries come back in first-insertion order with folded values.
    EXPECT_EQ(map.entries()[static_cast<std::size_t>(i)].first,
              "key" + std::to_string(i));
    EXPECT_EQ(map.entries()[static_cast<std::size_t>(i)].second, 3);
  }
  const std::size_t bytes = map.approx_bytes();
  EXPECT_GT(bytes, 100u * sizeof(std::pair<std::string, int>) - 1);
  map.clear();
  EXPECT_TRUE(map.empty());
  bool created = false;
  map.find_or_emplace("key3", [] { return 9; }, &created);
  EXPECT_TRUE(created);  // cleared maps forget their keys but keep capacity
  EXPECT_EQ(map.size(), 1u);
}

// Metamorphic properties (ISSUE 8): transformations of the *configuration*
// or the *input presentation* that provably preserve the reduced relation
// must leave the result unchanged. These are the invariants the adaptive
// planner leans on when it rewrites partition counts or toggles the
// combiner mid-run, so the battery is tagged tsan+asan in CMake.
TEST(ShuffleMetamorphicTest, InvariantUnderInputPermutation) {
  std::uint64_t seed = 5000;
  for (const double skew : {0.0, 3.0}) {
    SCOPED_TRACE(testing::Message() << "skew=" << skew);
    auto records = make_records(++seed, 6000, 211, skew);
    const auto run = [&](const std::vector<KV>& input) {
      Engine eng(engine_opts(seed));
      const auto ds = eng.parallelize(input, 5);
      return sorted_collect(eng.reduce_by_key(
          ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 6));
    };
    const auto baseline = run(records);
    // Seeded Fisher-Yates: same multiset, different presentation order
    // (hence different per-partition slices and combiner fold orders).
    Rng rng(seed * 7 + 1);
    for (std::size_t i = records.size(); i > 1; --i) {
      std::swap(records[i - 1], records[rng.uniform_int(i)]);
    }
    EXPECT_EQ(run(records), baseline);
  }
}

TEST(ShuffleMetamorphicTest, InvariantUnderPartitionCountChanges) {
  const auto records = make_records(6001, 5000, 173, 1.5);
  const auto run = [&](std::size_t in_p, std::size_t out_p) {
    Engine eng(engine_opts(6001));
    const auto ds = eng.parallelize(records, in_p);
    return sorted_collect(eng.reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, out_p));
  };
  const auto baseline = run(4, 4);
  for (const std::size_t in_p : {1, 3, 9}) {
    for (const std::size_t out_p : {1, 5, 16}) {
      SCOPED_TRACE(testing::Message() << "in=" << in_p << " out=" << out_p);
      EXPECT_EQ(run(in_p, out_p), baseline);
    }
  }
}

TEST(ShuffleMetamorphicTest, InvariantUnderCombinerToggleAndBufferSize) {
  const auto records = make_records(6002, 8000, 131, 2.0);
  const auto run = [&](bool combine, std::size_t buffer_bytes) {
    Engine eng(engine_opts(6002));
    const auto ds = eng.parallelize(records, 6);
    ShuffleOptions shuffle;
    shuffle.combine = combine;
    shuffle.target_buffer_bytes = buffer_bytes;
    return sorted_collect(eng.reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 7, {}, shuffle));
  };
  const auto baseline = run(true, 1 << 20);
  for (const bool combine : {true, false}) {
    for (const std::size_t buffer : {std::size_t{512}, std::size_t{16384}}) {
      SCOPED_TRACE(testing::Message() << "combine=" << combine << " buffer=" << buffer);
      EXPECT_EQ(run(combine, buffer), baseline);
    }
  }
}

TEST(ShufflePropertyTest, StringKeysWorkEndToEnd) {
  Rng rng(123);
  std::vector<std::pair<std::string, std::int64_t>> records;
  for (int i = 0; i < 5000; ++i) {
    records.emplace_back("w" + std::to_string(rng.uniform_int(200)), 1);
  }
  std::map<std::string, std::int64_t> expected;
  for (const auto& [k, v] : records) expected[k] += v;

  Engine eng(engine_opts(123));
  const auto ds = eng.parallelize(records, 6);
  const auto reduced =
      eng.reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 5);
  std::map<std::string, std::int64_t> actual;
  for (const auto& [k, v] : reduced.collect()) actual[k] = v;
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace dias::engine
