// Property tests for the memory-elastic shuffle (ISSUE 6 satellite 2):
// randomized budgets x skew x combine x workers must match an in-memory
// oracle exactly; degenerate budgets must fail fast with a clear
// config_error (never deadlock or OOM); and the overflow-lane fallback
// counter must be exported through obs::Registry.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "engine/spill.hpp"
#include "obs/metrics.hpp"

namespace dias::engine {
namespace {

using KV = std::pair<std::uint64_t, std::int64_t>;

// Minimal heap-backed SpillBackend: exercises the engine's spill protocol
// without touching disk, and returns chunks in awkward small pieces so the
// decoder's cursor has to stitch values across chunk boundaries.
class MemorySpill final : public SpillBackend {
 public:
  explicit MemorySpill(std::size_t chunk_bytes = 97) : chunk_bytes_(chunk_bytes) {}

  std::uint64_t write(const std::string& bytes) override {
    std::lock_guard lock(mu_);
    const std::uint64_t id = next_id_++;
    segments_[id] = bytes;
    ++stats_.segments_written;
    stats_.bytes_written += bytes.size();
    return id;
  }

  std::unique_ptr<SpillReader> open(std::uint64_t handle) override {
    std::lock_guard lock(mu_);
    const auto it = segments_.find(handle);
    if (it == segments_.end()) throw error("spill segment not found");
    ++stats_.segments_read;
    stats_.bytes_read += it->second.size();
    return std::make_unique<Reader>(it->second, chunk_bytes_);
  }

  void release(std::uint64_t handle) override {
    std::lock_guard lock(mu_);
    segments_.erase(handle);
  }

  SpillStats stats() const override {
    std::lock_guard lock(mu_);
    return stats_;
  }

  std::size_t live_segments() const {
    std::lock_guard lock(mu_);
    return segments_.size();
  }

 private:
  class Reader final : public SpillReader {
   public:
    Reader(std::string bytes, std::size_t chunk) : bytes_(std::move(bytes)), chunk_(chunk) {}
    bool next(std::string& out) override {
      if (off_ >= bytes_.size()) return false;
      const std::size_t n = std::min(chunk_, bytes_.size() - off_);
      out.assign(bytes_, off_, n);
      off_ += n;
      return true;
    }

   private:
    std::string bytes_;
    std::size_t chunk_;
    std::size_t off_ = 0;
  };

  const std::size_t chunk_bytes_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::unordered_map<std::uint64_t, std::string> segments_;
  SpillStats stats_;
};

std::vector<KV> make_records(std::uint64_t seed, std::size_t n, std::uint64_t key_space,
                             double skew) {
  Rng rng(seed);
  std::vector<KV> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    const auto key = static_cast<std::uint64_t>(
        static_cast<double>(key_space - 1) * std::pow(u, 1.0 + skew));
    out.emplace_back(key, static_cast<std::int64_t>(rng.uniform_int(1000)) - 500);
  }
  return out;
}

std::vector<KV> reference_sums(const std::vector<KV>& records) {
  std::map<std::uint64_t, std::int64_t> acc;
  for (const auto& [k, v] : records) acc[k] += v;
  return {acc.begin(), acc.end()};
}

std::vector<KV> sorted_collect(const Dataset<KV>& ds) {
  auto all = ds.collect();
  std::sort(all.begin(), all.end());
  return all;
}

Engine::Options engine_opts(std::size_t workers, std::uint64_t seed) {
  Engine::Options o;
  o.workers = workers;
  o.seed = seed;
  return o;
}

TEST(ShuffleSpillPropertyTest, RandomBudgetsMatchOracleAcrossSkewAndCombine) {
  Rng rng(2024);
  std::size_t spilled_configs = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const double skew = rng.uniform() * 4.0;
    const bool combine = rng.uniform() < 0.5;
    const std::size_t workers = 1 + rng.uniform_int(8);
    // Every third trial runs unbounded as the in-band control group.
    const std::size_t budget =
        trial % 3 == 0 ? 0 : 512 + rng.uniform_int(64 * 1024 - 512);
    SCOPED_TRACE(testing::Message() << "trial=" << trial << " skew=" << skew
                                    << " combine=" << combine << " workers=" << workers
                                    << " budget=" << budget);
    const auto records =
        make_records(3000 + static_cast<std::uint64_t>(trial), 12000, 509, skew);
    const auto expected = reference_sums(records);

    MemorySpill spill;
    Engine eng(engine_opts(workers, 77));
    eng.set_spill_backend(&spill);
    const auto ds = eng.parallelize(records, 6);
    ShuffleOptions shuffle;
    shuffle.combine = combine;
    shuffle.target_buffer_bytes = 2048;
    shuffle.memory_budget_bytes = budget;
    eng.clear_stage_log();
    const auto reduced = eng.reduce_by_key(
        ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 7, {}, shuffle);
    EXPECT_EQ(sorted_collect(reduced), expected);
    // Nothing leaks: consumed segments are released as they stream back.
    EXPECT_EQ(spill.live_segments(), 0u);
    if (eng.stage_log()[0].shuffle_spill_segments > 0) ++spilled_configs;
  }
  // The budget range really straddles the working set: some configs spill.
  EXPECT_GT(spilled_configs, 0u);
}

TEST(ShuffleSpillPropertyTest, BudgetSmallerThanOneRecordFailsFast) {
  const auto records = make_records(5, 100, 17, 0.0);
  MemorySpill spill;
  Engine eng(engine_opts(2, 5));
  eng.set_spill_backend(&spill);
  const auto ds = eng.parallelize(records, 2);
  ShuffleOptions shuffle;
  shuffle.memory_budget_bytes = sizeof(KV) - 1;  // can't hold even one entry
  try {
    eng.reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 2, {},
                      shuffle);
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find("single record"), std::string::npos)
        << e.what();
  }
}

TEST(ShuffleSpillPropertyTest, FiniteBudgetWithoutBackendFailsFast) {
  const auto records = make_records(6, 100, 17, 0.0);
  Engine eng(engine_opts(2, 6));  // no set_spill_backend
  const auto ds = eng.parallelize(records, 2);
  ShuffleOptions shuffle;
  shuffle.memory_budget_bytes = 1 << 20;
  try {
    eng.reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 2, {},
                      shuffle);
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find("spill backend"), std::string::npos)
        << e.what();
  }
}

// A key type without a SpillCodec still compiles and runs unbounded, but a
// finite budget must be rejected up front rather than failing mid-spill.
struct OpaqueKey {
  int v = 0;
  bool operator==(const OpaqueKey& o) const { return v == o.v; }
};

}  // namespace
}  // namespace dias::engine

template <>
struct std::hash<dias::engine::OpaqueKey> {
  std::size_t operator()(const dias::engine::OpaqueKey& k) const {
    return std::hash<int>{}(k.v);
  }
};

namespace dias::engine {
namespace {

TEST(ShuffleSpillPropertyTest, NonSpillableTypeRejectsFiniteBudget) {
  static_assert(!detail::is_spillable<std::pair<OpaqueKey, std::int64_t>>::value);
  std::vector<std::pair<OpaqueKey, std::int64_t>> records;
  for (int i = 0; i < 200; ++i) records.push_back({{i % 13}, 1});
  MemorySpill spill;
  Engine eng(engine_opts(2, 7));
  eng.set_spill_backend(&spill);
  const auto ds = eng.parallelize(records, 2);

  // Unbounded: fine — spillability is only demanded when it would be used.
  // (Budget forced to 0 so the CI env override can't reach this call.)
  ShuffleOptions unbounded;
  unbounded.memory_budget_bytes = 0;
  const auto reduced = eng.reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 3, {}, unbounded);
  EXPECT_EQ(reduced.total_size(), 13u);

  ShuffleOptions shuffle;
  shuffle.memory_budget_bytes = 1 << 20;
  try {
    eng.reduce_by_key(ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 3, {},
                      shuffle);
    FAIL() << "expected config_error";
  } catch (const config_error& e) {
    EXPECT_NE(std::string(e.what()).find("spill codec"), std::string::npos)
        << e.what();
  }
}

TEST(ShuffleSpillPropertyTest, SpillCodecRoundTripsStringsAndVectors) {
  using Rec = std::pair<std::string, std::vector<std::uint32_t>>;
  static_assert(detail::is_spillable<Rec>::value);
  std::vector<Rec> entries;
  for (int i = 0; i < 50; ++i) {
    Rec r;
    r.first = std::string(static_cast<std::size_t>(i % 7) * 11, 'a' + (i % 26));
    for (int j = 0; j < i % 9; ++j) r.second.push_back(static_cast<std::uint32_t>(i * j));
    entries.push_back(std::move(r));
  }
  const std::string encoded = detail::encode_spill_segment(entries);

  MemorySpill spill(/*chunk_bytes=*/7);  // force many cursor refills
  const auto id = spill.write(encoded);
  detail::SpillCursor cursor(spill.open(id));
  std::vector<Rec> decoded;
  const std::size_t n = detail::decode_spill_segment<Rec>(
      cursor, [&](Rec&& r) { decoded.push_back(std::move(r)); });
  EXPECT_EQ(n, entries.size());
  EXPECT_EQ(decoded, entries);
}

// Satellite 4 regression: the overflow-lane fallback counter is visible in
// metrics snapshots once an engine attaches a registry, not only through
// the process-global atomic. The counter is scoped per sink through
// SpillPolicy (no process-global hook), so the sink here carries it the
// same way Engine::make_spill_policy wires it for real shuffles.
TEST(ShuffleSpillPropertyTest, FallbackLockCounterExportedThroughRegistry) {
  obs::Registry registry;
  Engine eng(engine_opts(2, 8));
  eng.attach_observability(&registry, nullptr);

  detail::SpillPolicy policy;
  policy.fallback_counter = &registry.counter("engine.shuffle.fallback_locks");
  detail::ShuffleSink<int, int> sink(2, 3, policy);
  const auto before = detail::shuffle_fallback_locks().load();
  // Slot-less writer (the driver thread) takes the counted fallback lock.
  sink.push(ThreadPool::kNoSlot, 1, {0, 0, {{5, 1}}});
  EXPECT_EQ(detail::shuffle_fallback_locks().load(), before + 1);

  const auto snap = registry.snapshot();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "engine.shuffle.fallback_locks") {
      found = true;
      EXPECT_GE(c.value, 1u);
    }
  }
  EXPECT_TRUE(found) << "engine.shuffle.fallback_locks missing from snapshot";
  eng.attach_observability(nullptr, nullptr);
}

// REVIEW fix regression: a process-wide DIAS_SHUFFLE_BUDGET_BYTES (the
// kBudgetFromEnv default) must not break shuffles that cannot spill — no
// backend attached, or key/aggregate types without a codec. Under the CI
// spill leg (env var exported) these ran config_error before the fix; an
// *explicit* finite budget on the same shuffles still fails fast (covered
// by the FailsFast tests above).
TEST(ShuffleSpillPropertyTest, EnvBudgetIsIgnoredByShufflesThatCannotSpill) {
  const auto records = make_records(9, 500, 17, 0.0);
  const auto expected = reference_sums(records);

  // No backend anywhere: default (env-inherited) options stay unbounded.
  Engine eng(engine_opts(2, 9));
  const auto ds = eng.parallelize(records, 2);
  const auto reduced = eng.reduce_by_key(
      ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 3, {}, ShuffleOptions{});
  EXPECT_EQ(sorted_collect(reduced), expected);

  // Backend attached but a non-spillable key type: same leniency.
  MemorySpill spill;
  Engine eng2(engine_opts(2, 10));
  eng2.set_spill_backend(&spill);
  std::vector<std::pair<OpaqueKey, std::int64_t>> opaque;
  for (int i = 0; i < 200; ++i) opaque.push_back({{i % 13}, 1});
  const auto opaque_ds = eng2.parallelize(opaque, 2);
  const auto opaque_reduced = eng2.reduce_by_key(
      opaque_ds, [](std::int64_t a, std::int64_t b) { return a + b; }, 3, {},
      ShuffleOptions{});
  EXPECT_EQ(opaque_reduced.total_size(), 13u);
  EXPECT_EQ(spill.stats().segments_written, 0u);
}

}  // namespace
}  // namespace dias::engine
