// End-to-end integration tests: the qualitative findings of the paper's
// evaluation must emerge from the full pipeline (workload generator ->
// deflator/model -> cluster simulator).
#include <gtest/gtest.h>

#include <vector>

#include "core/controller.hpp"
#include "core/deflator.hpp"
#include "model/priority_queue_sim.hpp"
#include "model/response_time_model.hpp"
#include "workload/trace_gen.hpp"

namespace dias {
namespace {

using cluster::TraceEntry;
using core::ExperimentConfig;
using core::Policy;

// A small-but-loaded two-priority workload (scaled-down reference setup:
// 9:1 low:high arrivals, low jobs 2.36x larger, ~80% utilization).
std::vector<workload::ClassWorkloadParams> reference_classes() {
  workload::ClassWorkloadParams low;
  low.arrival_rate = 0.009;
  low.mean_size_mb = 1117.0;
  low.map_tasks = 50;
  low.reduce_tasks = 20;
  low.map_seconds_per_mb = 0.06;
  low.reduce_seconds_per_mb = 0.012;
  low.setup_time_s = 6.0;
  low.setup_time_theta90_s = 3.0;
  low.shuffle_time_s = 2.0;
  low.label = "low";
  workload::ClassWorkloadParams high = low;
  high.arrival_rate = 0.001;
  high.mean_size_mb = 473.0;
  high.label = "high";
  std::vector<workload::ClassWorkloadParams> classes{low, high};
  workload::scale_rates_to_load(classes, 20, 0.8);
  return classes;
}

std::vector<TraceEntry> reference_trace(std::size_t jobs, std::uint64_t seed) {
  workload::TraceGenerator gen(seed);
  const auto classes = reference_classes();
  return gen.text_trace(classes, jobs);
}

ExperimentConfig base_config(Policy policy) {
  ExperimentConfig config;
  config.policy = policy;
  config.slots = 20;
  config.task_time_family = cluster::TaskTimeFamily::kExponential;
  config.warmup_jobs = 300;
  config.seed = 7;
  return config;
}

TEST(IntegrationTest, PreemptionCausesWasteNonPreemptionDoesNot) {
  const auto trace = reference_trace(3000, 1);
  const auto p = core::run_experiment(base_config(Policy::kPreemptive), trace);
  const auto np = core::run_experiment(base_config(Policy::kNonPreemptive), trace);
  EXPECT_GT(p.total_evictions, 0u);
  EXPECT_GT(p.resource_waste(), 0.0);
  EXPECT_EQ(np.total_evictions, 0u);
  EXPECT_DOUBLE_EQ(np.resource_waste(), 0.0);
}

TEST(IntegrationTest, PriorityAdvantageUnderPreemption) {
  const auto trace = reference_trace(3000, 2);
  const auto p = core::run_experiment(base_config(Policy::kPreemptive), trace);
  // High-priority jobs see far lower mean latency and near-zero queueing.
  EXPECT_LT(p.per_class[1].response.mean(), p.per_class[0].response.mean() / 2.0);
  EXPECT_LT(p.per_class[1].queueing.mean(), p.per_class[0].queueing.mean() / 5.0);
}

TEST(IntegrationTest, NpHelpsLowHurtsHigh) {
  // Figure 7's NP bars: low-priority improves, high-priority degrades.
  const auto trace = reference_trace(4000, 3);
  const auto p = core::run_experiment(base_config(Policy::kPreemptive), trace);
  const auto np = core::run_experiment(base_config(Policy::kNonPreemptive), trace);
  EXPECT_LT(np.per_class[0].response.mean(), p.per_class[0].response.mean());
  EXPECT_GT(np.per_class[1].response.mean(), p.per_class[1].response.mean());
}

TEST(IntegrationTest, DifferentialApproximationHelpsBothClasses) {
  // Figure 7's DA(0,20) bars: large low-priority gain at only a marginal
  // high-priority cost relative to NP.
  const auto trace = reference_trace(4000, 4);
  auto config = base_config(Policy::kDifferentialApprox);
  config.theta = {0.2, 0.0};
  const auto p = core::run_experiment(base_config(Policy::kPreemptive), trace);
  const auto np = core::run_experiment(base_config(Policy::kNonPreemptive), trace);
  const auto da = core::run_experiment(config, trace);
  // Low priority: DA clearly beats both P and NP.
  EXPECT_LT(da.per_class[0].response.mean(), 0.7 * p.per_class[0].response.mean());
  EXPECT_LT(da.per_class[0].response.mean(), np.per_class[0].response.mean());
  // High priority: DA no worse than NP beyond noise (shorter low-priority
  // jobs ahead of it; the paper reports only a marginal cost vs P).
  EXPECT_LT(da.per_class[1].response.mean(), 1.10 * np.per_class[1].response.mean());
  // And DA eliminates waste entirely.
  EXPECT_EQ(da.total_evictions, 0u);
}

TEST(IntegrationTest, SprintingRecoversHighPriorityLatency) {
  // DiAS vs DA: sprinting the high class counters the non-preemption
  // penalty (Section 5.3).
  const auto trace = reference_trace(4000, 5);
  auto da = base_config(Policy::kDifferentialApprox);
  da.theta = {0.2, 0.0};
  auto dias = base_config(Policy::kDias);
  dias.theta = {0.2, 0.0};
  dias.sprint.speedup = 2.5;
  dias.sprint.timeout_s = {std::numeric_limits<double>::infinity(), 0.0};
  const auto da_result = core::run_experiment(da, trace);
  const auto dias_result = core::run_experiment(dias, trace);
  EXPECT_LT(dias_result.per_class[1].response.mean(),
            da_result.per_class[1].response.mean());
  // Low class benefits indirectly from shorter high-priority occupancy.
  EXPECT_LE(dias_result.per_class[0].response.mean(),
            da_result.per_class[0].response.mean() * 1.05);
}

TEST(IntegrationTest, SprintingSavesEnergyDespiteHigherPower) {
  // Figure 11(c): faster completion at 1.5x power still cuts total energy
  // when idle power is negligible and execution shrinks by 60%.
  const auto trace = reference_trace(3000, 6);
  auto p = base_config(Policy::kPreemptive);
  auto dias = base_config(Policy::kDias);
  dias.theta = {0.2, 0.0};
  dias.sprint.speedup = 2.5;
  dias.sprint.timeout_s = {std::numeric_limits<double>::infinity(), 0.0};
  const auto p_result = core::run_experiment(p, trace);
  const auto dias_result = core::run_experiment(dias, trace);
  EXPECT_LT(dias_result.energy_joules, p_result.energy_joules);
}

TEST(IntegrationTest, ModelPredictsSimulatedResponseTimes) {
  // Figure 5's validation: the stochastic model must track the simulator
  // within a modest relative error at high load (paper reports ~18.7%).
  auto classes = reference_classes();
  std::vector<model::JobClassProfile> profiles;
  for (const auto& c : classes) profiles.push_back(workload::to_model_profile(c, 20));
  const std::vector<double> theta{0.2, 0.0};
  const auto pred = model::ResponseTimeModel::predict(
      profiles, theta, model::Discipline::kNonPreemptive);

  workload::TraceGenerator gen(8);
  for (auto& c : classes) c.size_scv = 0.0;  // model assumes mean-size jobs
  const auto trace = gen.text_trace(classes, 12000);
  auto config = base_config(Policy::kDifferentialApprox);
  config.theta = {0.2, 0.0};
  config.warmup_jobs = 1000;
  const auto sim = core::run_experiment(config, trace);

  for (std::size_t k = 0; k < 2; ++k) {
    const double predicted = pred.per_class[k].mean_response;
    const double observed = sim.per_class[k].response.mean();
    EXPECT_NEAR(predicted / observed, 1.0, 0.30)
        << "class " << k << ": predicted " << predicted << " observed " << observed;
  }
}

TEST(IntegrationTest, DeflatorPlanIsValidatedBySimulation) {
  // Close the loop: the deflator picks theta from the model; the simulator
  // must confirm the predicted ordering (dropped plan beats theta=0 for the
  // low class).
  const auto classes = reference_classes();
  std::vector<model::JobClassProfile> profiles;
  for (const auto& c : classes) profiles.push_back(workload::to_model_profile(c, 20));
  core::Deflator deflator(profiles, core::AccuracyProfile::paper_word_count());
  const std::vector<core::ClassConstraint> constraints{{15.0, 1e18, 1.0}, {0.0, 1e18, 1.0}};
  // Force dropping via a low-class latency cap at 80% of the exact value.
  auto relaxed = deflator.plan(constraints);
  ASSERT_TRUE(relaxed.feasible);
  std::vector<core::ClassConstraint> capped = constraints;
  capped[0].max_mean_response_s = 0.8 * relaxed.prediction.per_class[0].mean_response;
  const auto plan = deflator.plan(capped);
  ASSERT_TRUE(plan.feasible);
  ASSERT_GT(plan.theta[0], 0.0);

  const auto trace = reference_trace(4000, 9);
  auto config = base_config(Policy::kDifferentialApprox);
  config.theta = plan.theta;
  const auto with_plan = core::run_experiment(config, trace);
  const auto without = core::run_experiment(base_config(Policy::kNonPreemptive), trace);
  EXPECT_LT(with_plan.per_class[0].response.mean(), without.per_class[0].response.mean());
}

TEST(IntegrationTest, TwoIndependentSimulatorsAgree) {
  // Cross-validation: the cluster DES (task/slot granularity) and the
  // model-plane MMAP/PH/1 queue simulator are independent implementations;
  // on single-task exponential jobs they model the same system and must
  // agree on means and tails.
  const double lambda_low = 0.04, lambda_high = 0.01;
  const double mean_low = 12.0, mean_high = 6.0;

  // Cluster plane.
  Rng arrivals(42);
  std::vector<TraceEntry> trace;
  double t = 0.0;
  for (int i = 0; i < 40000; ++i) {
    t += arrivals.exponential(lambda_low + lambda_high);
    const bool high = arrivals.bernoulli(lambda_high / (lambda_low + lambda_high));
    cluster::JobSpec spec;
    spec.priority = high ? 1 : 0;
    spec.stages = {{cluster::StageKind::kMap, 1, high ? mean_high : mean_low, 0.0}};
    trace.push_back({t, spec});
  }
  cluster::ClusterSimulator::Config config;
  config.slots = 1;
  config.task_time_family = cluster::TaskTimeFamily::kExponential;
  config.warmup_jobs = 4000;
  config.seed = 43;
  const auto cluster_result = cluster::simulate(config, std::move(trace));

  // Model plane.
  const auto mmap = model::Mmap::marked_poisson({lambda_low, lambda_high});
  const std::vector<model::PhaseType> services{
      model::PhaseType::exponential(1.0 / mean_low),
      model::PhaseType::exponential(1.0 / mean_high)};
  model::PriorityQueueSimOptions options;
  options.jobs = 200000;
  options.warmup = 20000;
  options.seed = 44;
  const auto queue_result = model::simulate_priority_queue(
      mmap, services, model::SimDiscipline::kNonPreemptive, options);

  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(cluster_result.per_class[k].response.mean() /
                    queue_result.response[k].mean(),
                1.0, 0.08)
        << "class " << k << " mean";
    EXPECT_NEAR(cluster_result.per_class[k].response.p95() /
                    queue_result.response[k].p95(),
                1.0, 0.10)
        << "class " << k << " p95";
  }
  // And both must agree with the exact MVA means.
  const std::vector<model::PriorityClassInput> inputs{
      model::make_class_input(lambda_low, services[0]),
      model::make_class_input(lambda_high, services[1])};
  const auto mva = model::Mg1PriorityQueue::non_preemptive(inputs);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(queue_result.response[k].mean() / mva[k].mean_response, 1.0, 0.06)
        << "class " << k;
  }
}

TEST(IntegrationTest, ThreePriorityClassesOrdered) {
  // Figure 9's setting: 1-4-5 high-medium-low mix; latencies must order by
  // priority under P, and DA must reduce tail latencies for all classes
  // relative to NP.
  workload::ClassWorkloadParams low;
  low.arrival_rate = 0.005;
  low.mean_size_mb = 900.0;
  low.map_seconds_per_mb = 0.06;
  low.reduce_seconds_per_mb = 0.012;
  low.setup_time_s = 6.0;
  low.setup_time_theta90_s = 3.0;
  low.shuffle_time_s = 2.0;
  auto medium = low;
  medium.arrival_rate = 0.004;
  medium.mean_size_mb = 700.0;
  auto high = low;
  high.arrival_rate = 0.001;
  high.mean_size_mb = 473.0;
  std::vector<workload::ClassWorkloadParams> classes{low, medium, high};
  workload::scale_rates_to_load(classes, 20, 0.8);
  workload::TraceGenerator gen(10);
  const auto trace = gen.text_trace(classes, 5000);

  const auto p = core::run_experiment(base_config(Policy::kPreemptive), trace);
  ASSERT_EQ(p.per_class.size(), 3u);
  EXPECT_LT(p.per_class[2].response.mean(), p.per_class[1].response.mean());
  EXPECT_LT(p.per_class[1].response.mean(), p.per_class[0].response.mean());

  auto da = base_config(Policy::kDifferentialApprox);
  da.theta = {0.2, 0.1, 0.0};  // DA(0,10,20) in paper order high->low
  const auto np = core::run_experiment(base_config(Policy::kNonPreemptive), trace);
  const auto da_result = core::run_experiment(da, trace);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_LE(da_result.per_class[k].response.quantile(0.95),
              np.per_class[k].response.quantile(0.95) * 1.02)
        << "class " << k;
  }
  EXPECT_EQ(da_result.total_evictions, 0u);
}

}  // namespace
}  // namespace dias
